//! Umbrella crate for the KaMPIng-rs reproduction.
//!
//! Re-exports the public API of every crate in the workspace so that the
//! examples and integration tests in this repository can use a single
//! dependency. Downstream users would normally depend on [`kamping`]
//! directly (plus [`kmp_mpi`] to launch a message-passing universe).
pub use kamping;
pub use kmp_apps as apps;
pub use kmp_baselines as baselines;
pub use kmp_graphgen as graphgen;
pub use kmp_mpi as mpi;
pub use kmp_serialize as serialize;
