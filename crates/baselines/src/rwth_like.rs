//! RWTH-MPI-style bindings (§II of the paper).
//!
//! Design traits reproduced from the C++20 interface of Demiralp et al.:
//! - thin overloads that largely mirror the C API: counts and
//!   displacements are spelled out by the caller;
//! - STL container support for send/receive buffers;
//! - a count-deducing `all_gather_varying` overload exists, but only the
//!   `MPI_IN_PLACE` form: the caller must have placed its contribution at
//!   the correct offset, which requires exchanging counts manually first
//!   (§III-A) — so in practice applications still write the Fig. 2
//!   boilerplate;
//! - automatic receive-buffer resizing in *some* calls, not others.

use kmp_mpi::op::ReduceOp;
use kmp_mpi::{Comm, Plain, Rank, Result, Tag};

/// RWTH-style communicator wrapper.
pub struct RwthComm<'a> {
    raw: &'a Comm,
}

impl<'a> RwthComm<'a> {
    pub fn new(raw: &'a Comm) -> Self {
        RwthComm { raw }
    }

    pub fn rank(&self) -> Rank {
        self.raw.rank()
    }

    pub fn size(&self) -> usize {
        self.raw.size()
    }

    /// Mirror of `MPI_Allgather` with STL containers; the receive buffer
    /// is resized (one of the convenience overloads).
    pub fn all_gather<T: Plain>(&self, send: &[T], recv: &mut Vec<T>) -> Result<()> {
        recv.clear();
        recv.resize(send.len() * self.size(), kmp_mpi::plain::zeroed::<T>());
        self.raw.allgather_into(send, recv)
    }

    /// The count-deducing overload: **in-place only**. The buffer must
    /// hold `p` equal blocks with this rank's contribution already at
    /// block `rank` (the restriction §III-A criticizes).
    pub fn all_gather_varying_in_place<T: Plain>(&self, buf: &mut [T]) -> Result<()> {
        self.raw.allgather_in_place(buf)
    }

    /// Mirror of `MPI_Allgatherv`: explicit counts and displacements.
    pub fn all_gather_varying<T: Plain>(
        &self,
        send: &[T],
        recv: &mut [T],
        counts: &[usize],
        displs: &[usize],
    ) -> Result<()> {
        self.raw.allgatherv_into(send, recv, counts, displs)
    }

    /// Mirror of `MPI_Alltoall`.
    pub fn all_to_all<T: Plain>(&self, send: &[T], recv: &mut [T]) -> Result<()> {
        self.raw.alltoall_into(send, recv)
    }

    /// Mirror of `MPI_Alltoallv`: everything explicit.
    #[allow(clippy::too_many_arguments)]
    pub fn all_to_all_varying<T: Plain>(
        &self,
        send: &[T],
        send_counts: &[usize],
        send_displs: &[usize],
        recv: &mut [T],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<()> {
        self.raw.alltoallv_into(
            send,
            send_counts,
            send_displs,
            recv,
            recv_counts,
            recv_displs,
        )
    }

    /// Mirror of `MPI_Bcast`.
    pub fn broadcast<T: Plain>(&self, buf: &mut [T], root: Rank) -> Result<()> {
        self.raw.bcast_into(buf, root)
    }

    /// Mirror of `MPI_Allreduce` (single value convenience overload).
    pub fn all_reduce<T: Plain, O: ReduceOp<T>>(&self, value: T, op: O) -> Result<T> {
        self.raw.allreduce_one(value, op)
    }

    /// Mirror of `MPI_Send`.
    pub fn send<T: Plain>(&self, data: &[T], dest: Rank, tag: Tag) -> Result<()> {
        self.raw.send(data, dest, tag)
    }

    /// Mirror of `MPI_Recv` into a resized container.
    pub fn receive<T: Plain>(&self, out: &mut Vec<T>, src: Rank, tag: Tag) -> Result<()> {
        let (data, _st) = self.raw.recv_vec::<T>(src, tag)?;
        *out = data;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    #[test]
    fn all_gather_resizes() {
        Universe::run(3, |raw| {
            let comm = RwthComm::new(&raw);
            let mut out = Vec::new();
            comm.all_gather(&[comm.rank() as u32], &mut out).unwrap();
            assert_eq!(out, vec![0, 1, 2]);
        });
    }

    #[test]
    fn varying_requires_explicit_layout() {
        Universe::run(3, |raw| {
            let comm = RwthComm::new(&raw);
            // The Fig. 2 boilerplate, as an RWTH user writes it:
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let mut counts = vec![0usize; 3];
            counts[comm.rank()] = mine.len();
            comm.all_gather_varying_in_place(&mut counts).unwrap();
            let displs = kmp_mpi::collectives::displacements_from_counts(&counts);
            let mut recv = vec![0u8; counts.iter().sum()];
            comm.all_gather_varying(&mine, &mut recv, &counts, &displs)
                .unwrap();
            assert_eq!(recv, vec![0, 1, 1, 2, 2, 2]);
        });
    }

    #[test]
    fn in_place_overload_matches_fig2() {
        Universe::run(4, |raw| {
            let comm = RwthComm::new(&raw);
            let mut rc = vec![0usize; 4];
            rc[comm.rank()] = comm.rank() + 10;
            comm.all_gather_varying_in_place(&mut rc).unwrap();
            assert_eq!(rc, vec![10, 11, 12, 13]);
        });
    }

    #[test]
    fn alltoallv_explicit() {
        Universe::run(2, |raw| {
            let comm = RwthComm::new(&raw);
            let r = comm.rank() as u16;
            let send = vec![r * 10, r * 10 + 1];
            let counts = vec![1usize, 1];
            let displs = vec![0usize, 1];
            let mut recv = vec![0u16; 2];
            comm.all_to_all_varying(&send, &counts, &displs, &mut recv, &counts, &displs)
                .unwrap();
            assert_eq!(recv, vec![r, 10 + r]);
        });
    }

    #[test]
    fn broadcast_and_reduce() {
        Universe::run(3, |raw| {
            let comm = RwthComm::new(&raw);
            let mut b = if comm.rank() == 1 { [9u64] } else { [0] };
            comm.broadcast(&mut b, 1).unwrap();
            assert_eq!(b, [9]);
            let total = comm.all_reduce(2u64, kmp_mpi::op::Sum).unwrap();
            assert_eq!(total, 6);
        });
    }

    #[test]
    fn p2p() {
        Universe::run(2, |raw| {
            let comm = RwthComm::new(&raw);
            if comm.rank() == 0 {
                comm.send(&[1u8, 2, 3], 1, 0).unwrap();
            } else {
                let mut out: Vec<u8> = Vec::new();
                comm.receive(&mut out, 0, 0).unwrap();
                assert_eq!(out, vec![1, 2, 3]);
            }
        });
    }
}
