//! # kmp-baselines — the paper's comparator binding layers
//!
//! The paper evaluates KaMPIng against three other C++ binding libraries
//! (plus plain MPI). Those libraries are closed designs we re-implement
//! here as *style-faithful layers* over the same [`kmp_mpi`] substrate,
//! so that the LoC comparisons (Table I) and the running-time comparisons
//! (Figs. 8 and 10) measure what the paper measured — the programming
//! model and the communication it induces — rather than vendor internals:
//!
//! - [`boost_like`] — Boost.MPI's design: value-oriented calls, receive
//!   containers implicitly resized (hidden allocation), reduction via
//!   functors, **no `alltoallv` binding** (applications hand-roll it with
//!   point-to-point, as the paper notes);
//! - [`mpl_like`] — MPL's design: explicit *layouts* describe every
//!   buffer; variable-size collectives construct per-peer derived
//!   datatypes and route through an `alltoallw`-style exchange — the
//!   mechanism behind MPL's documented gatherv/alltoallv overheads;
//! - [`rwth_like`] — RWTH-MPI's design: thin overloads mirroring the C
//!   API; some count deduction exists but only for the in-place variant,
//!   so callers usually exchange counts themselves.
//!
//! "Plain MPI" in the comparisons is the [`kmp_mpi`] substrate API used
//! directly.

pub mod boost_like;
pub mod mpl_like;
pub mod rwth_like;
