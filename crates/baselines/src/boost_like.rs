//! Boost.MPI-style bindings (§II of the paper).
//!
//! Design traits reproduced from Boost.MPI:
//! - value-oriented interface: `all_gather(&comm, &value, &mut out)`
//!   fills an output vector that is **implicitly resized to fit** —
//!   convenient, but a hidden allocation on every call (§II);
//! - reductions take functor objects (`std::plus` → `kmp_mpi::op::Sum`) or
//!   lambdas;
//! - **no `alltoallv` binding**: applications needing a personalized
//!   exchange hand-roll it from point-to-point (the paper calls this out
//!   explicitly), see [`handrolled_alltoallv`];
//! - free functions over a communicator wrapper, results via out-refs.

use kmp_mpi::op::ReduceOp;
use kmp_mpi::{Comm, Plain, Rank, Result, Tag};

/// Boost.MPI-style communicator wrapper.
pub struct BoostComm<'a> {
    raw: &'a Comm,
}

impl<'a> BoostComm<'a> {
    pub fn new(raw: &'a Comm) -> Self {
        BoostComm { raw }
    }

    pub fn rank(&self) -> Rank {
        self.raw.rank()
    }

    pub fn size(&self) -> usize {
        self.raw.size()
    }

    /// The underlying communicator.
    pub fn raw(&self) -> &Comm {
        self.raw
    }
}

/// `boost::mpi::all_gather`: gathers one value per rank; the output is
/// resized to fit (hidden allocation).
pub fn all_gather<T: Plain>(comm: &BoostComm<'_>, value: &T, out: &mut Vec<T>) -> Result<()> {
    let gathered = comm.raw.allgather_vec(std::slice::from_ref(value))?;
    *out = gathered;
    Ok(())
}

/// `all_gather` overload for per-rank vectors (equal sizes not required:
/// Boost gathers sizes internally via serialization; the emulation
/// exchanges counts with an allgather first).
pub fn all_gatherv<T: Plain>(comm: &BoostComm<'_>, send: &[T], out: &mut Vec<T>) -> Result<()> {
    let counts = comm.raw.allgather_vec(&[send.len()])?;
    let displs = kmp_mpi::collectives::displacements_from_counts(&counts);
    let total: usize = counts.iter().sum();
    out.clear();
    out.resize(total, kmp_mpi::plain::zeroed::<T>());
    comm.raw.allgatherv_into(send, out, &counts, &displs)
}

/// `boost::mpi::broadcast`.
pub fn broadcast<T: Plain>(comm: &BoostComm<'_>, value: &mut Vec<T>, root: Rank) -> Result<()> {
    let data = comm
        .raw
        .bcast_vec((comm.rank() == root).then_some(&value[..]), root)?;
    *value = data;
    Ok(())
}

/// `boost::mpi::all_reduce` with a functor or lambda.
pub fn all_reduce<T: Plain, O: ReduceOp<T>>(comm: &BoostComm<'_>, value: &T, op: O) -> Result<T> {
    comm.raw.allreduce_one(*value, op)
}

/// `boost::mpi::gather`: root receives all values, resized to fit.
pub fn gather<T: Plain>(
    comm: &BoostComm<'_>,
    value: &T,
    out: &mut Vec<T>,
    root: Rank,
) -> Result<()> {
    if comm.rank() == root {
        out.clear();
        out.resize(comm.size(), kmp_mpi::plain::zeroed::<T>());
    }
    comm.raw.gather_into(std::slice::from_ref(value), out, root)
}

/// `boost::mpi::scatter`.
pub fn scatter<T: Plain>(comm: &BoostComm<'_>, send: &[T], out: &mut T, root: Rank) -> Result<()> {
    let block = comm
        .raw
        .scatter_vec((comm.rank() == root).then_some(send), root)?;
    *out = block[0];
    Ok(())
}

/// Point-to-point send (Boost signature order: dest, tag, data).
pub fn send<T: Plain>(comm: &BoostComm<'_>, dest: Rank, tag: Tag, data: &[T]) -> Result<()> {
    comm.raw.send(data, dest, tag)
}

/// Point-to-point receive; the vector is resized to fit the message.
pub fn recv<T: Plain>(comm: &BoostComm<'_>, src: Rank, tag: Tag, out: &mut Vec<T>) -> Result<()> {
    let (data, _st) = comm.raw.recv_vec::<T>(src, tag)?;
    *out = data;
    Ok(())
}

/// What a Boost.MPI application must write instead of `MPI_Alltoallv`
/// (the binding does not exist): exchange counts with `all_gather`, then
/// isend to every peer and receive from every peer.
pub fn handrolled_alltoallv<T: Plain>(
    comm: &BoostComm<'_>,
    send: &[T],
    send_counts: &[usize],
) -> Result<Vec<T>> {
    let p = comm.size();
    // Everyone learns the full count matrix (p values per rank).
    let flat: Vec<u64> = send_counts.iter().map(|&c| c as u64).collect();
    let mut matrix = Vec::new();
    all_gatherv(comm, &flat, &mut matrix)?;
    let displs = kmp_mpi::collectives::displacements_from_counts(send_counts);
    for dest in 0..p {
        let block = &send[displs[dest]..displs[dest] + send_counts[dest]];
        comm.raw.send(block, dest, 0)?;
    }
    let mut out = Vec::new();
    for src in 0..p {
        let expected = matrix[src * p + comm.rank()] as usize;
        let (mut data, _) = comm.raw.recv_vec::<T>(src, 0)?;
        assert_eq!(data.len(), expected);
        out.append(&mut data);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    #[test]
    fn all_gather_resizes_out() {
        Universe::run(3, |raw| {
            let comm = BoostComm::new(&raw);
            let mut out = Vec::new();
            all_gather(&comm, &(comm.rank() as u32), &mut out).unwrap();
            assert_eq!(out, vec![0, 1, 2]);
        });
    }

    #[test]
    fn all_gatherv_variable_sizes() {
        Universe::run(3, |raw| {
            let comm = BoostComm::new(&raw);
            let mine = vec![comm.rank() as u8; comm.rank() + 1];
            let mut out = Vec::new();
            all_gatherv(&comm, &mine, &mut out).unwrap();
            assert_eq!(out, vec![0, 1, 1, 2, 2, 2]);
        });
    }

    #[test]
    fn broadcast_and_all_reduce() {
        Universe::run(4, |raw| {
            let comm = BoostComm::new(&raw);
            let mut v = if comm.rank() == 0 {
                vec![1u64, 2]
            } else {
                vec![]
            };
            broadcast(&comm, &mut v, 0).unwrap();
            assert_eq!(v, vec![1, 2]);
            let s = all_reduce(&comm, &(comm.rank() as u64), kmp_mpi::op::Sum).unwrap();
            assert_eq!(s, 6);
        });
    }

    #[test]
    fn gather_scatter_roundtrip() {
        Universe::run(3, |raw| {
            let comm = BoostComm::new(&raw);
            let mut all = Vec::new();
            gather(&comm, &(comm.rank() as u16 * 3), &mut all, 0).unwrap();
            if comm.rank() == 0 {
                assert_eq!(all, vec![0, 3, 6]);
            }
            let mut mine = 0u16;
            let send: Vec<u16> = if comm.rank() == 0 {
                vec![5, 6, 7]
            } else {
                vec![]
            };
            scatter(&comm, &send, &mut mine, 0).unwrap();
            assert_eq!(mine, 5 + comm.rank() as u16);
        });
    }

    #[test]
    fn handrolled_alltoallv_matches_builtin() {
        Universe::run(3, |raw| {
            let comm = BoostComm::new(&raw);
            let r = comm.rank();
            let send: Vec<u64> = vec![r as u64; 3 * r];
            let counts = vec![r; 3];
            let got = handrolled_alltoallv(&comm, &send, &counts).unwrap();
            assert_eq!(got, vec![1, 2, 2]);
        });
    }

    #[test]
    fn p2p_roundtrip() {
        Universe::run(2, |raw| {
            let comm = BoostComm::new(&raw);
            if comm.rank() == 0 {
                send(&comm, 1, 9, &[1u8, 2]).unwrap();
            } else {
                let mut out: Vec<u8> = Vec::new();
                recv(&comm, 0, 9, &mut out).unwrap();
                assert_eq!(out, vec![1, 2]);
            }
        });
    }
}
