//! MPL-style bindings (§II of the paper).
//!
//! Design traits reproduced from MPL:
//! - every buffer is described by an explicit **layout** object
//!   ([`ContiguousLayout`], [`Layouts`]); communication calls take
//!   (data, layout) pairs, which is powerful for scientific halo
//!   exchanges but verbose for the irregular patterns of discrete
//!   algorithms (§II);
//! - variable-size collectives do **not** pass counts/displacements to
//!   the corresponding MPI operation; they wrap each peer's block in a
//!   derived datatype and go through an `alltoallw`-equivalent path —
//!   one message per peer pair, even for empty blocks. This is the
//!   mechanism behind the gatherv/alltoallv overheads the paper (and
//!   Ghosh et al.) measured, and it is what makes `mpl` the slowest
//!   line in Fig. 8/10;
//! - no error handling (MPL has none); usage errors panic.

use kmp_mpi::op::ReduceOp;
use kmp_mpi::{Comm, Plain, Rank, Result};

/// A contiguous layout: `count` elements of `T` at offset `displ`
/// (MPL's `contiguous_layout` + displacement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContiguousLayout {
    pub count: usize,
    pub displ: usize,
}

impl ContiguousLayout {
    pub fn new(count: usize) -> Self {
        ContiguousLayout { count, displ: 0 }
    }

    pub fn with_displacement(count: usize, displ: usize) -> Self {
        ContiguousLayout { count, displ }
    }
}

/// A per-peer collection of layouts (MPL's `layouts<T>`).
#[derive(Clone, Debug, Default)]
pub struct Layouts {
    inner: Vec<ContiguousLayout>,
}

impl Layouts {
    pub fn new() -> Self {
        Layouts { inner: Vec::new() }
    }

    pub fn push(&mut self, l: ContiguousLayout) {
        self.inner.push(l);
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn get(&self, i: usize) -> ContiguousLayout {
        self.inner[i]
    }

    /// Builds layouts from counts with prefix-sum displacements.
    pub fn from_counts(counts: &[usize]) -> Self {
        let mut displ = 0;
        let mut out = Layouts::new();
        for &c in counts {
            out.push(ContiguousLayout::with_displacement(c, displ));
            displ += c;
        }
        out
    }

    fn total_extent(&self) -> usize {
        self.inner
            .iter()
            .map(|l| l.displ + l.count)
            .max()
            .unwrap_or(0)
    }
}

/// MPL-style communicator wrapper.
pub struct MplComm<'a> {
    raw: &'a Comm,
}

impl<'a> MplComm<'a> {
    pub fn new(raw: &'a Comm) -> Self {
        MplComm { raw }
    }

    pub fn rank(&self) -> Rank {
        self.raw.rank()
    }

    pub fn size(&self) -> usize {
        self.raw.size()
    }

    /// `communicator::bcast` with a layout.
    pub fn bcast<T: Plain>(
        &self,
        root: Rank,
        data: &mut [T],
        layout: ContiguousLayout,
    ) -> Result<()> {
        self.raw
            .bcast_into(&mut data[layout.displ..layout.displ + layout.count], root)
    }

    /// `communicator::allgather` (fixed-size).
    pub fn allgather<T: Plain>(
        &self,
        send: &[T],
        send_layout: ContiguousLayout,
        recv: &mut [T],
    ) -> Result<()> {
        self.raw.allgather_into(
            &send[send_layout.displ..send_layout.displ + send_layout.count],
            recv,
        )
    }

    /// `communicator::allgatherv`: MPL does not forward counts and
    /// displacements to `MPI_Allgatherv`; each block travels as its own
    /// derived-datatype message through an alltoallw-equivalent dense
    /// exchange — `p-1` messages per rank per call.
    pub fn allgatherv<T: Plain>(
        &self,
        send: &[T],
        send_layout: ContiguousLayout,
        recv: &mut [T],
        recv_layouts: &Layouts,
    ) -> Result<()> {
        assert_eq!(
            recv_layouts.len(),
            self.size(),
            "one receive layout per rank"
        );
        assert!(
            recv_layouts.total_extent() <= recv.len(),
            "receive layouts exceed buffer"
        );
        let block = &send[send_layout.displ..send_layout.displ + send_layout.count];
        // alltoallw-equivalent: identical data to each peer, one message
        // per peer (this is the overhead the paper measures for MPL).
        let p = self.size();
        let send_counts = vec![block.len(); p];
        let send_displs = vec![0usize; p];
        let mut recv_counts = Vec::with_capacity(p);
        let mut recv_displs = Vec::with_capacity(p);
        for i in 0..p {
            let l = recv_layouts.get(i);
            recv_counts.push(l.count);
            recv_displs.push(l.displ);
        }
        let dup = send_buf_repeated(block, p);
        let sd: Vec<usize> = (0..p).map(|i| i * block.len()).collect();
        let _ = send_displs;
        self.raw
            .alltoallv_into(&dup, &send_counts, &sd, recv, &recv_counts, &recv_displs)
    }

    /// `communicator::alltoallv` with per-peer layouts; routed through
    /// the same alltoallw-style dense exchange.
    pub fn alltoallv<T: Plain>(
        &self,
        send: &[T],
        send_layouts: &Layouts,
        recv: &mut [T],
        recv_layouts: &Layouts,
    ) -> Result<()> {
        let p = self.size();
        assert_eq!(send_layouts.len(), p, "one send layout per rank");
        assert_eq!(recv_layouts.len(), p, "one receive layout per rank");
        let mut send_counts = Vec::with_capacity(p);
        let mut send_displs = Vec::with_capacity(p);
        let mut recv_counts = Vec::with_capacity(p);
        let mut recv_displs = Vec::with_capacity(p);
        for i in 0..p {
            let s = send_layouts.get(i);
            send_counts.push(s.count);
            send_displs.push(s.displ);
            let r = recv_layouts.get(i);
            recv_counts.push(r.count);
            recv_displs.push(r.displ);
        }
        // The layout indirection costs an extra pass and, in real MPL,
        // per-peer datatype construction; model the latter with a
        // per-peer commit step.
        for i in 0..p {
            std::hint::black_box(send_layouts.get(i));
            std::hint::black_box(recv_layouts.get(i));
        }
        self.raw.alltoallw_bytes(
            kmp_mpi::plain::as_bytes(send),
            &scale(&send_counts, std::mem::size_of::<T>()),
            &scale(&send_displs, std::mem::size_of::<T>()),
            bytes_of_mut(recv),
            &scale(&recv_counts, std::mem::size_of::<T>()),
            &scale(&recv_displs, std::mem::size_of::<T>()),
        )
    }

    /// `communicator::allreduce`.
    pub fn allreduce<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: O,
    ) -> Result<()> {
        self.raw.allreduce_into(send, recv, op)
    }
}

fn scale(v: &[usize], f: usize) -> Vec<usize> {
    v.iter().map(|&x| x * f).collect()
}

fn send_buf_repeated<T: Plain>(block: &[T], times: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(block.len() * times);
    for _ in 0..times {
        out.extend_from_slice(block);
    }
    out
}

fn bytes_of_mut<T: Plain>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: `T: Plain` guarantees no padding and validity for any byte
    // pattern, making the byte view sound in both directions.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    #[test]
    fn layouts_from_counts() {
        let l = Layouts::from_counts(&[2, 0, 3]);
        assert_eq!(l.get(0), ContiguousLayout::with_displacement(2, 0));
        assert_eq!(l.get(1), ContiguousLayout::with_displacement(0, 2));
        assert_eq!(l.get(2), ContiguousLayout::with_displacement(3, 2));
    }

    #[test]
    fn bcast_with_layout() {
        Universe::run(3, |raw| {
            let comm = MplComm::new(&raw);
            let mut data = if comm.rank() == 0 {
                vec![7u32, 8]
            } else {
                vec![0, 0]
            };
            comm.bcast(0, &mut data, ContiguousLayout::new(2)).unwrap();
            assert_eq!(data, vec![7, 8]);
        });
    }

    #[test]
    fn allgatherv_with_layouts() {
        Universe::run(3, |raw| {
            let comm = MplComm::new(&raw);
            let mine = vec![comm.rank() as u16; comm.rank() + 1];
            let counts = [1usize, 2, 3];
            let layouts = Layouts::from_counts(&counts);
            let mut recv = vec![0u16; 6];
            comm.allgatherv(
                &mine,
                ContiguousLayout::new(mine.len()),
                &mut recv,
                &layouts,
            )
            .unwrap();
            assert_eq!(recv, vec![0, 1, 1, 2, 2, 2]);
        });
    }

    #[test]
    fn alltoallv_with_layouts() {
        Universe::run(2, |raw| {
            let comm = MplComm::new(&raw);
            let r = comm.rank() as u64;
            let send = vec![r * 10, r * 10 + 1];
            let send_layouts = Layouts::from_counts(&[1, 1]);
            let recv_layouts = Layouts::from_counts(&[1, 1]);
            let mut recv = vec![0u64; 2];
            comm.alltoallv(&send, &send_layouts, &mut recv, &recv_layouts)
                .unwrap();
            assert_eq!(recv, vec![comm.rank() as u64, 10 + comm.rank() as u64]);
        });
    }

    #[test]
    fn allreduce_with_op() {
        Universe::run(4, |raw| {
            let comm = MplComm::new(&raw);
            let mut out = vec![0u32];
            comm.allreduce(&[1u32], &mut out, kmp_mpi::op::Sum).unwrap();
            assert_eq!(out, vec![4]);
        });
    }
}
