//! # kmp-mpi — a thread-based MPI substrate
//!
//! This crate provides the message-passing substrate that the
//! [`kamping`](../kamping/index.html) bindings (the paper's contribution)
//! are layered on. It reproduces the MPI *semantics* the paper relies on:
//!
//! - SPMD execution: [`Universe::run`] spawns one OS thread per rank and
//!   hands each a [`Comm`] handle for `MPI_COMM_WORLD`.
//! - Point-to-point communication with tags, wildcard source/tag matching,
//!   non-overtaking delivery, blocking and non-blocking variants
//!   ([`Comm::send`], [`Comm::recv_into`], [`Comm::isend`], [`Comm::irecv`],
//!   synchronous-mode [`Comm::issend`], [`Comm::probe`], [`Comm::iprobe`]).
//! - The full set of collectives used by the paper (barrier, bcast,
//!   gather(v), scatter(v), allgather(v), alltoall(v/w), reduce, allreduce,
//!   scan/exscan, and neighborhood alltoall(v) on graph topologies), all
//!   implemented **on top of point-to-point** with the textbook algorithms
//!   (binomial trees, recursive doubling, ring, pairwise exchange), so the
//!   message counts and volumes of each algorithm are observable.
//! - Communicator management: [`Comm::dup`], [`Comm::split`], groups and
//!   rank translation.
//! - MPI-4 **persistent operations** ([`persistent`]): `*_init` freezes
//!   the communication plan once, `start`/`wait` re-runs it with zero
//!   per-call setup; **partitioned** point-to-point ([`partitioned`])
//!   lets multiple producer threads fill one send as partitions arrive.
//! - A LogP-style **virtual clock** ([`clock`]) used by the scaling
//!   benchmarks: local compute is measured thread-CPU time, each message
//!   costs `alpha + beta * bytes`.
//! - The ULFM operations (revoke / shrink / agree) that back the
//!   fault-tolerance plugin, with the no-survivor-hangs design note in
//!   [`ulfm`], and a deterministic **fault-injection plane** ([`fault`],
//!   feature `fault`, default off and compiled to no-op ZSTs): seeded
//!   [`FaultPlan`]s crash a rank at its k-th injection point — inside a
//!   collective phase, a matching wait, or an agreement — or
//!   drop/delay/duplicate matching messages, driven by
//!   [`Universe::run_with_faults`] and the chaos suite.
//! - A PMPI-style call counter ([`Comm::call_counts`]) used by the binding
//!   tests to assert that *only* the expected MPI calls are issued.
//!
//! ## Example
//!
//! ```
//! use kmp_mpi::Universe;
//!
//! let sums = Universe::run(4, |comm| {
//!     let mine = [comm.rank() as u64 + 1];
//!     let mut total = [0u64];
//!     comm.allreduce_into(&mine, &mut total, kmp_mpi::op::Sum).unwrap();
//!     total[0]
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

pub mod clock;
pub mod collectives;
pub mod comm;
pub mod completion;
pub mod counter;
pub mod error;
pub mod fault;
pub mod mailbox;
pub mod message;
pub mod metrics;
pub mod op;
pub mod p2p;
pub mod partitioned;
pub mod persistent;
pub mod plain;
pub mod request;
pub mod sys;
pub mod topology;
pub mod trace;
pub mod ulfm;
pub mod universe;

pub use clock::{Clock, CostModel};
pub use collectives::neighborhood::NeighborhoodColl;
pub use collectives::{
    AlgoClass, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, BcastParts, ClassEstimate,
    ClassStat, CollTuning, ModelConfig, ModelSnapshot, NeighborhoodAlgo, ReduceAlgo, Select,
    TuningStats,
};
pub use comm::{Comm, TuningGuard};
pub use completion::{park_any, park_epoch, ParkOutcome, PoolSession, PoolStep};
pub use counter::CallCounts;
pub use error::{MpiError, Result};
pub use fault::{FaultPlan, MsgAction, MsgRule};
pub use mailbox::MailboxStats;
pub use message::{Src, Status, TagSel, ANY_SOURCE, ANY_TAG};
pub use metrics::CopyStats;
pub use op::{commutative, non_commutative, ReduceOp};
pub use partitioned::{PartitionWriter, PartitionedRecv, PartitionedSend};
pub use persistent::{start_all, PersistentRequest, PersistentSet};
pub use plain::{
    as_bytes, bytes_from_slice, bytes_from_vec, bytes_into_vec, bytes_to_vec, Plain, SharedPayload,
};
pub use request::{Request, RequestSet};
pub use topology::{CartComm, DistGraphComm, Neighborhood};
pub use trace::{LatencyHist, RankTrace, TraceData, TraceStats};
pub use universe::{Config, RankOutcome, RankStats, RunStats, Universe};

/// A rank identifier within a communicator (also used for world ranks).
pub type Rank = usize;

/// A message tag. User tags must be non-negative; negative tags are
/// reserved for the substrate's internal collective protocols.
pub type Tag = i32;
