//! Blocking point-to-point communication and probes.

use bytes::Bytes;

use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::message::{Src, Status, TagSel};
use crate::plain::{bytes_from_slice, bytes_from_vec, bytes_into_vec, copy_bytes_into};
use crate::{Plain, Rank, Tag};

impl Comm {
    /// Sends a typed slice (mirrors `MPI_Send`). The transport is an eager
    /// protocol: the call buffers the payload and returns immediately.
    pub fn send<T: Plain>(&self, data: &[T], dest: Rank, tag: Tag) -> Result<()> {
        self.count_op("send");
        self.check_tag(tag)?;
        self.deliver_bytes(dest, tag, bytes_from_slice(data), None)
    }

    /// Sends an owned vector, **moving** it into the transport without
    /// copying (the zero-copy owned send path): the allocation itself
    /// becomes the in-flight payload.
    pub fn send_vec<T: Plain>(&self, data: Vec<T>, dest: Rank, tag: Tag) -> Result<()> {
        self.count_op("send");
        self.check_tag(tag)?;
        self.deliver_bytes(dest, tag, bytes_from_vec(data), None)
    }

    /// Sends a single value.
    pub fn send_one<T: Plain>(&self, value: T, dest: Rank, tag: Tag) -> Result<()> {
        self.send(std::slice::from_ref(&value), dest, tag)
    }

    /// Sends raw bytes (used by the serialization layer).
    pub fn send_bytes(&self, data: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.count_op("send");
        self.check_tag(tag)?;
        self.deliver_bytes(dest, tag, bytes_from_slice(data), None)
    }

    /// Sends an already-shared payload without copying (zero-copy path
    /// for the serialization layer and for relaying received payloads).
    pub fn send_shared(&self, data: Bytes, dest: Rank, tag: Tag) -> Result<()> {
        self.count_op("send");
        self.check_tag(tag)?;
        self.deliver_bytes(dest, tag, data, None)
    }

    /// Receives into a caller-provided buffer (mirrors `MPI_Recv`).
    /// Errors with [`MpiError::Truncated`] if the matched message does not
    /// fit; like MPI, the message is consumed either way.
    pub fn recv_into<T: Plain>(
        &self,
        buf: &mut [T],
        src: impl Into<Src>,
        tag: impl Into<TagSel>,
    ) -> Result<Status> {
        self.count_op("recv");
        let env = self.recv_envelope(src.into(), tag.into())?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        if env.payload.len() > std::mem::size_of_val(buf) {
            return Err(MpiError::Truncated {
                message_bytes: env.payload.len(),
                buffer_bytes: std::mem::size_of_val(buf),
            });
        }
        copy_bytes_into(&env.payload, buf);
        Ok(status)
    }

    /// Receives a message of unknown length into a fresh vector.
    pub fn recv_vec<T: Plain>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<TagSel>,
    ) -> Result<(Vec<T>, Status)> {
        self.count_op("recv");
        let env = self.recv_envelope(src.into(), tag.into())?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        Ok((bytes_into_vec(env.payload), status))
    }

    /// Receives a single value.
    pub fn recv_one<T: Plain>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<TagSel>,
    ) -> Result<(T, Status)> {
        let (v, status) = self.recv_vec::<T>(src, tag)?;
        if v.len() != 1 {
            return Err(MpiError::Truncated {
                message_bytes: status.bytes,
                buffer_bytes: std::mem::size_of::<T>(),
            });
        }
        Ok((v[0], status))
    }

    /// Receives raw bytes (used by the serialization layer).
    pub fn recv_bytes(
        &self,
        src: impl Into<Src>,
        tag: impl Into<TagSel>,
    ) -> Result<(Bytes, Status)> {
        self.count_op("recv");
        let env = self.recv_envelope(src.into(), tag.into())?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        Ok((env.payload, status))
    }

    /// Combined send and receive (mirrors `MPI_Sendrecv`). Deadlock-free
    /// under the eager transport: the send buffers immediately.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv<T: Plain, U: Plain>(
        &self,
        send_data: &[T],
        dest: Rank,
        send_tag: Tag,
        recv_buf: &mut [U],
        src: impl Into<Src>,
        recv_tag: impl Into<TagSel>,
    ) -> Result<Status> {
        self.count_op("sendrecv");
        self.check_tag(send_tag)?;
        self.deliver_bytes(dest, send_tag, bytes_from_slice(send_data), None)?;
        let env = self.recv_envelope(src.into(), recv_tag.into())?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        if env.payload.len() > std::mem::size_of_val(recv_buf) {
            return Err(MpiError::Truncated {
                message_bytes: env.payload.len(),
                buffer_bytes: std::mem::size_of_val(recv_buf),
            });
        }
        copy_bytes_into(&env.payload, recv_buf);
        Ok(status)
    }

    /// Blocks until a matching message is available and returns its status
    /// without consuming it (mirrors `MPI_Probe`).
    pub fn probe(&self, src: impl Into<Src>, tag: impl Into<TagSel>) -> Result<Status> {
        self.count_op("probe");
        self.peek_envelope(src.into(), tag.into())
    }

    /// Non-blocking probe (mirrors `MPI_Iprobe`).
    pub fn iprobe(&self, src: impl Into<Src>, tag: impl Into<TagSel>) -> Option<Status> {
        self.count_op("iprobe");
        self.try_peek_envelope(src.into(), tag.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Universe, ANY_SOURCE, ANY_TAG};

    #[test]
    fn ping_pong() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u32, 2, 3], 1, 0).unwrap();
                let (v, st) = comm.recv_vec::<u32>(1, 1).unwrap();
                assert_eq!(v, vec![4, 5]);
                assert_eq!(st.source, 1);
                assert_eq!(st.tag, 1);
            } else {
                let (v, _) = comm.recv_vec::<u32>(0, 0).unwrap();
                assert_eq!(v, vec![1, 2, 3]);
                comm.send(&[4u32, 5], 0, 1).unwrap();
            }
        });
    }

    #[test]
    fn recv_into_with_status() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[7u64; 4], 1, 9).unwrap();
            } else {
                let mut buf = [0u64; 8];
                let st = comm.recv_into(&mut buf, 0, 9).unwrap();
                assert_eq!(st.count::<u64>(), 4);
                assert_eq!(&buf[..4], &[7; 4]);
            }
        });
    }

    #[test]
    fn wildcard_source_and_tag() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut seen = [false; 2];
                for _ in 0..2 {
                    let (v, st) = comm.recv_vec::<u8>(ANY_SOURCE, ANY_TAG).unwrap();
                    assert_eq!(v, vec![st.source as u8]);
                    assert_eq!(st.tag, st.source as i32 * 10);
                    seen[st.source - 1] = true;
                }
                assert_eq!(seen, [true, true]);
            } else {
                comm.send(&[comm.rank() as u8], 0, comm.rank() as i32 * 10)
                    .unwrap();
            }
        });
    }

    #[test]
    fn non_overtaking_per_source_tag() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(&[i], 1, 5).unwrap();
                }
            } else {
                for i in 0..100u32 {
                    let ((v, _), i) = (comm.recv_vec::<u32>(0, 5).unwrap(), i);
                    assert_eq!(v, vec![i]);
                }
            }
        });
    }

    #[test]
    fn tag_selectivity() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u8], 1, 1).unwrap();
                comm.send(&[2u8], 1, 2).unwrap();
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier.
                let (v2, _) = comm.recv_vec::<u8>(0, 2).unwrap();
                let (v1, _) = comm.recv_vec::<u8>(0, 1).unwrap();
                assert_eq!((v1, v2), (vec![1], vec![2]));
            }
        });
    }

    #[test]
    fn truncation_error() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u32; 10], 1, 0).unwrap();
            } else {
                let mut small = [0u32; 2];
                let err = comm.recv_into(&mut small, 0, 0).unwrap_err();
                assert!(matches!(
                    err,
                    MpiError::Truncated {
                        message_bytes: 40,
                        buffer_bytes: 8
                    }
                ));
            }
        });
    }

    #[test]
    fn sendrecv_ring_rotation() {
        Universe::run(4, |comm| {
            let right = (comm.rank() + 1) % 4;
            let left = (comm.rank() + 3) % 4;
            let mut got = [0usize];
            comm.sendrecv(&[comm.rank()], right, 3, &mut got, left, 3)
                .unwrap();
            assert_eq!(got[0], left);
        });
    }

    #[test]
    fn probe_then_sized_recv() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[9u16; 5], 1, 4).unwrap();
            } else {
                let st = comm.probe(ANY_SOURCE, ANY_TAG).unwrap();
                assert_eq!(st.count::<u16>(), 5);
                let mut buf = vec![0u16; st.count::<u16>()];
                comm.recv_into(&mut buf, st.source, st.tag).unwrap();
                assert_eq!(buf, vec![9; 5]);
            }
        });
    }

    #[test]
    fn iprobe_nonblocking() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                // Nothing has been sent to rank 0.
                assert!(comm.iprobe(ANY_SOURCE, ANY_TAG).is_none());
                comm.send(&[1u8], 1, 0).unwrap();
            } else {
                let st = loop {
                    if let Some(st) = comm.iprobe(ANY_SOURCE, ANY_TAG) {
                        break st;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(st.source, 0);
                let (v, _) = comm.recv_vec::<u8>(st.source, st.tag).unwrap();
                assert_eq!(v, vec![1]);
            }
        });
    }

    #[test]
    fn negative_user_tag_rejected() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                assert!(matches!(
                    comm.send(&[1u8], 1, -5),
                    Err(MpiError::InvalidTag { tag: -5 })
                ));
            }
        });
    }

    #[test]
    fn probe_then_match_coherent_under_backlog() {
        // A probe's status must identify a message that the matching
        // receive then actually gets, even with unrelated traffic piled
        // up in the unexpected queue ahead of and behind it.
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                for i in 0..20u32 {
                    comm.send(&[i], 2, 7).unwrap();
                }
            } else if comm.rank() == 1 {
                comm.send(&[1u16, 2, 3], 2, 9).unwrap();
            } else {
                // Wait for the tag-9 message amid the tag-7 backlog.
                let st = comm.probe(1, 9).unwrap();
                assert_eq!(st.count::<u16>(), 3);
                let mut buf = vec![0u16; st.count::<u16>()];
                let got = comm.recv_into(&mut buf, st.source, st.tag).unwrap();
                assert_eq!(got, st, "the probed message is the matched one");
                assert_eq!(buf, vec![1, 2, 3]);
                for i in 0..20u32 {
                    let (v, _) = comm.recv_vec::<u32>(0, 7).unwrap();
                    assert_eq!(v, vec![i], "backlog drains in order");
                }
            }
        });
    }

    #[test]
    fn mailbox_stats_expose_matching_pressure() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..8u8 {
                    comm.send(&[i], 1, i as i32).unwrap();
                }
                comm.send(&[255u8], 1, 100).unwrap();
            } else {
                // Receiving the last-sent message first forces the
                // earlier eight through the unexpected queue.
                let (v, _) = comm.recv_vec::<u8>(0, 100).unwrap();
                assert_eq!(v, vec![255]);
                let depth = comm.mailbox_stats().max_unexpected_depth;
                assert!(depth >= 8, "burst must register as pressure: {depth}");
                for i in 0..8u8 {
                    comm.recv_vec::<u8>(0, i as i32).unwrap();
                }
                assert_eq!(comm.mailbox_stats().queued, 0);
            }
        });
    }

    #[test]
    fn send_to_self() {
        Universe::run(1, |comm| {
            comm.send(&[42u8], 0, 0).unwrap();
            let (v, st) = comm.recv_vec::<u8>(0, 0).unwrap();
            assert_eq!(v, vec![42]);
            assert_eq!(st.source, 0);
        });
    }

    #[test]
    fn recv_one_single_value() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_one(123u64, 1, 0).unwrap();
            } else {
                let (v, _) = comm.recv_one::<u64>(0, 0).unwrap();
                assert_eq!(v, 123);
            }
        });
    }

    #[test]
    fn raw_bytes_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(b"hello bytes", 1, 0).unwrap();
            } else {
                let (b, st) = comm.recv_bytes(0, 0).unwrap();
                assert_eq!(&b[..], b"hello bytes");
                assert_eq!(st.bytes, 11);
            }
        });
    }
}
