//! LogP-style virtual time.
//!
//! The paper's scaling experiments ran on up to 256 nodes of SuperMUC-NG.
//! This reproduction executes ranks as threads on a small host, so raw
//! wall-clock cannot exhibit 256-rank network behaviour. Instead, every
//! rank carries a virtual clock:
//!
//! - **Local compute** is charged either from measured *thread CPU time*
//!   (when the host kernel reports it at fine granularity) or explicitly
//!   via [`Clock::add_ns`] from single-threaded wall-clock calibrations
//!   (what the shipped harnesses do; many kernels tick thread CPU time
//!   at 10 ms).
//! - **Each message** advances the sender by `alpha` (startup/overhead) and
//!   arrives at the receiver at `departure + beta * bytes`; completing a
//!   receive advances the receiver to at least the arrival time plus a
//!   per-message receive overhead.
//!
//! The "total time" reported by the scaling harnesses is the maximum
//! virtual time over all ranks, which reproduces the mechanism behind the
//! paper's who-wins comparisons: dense exchanges pay `p` startups, the
//! grid all-to-all pays `O(sqrt(p))` startups for `2x` volume, and sparse
//! exchanges pay only for actual communication partners.

use crate::sys::thread_cpu_ns;

/// Parameters of the alpha-beta (latency/bandwidth) message cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message startup cost charged to the sender, in nanoseconds.
    pub alpha_ns: u64,
    /// Per-byte transfer cost, in nanoseconds.
    pub beta_ns_per_byte: f64,
    /// Per-message matching/completion overhead charged to the receiver.
    pub recv_overhead_ns: u64,
    /// Whether local compute is charged from measured thread CPU time.
    pub measure_cpu: bool,
}

impl CostModel {
    /// No network costs, no CPU measurement: virtual time stays zero unless
    /// advanced manually. The default for unit tests.
    pub const fn disabled() -> Self {
        CostModel {
            alpha_ns: 0,
            beta_ns_per_byte: 0.0,
            recv_overhead_ns: 0,
            measure_cpu: false,
        }
    }

    /// A cluster-like configuration loosely modelled on the paper's
    /// testbed (OmniPath, 100 Gbit/s): ~1.5 us startup, ~0.1 ns/byte.
    ///
    /// CPU measurement stays off: kernels often report thread CPU time
    /// at scheduler-tick granularity (10 ms), far too coarse for
    /// microsecond-scale accounting. The benchmark harnesses instead
    /// charge compute explicitly from single-threaded wall-clock
    /// calibrations (see `kmp-bench`).
    pub const fn cluster() -> Self {
        CostModel {
            alpha_ns: 1_500,
            beta_ns_per_byte: 0.1,
            recv_overhead_ns: 300,
            measure_cpu: false,
        }
    }

    /// Transfer time for a message of `bytes` bytes (excluding startup).
    #[inline]
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        (self.beta_ns_per_byte * bytes as f64) as u64
    }

    /// True if any component of the model is active.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.alpha_ns != 0
            || self.beta_ns_per_byte != 0.0
            || self.recv_overhead_ns != 0
            || self.measure_cpu
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::disabled()
    }
}

/// Per-rank virtual clock. Owned by the rank's [`Comm`](crate::Comm)
/// handle; never shared across threads.
#[derive(Debug)]
pub struct Clock {
    model: CostModel,
    vtime_ns: u64,
    last_cpu_ns: u64,
}

impl Clock {
    pub fn new(model: CostModel) -> Self {
        let last_cpu_ns = if model.measure_cpu {
            thread_cpu_ns()
        } else {
            0
        };
        Clock {
            model,
            vtime_ns: 0,
            last_cpu_ns,
        }
    }

    /// The cost model this clock runs under.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.vtime_ns
    }

    /// Charges local compute since the last call using thread CPU time.
    /// Called on entry to every substrate operation.
    #[inline]
    pub fn absorb_cpu(&mut self) {
        if self.model.measure_cpu {
            let now = thread_cpu_ns();
            self.vtime_ns += now.saturating_sub(self.last_cpu_ns);
            self.last_cpu_ns = now;
        }
    }

    /// Manually advances virtual time (e.g. to model compute that is not
    /// executed for real in a scaled-down benchmark).
    #[inline]
    pub fn add_ns(&mut self, ns: u64) {
        self.vtime_ns += ns;
    }

    /// Charges a message send; returns the arrival timestamp to stamp the
    /// message with.
    #[inline]
    pub fn on_send(&mut self, bytes: usize) -> u64 {
        self.vtime_ns += self.model.alpha_ns;
        self.vtime_ns + self.model.transfer_ns(bytes)
    }

    /// Charges the completion of a receive of a message that arrived (in
    /// virtual time) at `arrival_ns`.
    #[inline]
    pub fn on_recv_complete(&mut self, arrival_ns: u64) {
        if arrival_ns > self.vtime_ns {
            self.vtime_ns = arrival_ns;
        }
        self.vtime_ns += self.model.recv_overhead_ns;
    }

    /// Resets virtual time to zero (used between benchmark repetitions).
    /// CPU accounting restarts from the current thread CPU time.
    pub fn reset(&mut self) {
        self.vtime_ns = 0;
        if self.model.measure_cpu {
            self.last_cpu_ns = thread_cpu_ns();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_stays_zero() {
        let mut c = Clock::new(CostModel::disabled());
        c.absorb_cpu();
        let arrival = c.on_send(1024);
        assert_eq!(arrival, 0);
        c.on_recv_complete(arrival);
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn send_charges_alpha_and_beta() {
        let model = CostModel {
            alpha_ns: 100,
            beta_ns_per_byte: 2.0,
            recv_overhead_ns: 10,
            measure_cpu: false,
        };
        let mut c = Clock::new(model);
        let arrival = c.on_send(50);
        assert_eq!(c.now_ns(), 100); // sender pays alpha
        assert_eq!(arrival, 100 + 100); // + beta * 50
    }

    #[test]
    fn recv_advances_to_arrival() {
        let model = CostModel {
            alpha_ns: 0,
            beta_ns_per_byte: 0.0,
            recv_overhead_ns: 7,
            measure_cpu: false,
        };
        let mut c = Clock::new(model);
        c.on_recv_complete(1000);
        assert_eq!(c.now_ns(), 1007);
        // A message that arrived in the past only costs the overhead.
        c.on_recv_complete(500);
        assert_eq!(c.now_ns(), 1014);
    }

    #[test]
    fn manual_advance_and_reset() {
        let mut c = Clock::new(CostModel::disabled());
        c.add_ns(42);
        assert_eq!(c.now_ns(), 42);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn cpu_measurement_advances() {
        // Thread-CPU clocks may tick as coarsely as 10 ms; burn CPU in
        // rounds until the measuring clock advances.
        let model = CostModel {
            measure_cpu: true,
            ..CostModel::disabled()
        };
        let mut c = Clock::new(model);
        let mut x = 1u64;
        for round in 0..2_000u64 {
            for i in 0..1_000_000u64 {
                x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i ^ round);
            }
            std::hint::black_box(x);
            c.absorb_cpu();
            if c.now_ns() > 0 {
                break;
            }
        }
        assert!(c.now_ns() > 0, "CPU-measuring clock did not advance");
    }
}
