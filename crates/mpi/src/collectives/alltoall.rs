//! Alltoall, alltoallv and a byte-level alltoallw.
//!
//! The v/w exchanges run the pairwise algorithm; the equal-block
//! `alltoall` dispatches between pairwise and Bruck through the
//! communicator's [`CollTuning`](super::algos::CollTuning).

use super::algos::{self, AlltoallAlgo};
use super::{check_layout, recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{bytes_from_slice, copy_bytes_into, copy_slice};
use crate::Plain;

impl Comm {
    /// Personalized all-to-all of equal-sized blocks (mirrors
    /// `MPI_Alltoall`): block `i` of `send` goes to rank `i`; block `j` of
    /// `recv` comes from rank `j`. The tuning selects pairwise exchange
    /// (`p-1` messages per rank, sent even when a block is empty — the
    /// dense-exchange behaviour the sparse/grid plugins of §V-A improve
    /// on) or Bruck (`ceil(log2 p)` packed messages) for small blocks.
    pub fn alltoall_into<T: Plain>(&self, send: &[T], recv: &mut [T]) -> Result<()> {
        self.count_op("alltoall");
        let p = self.size();
        if !send.len().is_multiple_of(p) || recv.len() < send.len() {
            return Err(MpiError::InvalidLayout(format!(
                "alltoall: send length {} not divisible by {p} or receive buffer too small ({})",
                send.len(),
                recv.len()
            )));
        }
        let n = send.len() / p;
        let block_bytes = n * std::mem::size_of::<T>();
        algos::model::tick(self)?;
        let bruck =
            p > 1 && algos::model::select_alltoall(self, block_bytes) == AlltoallAlgo::Bruck;
        let _sp = crate::trace::span(
            crate::trace::cat::COLL,
            if bruck {
                "alltoall/bruck"
            } else {
                "alltoall/pairwise"
            },
            block_bytes as u64,
            p as u64,
        );
        let begun = algos::model::measure_begin(self);
        let class = algos::model::alltoall_class(if bruck {
            AlltoallAlgo::Bruck
        } else {
            AlltoallAlgo::Pairwise
        });
        if bruck {
            algos::alltoall::bruck(self, send, n, recv)?;
        } else {
            let counts: Vec<usize> = vec![n; p];
            let displs: Vec<usize> = (0..p).map(|r| r * n).collect();
            alltoallv_internal(self, send, &counts, &displs, recv, &counts, &displs)?;
        }
        algos::model::observe(self, class, begun, block_bytes as f64);
        Ok(())
    }

    /// Personalized all-to-all with per-destination counts and
    /// displacements (mirrors `MPI_Alltoallv`).
    pub fn alltoallv_into<T: Plain>(
        &self,
        send: &[T],
        send_counts: &[usize],
        send_displs: &[usize],
        recv: &mut [T],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<()> {
        self.count_op("alltoallv");
        alltoallv_internal(
            self,
            send,
            send_counts,
            send_displs,
            recv,
            recv_counts,
            recv_displs,
        )
    }

    /// Byte-level alltoallw: counts and displacements are in bytes, so
    /// each destination may receive a differently-typed payload.
    ///
    /// `MPI_Alltoallw` takes a *derived datatype per peer*; real
    /// implementations construct, commit and free `p` datatypes and
    /// cannot apply the optimized fixed-type exchange algorithms — the
    /// reason MPL's datatype-routed v-collectives are slow (§II of the
    /// paper, Ghosh et al.). The virtual clock charges one extra message
    /// startup per peer for this datatype management, so the cost shape
    /// is reproduced; with the cost model disabled the charge is zero.
    pub fn alltoallw_bytes(
        &self,
        send: &[u8],
        send_counts: &[usize],
        send_displs: &[usize],
        recv: &mut [u8],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<()> {
        self.count_op("alltoallw");
        let datatype_overhead = self.size() as u64 * self.clock.borrow().model().alpha_ns;
        self.clock.borrow_mut().add_ns(datatype_overhead);
        alltoallv_internal(
            self,
            send,
            send_counts,
            send_displs,
            recv,
            recv_counts,
            recv_displs,
        )
    }
}

pub(crate) fn alltoallv_internal<T: Plain>(
    comm: &Comm,
    send: &[T],
    send_counts: &[usize],
    send_displs: &[usize],
    recv: &mut [T],
    recv_counts: &[usize],
    recv_displs: &[usize],
) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    check_layout("alltoallv(send)", send_counts, send_displs, send.len(), p)?;
    check_layout("alltoallv(recv)", recv_counts, recv_displs, recv.len(), p)?;
    let tag = comm.next_internal_tag();

    // Own block: straight copy (send and recv are distinct buffers).
    {
        let src = &send[send_displs[rank]..send_displs[rank] + send_counts[rank]];
        if src.len() != recv_counts[rank] {
            return Err(MpiError::InvalidLayout(format!(
                "alltoallv: self block sends {} elements but expects {}",
                src.len(),
                recv_counts[rank]
            )));
        }
        copy_slice(
            src,
            &mut recv[recv_displs[rank]..recv_displs[rank] + recv_counts[rank]],
        );
    }

    if p == 1 {
        return Ok(());
    }

    // Pack the whole send buffer into one shared payload and carve
    // per-peer blocks out of it by refcount slicing: one serialization
    // pass total instead of one allocation + copy per peer.
    let elem = std::mem::size_of::<T>();
    let packed = bytes_from_slice(send);

    // Pairwise exchange; a message is sent for every peer, including
    // zero-sized blocks (dense-exchange semantics).
    for step in 1..p {
        let to = (rank + step) % p;
        let from = (rank + p - step) % p;
        let start = send_displs[to] * elem;
        let block = packed.slice(start..start + send_counts[to] * elem);
        send_internal(comm, to, tag, block)?;
        let bytes = recv_internal(comm, from, tag)?;
        let dst = &mut recv[recv_displs[from]..recv_displs[from] + recv_counts[from]];
        if bytes.len() != std::mem::size_of_val(dst) {
            return Err(MpiError::Truncated {
                message_bytes: bytes.len(),
                buffer_bytes: std::mem::size_of_val(dst),
            });
        }
        copy_bytes_into(&bytes, dst);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn alltoall_transpose() {
        Universe::run(4, |comm| {
            // send[i] = rank * 10 + i; after the exchange, recv[j] = j * 10 + rank.
            let send: Vec<u32> = (0..4).map(|i| comm.rank() as u32 * 10 + i).collect();
            let mut recv = vec![0u32; 4];
            comm.alltoall_into(&send, &mut recv).unwrap();
            let expected: Vec<u32> = (0..4).map(|j| j * 10 + comm.rank() as u32).collect();
            assert_eq!(recv, expected);
        });
    }

    #[test]
    fn alltoall_multi_element_blocks() {
        Universe::run(3, |comm| {
            let r = comm.rank() as u64;
            let send: Vec<u64> = (0..6).map(|i| r * 100 + i).collect(); // 2 per peer
            let mut recv = vec![0u64; 6];
            comm.alltoall_into(&send, &mut recv).unwrap();
            for j in 0..3u64 {
                assert_eq!(recv[(j * 2) as usize], j * 100 + r * 2);
                assert_eq!(recv[(j * 2 + 1) as usize], j * 100 + r * 2 + 1);
            }
        });
    }

    #[test]
    fn alltoallv_asymmetric() {
        // Rank r sends r+1 copies of its rank to every peer.
        Universe::run(3, |comm| {
            let r = comm.rank();
            let send: Vec<u8> = vec![r as u8; 3 * (r + 1)];
            let send_counts = vec![r + 1; 3];
            let send_displs: Vec<usize> = (0..3).map(|i| i * (r + 1)).collect();
            let recv_counts = vec![1usize, 2, 3];
            let recv_displs = vec![0usize, 1, 3];
            let mut recv = vec![0u8; 6];
            comm.alltoallv_into(
                &send,
                &send_counts,
                &send_displs,
                &mut recv,
                &recv_counts,
                &recv_displs,
            )
            .unwrap();
            assert_eq!(recv, vec![0, 1, 1, 2, 2, 2]);
        });
    }

    #[test]
    fn alltoallv_zero_blocks() {
        // Only rank 0 sends anything, and only to rank 1.
        Universe::run(3, |comm| {
            let (send, send_counts): (Vec<u32>, Vec<usize>) = if comm.rank() == 0 {
                (vec![7, 8], vec![0, 2, 0])
            } else {
                (vec![], vec![0, 0, 0])
            };
            let send_displs = vec![0usize, 0, send_counts[1]];
            let recv_counts: Vec<usize> = if comm.rank() == 1 {
                vec![2, 0, 0]
            } else {
                vec![0, 0, 0]
            };
            let recv_displs = vec![0usize; 3];
            let mut recv = vec![0u32; 2];
            comm.alltoallv_into(
                &send,
                &send_counts,
                &send_displs,
                &mut recv,
                &recv_counts,
                &recv_displs,
            )
            .unwrap();
            if comm.rank() == 1 {
                assert_eq!(recv, vec![7, 8]);
            }
        });
    }

    #[test]
    fn alltoallw_bytes_roundtrip() {
        Universe::run(2, |comm| {
            let send: Vec<u8> = vec![comm.rank() as u8; 4];
            let counts = vec![2usize, 2];
            let displs = vec![0usize, 2];
            let mut recv = vec![0u8; 4];
            comm.alltoallw_bytes(&send, &counts, &displs, &mut recv, &counts, &displs)
                .unwrap();
            assert_eq!(recv, vec![0, 0, 1, 1]);
        });
    }

    #[test]
    fn alltoall_single_rank() {
        Universe::run(1, |comm| {
            let send = vec![5u16, 6];
            let mut recv = vec![0u16; 2];
            comm.alltoall_into(&send, &mut recv).unwrap();
            assert_eq!(recv, vec![5, 6]);
        });
    }
}
