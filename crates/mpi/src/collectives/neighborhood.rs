//! Neighborhood collectives: sparse `O(degree)` exchange over a
//! declared topology (MPI-3 `MPI_Neighbor_allgather(v)` /
//! `MPI_Neighbor_alltoall(v)` and their nonblocking / persistent
//! variants).
//!
//! A topology-blind sparse exchange runs a dense `alltoallv` with
//! zeroed counts for the ranks it has nothing for — still posting `p-1`
//! envelopes and occupying `p-1` matching-engine slots per rank per
//! round. The collectives here post exactly `out_degree` sends and
//! `in_degree` receives along the frozen edge lists of a
//! [`Neighborhood`] communicator; the
//! per-round envelope saving is algorithmic and shows up directly in
//! [`MailboxStats::envelopes_posted`](crate::MailboxStats) (pinned by
//! tests below and by the `neighborhood_experiment` bench). See the
//! [`topology`](crate::topology) module doc for the degree-vs-p cost
//! model.
//!
//! Zero-copy discipline matches the dense engines: each call packs (or
//! adopts) its payload once, per-destination fan-out is a refcount
//! clone or `Bytes::slice`, and received blocks materialize once at
//! their destination — `s + r` copied bytes per rank, independent of
//! degree.
//!
//! All exchanges on one communicator share a per-call internal tag;
//! messages between a `(source, destination)` pair form a FIFO stream,
//! so duplicate neighbors (legal, e.g. a periodic cartesian dimension
//! of extent 2) resolve by arrival order — the receive engine fills
//! duplicate slots strictly first-declared-first.
//!
//! The [`CollTuning::neighborhood`](crate::CollTuning) slot routes the
//! *blocking* exchanges to a dense all-pairs path on near-complete
//! graphs (where sparsity saves nothing); nonblocking and persistent
//! variants always run the sparse schedule — their value is the
//! minimal frozen envelope set.

use bytes::Bytes;

use super::algos::NeighborhoodAlgo;
use super::nonblocking::{recv_one, CollEngine};
use super::send_internal;
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::persistent::{CollBody, CollPlan, CollSends, OwnSpec, PersistentRequest};
use crate::plain::{bytes_from_slice, bytes_to_vec, copy_bytes_into};
use crate::request::{Completion, Request};
use crate::topology::Neighborhood;
use crate::trace;
use crate::{Plain, Rank, Tag};

/// Receives one message per entry of a frozen source list (the sparse
/// sibling of the dense engines' `RecvFromEach`): `blocks[i]` comes
/// from `sources[i]`. Duplicate sources are filled in declaration
/// order — slot `i` must receive before a later slot of the same
/// source, because both ride the same FIFO `(source, tag)` stream.
pub(crate) struct NeighborRecv {
    tag: Tag,
    sources: Vec<Rank>,
    blocks: Vec<Option<Bytes>>,
    missing: usize,
}

impl NeighborRecv {
    pub(crate) fn new(tag: Tag, sources: Vec<Rank>) -> Self {
        let n = sources.len();
        NeighborRecv {
            tag,
            sources,
            blocks: (0..n).map(|_| None).collect(),
            missing: n,
        }
    }

    /// Re-arms for another round on the same frozen edge list (the
    /// persistent-cycle reset; no allocation).
    fn reset(&mut self) {
        self.missing = self.blocks.len();
        for b in &mut self.blocks {
            *b = None;
        }
    }

    /// Drains matching envelopes; `Ok(true)` once every slot is filled.
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<bool> {
        // Sources whose earliest unfilled slot did not complete this
        // pass: later duplicate slots must not steal their stream's
        // next message. Degrees are small; linear scan beats a set.
        let mut stalled: Vec<Rank> = Vec::new();
        for i in 0..self.blocks.len() {
            if self.blocks[i].is_some() {
                continue;
            }
            let src = self.sources[i];
            if stalled.contains(&src) {
                continue;
            }
            match recv_one(comm, src, self.tag, block)? {
                Some(payload) => {
                    self.blocks[i] = Some(payload);
                    self.missing -= 1;
                }
                None => stalled.push(src),
            }
        }
        Ok(self.missing == 0)
    }

    fn take_blocks(&mut self) -> Vec<Bytes> {
        self.blocks
            .iter_mut()
            .map(|b| b.take().expect("all blocks received"))
            .collect()
    }

    fn sources(&self, out: &mut Vec<(Rank, Tag)>) {
        for (i, b) in self.blocks.iter().enumerate() {
            if b.is_none() {
                out.push((self.sources[i], self.tag));
            }
        }
    }

    fn all_sources(&self, out: &mut Vec<(Rank, Tag)>) {
        for &s in &self.sources {
            out.push((s, self.tag));
        }
    }
}

/// [`CollEngine`] over a [`NeighborRecv`]: the body of
/// `ineighbor_allgatherv` / `ineighbor_alltoallv` and of the persistent
/// neighbor plans. Completes with [`Completion::Blocks`], one block per
/// in-neighbor in declaration order.
struct NeighborBlocksEngine {
    recv: NeighborRecv,
}

impl CollEngine for NeighborBlocksEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        if self.recv.advance(comm, block)? {
            Ok(Some(Completion::Blocks(self.recv.take_blocks())))
        } else {
            Ok(None)
        }
    }

    fn sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.sources(out);
    }

    fn rewind(&mut self, _own: Option<Bytes>) -> bool {
        // No home slot to re-seed: self-edges travel through the
        // mailbox like every other edge.
        self.recv.reset();
        true
    }

    fn all_sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.all_sources(out);
    }
}

fn neighbor_blocks_engine(tag: Tag, sources: Vec<Rank>) -> Box<dyn CollEngine> {
    Box::new(NeighborBlocksEngine {
        recv: NeighborRecv::new(tag, sources),
    })
}

/// Validates a per-neighbor counts/displacements layout.
fn check_neighbor_layout(
    what: &str,
    role: &str,
    counts: &[usize],
    displs: &[usize],
    buf_len: usize,
    degree: usize,
) -> Result<()> {
    if counts.len() != degree || displs.len() != degree {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: {} counts / {} displs for {degree} {role} neighbors",
            counts.len(),
            displs.len()
        )));
    }
    for k in 0..degree {
        let end = displs[k].checked_add(counts[k]).ok_or_else(|| {
            MpiError::InvalidLayout(format!("{what}: displacement overflow at {role} {k}"))
        })?;
        if end > buf_len {
            return Err(MpiError::InvalidLayout(format!(
                "{what}: {role} {k} block [{}..{end}) exceeds buffer length {buf_len}",
                displs[k]
            )));
        }
    }
    Ok(())
}

/// The sparse blocking exchange: `payloads[k]` to `destinations()[k]`,
/// one received block per `sources()[j]`, `out_degree` envelopes posted.
fn sparse_exchange<N: Neighborhood + ?Sized>(
    n: &N,
    tag: Tag,
    payloads: Vec<Bytes>,
) -> Result<Vec<Bytes>> {
    let comm = n.comm();
    debug_assert_eq!(payloads.len(), n.destinations().len());
    for (payload, &d) in payloads.into_iter().zip(n.destinations()) {
        send_internal(comm, d, tag, payload)?;
    }
    let mut recv = NeighborRecv::new(tag, n.sources().to_vec());
    recv.advance(comm, true)?;
    Ok(recv.take_blocks())
}

/// The dense fallback for near-complete graphs: one message to *every*
/// rank (the declared block for neighbors, an empty filler otherwise),
/// one receive from every rank. Same wire shape as the dense pairwise
/// `alltoallv`; requires duplicate-free neighbor lists
/// ([`Neighborhood::dense_eligible`]) so the per-rank slot is unique.
fn dense_exchange<N: Neighborhood + ?Sized>(
    n: &N,
    tag: Tag,
    payloads: Vec<Bytes>,
) -> Result<Vec<Bytes>> {
    let comm = n.comm();
    let p = comm.size();
    debug_assert!(n.dense_eligible());
    let mut per_rank: Vec<Bytes> = vec![Bytes::new(); p];
    for (payload, &d) in payloads.into_iter().zip(n.destinations()) {
        per_rank[d] = payload;
    }
    for (r, payload) in per_rank.into_iter().enumerate() {
        send_internal(comm, r, tag, payload)?;
    }
    let mut recv = NeighborRecv::new(tag, (0..p).collect());
    recv.advance(comm, true)?;
    let blocks = recv.take_blocks();
    Ok(n.sources().iter().map(|&s| blocks[s].clone()).collect())
}

/// Algorithm selection + dispatch for the blocking exchanges. The
/// choice consults only collectively-agreed inputs (`p`, `max_degree`,
/// `dense_eligible`, the communicator's tuning), so every rank takes
/// the same path — the wire-protocol invariant every tuning decision
/// obeys.
fn exchange<N: Neighborhood + ?Sized>(
    n: &N,
    name: &'static str,
    tag: Tag,
    payloads: Vec<Bytes>,
) -> Result<Vec<Bytes>> {
    let comm = n.comm();
    super::algos::model::tick(comm)?;
    let algo = super::algos::model::select_neighborhood(comm, n.dense_eligible(), n.max_degree());
    let total: usize = payloads.iter().map(Bytes::len).sum();
    let begun = super::algos::model::measure_begin(comm);
    let out = match algo {
        NeighborhoodAlgo::Sparse => {
            trace::instant(trace::cat::COLL, name, total as u64, n.max_degree() as u64);
            sparse_exchange(n, tag, payloads)?
        }
        NeighborhoodAlgo::Dense => {
            trace::instant(trace::cat::COLL, name, total as u64, comm.size() as u64);
            dense_exchange(n, tag, payloads)?
        }
    };
    super::algos::model::observe(
        comm,
        super::algos::model::neighborhood_class(algo),
        begun,
        n.max_degree() as f64,
    );
    Ok(out)
}

/// The neighborhood collectives, blanket-implemented for every
/// [`Neighborhood`] communicator
/// ([`CartComm`](crate::topology::CartComm),
/// [`DistGraphComm`](crate::topology::DistGraphComm)).
///
/// Block order is always *declaration order*: send block `k` goes to
/// `destinations()[k]`, received block `j` came from `sources()[j]`.
pub trait NeighborhoodColl: Neighborhood {
    /// Sends `data` to every out-neighbor and returns one received
    /// vector per in-neighbor (mirrors `MPI_Neighbor_allgather`; blocks
    /// may differ in size, so this is also the `v` variant). `s + r`
    /// copied bytes: one serialization regardless of out-degree.
    fn neighbor_allgather_vecs<T: Plain>(&self, data: &[T]) -> Result<Vec<Vec<T>>> {
        let comm = self.comm();
        comm.count_op("neighbor_allgather");
        let tag = comm.next_internal_tag();
        let payload = bytes_from_slice(data);
        let payloads = vec![payload; self.destinations().len()];
        let blocks = exchange(self, "neighbor_allgather", tag, payloads)?;
        Ok(blocks.iter().map(|b| bytes_to_vec(b)).collect())
    }

    /// Counted [`neighbor_allgather_vecs`](Self::neighbor_allgather_vecs)
    /// into a caller-owned buffer (mirrors `MPI_Neighbor_allgatherv`):
    /// the block from `sources()[j]` lands at
    /// `recv[recv_displs[j]..][..recv_counts[j]]`.
    fn neighbor_allgatherv_into<T: Plain>(
        &self,
        data: &[T],
        recv: &mut [T],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<()> {
        let comm = self.comm();
        comm.count_op("neighbor_allgatherv");
        // Tag first: the layout check is rank-local, and an erroring
        // rank must stay tag-aligned with peers whose layouts are fine.
        let tag = comm.next_internal_tag();
        check_neighbor_layout(
            "neighbor_allgatherv",
            "source",
            recv_counts,
            recv_displs,
            recv.len(),
            self.sources().len(),
        )?;
        let payload = bytes_from_slice(data);
        let payloads = vec![payload; self.destinations().len()];
        let blocks = exchange(self, "neighbor_allgatherv", tag, payloads)?;
        scatter_blocks(
            "neighbor_allgatherv",
            &blocks,
            recv,
            recv_counts,
            recv_displs,
        )
    }

    /// Sends `sends[k]` to `destinations()[k]` and returns one received
    /// vector per in-neighbor (mirrors `MPI_Neighbor_alltoall`;
    /// variable block sizes make it the `v` variant too).
    fn neighbor_alltoall_vecs<T: Plain>(&self, sends: &[Vec<T>]) -> Result<Vec<Vec<T>>> {
        let comm = self.comm();
        comm.count_op("neighbor_alltoall");
        let tag = comm.next_internal_tag();
        if sends.len() != self.destinations().len() {
            return Err(MpiError::InvalidLayout(format!(
                "neighbor_alltoall: {} send blocks for {} destination neighbors",
                sends.len(),
                self.destinations().len()
            )));
        }
        let payloads: Vec<Bytes> = sends.iter().map(|v| bytes_from_slice(v)).collect();
        let blocks = exchange(self, "neighbor_alltoall", tag, payloads)?;
        Ok(blocks.iter().map(|b| bytes_to_vec(b)).collect())
    }

    /// Counted personalized neighborhood exchange into caller-owned
    /// buffers (mirrors `MPI_Neighbor_alltoallv`): sends
    /// `send[send_displs[k]..][..send_counts[k]]` to
    /// `destinations()[k]`, receives the block from `sources()[j]` into
    /// `recv[recv_displs[j]..][..recv_counts[j]]`.
    #[allow(clippy::too_many_arguments)]
    fn neighbor_alltoallv_into<T: Plain>(
        &self,
        send: &[T],
        send_counts: &[usize],
        send_displs: &[usize],
        recv: &mut [T],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<()> {
        let comm = self.comm();
        comm.count_op("neighbor_alltoallv");
        // Tag first (see neighbor_allgatherv_into).
        let tag = comm.next_internal_tag();
        check_neighbor_layout(
            "neighbor_alltoallv",
            "destination",
            send_counts,
            send_displs,
            send.len(),
            self.destinations().len(),
        )?;
        check_neighbor_layout(
            "neighbor_alltoallv",
            "source",
            recv_counts,
            recv_displs,
            recv.len(),
            self.sources().len(),
        )?;
        let payloads: Vec<Bytes> = (0..self.destinations().len())
            .map(|k| bytes_from_slice(&send[send_displs[k]..send_displs[k] + send_counts[k]]))
            .collect();
        let blocks = exchange(self, "neighbor_alltoallv", tag, payloads)?;
        scatter_blocks(
            "neighbor_alltoallv",
            &blocks,
            recv,
            recv_counts,
            recv_displs,
        )
    }

    /// Nonblocking [`neighbor_allgather_vecs`](Self::neighbor_allgather_vecs):
    /// all `out_degree` sends are posted eagerly before the call
    /// returns; the [`Request`] completes with [`Completion::Blocks`],
    /// one block per in-neighbor in declaration order. Parks in mixed
    /// [`RequestSet`](crate::RequestSet)s through the engine's
    /// `sources()` hook like every other `i*` collective.
    fn ineighbor_allgatherv<'c, T: Plain>(&'c self, data: &[T]) -> Result<Request<'c>> {
        let comm = self.comm();
        comm.count_op("ineighbor_allgather");
        let tag = comm.next_internal_tag();
        trace::instant(
            trace::cat::COLL,
            "ineighbor_allgather",
            std::mem::size_of_val(data) as u64,
            self.max_degree() as u64,
        );
        let payload = bytes_from_slice(data);
        for &d in self.destinations() {
            send_internal(comm, d, tag, payload.clone())?;
        }
        Ok(Request::collective(
            comm,
            neighbor_blocks_engine(tag, self.sources().to_vec()),
        ))
    }

    /// Nonblocking counted neighborhood exchange: `data` holds the
    /// per-destination blocks contiguously in declaration order,
    /// `counts[k]` elements for `destinations()[k]`. Packs once, slices
    /// a refcount per neighbor; completes with [`Completion::Blocks`]
    /// in source declaration order.
    fn ineighbor_alltoallv<'c, T: Plain>(
        &'c self,
        data: &[T],
        counts: &[usize],
    ) -> Result<Request<'c>> {
        let comm = self.comm();
        comm.count_op("ineighbor_alltoallv");
        let tag = comm.next_internal_tag();
        let ranges = neighbor_byte_ranges::<T>("ineighbor_alltoallv", counts, self, data.len())?;
        trace::instant(
            trace::cat::COLL,
            "ineighbor_alltoallv",
            std::mem::size_of_val(data) as u64,
            self.max_degree() as u64,
        );
        let packed = bytes_from_slice(data);
        for (range, &d) in ranges.into_iter().zip(self.destinations()) {
            send_internal(comm, d, tag, packed.slice(range))?;
        }
        Ok(Request::collective(
            comm,
            neighbor_blocks_engine(tag, self.sources().to_vec()),
        ))
    }

    /// Persistent [`ineighbor_allgatherv`](Self::ineighbor_allgatherv)
    /// (the `MPI_Neighbor_allgather_init` shape): the edge schedule,
    /// internal tag, receive engine, and one standing wake-only
    /// registration per in-edge are frozen here; a stencil's steady
    /// state is `start`/`wait` only — zero per-cycle setup, pinned by
    /// the flat `notify_registrations` counter.
    fn neighbor_allgatherv_init<'c, T: Plain>(
        &'c self,
        data: &[T],
    ) -> Result<PersistentRequest<'c>> {
        let comm = self.comm();
        comm.count_op("neighbor_allgather_init");
        let tag = comm.next_internal_tag();
        trace::instant(
            trace::cat::COLL,
            "neighbor_allgather_init",
            std::mem::size_of_val(data) as u64,
            self.max_degree() as u64,
        );
        let own = bytes_from_slice(data);
        let plan = CollPlan {
            sends: CollSends::ToEach {
                tag,
                dests: self.destinations().to_vec(),
            },
            own: OwnSpec::None,
            body: CollBody::Engine(neighbor_blocks_engine(tag, self.sources().to_vec())),
        };
        comm.persistent_coll(plan, Some(own))
    }

    /// Persistent [`ineighbor_alltoallv`](Self::ineighbor_alltoallv)
    /// (the `MPI_Neighbor_alltoallv_init` shape). The per-destination
    /// counts — and the byte ranges sliced out of the packed payload —
    /// are frozen at init;
    /// [`set_payload`](PersistentRequest::set_payload) enforces the
    /// frozen total.
    fn neighbor_alltoallv_init<'c, T: Plain>(
        &'c self,
        data: &[T],
        counts: &[usize],
    ) -> Result<PersistentRequest<'c>> {
        let comm = self.comm();
        comm.count_op("neighbor_alltoallv_init");
        let tag = comm.next_internal_tag();
        let ranges =
            neighbor_byte_ranges::<T>("neighbor_alltoallv_init", counts, self, data.len())?;
        trace::instant(
            trace::cat::COLL,
            "neighbor_alltoallv_init",
            std::mem::size_of_val(data) as u64,
            self.max_degree() as u64,
        );
        let plan = CollPlan {
            sends: CollSends::SlicedTo {
                tag,
                dests: self.destinations().to_vec(),
                ranges,
            },
            own: OwnSpec::None,
            body: CollBody::Engine(neighbor_blocks_engine(tag, self.sources().to_vec())),
        };
        comm.persistent_coll(plan, Some(bytes_from_slice(data)))
    }
}

impl<N: Neighborhood + ?Sized> NeighborhoodColl for N {}

/// Contiguous per-destination byte ranges from element counts.
fn neighbor_byte_ranges<T: Plain>(
    what: &str,
    counts: &[usize],
    n: &(impl Neighborhood + ?Sized),
    data_len: usize,
) -> Result<Vec<std::ops::Range<usize>>> {
    let degree = n.destinations().len();
    if counts.len() != degree {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: {} counts for {degree} destination neighbors",
            counts.len()
        )));
    }
    let total: usize = counts.iter().sum();
    if total != data_len {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: send buffer holds {data_len} elements but counts sum to {total}"
        )));
    }
    let elem = std::mem::size_of::<T>();
    let mut ranges = Vec::with_capacity(degree);
    let mut offset = 0usize;
    for &c in counts {
        ranges.push(offset * elem..(offset + c) * elem);
        offset += c;
    }
    Ok(ranges)
}

/// Copies received blocks into a counted user buffer, validating each
/// block's size against the declared count.
fn scatter_blocks<T: Plain>(
    what: &str,
    blocks: &[Bytes],
    recv: &mut [T],
    counts: &[usize],
    displs: &[usize],
) -> Result<()> {
    let elem = std::mem::size_of::<T>();
    for (j, block) in blocks.iter().enumerate() {
        if block.len() != counts[j] * elem {
            return Err(MpiError::InvalidLayout(format!(
                "{what}: source {j} sent {} bytes, expected {} ({} elements)",
                block.len(),
                counts[j] * elem,
                counts[j]
            )));
        }
        copy_bytes_into(block, &mut recv[displs[j]..displs[j] + counts[j]]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RequestSet, Universe};

    /// The headline claim, pinned by the envelope meter: K rounds on a
    /// directed ring (in-degree 1) grow `envelopes_posted` by exactly
    /// K per rank, where the forced-dense path grows it by K·p.
    #[test]
    fn sparse_exchange_posts_degree_envelopes() {
        // Mid-run counter snapshots race with run-ahead peers (a barrier
        // only fences messages *to* this rank, not a fast left neighbor
        // already pushing round payloads), so measure differentially:
        // run the same deterministic program twice, reading each rank's
        // counter at closure end — by then every envelope ever destined
        // to it has been pushed — and subtract a zero-round baseline.
        fn ring_envelopes(rounds: usize, algo: NeighborhoodAlgo) -> Vec<u64> {
            Universe::run(8, move |comm| {
                let p = comm.size();
                let right = (comm.rank() + 1) % p;
                let left = (comm.rank() + p - 1) % p;
                let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
                let _t = g
                    .comm()
                    .tuning_guard(Some(crate::CollTuning::default().neighborhood(algo)));
                for _ in 0..rounds {
                    g.neighbor_alltoall_vecs(&[vec![comm.rank() as u32]])
                        .unwrap();
                }
                comm.mailbox_stats().envelopes_posted
            })
        }
        let p = 8u64;
        for algo in [NeighborhoodAlgo::Sparse, NeighborhoodAlgo::Dense] {
            let base = ring_envelopes(0, algo);
            let run = ring_envelopes(5, algo);
            let per_round: u64 = match algo {
                // in-degree 1 on the directed ring
                NeighborhoodAlgo::Sparse => 1,
                // dense posts one message per rank, self included
                NeighborhoodAlgo::Dense => p,
            };
            for (rank, (b, r)) in base.iter().zip(&run).enumerate() {
                assert_eq!(r - b, 5 * per_round, "{algo:?} rank {rank}");
            }
        }
    }

    /// Forced sparse and forced dense must be observationally identical
    /// on a dense-eligible topology.
    #[test]
    fn dense_route_matches_sparse() {
        Universe::run(5, |comm| {
            let p = comm.size();
            // Each rank talks to rank+1 and rank+2 (mod p).
            let dests: Vec<usize> = vec![(comm.rank() + 1) % p, (comm.rank() + 2) % p];
            let srcs: Vec<usize> = vec![(comm.rank() + p - 1) % p, (comm.rank() + p - 2) % p];
            let g = comm.create_dist_graph_adjacent(&srcs, &dests).unwrap();
            let sends: Vec<Vec<u64>> = (0..2)
                .map(|k| vec![comm.rank() as u64 * 10 + k as u64; k + 1])
                .collect();
            let sparse = {
                let _t = g.comm().tuning_guard(Some(
                    crate::CollTuning::default().neighborhood(NeighborhoodAlgo::Sparse),
                ));
                g.neighbor_alltoall_vecs(&sends).unwrap()
            };
            let dense = {
                let _t = g.comm().tuning_guard(Some(
                    crate::CollTuning::default().neighborhood(NeighborhoodAlgo::Dense),
                ));
                g.neighbor_alltoall_vecs(&sends).unwrap()
            };
            assert_eq!(sparse, dense);
            // Sanity: block j came from sources[j] with k = position.
            for (j, &s) in g.sources().iter().enumerate() {
                assert_eq!(sparse[j][0] / 10, s as u64);
            }
        });
    }

    /// Duplicate neighbors (periodic extent-2 dimension) are never
    /// dense-eligible and resolve by FIFO declaration order.
    #[test]
    fn duplicate_neighbors_fill_in_declaration_order() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            // Both directions of an extent-2 periodic ring: the same
            // peer appears twice.
            let g = comm
                .create_dist_graph_adjacent(&[peer, peer], &[peer, peer])
                .unwrap();
            assert!(!g.dense_eligible());
            let sends = vec![
                vec![10u32 + comm.rank() as u32],
                vec![20 + comm.rank() as u32],
            ];
            let got = g.neighbor_alltoall_vecs(&sends).unwrap();
            // FIFO: first declared slot gets the first message.
            assert_eq!(got, vec![vec![10 + peer as u32], vec![20 + peer as u32]]);
        });
    }

    #[test]
    fn allgatherv_into_with_counts() {
        Universe::run(4, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm
                .create_dist_graph_adjacent(&[left, right], &[left, right])
                .unwrap();
            // Every rank contributes rank+1 elements.
            let data: Vec<u64> = vec![comm.rank() as u64; comm.rank() + 1];
            let counts = [left + 1, right + 1];
            let displs = [0, left + 1];
            let mut recv = vec![u64::MAX; left + 1 + right + 1];
            g.neighbor_allgatherv_into(&data, &mut recv, &counts, &displs)
                .unwrap();
            let mut expected = vec![left as u64; left + 1];
            expected.extend(vec![right as u64; right + 1]);
            assert_eq!(recv, expected);

            // Wrong counts surface as a layout error on the receiver.
            let bad = g.neighbor_allgatherv_into(&data, &mut recv, &[1, 1], &[0, 1]);
            assert!(matches!(bad, Err(MpiError::InvalidLayout(_))));
        });
    }

    /// `i*` engines park in mixed RequestSets: a neighborhood gather
    /// and a point-to-point receive complete under one `wait_all`.
    #[test]
    fn ineighbor_parks_in_mixed_request_set() {
        Universe::run(4, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            // P2p traffic rides the parent communicator, neighborhood
            // traffic the topology's private dup — no interference.
            comm.send(&[comm.rank() as u32 + 100], right, 3).unwrap();
            let mut set = RequestSet::new();
            set.push(g.ineighbor_allgatherv(&[comm.rank() as u32]).unwrap());
            set.push(comm.irecv(left, 3));
            let mut done = set.wait_all().unwrap();
            assert_eq!(done.len(), 2);
            let (v, st) = done.pop().unwrap().into_vec::<u32>().unwrap();
            assert_eq!(v, vec![left as u32 + 100]);
            assert_eq!(st.source, left);
            let blocks = done.pop().unwrap().into_blocks().unwrap();
            assert_eq!(bytes_to_vec::<u32>(&blocks[0]), vec![left as u32]);
        });
    }

    #[test]
    fn ineighbor_alltoallv_slices_packed_payload() {
        Universe::run(3, |comm| {
            let p = comm.size();
            let others: Vec<usize> = (0..p).filter(|&r| r != comm.rank()).collect();
            let g = comm.create_dist_graph_adjacent(&others, &others).unwrap();
            // k+1 elements for the k-th destination, packed contiguously.
            let counts: Vec<usize> = (0..others.len()).map(|k| k + 1).collect();
            let data: Vec<u32> = (0..others.len())
                .flat_map(|k| vec![comm.rank() as u32 * 100 + k as u32; k + 1])
                .collect();
            let blocks = g
                .ineighbor_alltoallv(&data, &counts)
                .unwrap()
                .wait()
                .unwrap()
                .into_blocks()
                .unwrap();
            for (j, &s) in g.sources().iter().enumerate() {
                // Which position are we in s's destination list?
                let k = (0..p)
                    .filter(|&r| r != s)
                    .position(|r| r == comm.rank())
                    .unwrap();
                assert_eq!(
                    bytes_to_vec::<u32>(&blocks[j]),
                    vec![s as u32 * 100 + k as u32; k + 1]
                );
            }
        });
    }

    /// Persistent neighbor exchange: frozen plan, fresh payloads, and —
    /// the PR 7 invariant carried over — zero waiter registrations in
    /// the steady state.
    #[test]
    fn persistent_neighbor_alltoallv_cycles() {
        Universe::run(4, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm
                .create_dist_graph_adjacent(&[left, right], &[left, right])
                .unwrap();
            let mut req = g.neighbor_alltoallv_init(&[0u32, 0], &[1, 1]).unwrap();
            // Warm-up cycle, then pin the steady state.
            req.start().unwrap();
            req.wait().unwrap();
            comm.barrier().unwrap();
            let before = comm.mailbox_stats().notify_registrations;
            for cycle in 1..=10u32 {
                req.set_data(&[
                    comm.rank() as u32 + 1000 * cycle,
                    comm.rank() as u32 + 2000 * cycle,
                ])
                .unwrap();
                req.start().unwrap();
                let blocks = req.wait().unwrap().into_blocks().unwrap();
                // left sent us its block for its *right* neighbor
                // (position 1 in its packed payload), right its block
                // for its left (position 0).
                assert_eq!(
                    bytes_to_vec::<u32>(&blocks[0]),
                    vec![left as u32 + 2000 * cycle]
                );
                assert_eq!(
                    bytes_to_vec::<u32>(&blocks[1]),
                    vec![right as u32 + 1000 * cycle]
                );
            }
            assert_eq!(
                comm.mailbox_stats().notify_registrations,
                before,
                "steady-state cycles must not touch the posted queue"
            );
            assert_eq!(req.cycles(), 11);
        });
    }

    #[test]
    fn persistent_neighbor_allgatherv_cycles() {
        Universe::run(3, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            let mut req = g.neighbor_allgatherv_init(&[0u64]).unwrap();
            for cycle in 0..4u64 {
                req.set_data(&[comm.rank() as u64 + 10 * cycle]).unwrap();
                req.start().unwrap();
                let blocks = req.wait().unwrap().into_blocks().unwrap();
                assert_eq!(blocks.len(), 1);
                assert_eq!(
                    bytes_to_vec::<u64>(&blocks[0]),
                    vec![left as u64 + 10 * cycle]
                );
            }
        });
    }

    #[test]
    fn persistent_frozen_counts_enforced() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            let g = comm.create_dist_graph_adjacent(&[peer], &[peer]).unwrap();
            let mut req = g.neighbor_alltoallv_init(&[1u32, 2], &[2]).unwrap();
            assert!(matches!(
                req.set_data(&[1u32]).unwrap_err(),
                MpiError::InvalidLayout(_)
            ));
            req.start().unwrap();
            let blocks = req.wait().unwrap().into_blocks().unwrap();
            assert_eq!(bytes_to_vec::<u32>(&blocks[0]), vec![1, 2]);
        });
    }

    /// The zero-copy bill, pinned (PR 2/3 discipline): one serialization
    /// per call regardless of out-degree, one materialization per
    /// received block — `s + r`, never `s·degree`.
    #[cfg(feature = "copy-metrics")]
    #[test]
    fn copy_bill_is_s_plus_r_independent_of_degree() {
        Universe::run(4, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            // Two out-edges, two in-edges.
            let g = comm
                .create_dist_graph_adjacent(&[left, right], &[left, right])
                .unwrap();
            comm.barrier().unwrap();
            let data = vec![7u64; 100]; // s = 800 bytes
            let before = crate::metrics::snapshot();
            let got = g.neighbor_allgather_vecs(&data).unwrap();
            let delta = crate::metrics::snapshot().since(&before);
            assert_eq!(got.len(), 2);
            // s = 800 serialized once (fan-out to 2 dests is refcount
            // clones), r = 2 * 800 materialized once each.
            assert_eq!(delta.bytes_copied, 800 + 1600);
        });
    }

    #[test]
    fn empty_neighborhood_completes_immediately() {
        Universe::run(2, |comm| {
            let g = comm.create_dist_graph_adjacent(&[], &[]).unwrap();
            assert!(g.neighbor_allgather_vecs(&[1u8]).unwrap().is_empty());
            let c = g.ineighbor_allgatherv(&[1u8]).unwrap().wait().unwrap();
            assert!(c.into_blocks().unwrap().is_empty());
        });
    }
}
