//! Non-blocking collectives: resumable state machines behind [`Request`].
//!
//! Each `i*` collective allocates its internal tag(s) at call time (so
//! ranks must start non-blocking collectives in the same order, the MPI
//! rule), posts every send it can *eagerly* (the substrate transport is
//! eager, so sends never block), and packages the remaining receives into
//! a [`CollEngine`] state machine stored inside the returned [`Request`].
//! `Request::test` advances the machine without blocking;
//! `Request::wait` drives it to completion — MPI's progress-on-call
//! semantics. Communication therefore genuinely overlaps local compute:
//! all outgoing traffic is in flight from the moment the call returns,
//! and incoming traffic is drained whenever the caller polls.
//!
//! Algorithms (startups per rank; copies with `s` = bytes sent by the
//! rank, `r` = bytes of its result — a payload is serialized at most
//! once at its origin and materialized once per destination; forwarding
//! and fan-out are refcount clones, and the `*_bytes` entry points adopt
//! owned buffers with **zero** call-time copies):
//!
//! | operation            | algorithm                         | startups      | copies per rank    |
//! |----------------------|-----------------------------------|---------------|--------------------|
//! | `ibcast`             | binomial tree, forward on poll    | <= log2 p     | root: <= s; other: r |
//! | `igather(v)`         | flat tree (linear at root)        | 1 (root: p-1) | s + r              |
//! | `iscatter(v)`        | flat tree (eager, pack-once root) | p-1 (other: 1)| root: s; other: r  |
//! | `iallgather(v)`      | flat dissemination                | p-1           | <= s, + r at wait  |
//! | `iallgather` (model/forced) | recursive doubling, resumable rounds | log2 p | s·(p-2) + r |
//! | `iallgather` (model/forced) | Bruck, resumable rounds     | ceil(log2 p)  | <= s·(p-1) + r     |
//! | `ialltoall(v)`       | pairwise eager, pack-once + slice | p-1           | <= s, + r at wait  |
//! | `ialltoall` (model/forced) | Bruck, resumable rounds     | ceil(log2 p)  | s + r + repacks    |
//! | `ireduce`            | flat gather + in-place ordered fold | 1 (root: p-1) | s (root: r)      |
//! | `ireduce` (model/forced) | binomial tree, in-place folds | <= log2 p     | s (root: r)        |
//! | `iallreduce`         | flat gather + fold + binomial bcast | mixed       | s (folds/fan-out free) |
//! | `iallreduce` (model/forced)| binomial tree reduce + binomial bcast | <= 2 log2 p | s (folds/fan-out free) |
//!
//! The flat algorithms trade the blocking collectives' latency-optimal
//! trees for *immediacy*: every byte a rank contributes is on the wire
//! before the call returns, which is what makes communication/computation
//! overlap (§III-E of the paper, extended to collectives) effective.
//! They therefore stay the *static* `Auto` choice of the communicator's
//! [`CollTuning`](super::algos::CollTuning); the tree/Bruck/doubling
//! engines (resumable state machines like everything here) engage when
//! the tuning *forces* them — or, with
//! [`CollTuning::self_tuning`](super::algos::CollTuning::self_tuning)
//! enabled, when the warm measured cost model predicts that the round
//! structure wins even after charging every round one extra startup for
//! lost overlap (the overlap bias of
//! [`ModelConfig::overlap_alpha_pct`](super::algos::ModelConfig)).
//! Selection at initiation reads only the last *published* model
//! snapshot — it never synchronizes, because a non-blocking initiation
//! must complete locally (MPI's local-completion rule).
//!
//! Completion payloads: single-result operations complete with
//! [`Completion::Message`]; per-rank-block operations (`igatherv`,
//! `iallgatherv`, `ialltoallv`) complete with [`Completion::Blocks`]
//! holding one [`Bytes`] per rank in rank order — the binding layer
//! derives receive counts from the block lengths without any extra
//! count exchange.

use bytes::Bytes;

use super::algos::{
    self, alltoall as bruck_algo, fold_bytes_right, AllgatherAlgo, AlltoallAlgo, ReduceAlgo,
};
use super::send_internal;
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::message::{Src, Status, TagSel};
use crate::op::ReduceOp;
use crate::plain::{bytes_from_slice, bytes_from_vec, bytes_into_vec, extend_vec_from_bytes};
use crate::request::{Completion, Request};
use crate::{Plain, Rank, Tag};

/// A resumable non-blocking collective. `advance(block = false)` makes as
/// much progress as possible without blocking; `advance(block = true)`
/// runs to completion. Returns `Some` exactly once.
pub(crate) trait CollEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>>;

    /// The registration hook of the completion subsystem
    /// ([`crate::completion`]): appends the `(source rank, tag)` pairs
    /// whose arrival could let `advance` make progress *right now*.
    /// Reporting none means the engine is not blocked on any receive
    /// (about to complete) and must not be parked on. Called only after
    /// a non-blocking `advance`, so call-time sends have been posted.
    fn sources(&self, comm: &Comm, out: &mut Vec<(Rank, Tag)>);

    /// Resets a completed engine for another cycle on the *same* frozen
    /// tag schedule (the persistent-request hook, [`crate::persistent`]):
    /// `own` re-seeds this rank's contribution where the engine carries
    /// one. Returns `false` for engines that do not support restart —
    /// persistent init only builds rewindable engines, so the default
    /// stays honest for the one-shot ones.
    fn rewind(&mut self, _own: Option<Bytes>) -> bool {
        false
    }

    /// The full, frozen set of `(source rank, tag)` pairs this engine
    /// can ever receive from across a cycle (unlike [`Self::sources`],
    /// which reports only the *currently* blocking ones). Persistent
    /// init registers a standing waiter on each, once. Engines that do
    /// not support restart report none.
    fn all_sources(&self, _comm: &Comm, _out: &mut Vec<(Rank, Tag)>) {}
}

/// Receives one message from every peer rank (everything except
/// `blocks[i].is_some()` holes pre-filled at creation), collecting
/// payloads in rank order.
struct RecvFromEach {
    tag: Tag,
    blocks: Vec<Option<Bytes>>,
    missing: usize,
    /// This rank's slot (pre-filled when the rank contributes in-band);
    /// remembered so a persistent rewind can re-seed it.
    home: usize,
}

/// One receive attempt from `src` on `tag`: blocking when `block` is
/// set, otherwise a single poll that still surfaces peer failure and
/// revocation. The one receive primitive every engine drives. Both
/// sides route through the matching engine ([`crate::mailbox`]): the
/// poll is an O(1) `(source, tag)` index hit and the blocking wait a
/// targeted per-waiter wakeup, so drain loops stay cheap even when
/// other collectives' traffic is piled up at the rank.
pub(crate) fn recv_one(comm: &Comm, src: Rank, tag: Tag, block: bool) -> Result<Option<Bytes>> {
    // Every collective engine phase funnels through here, so a planned
    // crash can land inside any algorithm round (e.g. mid-Rabenseifner).
    crate::fault::point("coll/phase");
    if block {
        let env = comm.recv_envelope(Src::Rank(src), TagSel::Is(tag))?;
        return Ok(Some(env.payload));
    }
    match comm.try_recv_envelope(Src::Rank(src), TagSel::Is(tag)) {
        Some(env) => Ok(Some(env.payload)),
        None => match comm.wait_interrupted(Src::Rank(src)) {
            Some(err) => Err(err),
            None => Ok(None),
        },
    }
}

impl RecvFromEach {
    /// `own` pre-fills this rank's slot (None for rooted gathers where
    /// the root contributes in-band).
    fn new(comm: &Comm, tag: Tag, own: Option<Bytes>) -> Self {
        let p = comm.size();
        let mut blocks: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        let mut missing = p;
        let home = comm.rank();
        if let Some(own) = own {
            blocks[home] = Some(own);
            missing -= 1;
        }
        RecvFromEach {
            tag,
            blocks,
            missing,
            home,
        }
    }

    /// Re-arms for another round of receives on the same tag, reusing
    /// the slot vector (no allocation): the persistent-cycle reset.
    fn reset(&mut self, own: Option<Bytes>) {
        self.missing = self.blocks.len();
        for b in &mut self.blocks {
            *b = None;
        }
        if let Some(own) = own {
            self.blocks[self.home] = Some(own);
            self.missing -= 1;
        }
    }

    /// Drains matching envelopes; `Ok(true)` once every slot is filled.
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<bool> {
        for r in 0..self.blocks.len() {
            if self.blocks[r].is_some() {
                continue;
            }
            if let Some(payload) = recv_one(comm, r, self.tag, block)? {
                self.blocks[r] = Some(payload);
                self.missing -= 1;
            }
        }
        Ok(self.missing == 0)
    }

    fn take_blocks(&mut self) -> Vec<Bytes> {
        self.blocks
            .iter_mut()
            .map(|b| b.take().expect("all blocks received"))
            .collect()
    }

    /// Every unfilled slot is a source whose arrival makes progress.
    fn sources(&self, out: &mut Vec<(Rank, Tag)>) {
        for (r, b) in self.blocks.iter().enumerate() {
            if b.is_none() {
                out.push((r, self.tag));
            }
        }
    }

    /// Every peer slot, filled or not — the frozen per-cycle source set
    /// a persistent registration covers.
    fn all_sources(&self, out: &mut Vec<(Rank, Tag)>) {
        for r in 0..self.blocks.len() {
            if r != self.home {
                out.push((r, self.tag));
            }
        }
    }
}

pub(crate) fn message_completion(source: Rank, tag: Tag, payload: Bytes) -> Completion {
    let status = Status {
        source,
        tag,
        bytes: payload.len(),
    };
    Completion::Message(payload, status)
}

// ---------------------------------------------------------------------------
// Binomial-tree broadcast machinery (shared with the blocking bcast)
// ---------------------------------------------------------------------------

use super::bcast::bcast_forward;

/// Non-root side of a binomial broadcast: waits for the parent, forwards
/// to children on receipt.
struct BcastRecv {
    tag: Tag,
    root: Rank,
}

impl BcastRecv {
    /// This rank's parent in the binomial tree rooted at `self.root`.
    fn parent(&self, comm: &Comm) -> Rank {
        let p = comm.size();
        let vrank = (comm.rank() + p - self.root) % p;
        debug_assert!(vrank != 0, "the root never waits for a bcast parent");
        let parent_v = vrank & (vrank - 1);
        (parent_v + self.root) % p
    }

    /// `Ok(Some(payload))` once the parent's message arrived (children
    /// already forwarded to).
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Bytes>> {
        let p = comm.size();
        let vrank = (comm.rank() + p - self.root) % p;
        let parent = self.parent(comm);
        let Some(payload) = recv_one(comm, parent, self.tag, block)? else {
            return Ok(None);
        };
        bcast_forward(comm, vrank, self.root, self.tag, &payload)?;
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------------

/// Already finished at creation (eager sends only, or `p == 1`).
struct ReadyEngine(Option<Completion>);

impl CollEngine for ReadyEngine {
    fn advance(&mut self, _comm: &Comm, _block: bool) -> Result<Option<Completion>> {
        Ok(Some(
            self.0.take().expect("ready engine polled after completion"),
        ))
    }

    fn sources(&self, _comm: &Comm, _out: &mut Vec<(Rank, Tag)>) {
        // Complete on creation: nothing to park on.
    }
}

/// Non-root `ibcast` / phase 2 of non-root `iallreduce`.
struct BcastRecvEngine {
    recv: BcastRecv,
    root: Rank,
}

impl CollEngine for BcastRecvEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        match self.recv.advance(comm, block)? {
            Some(payload) => Ok(Some(message_completion(self.root, self.recv.tag, payload))),
            None => Ok(None),
        }
    }

    fn sources(&self, comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        out.push((self.recv.parent(comm), self.recv.tag));
    }

    fn rewind(&mut self, _own: Option<Bytes>) -> bool {
        // Stateless between cycles: every field is frozen config.
        true
    }

    fn all_sources(&self, comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        out.push((self.recv.parent(comm), self.recv.tag));
    }
}

/// Collects one block per rank and completes with
/// [`Completion::Blocks`]: the root side of `igather(v)` and every rank
/// of `iallgather(v)` / `ialltoall(v)` (whose sends were all posted
/// eagerly at call time).
struct BlocksEngine {
    recv: RecvFromEach,
}

impl CollEngine for BlocksEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        if self.recv.advance(comm, block)? {
            Ok(Some(Completion::Blocks(self.recv.take_blocks())))
        } else {
            Ok(None)
        }
    }

    fn sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.sources(out);
    }

    fn rewind(&mut self, own: Option<Bytes>) -> bool {
        self.recv.reset(own);
        true
    }

    fn all_sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.all_sources(out);
    }
}

/// Non-root side of `iscatter(v)`: receive this rank's block from the
/// root.
struct ScatterRecvEngine {
    tag: Tag,
    root: Rank,
}

impl CollEngine for ScatterRecvEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        let payload = recv_one(comm, self.root, self.tag, block)?;
        Ok(payload.map(|p| message_completion(self.root, self.tag, p)))
    }

    fn sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        out.push((self.root, self.tag));
    }
}

/// Root side of `ireduce`: flat gather, then a strictly rank-ordered fold
/// (correct for non-commutative operations by construction).
struct ReduceRootEngine {
    recv: RecvFromEach,
    fold: Box<dyn FnMut(Vec<Bytes>) -> Result<Bytes>>,
    source: Rank,
}

impl CollEngine for ReduceRootEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        if self.recv.advance(comm, block)? {
            let folded = (self.fold)(self.recv.take_blocks())?;
            Ok(Some(message_completion(self.source, self.recv.tag, folded)))
        } else {
            Ok(None)
        }
    }

    fn sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.sources(out);
    }
}

/// Rank 0 of `iallreduce`: gather + fold, then broadcast the result down
/// the binomial tree.
struct AllreduceRootEngine {
    recv: RecvFromEach,
    fold: Box<dyn FnMut(Vec<Bytes>) -> Result<Bytes>>,
    bcast_tag: Tag,
}

impl CollEngine for AllreduceRootEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        if self.recv.advance(comm, block)? {
            let folded = (self.fold)(self.recv.take_blocks())?;
            bcast_forward(comm, 0, 0, self.bcast_tag, &folded)?;
            Ok(Some(message_completion(0, self.bcast_tag, folded)))
        } else {
            Ok(None)
        }
    }

    fn sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.sources(out);
    }

    fn rewind(&mut self, own: Option<Bytes>) -> bool {
        // The fold closure is `FnMut` — reusable across cycles.
        self.recv.reset(own);
        true
    }

    fn all_sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        self.recv.all_sources(out);
    }
}

/// What a [`TreeReduceEngine`] does once its subtree is folded and (for
/// non-roots) forwarded to the parent.
enum AfterTreeReduce {
    /// `ireduce` non-root: complete with [`Completion::Done`].
    Done,
    /// `ireduce` root: complete with the folded payload.
    Complete,
    /// `iallreduce` root (rank 0): forward down the binomial broadcast
    /// tree, then complete with the payload.
    BcastSend(Tag),
    /// `iallreduce` non-root: wait for the broadcast of the result.
    BcastRecvPhase(Tag),
}

/// Resumable binomial-tree reduction (commutative operations): receive
/// from each binomial child as messages arrive, fold the delivered
/// payload in place, then forward the subtree result to the parent.
/// Selected by forcing [`ReduceAlgo::BinomialTree`]; the flat engines
/// remain the overlap-friendly default.
struct TreeReduceEngine<T: Plain, O: ReduceOp<T>> {
    tag: Tag,
    root: Rank,
    op: O,
    /// This rank's contribution; folds lazily into `acc` so leaves
    /// forward it without materializing.
    own: Option<Bytes>,
    acc: Option<Vec<T>>,
    /// Children (actual ranks) still to be received from.
    pending: Vec<Rank>,
    parent: Option<Rank>,
    after: AfterTreeReduce,
    /// Engaged for the broadcast phase of a non-root `iallreduce`.
    bcast: Option<BcastRecv>,
    sent: bool,
}

impl<T: Plain, O: ReduceOp<T>> TreeReduceEngine<T, O> {
    fn new(comm: &Comm, tag: Tag, own: Bytes, op: O, root: Rank, after: AfterTreeReduce) -> Self {
        let p = comm.size();
        let vrank = (comm.rank() + p - root) % p;
        let (children, parent) = algos::reduce::binomial_children(vrank, p);
        TreeReduceEngine {
            tag,
            root,
            op,
            own: Some(own),
            acc: None,
            pending: children.iter().map(|&c| (c + root) % p).collect(),
            parent: parent.map(|pv| (pv + root) % p),
            after,
            bcast: None,
            sent: false,
        }
    }

    /// The folded subtree contribution as a payload (a leaf's own block
    /// moves out untouched; an inner node's accumulator moves in
    /// without a serialization copy).
    fn take_payload(&mut self) -> Bytes {
        match self.acc.take() {
            Some(acc) => bytes_from_vec(acc),
            None => self.own.take().expect("payload taken once"),
        }
    }
}

impl<T: Plain, O: ReduceOp<T>> CollEngine for TreeReduceEngine<T, O> {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        if let Some(bcast) = &mut self.bcast {
            return Ok(bcast
                .advance(comm, block)?
                .map(|payload| message_completion(0, bcast.tag, payload)));
        }
        while let Some(&child) = self.pending.last() {
            let Some(theirs) = recv_one(comm, child, self.tag, block)? else {
                return Ok(None);
            };
            self.pending.pop();
            let acc = match &mut self.acc {
                Some(acc) => acc,
                None => {
                    let own = self.own.take().expect("own block present before folding");
                    self.acc.insert(crate::plain::bytes_to_vec(&own))
                }
            };
            if theirs.len() != std::mem::size_of_val(acc.as_slice()) {
                return Err(MpiError::InvalidLayout(format!(
                    "ireduce: rank {child} contributed {} payload bytes, expected {}",
                    theirs.len(),
                    std::mem::size_of_val(acc.as_slice())
                )));
            }
            fold_bytes_right(acc, &theirs, &self.op)?;
        }
        debug_assert!(!self.sent, "engine polled after completion");
        self.sent = true;
        let payload = self.take_payload();
        if let Some(parent) = self.parent {
            send_internal(comm, parent, self.tag, payload.clone())?;
        }
        match self.after {
            AfterTreeReduce::Done => Ok(Some(Completion::Done)),
            AfterTreeReduce::Complete => Ok(Some(message_completion(self.root, self.tag, payload))),
            AfterTreeReduce::BcastSend(bcast_tag) => {
                bcast_forward(comm, 0, 0, bcast_tag, &payload)?;
                Ok(Some(message_completion(0, bcast_tag, payload)))
            }
            AfterTreeReduce::BcastRecvPhase(bcast_tag) => {
                let mut recv = BcastRecv {
                    tag: bcast_tag,
                    root: 0,
                };
                let done = recv
                    .advance(comm, block)?
                    .map(|p| message_completion(0, bcast_tag, p));
                self.bcast = Some(recv);
                Ok(done)
            }
        }
    }

    fn sources(&self, comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        if let Some(bcast) = &self.bcast {
            out.push((bcast.parent(comm), bcast.tag));
        } else if let Some(&child) = self.pending.last() {
            // `advance` receives children strictly in `pending.last()`
            // order, so that child is the one source whose arrival
            // unblocks the fold.
            out.push((child, self.tag));
        }
        // No pending child and no bcast phase: the next advance
        // completes without receiving — nothing to park on.
    }
}

/// Resumable Bruck all-to-all: each round's packed message is sent as
/// soon as the previous round's payload arrived; receives drain on
/// test/wait like every engine here. Completes with
/// [`Completion::Blocks`] (one block per source rank), exactly like the
/// pairwise engine.
struct BruckEngine {
    rounds: Vec<bruck_algo::BruckRound>,
    tags: Vec<Tag>,
    blocks: Vec<Bytes>,
    block_bytes: usize,
    round: usize,
}

impl BruckEngine {
    /// Packs and posts the sends of round `k` (round 0 is posted by the
    /// caller at call time).
    fn post_round(&self, comm: &Comm, k: usize) -> Result<()> {
        let round = &self.rounds[k];
        let msg = bruck_algo::bruck_pack(&self.blocks, &round.indices);
        send_internal(comm, round.dest, self.tags[k], msg)
    }
}

impl CollEngine for BruckEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        while self.round < self.rounds.len() {
            let k = self.round;
            let Some(payload) = recv_one(comm, self.rounds[k].src, self.tags[k], block)? else {
                return Ok(None);
            };
            bruck_algo::bruck_unpack(
                &mut self.blocks,
                &self.rounds[k].indices,
                &payload,
                self.block_bytes,
            )?;
            self.round += 1;
            if self.round < self.rounds.len() {
                self.post_round(comm, self.round)?;
            }
        }
        let p = comm.size();
        let rank = comm.rank();
        let by_source: Vec<Bytes> = (0..p)
            .map(|j| self.blocks[bruck_algo::bruck_source_index(rank, j, p)].clone())
            .collect();
        Ok(Some(Completion::Blocks(by_source)))
    }

    fn sources(&self, _comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        if self.round < self.rounds.len() {
            out.push((self.rounds[self.round].src, self.tags[self.round]));
        }
    }
}

/// Resumable recursive-doubling allgather (power-of-two `p` only, the
/// same gate as the blocking engine): round `k` exchanges the
/// accumulated `2^k`-block group with `rank ^ 2^k`. Round 0's send
/// (this rank's own block) is posted eagerly at call time; each later
/// round's packed group goes out the moment the previous round's
/// payload arrives. Completes with [`Completion::Blocks`] in rank
/// order, exactly like the flat engine.
struct AllgatherRdEngine {
    tags: Vec<Tag>,
    blocks: Vec<Option<Bytes>>,
    block_bytes: usize,
    round: usize,
}

impl AllgatherRdEngine {
    fn post_round(&self, comm: &Comm, k: usize) -> Result<()> {
        let rank = comm.rank();
        let group = 1usize << k;
        let partner = rank ^ group;
        let base = rank & !(group - 1);
        let outgoing = if group == 1 {
            // Round 0 forwards the own block as a refcount clone.
            self.blocks[rank].clone().expect("own block present")
        } else {
            // Pack the group in ascending origin order (the counted
            // copy this algorithm trades for its startup win).
            let mut packed: Vec<u8> = Vec::with_capacity(group * self.block_bytes);
            for b in &self.blocks[base..base + group] {
                extend_vec_from_bytes(&mut packed, b.as_ref().expect("block from earlier round"));
            }
            bytes_from_vec(packed)
        };
        send_internal(comm, partner, self.tags[k], outgoing)
    }
}

impl CollEngine for AllgatherRdEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        let rank = comm.rank();
        let s = self.block_bytes;
        while self.round < self.tags.len() {
            let k = self.round;
            let group = 1usize << k;
            let partner = rank ^ group;
            let Some(incoming) = recv_one(comm, partner, self.tags[k], block)? else {
                return Ok(None);
            };
            if incoming.len() != group * s {
                return Err(MpiError::InvalidLayout(format!(
                    "iallgather (recursive doubling): round {k} delivered {} bytes, \
                     expected {} ({group} blocks of {s}) — unequal contributions?",
                    incoming.len(),
                    group * s
                )));
            }
            let partner_base = partner & !(group - 1);
            for (i, origin) in (partner_base..partner_base + group).enumerate() {
                // Carve per-origin blocks as refcount sub-views.
                self.blocks[origin] = Some(incoming.slice(i * s..(i + 1) * s));
            }
            self.round += 1;
            if self.round < self.tags.len() {
                self.post_round(comm, self.round)?;
            }
        }
        Ok(Some(Completion::Blocks(
            self.blocks
                .iter_mut()
                .map(|b| b.take().expect("all groups exchanged"))
                .collect(),
        )))
    }

    fn sources(&self, comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        if self.round < self.tags.len() {
            out.push((comm.rank() ^ (1usize << self.round), self.tags[self.round]));
        }
    }
}

/// Resumable Bruck allgather (any `p`): local index `i` accumulates the
/// block of origin `(rank + i) % p`; round `k` sends the first
/// `min(2^k, p - 2^k)` accumulated blocks to `rank - 2^k` and appends
/// the same count from `rank + 2^k`. Round 0 is posted eagerly at call
/// time; the final completion rotates back into rank order.
struct AllgatherBruckEngine {
    tags: Vec<Tag>,
    local: Vec<Bytes>,
    block_bytes: usize,
    round: usize,
}

impl AllgatherBruckEngine {
    fn post_round(&self, comm: &Comm, k: usize) -> Result<()> {
        let p = comm.size();
        let rank = comm.rank();
        let step = 1usize << k;
        let cnt = step.min(p - step);
        let dest = (rank + p - step) % p;
        let outgoing = if cnt == 1 {
            // Single blocks travel as refcount clones, copy-free.
            self.local[0].clone()
        } else {
            let mut packed: Vec<u8> = Vec::with_capacity(cnt * self.block_bytes);
            for b in &self.local[..cnt] {
                extend_vec_from_bytes(&mut packed, b);
            }
            bytes_from_vec(packed)
        };
        send_internal(comm, dest, self.tags[k], outgoing)
    }
}

impl CollEngine for AllgatherBruckEngine {
    fn advance(&mut self, comm: &Comm, block: bool) -> Result<Option<Completion>> {
        let p = comm.size();
        let rank = comm.rank();
        let s = self.block_bytes;
        while self.round < self.tags.len() {
            let k = self.round;
            let step = 1usize << k;
            let cnt = step.min(p - step);
            let src = (rank + step) % p;
            let Some(incoming) = recv_one(comm, src, self.tags[k], block)? else {
                return Ok(None);
            };
            if incoming.len() != cnt * s {
                return Err(MpiError::InvalidLayout(format!(
                    "iallgather (Bruck): round {k} delivered {} bytes, expected {} \
                     ({cnt} blocks of {s}) — unequal contributions?",
                    incoming.len(),
                    cnt * s
                )));
            }
            for i in 0..cnt {
                self.local.push(incoming.slice(i * s..(i + 1) * s));
            }
            self.round += 1;
            if self.round < self.tags.len() {
                self.post_round(comm, self.round)?;
            }
        }
        debug_assert_eq!(self.local.len(), p, "Bruck rounds deliver every block");
        Ok(Some(Completion::Blocks(
            (0..p)
                .map(|origin| self.local[(origin + p - rank) % p].clone())
                .collect(),
        )))
    }

    fn sources(&self, comm: &Comm, out: &mut Vec<(Rank, Tag)>) {
        if self.round < self.tags.len() {
            let step = 1usize << self.round;
            out.push(((comm.rank() + step) % comm.size(), self.tags[self.round]));
        }
    }
}

// ---------------------------------------------------------------------------
// Shared construction helpers
// ---------------------------------------------------------------------------

fn ordered_fold<T: Plain, O: ReduceOp<T> + 'static>(
    op: O,
) -> Box<dyn FnMut(Vec<Bytes>) -> Result<Bytes>> {
    Box::new(move |blocks: Vec<Bytes>| {
        // Rank 0's block materializes the accumulator (zero-copy for
        // byte-shaped payloads); every other block folds in place from
        // the delivered bytes, and the result moves back out without a
        // serialization copy.
        let mut iter = blocks.into_iter();
        let first = iter.next().expect("at least one block");
        let mut acc: Vec<T> = bytes_into_vec(first);
        for (r, block) in iter.enumerate() {
            if block.len() != std::mem::size_of_val(acc.as_slice()) {
                return Err(MpiError::InvalidLayout(format!(
                    "ireduce: rank {} contributed {} payload bytes, expected {}",
                    r + 1,
                    block.len(),
                    std::mem::size_of_val(acc.as_slice())
                )));
            }
            fold_bytes_right(&mut acc, &block, &op)?;
        }
        Ok(bytes_from_vec(acc))
    })
}

// ---------------------------------------------------------------------------
// Persistent-init engine constructors (see `crate::persistent`): the
// engine types stay private to this module; persistent plans freeze one
// of these rewindable machines at init time.
// ---------------------------------------------------------------------------

/// Non-root side of a persistent broadcast cycle (also the broadcast
/// phase of a persistent allreduce at non-roots).
pub(crate) fn bcast_recv_engine(tag: Tag, root: Rank) -> Box<dyn CollEngine> {
    Box::new(BcastRecvEngine {
        recv: BcastRecv { tag, root },
        root,
    })
}

/// One-block-per-rank collector (persistent allgather / alltoallv):
/// completes with [`Completion::Blocks`]. `own` seeds the first cycle.
pub(crate) fn blocks_engine(comm: &Comm, tag: Tag, own: Bytes) -> Box<dyn CollEngine> {
    Box::new(BlocksEngine {
        recv: RecvFromEach::new(comm, tag, Some(own)),
    })
}

/// Rank 0 of a persistent allreduce: gather + rank-ordered fold +
/// binomial broadcast, rewindable across cycles (the fold closure is
/// `FnMut`).
pub(crate) fn allreduce_root_engine<T: Plain, O: ReduceOp<T> + 'static>(
    comm: &Comm,
    gather_tag: Tag,
    bcast_tag: Tag,
    own: Bytes,
    op: O,
) -> Box<dyn CollEngine> {
    Box::new(AllreduceRootEngine {
        recv: RecvFromEach::new(comm, gather_tag, Some(own)),
        fold: ordered_fold::<T, O>(op),
        bcast_tag,
    })
}

fn check_v_layout(what: &str, len: usize, counts: &[usize], p: usize) -> Result<()> {
    if counts.len() != p {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: counts has {} entries for communicator of size {p}",
            counts.len()
        )));
    }
    let total: usize = counts.iter().sum();
    if total != len {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: buffer holds {len} elements but counts sum to {total}"
        )));
    }
    Ok(())
}

impl Comm {
    fn coll_request(&self, engine: Box<dyn CollEngine>) -> Request<'_> {
        Request::collective(self, engine)
    }

    /// Starts a non-blocking broadcast (mirrors `MPI_Ibcast`). The root
    /// passes `Some(data)`; completion yields the payload on every rank
    /// ([`Completion::Message`]).
    pub fn ibcast<T: Plain>(&self, data: Option<&[T]>, root: Rank) -> Result<Request<'_>> {
        let payload =
            (self.rank() == root).then(|| bytes_from_slice(data.expect("root must supply data")));
        self.ibcast_bytes(payload, root)
    }

    /// Byte-level [`Comm::ibcast`]: the root's payload enters the
    /// transport as-is (zero-copy for adopted vectors; forwarding down
    /// the tree clones refcounts).
    pub fn ibcast_bytes(&self, payload: Option<Bytes>, root: Rank) -> Result<Request<'_>> {
        self.count_op("ibcast");
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let payload = payload.expect("root must supply a payload");
            let vrank = 0;
            bcast_forward(self, vrank, root, tag, &payload)?;
            Ok(
                self.coll_request(Box::new(ReadyEngine(Some(message_completion(
                    root, tag, payload,
                ))))),
            )
        } else {
            Ok(self.coll_request(Box::new(BcastRecvEngine {
                recv: BcastRecv { tag, root },
                root,
            })))
        }
    }

    /// Starts a non-blocking gather of per-rank blocks to `root` (mirrors
    /// `MPI_Igatherv`; blocks may differ in size). The root completes
    /// with [`Completion::Blocks`] in rank order, other ranks with
    /// [`Completion::Done`].
    pub fn igatherv<T: Plain>(&self, send: &[T], root: Rank) -> Result<Request<'_>> {
        self.count_op("igatherv");
        self.igather_impl(send, root)
    }

    /// Equal-block flavour of [`Comm::igatherv`] (mirrors `MPI_Igather`);
    /// the substrate does not enforce equal block lengths.
    pub fn igather<T: Plain>(&self, send: &[T], root: Rank) -> Result<Request<'_>> {
        self.count_op("igather");
        self.igather_impl(send, root)
    }

    fn igather_impl<T: Plain>(&self, send: &[T], root: Rank) -> Result<Request<'_>> {
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let own = bytes_from_slice(send);
            let recv = RecvFromEach::new(self, tag, Some(own));
            Ok(self.coll_request(Box::new(BlocksEngine { recv })))
        } else {
            send_internal(self, root, tag, bytes_from_slice(send))?;
            Ok(self.coll_request(Box::new(ReadyEngine(Some(Completion::Done)))))
        }
    }

    /// Starts a non-blocking scatter of variable-size blocks from `root`
    /// (mirrors `MPI_Iscatterv`): the root passes the packed buffer and
    /// per-rank counts. Every rank completes with its own block
    /// ([`Completion::Message`]).
    pub fn iscatterv<T: Plain>(
        &self,
        send: Option<(&[T], &[usize])>,
        root: Rank,
    ) -> Result<Request<'_>> {
        self.count_op("iscatterv");
        self.iscatter_impl(send, root)
    }

    /// Equal-block flavour of [`Comm::iscatterv`] (mirrors
    /// `MPI_Iscatter`): the root's buffer splits into `p` equal blocks.
    pub fn iscatter<T: Plain>(&self, send: Option<&[T]>, root: Rank) -> Result<Request<'_>> {
        self.count_op("iscatter");
        let p = self.size();
        if self.rank() == root {
            let data = send.expect("root must supply data");
            if !data.len().is_multiple_of(p) {
                // Burn this operation's tag before erroring: peers (who
                // cannot see the root's buffer length) have already
                // allocated theirs, and the per-rank tag counters must
                // stay aligned for every *subsequent* collective.
                self.next_internal_tag();
                return Err(MpiError::InvalidLayout(format!(
                    "iscatter: buffer length {} not divisible by {p}",
                    data.len()
                )));
            }
            let counts = vec![data.len() / p; p];
            self.iscatter_impl(Some((data, &counts)), root)
        } else {
            self.iscatter_impl::<T>(None, root)
        }
    }

    fn iscatter_impl<T: Plain>(
        &self,
        send: Option<(&[T], &[usize])>,
        root: Rank,
    ) -> Result<Request<'_>> {
        // Rank-local validation failures must come *after* the tag
        // allocation so an erroring rank stays tag-aligned with its
        // peers (`check_rank` is symmetric: every rank sees the same
        // root, so erroring before the tag is fine there).
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let (data, counts) = send.expect("root must supply data and counts");
            check_v_layout("iscatterv", data.len(), counts, self.size())?;
            // Pack once, slice per destination (refcount clones).
            let elem = std::mem::size_of::<T>();
            let packed = bytes_from_slice(data);
            let mut offset = 0usize;
            let mut own = Bytes::new();
            for (r, &c) in counts.iter().enumerate() {
                let block = packed.slice(offset * elem..(offset + c) * elem);
                offset += c;
                if r == self.rank() {
                    own = block;
                } else {
                    send_internal(self, r, tag, block)?;
                }
            }
            Ok(
                self.coll_request(Box::new(ReadyEngine(Some(message_completion(
                    root, tag, own,
                ))))),
            )
        } else {
            Ok(self.coll_request(Box::new(ScatterRecvEngine { tag, root })))
        }
    }

    /// Starts a non-blocking allgather of variable-size blocks (mirrors
    /// `MPI_Iallgatherv`). No counts are needed: every rank's block is
    /// posted eagerly and the lengths travel with the messages.
    /// Completion yields [`Completion::Blocks`] in rank order.
    pub fn iallgatherv<T: Plain>(&self, send: &[T]) -> Result<Request<'_>> {
        self.count_op("iallgatherv");
        self.iallgather_impl(bytes_from_slice(send))
    }

    /// Byte-level [`Comm::iallgatherv`]: the payload is posted to every
    /// peer as a refcount clone — an adopted owned buffer enters the
    /// transport without any copy.
    pub fn iallgatherv_bytes(&self, own: Bytes) -> Result<Request<'_>> {
        self.count_op("iallgatherv");
        self.iallgather_impl(own)
    }

    /// Equal-block flavour of [`Comm::iallgatherv`] (mirrors
    /// `MPI_Iallgather`). The equal-block contract is what admits the
    /// round-structured engines: the model-driven `Auto` (or a forced
    /// tuning) may run resumable recursive doubling (power-of-two `p`)
    /// or Bruck instead of the flat dissemination — unequal
    /// contributions surface as [`MpiError::InvalidLayout`] there.
    pub fn iallgather<T: Plain>(&self, send: &[T]) -> Result<Request<'_>> {
        self.count_op("iallgather");
        self.iallgather_tuned(bytes_from_slice(send))
    }

    /// Byte-level [`Comm::iallgather`].
    pub fn iallgather_bytes(&self, own: Bytes) -> Result<Request<'_>> {
        self.count_op("iallgather");
        self.iallgather_tuned(own)
    }

    fn iallgather_tuned(&self, own: Bytes) -> Result<Request<'_>> {
        let algo = algos::model::select_iallgather(self, own.len());
        crate::trace::instant(
            crate::trace::cat::COLL,
            match algo {
                AllgatherAlgo::Ring => "iallgather/flat",
                AllgatherAlgo::RecursiveDoubling => "iallgather/recursive_doubling",
                AllgatherAlgo::Bruck => "iallgather/bruck",
            },
            own.len() as u64,
            self.size() as u64,
        );
        match algo {
            AllgatherAlgo::Ring => self.iallgather_impl(own),
            AllgatherAlgo::RecursiveDoubling => self.iallgather_rd(own),
            AllgatherAlgo::Bruck => self.iallgather_bruck(own),
        }
    }

    fn iallgather_rd(&self, own: Bytes) -> Result<Request<'_>> {
        let p = self.size();
        debug_assert!(p.is_power_of_two(), "selection gates RD to power-of-two p");
        let rounds = p.trailing_zeros() as usize;
        // One tag per round, allocated in the same order on every rank.
        let tags: Vec<Tag> = (0..rounds).map(|_| self.next_internal_tag()).collect();
        let block_bytes = own.len();
        let mut blocks: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        blocks[self.rank()] = Some(own);
        let engine = AllgatherRdEngine {
            tags,
            blocks,
            block_bytes,
            round: 0,
        };
        // Round 0 goes out eagerly; later rounds depend on received
        // payloads and go out as polling drains them.
        engine.post_round(self, 0)?;
        Ok(self.coll_request(Box::new(engine)))
    }

    fn iallgather_bruck(&self, own: Bytes) -> Result<Request<'_>> {
        let p = self.size();
        let rounds = p.next_power_of_two().trailing_zeros() as usize;
        // One tag per round, allocated in the same order on every rank.
        let tags: Vec<Tag> = (0..rounds).map(|_| self.next_internal_tag()).collect();
        let block_bytes = own.len();
        let engine = AllgatherBruckEngine {
            tags,
            local: vec![own],
            block_bytes,
            round: 0,
        };
        engine.post_round(self, 0)?;
        Ok(self.coll_request(Box::new(engine)))
    }

    fn iallgather_impl(&self, own: Bytes) -> Result<Request<'_>> {
        let tag = self.next_internal_tag();
        for r in 0..self.size() {
            if r != self.rank() {
                send_internal(self, r, tag, own.clone())?;
            }
        }
        let recv = RecvFromEach::new(self, tag, Some(own));
        Ok(self.coll_request(Box::new(BlocksEngine { recv })))
    }

    /// Starts a non-blocking personalized all-to-all with per-destination
    /// counts (mirrors `MPI_Ialltoallv`). Only the *send* layout is
    /// needed; receive counts are discovered from the incoming block
    /// lengths. Completion yields [`Completion::Blocks`]: one block per
    /// source rank.
    pub fn ialltoallv<T: Plain>(&self, send: &[T], counts: &[usize]) -> Result<Request<'_>> {
        self.count_op("ialltoallv");
        let elem = std::mem::size_of::<T>();
        let byte_counts: Vec<usize> = counts.iter().map(|&c| c * elem).collect();
        self.ialltoall_impl(bytes_from_slice(send), &byte_counts, "ialltoallv")
    }

    /// Byte-level [`Comm::ialltoallv`]: `packed` holds the per-peer
    /// blocks contiguously in rank order, `byte_counts[r]` bytes each;
    /// blocks are carved out by refcount slicing, so an adopted owned
    /// buffer is scattered to all peers without a single copy.
    pub fn ialltoallv_bytes(&self, packed: Bytes, byte_counts: &[usize]) -> Result<Request<'_>> {
        self.count_op("ialltoallv");
        self.ialltoall_impl(packed, byte_counts, "ialltoallv")
    }

    /// Equal-block flavour of [`Comm::ialltoallv`] (mirrors
    /// `MPI_Ialltoall`). Forcing
    /// [`AlltoallAlgo::Bruck`](super::algos::AlltoallAlgo) in the tuning
    /// switches to the resumable Bruck engine (`ceil(log2 p)` packed
    /// rounds instead of `p-1` eager sends).
    pub fn ialltoall<T: Plain>(&self, send: &[T]) -> Result<Request<'_>> {
        self.count_op("ialltoall");
        let p = self.size();
        if !send.len().is_multiple_of(p) {
            // Rank-local error: keep the tag counters aligned with the
            // peers that proceeded (see `iscatter`).
            self.next_internal_tag();
            return Err(MpiError::InvalidLayout(format!(
                "ialltoall: buffer length {} not divisible by {p}",
                send.len()
            )));
        }
        let elem = std::mem::size_of::<T>();
        let block_bytes = send.len() / p * elem;
        // The eager pairwise engine stays the static `Auto` choice: its
        // call-time sends are what make overlap effective. Bruck engages
        // when forced, or when the warm model predicts it wins even
        // after the per-round overlap charge.
        let bruck = algos::model::select_ialltoall(self, block_bytes) == AlltoallAlgo::Bruck;
        crate::trace::instant(
            crate::trace::cat::COLL,
            if bruck {
                "ialltoall/bruck"
            } else {
                "ialltoall/pairwise"
            },
            block_bytes as u64,
            p as u64,
        );
        if bruck {
            return self.ialltoall_bruck(bytes_from_slice(send), block_bytes);
        }
        let byte_counts = vec![block_bytes; p];
        self.ialltoall_impl(bytes_from_slice(send), &byte_counts, "ialltoall")
    }

    fn ialltoall_bruck(&self, packed: Bytes, block_bytes: usize) -> Result<Request<'_>> {
        let p = self.size();
        let rank = self.rank();
        let rounds = bruck_algo::bruck_rounds(rank, p);
        // One tag per round, allocated in the same order on every rank.
        let tags: Vec<Tag> = rounds.iter().map(|_| self.next_internal_tag()).collect();
        let blocks = bruck_algo::bruck_rotate(&packed, rank, p, block_bytes);
        let engine = BruckEngine {
            rounds,
            tags,
            blocks,
            block_bytes,
            round: 0,
        };
        // Round 0 is posted eagerly at call time; later rounds depend
        // on received payloads and go out as polling drains them.
        engine.post_round(self, 0)?;
        Ok(self.coll_request(Box::new(engine)))
    }

    fn ialltoall_impl(
        &self,
        packed: Bytes,
        byte_counts: &[usize],
        what: &str,
    ) -> Result<Request<'_>> {
        // Tag first: the layout check is rank-local, and an erroring
        // rank must stay tag-aligned with peers whose layouts are fine.
        let tag = self.next_internal_tag();
        let p = self.size();
        if byte_counts.len() != p {
            return Err(MpiError::InvalidLayout(format!(
                "{what}: counts has {} entries for communicator of size {p}",
                byte_counts.len()
            )));
        }
        let total: usize = byte_counts.iter().sum();
        if total != packed.len() {
            return Err(MpiError::InvalidLayout(format!(
                "{what}: send buffer holds {} bytes but counts sum to {total} bytes",
                packed.len()
            )));
        }
        let mut offset = 0usize;
        let mut own = Bytes::new();
        for (r, &c) in byte_counts.iter().enumerate() {
            let block = packed.slice(offset..offset + c);
            offset += c;
            if r == self.rank() {
                own = block;
            } else {
                send_internal(self, r, tag, block)?;
            }
        }
        let recv = RecvFromEach::new(self, tag, Some(own));
        Ok(self.coll_request(Box::new(BlocksEngine { recv })))
    }

    /// Starts a non-blocking reduction to `root` (mirrors `MPI_Ireduce`).
    /// The default is the flat gather + strictly rank-ordered in-place
    /// fold, so non-commutative operations are safe; forcing
    /// [`ReduceAlgo::BinomialTree`](super::algos::ReduceAlgo) in the
    /// tuning runs the resumable binomial-tree engine instead
    /// (commutative operations only — the flat fold remains the fallback
    /// otherwise). The root completes with the folded vector; other
    /// ranks with [`Completion::Done`].
    pub fn ireduce<T: Plain, O: ReduceOp<T> + 'static>(
        &self,
        send: &[T],
        op: O,
        root: Rank,
    ) -> Result<Request<'_>> {
        self.count_op("ireduce");
        self.check_rank(root)?;
        let algo =
            algos::model::select_ireduce(self, op.is_commutative(), std::mem::size_of_val(send));
        crate::trace::instant(
            crate::trace::cat::COLL,
            match algo {
                ReduceAlgo::FlatGather => "ireduce/flat_gather",
                ReduceAlgo::BinomialTree => "ireduce/binomial_tree",
            },
            std::mem::size_of_val(send) as u64,
            self.size() as u64,
        );
        let tag = self.next_internal_tag();
        if algo == ReduceAlgo::BinomialTree {
            let after = if self.rank() == root {
                AfterTreeReduce::Complete
            } else {
                AfterTreeReduce::Done
            };
            let engine =
                TreeReduceEngine::<T, O>::new(self, tag, bytes_from_slice(send), op, root, after);
            return self.start_tree_engine(engine);
        }
        if self.rank() == root {
            let own = bytes_from_slice(send);
            let recv = RecvFromEach::new(self, tag, Some(own));
            Ok(self.coll_request(Box::new(ReduceRootEngine {
                recv,
                fold: ordered_fold::<T, O>(op),
                source: root,
            })))
        } else {
            send_internal(self, root, tag, bytes_from_slice(send))?;
            Ok(self.coll_request(Box::new(ReadyEngine(Some(Completion::Done)))))
        }
    }

    /// Starts a tree-reduce engine: a leaf's send must be posted
    /// *eagerly at call time* (the property overlap relies on), which
    /// one non-blocking advance achieves — inner nodes simply find no
    /// child payloads yet.
    fn start_tree_engine<T: Plain, O: ReduceOp<T> + 'static>(
        &self,
        mut engine: TreeReduceEngine<T, O>,
    ) -> Result<Request<'_>> {
        if engine.pending.is_empty() {
            if let Some(done) = engine.advance(self, false)? {
                return Ok(self.coll_request(Box::new(ReadyEngine(Some(done)))));
            }
        }
        Ok(self.coll_request(Box::new(engine)))
    }

    /// Starts a non-blocking all-reduce (mirrors `MPI_Iallreduce`): flat
    /// gather to rank 0, rank-ordered fold, binomial broadcast of the
    /// result. Every rank completes with the reduced vector.
    pub fn iallreduce<T: Plain, O: ReduceOp<T> + 'static>(
        &self,
        send: &[T],
        op: O,
    ) -> Result<Request<'_>> {
        self.iallreduce_bytes(bytes_from_slice(send), op)
    }

    /// Byte-level [`Comm::iallreduce`]: the contribution enters the
    /// transport as-is (zero-copy for adopted owned buffers). `own` must
    /// encode a `[T]` slice. Forcing
    /// [`ReduceAlgo::BinomialTree`](super::algos::ReduceAlgo) replaces
    /// the flat gather phase with the resumable binomial-tree reduction
    /// (commutative operations only).
    pub fn iallreduce_bytes<T: Plain, O: ReduceOp<T> + 'static>(
        &self,
        own: Bytes,
        op: O,
    ) -> Result<Request<'_>> {
        self.count_op("iallreduce");
        let algo = algos::model::select_ireduce(self, op.is_commutative(), own.len());
        crate::trace::instant(
            crate::trace::cat::COLL,
            match algo {
                ReduceAlgo::FlatGather => "iallreduce/flat_gather",
                ReduceAlgo::BinomialTree => "iallreduce/binomial_tree",
            },
            own.len() as u64,
            self.size() as u64,
        );
        let gather_tag = self.next_internal_tag();
        let bcast_tag = self.next_internal_tag();
        if algo == ReduceAlgo::BinomialTree {
            let after = if self.rank() == 0 {
                AfterTreeReduce::BcastSend(bcast_tag)
            } else {
                AfterTreeReduce::BcastRecvPhase(bcast_tag)
            };
            let engine = TreeReduceEngine::<T, O>::new(self, gather_tag, own, op, 0, after);
            return self.start_tree_engine(engine);
        }
        if self.rank() == 0 {
            let recv = RecvFromEach::new(self, gather_tag, Some(own));
            Ok(self.coll_request(Box::new(AllreduceRootEngine {
                recv,
                fold: ordered_fold::<T, O>(op),
                bcast_tag,
            })))
        } else {
            send_internal(self, 0, gather_tag, own)?;
            Ok(self.coll_request(Box::new(BcastRecvEngine {
                recv: BcastRecv {
                    tag: bcast_tag,
                    root: 0,
                },
                root: 0,
            })))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::op::Sum;
    use crate::request::TestOutcome;
    use crate::{non_commutative, Universe};

    /// Polls a request to completion via `test` — used only by tests
    /// that deliberately exercise the polling path; everything else
    /// completes through the event-driven `wait()`.
    fn poll_to_completion(mut req: crate::Request<'_>) -> crate::request::Completion {
        loop {
            match req.test().unwrap() {
                TestOutcome::Ready(c) => return c,
                TestOutcome::Pending(r) => {
                    req = r;
                    std::thread::yield_now();
                }
            }
        }
    }

    #[test]
    fn ibcast_delivers_everywhere() {
        for p in [1, 2, 3, 5, 8] {
            Universe::run(p, |comm| {
                let data = vec![42u64, 43, 44];
                let req = comm
                    .ibcast(
                        if comm.rank() == 0 {
                            Some(&data[..])
                        } else {
                            None
                        },
                        0,
                    )
                    .unwrap();
                let (got, st) = req.wait().unwrap().into_vec::<u64>().unwrap();
                assert_eq!(got, data);
                assert_eq!(st.source, 0);
            });
        }
    }

    #[test]
    fn ibcast_nonzero_root_via_polling() {
        Universe::run(4, |comm| {
            let data = vec![7u32; 5];
            let req = comm
                .ibcast(
                    if comm.rank() == 2 {
                        Some(&data[..])
                    } else {
                        None
                    },
                    2,
                )
                .unwrap();
            let (got, _) = poll_to_completion(req).into_vec::<u32>().unwrap();
            assert_eq!(got, data);
        });
    }

    #[test]
    fn igatherv_collects_variable_blocks() {
        Universe::run(4, |comm| {
            let mine = vec![comm.rank() as u16; comm.rank() + 1];
            let req = comm.igatherv(&mine, 1).unwrap();
            let c = req.wait().unwrap();
            if comm.rank() == 1 {
                let blocks = c.into_blocks().unwrap();
                assert_eq!(blocks.len(), 4);
                for (r, b) in blocks.iter().enumerate() {
                    let v: Vec<u16> = crate::plain::bytes_to_vec(b);
                    assert_eq!(v, vec![r as u16; r + 1]);
                }
            } else {
                assert!(c.into_blocks().is_none());
            }
        });
    }

    #[test]
    fn iscatterv_distributes_blocks() {
        Universe::run(3, |comm| {
            let send: Vec<u32> = vec![10, 20, 20, 30, 30, 30];
            let counts = [1usize, 2, 3];
            let req = comm
                .iscatterv(
                    if comm.rank() == 0 {
                        Some((&send[..], &counts[..]))
                    } else {
                        None
                    },
                    0,
                )
                .unwrap();
            let (got, _) = req.wait().unwrap().into_vec::<u32>().unwrap();
            let expected = vec![(comm.rank() as u32 + 1) * 10; comm.rank() + 1];
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn iscatter_equal_blocks() {
        Universe::run(4, |comm| {
            let send: Vec<u8> = (0..8).collect();
            let req = comm
                .iscatter(
                    if comm.rank() == 0 {
                        Some(&send[..])
                    } else {
                        None
                    },
                    0,
                )
                .unwrap();
            let (got, _) = req.wait().unwrap().into_vec::<u8>().unwrap();
            assert_eq!(got, vec![comm.rank() as u8 * 2, comm.rank() as u8 * 2 + 1]);
        });
    }

    #[test]
    fn iallgatherv_concatenates_in_rank_order() {
        for p in [1, 2, 3, 5] {
            Universe::run(p, |comm| {
                let mine = vec![comm.rank() as u64; comm.rank() + 1];
                let req = comm.iallgatherv(&mine).unwrap();
                let blocks = req.wait().unwrap().into_blocks().unwrap();
                let mut all = Vec::new();
                for b in &blocks {
                    all.extend(crate::plain::bytes_to_vec::<u64>(b));
                }
                let expected: Vec<u64> = (0..p as u64)
                    .flat_map(|r| std::iter::repeat_n(r, r as usize + 1))
                    .collect();
                assert_eq!(all, expected);
            });
        }
    }

    #[test]
    fn ialltoallv_routes_blocks() {
        Universe::run(3, |comm| {
            // Rank r sends one element `r * 10 + dest` to each dest.
            let send: Vec<u32> = (0..3).map(|d| comm.rank() as u32 * 10 + d).collect();
            let counts = vec![1usize; 3];
            let req = comm.ialltoallv(&send, &counts).unwrap();
            let blocks = req.wait().unwrap().into_blocks().unwrap();
            for (src, b) in blocks.iter().enumerate() {
                let v: Vec<u32> = crate::plain::bytes_to_vec(b);
                assert_eq!(v, vec![src as u32 * 10 + comm.rank() as u32]);
            }
        });
    }

    #[test]
    fn ireduce_folds_at_root() {
        Universe::run(4, |comm| {
            let mine = [comm.rank() as u64 + 1, 1];
            let req = comm.ireduce(&mine, Sum, 2).unwrap();
            let c = req.wait().unwrap();
            if comm.rank() == 2 {
                let (got, _) = c.into_vec::<u64>().unwrap();
                assert_eq!(got, vec![10, 4]);
            }
        });
    }

    #[test]
    fn ireduce_non_commutative_rank_order() {
        Universe::run(4, |comm| {
            let op = non_commutative(|a: &u64, b: &u64| a * 10 + b);
            let req = comm.ireduce(&[comm.rank() as u64], op, 0).unwrap();
            let c = req.wait().unwrap();
            if comm.rank() == 0 {
                let (got, _) = c.into_vec::<u64>().unwrap();
                assert_eq!(got, vec![123]);
            }
        });
    }

    #[test]
    fn iallreduce_sums_everywhere() {
        for p in [1, 2, 3, 5, 8] {
            Universe::run(p, move |comm| {
                let req = comm.iallreduce(&[comm.rank() as u64 + 1], Sum).unwrap();
                let (got, _) = req.wait().unwrap().into_vec::<u64>().unwrap();
                assert_eq!(got, vec![(p * (p + 1) / 2) as u64], "p = {p}");
            });
        }
    }

    #[test]
    fn iallreduce_overlaps_with_local_work() {
        Universe::run(4, |comm| {
            let req = comm.iallreduce(&[1u32], Sum).unwrap();
            // Local work while the reduction is in flight.
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            let (got, _) = req.wait().unwrap().into_vec::<u32>().unwrap();
            assert_eq!(got, vec![4]);
        });
    }

    #[test]
    fn two_icollectives_in_flight_complete_in_any_order() {
        Universe::run(3, |comm| {
            // Same creation order on every rank (the MPI rule); the
            // *completions* may be observed in either order.
            let r1 = comm.iallgatherv(&[comm.rank() as u32]).unwrap();
            let r2 = comm.iallreduce(&[1u64], Sum).unwrap();
            let (sum, _) = r2.wait().unwrap().into_vec::<u64>().unwrap();
            let blocks = r1.wait().unwrap().into_blocks().unwrap();
            assert_eq!(sum, vec![3]);
            assert_eq!(blocks.len(), 3);
        });
    }

    #[test]
    fn icollectives_interoperate_with_request_set() {
        Universe::run(3, |comm| {
            let mut set = crate::RequestSet::new();
            set.push(comm.iallreduce(&[comm.rank() as u64], Sum).unwrap());
            set.push(comm.ibarrier().unwrap());
            let done = set.wait_all().unwrap();
            assert_eq!(done.len(), 2);
            let (sum, _) = done.into_iter().next().unwrap().into_vec::<u64>().unwrap();
            assert_eq!(sum, vec![3]);
        });
    }

    #[test]
    fn ialltoallv_layout_errors() {
        Universe::run(2, |comm| {
            // counts sum != buffer length
            assert!(comm.ialltoallv(&[1u8, 2, 3], &[1, 1]).is_err());
            // counts length != p
            assert!(comm.ialltoallv(&[1u8], &[1]).is_err());
            // keep the peer in sync for the valid follow-up call
            let req = comm
                .ialltoallv(&[comm.rank() as u8, comm.rank() as u8], &[1, 1])
                .unwrap();
            req.wait().unwrap();
        });
    }

    #[test]
    fn rank_local_error_keeps_tag_counters_aligned() {
        Universe::run(3, |comm| {
            // Root-local failure: only rank 0 can see that 7 elements do
            // not split into 3 equal blocks; ranks 1 and 2 post their
            // receive and allocate a tag for the operation.
            if comm.rank() == 0 {
                assert!(comm.iscatter(Some(&[1u8; 7][..]), 0).is_err());
            } else {
                // The operation can never complete (the root bailed);
                // dropping the pending request is the recovery path.
                let _pending = comm.iscatter::<u8>(None, 0).unwrap();
            }
            // The *next* collective must still line up on every rank —
            // this hangs (mismatched internal tags) if the erroring rank
            // skipped its tag allocation.
            let req = comm.iallreduce(&[1u64], Sum).unwrap();
            let (sum, _) = req.wait().unwrap().into_vec::<u64>().unwrap();
            assert_eq!(sum, vec![3]);
        });
    }

    #[test]
    fn forced_bruck_ialltoall_matches_pairwise() {
        use crate::collectives::{AlltoallAlgo, CollTuning};
        for p in [2, 3, 4, 5, 8] {
            Universe::run(p, move |comm| {
                let send: Vec<u32> = (0..p as u32).map(|d| comm.rank() as u32 * 10 + d).collect();
                let pairwise = comm.ialltoall(&send).unwrap();
                let expected = pairwise.wait().unwrap().into_blocks().unwrap();
                comm.set_tuning(CollTuning::default().alltoall(AlltoallAlgo::Bruck));
                let bruck = comm.ialltoall(&send).unwrap();
                let got = bruck.wait().unwrap().into_blocks().unwrap();
                for (a, b) in expected.iter().zip(&got) {
                    assert_eq!(&a[..], &b[..], "p = {p}");
                }
            });
        }
    }

    #[test]
    fn forced_tree_ireduce_and_iallreduce_match_flat() {
        use crate::collectives::{CollTuning, ReduceAlgo};
        for p in [1, 2, 3, 5, 8] {
            Universe::run(p, move |comm| {
                let mine = [comm.rank() as u64 + 1, 7];
                let flat = comm.ireduce(&mine, Sum, 0).unwrap().wait().unwrap();
                comm.set_tuning(CollTuning::default().reduce(ReduceAlgo::BinomialTree));
                let tree = comm.ireduce(&mine, Sum, 0).unwrap().wait().unwrap();
                if comm.rank() == 0 {
                    assert_eq!(
                        flat.into_vec::<u64>().unwrap().0,
                        tree.into_vec::<u64>().unwrap().0,
                        "p = {p}"
                    );
                }
                let req = comm.iallreduce(&mine, Sum).unwrap();
                let (got, _) = req.wait().unwrap().into_vec::<u64>().unwrap();
                let total = (p * (p + 1) / 2) as u64;
                assert_eq!(got, vec![total, 7 * p as u64], "p = {p}");
            });
        }
    }

    #[test]
    fn forced_tree_iallreduce_overlaps_and_interoperates() {
        use crate::collectives::{CollTuning, ReduceAlgo};
        Universe::run(4, |comm| {
            comm.set_tuning(CollTuning::default().reduce(ReduceAlgo::BinomialTree));
            let req = comm.iallreduce(&[1u32], Sum).unwrap();
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            let (got, _) = req.wait().unwrap().into_vec::<u32>().unwrap();
            assert_eq!(got, vec![4]);
            // Non-commutative ops silently keep the rank-ordered flat
            // fold even under the forced tree.
            let op = non_commutative(|a: &u64, b: &u64| a * 10 + b);
            let req = comm.ireduce(&[comm.rank() as u64], op, 0).unwrap();
            let c = req.wait().unwrap();
            if comm.rank() == 0 {
                let (got, _) = c.into_vec::<u64>().unwrap();
                assert_eq!(got, vec![123]);
            }
        });
    }

    #[test]
    fn forced_rd_and_bruck_iallgather_match_flat() {
        use crate::collectives::{AllgatherAlgo, CollTuning};
        for p in [2, 3, 4, 5, 8] {
            Universe::run(p, move |comm| {
                let send: Vec<u32> = vec![comm.rank() as u32 * 7 + 1, comm.rank() as u32];
                let expected = comm
                    .iallgather(&send)
                    .unwrap()
                    .wait()
                    .unwrap()
                    .into_blocks()
                    .unwrap();
                for algo in [AllgatherAlgo::RecursiveDoubling, AllgatherAlgo::Bruck] {
                    // Forced RD resolves to the flat path off powers of
                    // two, mirroring the blocking selection.
                    comm.set_tuning(CollTuning::default().allgather(algo));
                    let got = comm
                        .iallgather(&send)
                        .unwrap()
                        .wait()
                        .unwrap()
                        .into_blocks()
                        .unwrap();
                    for (a, b) in expected.iter().zip(&got) {
                        assert_eq!(&a[..], &b[..], "p = {p}, {algo:?}");
                    }
                }
            });
        }
    }

    #[test]
    fn forced_iallgather_engines_overlap_with_local_work() {
        use crate::collectives::{AllgatherAlgo, CollTuning};
        Universe::run(4, |comm| {
            comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::Bruck));
            let req = comm.iallgather(&[comm.rank() as u64]).unwrap();
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            let blocks = req.wait().unwrap().into_blocks().unwrap();
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(crate::plain::bytes_to_vec::<u64>(b), vec![r as u64]);
            }
        });
    }

    #[test]
    fn iallgatherv_empty_contributions() {
        Universe::run(3, |comm| {
            let mine: Vec<u64> = if comm.rank() == 1 { vec![5] } else { vec![] };
            let req = comm.iallgatherv(&mine).unwrap();
            let blocks = req.wait().unwrap().into_blocks().unwrap();
            let total: usize = blocks.iter().map(|b| b.len()).sum();
            assert_eq!(total, std::mem::size_of::<u64>());
        });
    }
}
