//! Scatter and scatterv (flat tree, pack-once at the root).
//!
//! The root serializes its send buffer into **one** shared payload and
//! carves per-destination blocks out of it by refcount slicing — one
//! copy and one allocation total, instead of one of each per peer.

use bytes::Bytes;

use super::{check_layout, recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{bytes_from_slice, bytes_into_vec, copy_bytes_into, copy_slice};
use crate::{Plain, Rank};

/// Packs `send` once and sends `counts[r]`-element blocks at
/// `displs[r]` to every rank except the root; returns the root's own
/// block as a shared slice.
fn scatter_blocks<T: Plain>(
    comm: &Comm,
    tag: crate::Tag,
    send: &[T],
    counts: &[usize],
    displs: &[usize],
    root: Rank,
) -> Result<Bytes> {
    let elem = std::mem::size_of::<T>();
    let packed = bytes_from_slice(send);
    let mut own = Bytes::new();
    for r in 0..comm.size() {
        let start = displs[r] * elem;
        let block = packed.slice(start..start + counts[r] * elem);
        if r == root {
            own = block;
        } else {
            send_internal(comm, r, tag, block)?;
        }
    }
    Ok(own)
}

impl Comm {
    /// Scatters equal-sized blocks of the root's buffer to all ranks
    /// (mirrors `MPI_Scatter`). `send` is significant at the root only and
    /// must hold `p * recv.len()` elements there.
    pub fn scatter_into<T: Plain>(&self, send: &[T], recv: &mut [T], root: Rank) -> Result<()> {
        self.count_op("scatter");
        let p = self.size();
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        let n = recv.len();
        if self.rank() == root {
            if send.len() < p * n {
                return Err(MpiError::InvalidLayout(format!(
                    "scatter: send buffer holds {} elements, need {}",
                    send.len(),
                    p * n
                )));
            }
            let counts = vec![n; p];
            let displs: Vec<usize> = (0..p).map(|r| r * n).collect();
            scatter_blocks(self, tag, &send[..p * n], &counts, &displs, root)?;
            copy_slice(&send[root * n..(root + 1) * n], recv);
            Ok(())
        } else {
            let bytes = recv_internal(self, root, tag)?;
            let written = copy_bytes_into(&bytes, recv);
            if written != n {
                return Err(MpiError::Truncated {
                    message_bytes: bytes.len(),
                    buffer_bytes: std::mem::size_of_val(recv),
                });
            }
            Ok(())
        }
    }

    /// Scatters variable-sized blocks described by `counts`/`displs`
    /// (significant at the root) to all ranks (mirrors `MPI_Scatterv`).
    pub fn scatterv_into<T: Plain>(
        &self,
        send: &[T],
        counts: &[usize],
        displs: &[usize],
        recv: &mut [T],
        root: Rank,
    ) -> Result<()> {
        self.count_op("scatterv");
        let p = self.size();
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            check_layout("scatterv", counts, displs, send.len(), p)?;
            scatter_blocks(self, tag, send, counts, displs, root)?;
            let own = &send[displs[root]..displs[root] + counts[root]];
            if recv.len() < own.len() {
                return Err(MpiError::Truncated {
                    message_bytes: std::mem::size_of_val(own),
                    buffer_bytes: std::mem::size_of_val(recv),
                });
            }
            copy_slice(own, &mut recv[..own.len()]);
            Ok(())
        } else {
            let bytes = recv_internal(self, root, tag)?;
            copy_bytes_into(&bytes, recv);
            Ok(())
        }
    }

    /// Scatters equal-sized blocks, returning each rank's block as a
    /// fresh vector; the block length travels with the message, so
    /// non-root ranks need not know it in advance.
    pub fn scatter_vec<T: Plain>(&self, send: Option<&[T]>, root: Rank) -> Result<Vec<T>> {
        self.count_op("scatter");
        let p = self.size();
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let data = send.expect("root must supply data");
            if !data.len().is_multiple_of(p) {
                return Err(MpiError::InvalidLayout(format!(
                    "scatter: send length {} not divisible by {p}",
                    data.len()
                )));
            }
            let n = data.len() / p;
            let counts = vec![n; p];
            let displs: Vec<usize> = (0..p).map(|r| r * n).collect();
            let own = scatter_blocks(self, tag, data, &counts, &displs, root)?;
            Ok(bytes_into_vec(own))
        } else {
            let bytes = recv_internal(self, root, tag)?;
            Ok(bytes_into_vec(bytes))
        }
    }

    /// Scatters variable-sized blocks, returning each rank's block as a
    /// fresh vector (the length travels with the message).
    pub fn scatterv_vec<T: Plain>(
        &self,
        send: Option<(&[T], &[usize], &[usize])>,
        root: Rank,
    ) -> Result<Vec<T>> {
        self.count_op("scatterv");
        let p = self.size();
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let (data, counts, displs) = send.expect("root must supply data and layout");
            check_layout("scatterv", counts, displs, data.len(), p)?;
            let own = scatter_blocks(self, tag, data, counts, displs, root)?;
            Ok(bytes_into_vec(own))
        } else {
            let bytes = recv_internal(self, root, tag)?;
            Ok(bytes_into_vec(bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn scatter_equal_blocks() {
        Universe::run(4, |comm| {
            let send: Vec<u32> = if comm.rank() == 0 {
                (0..8).collect()
            } else {
                vec![]
            };
            let mut mine = [0u32; 2];
            comm.scatter_into(&send, &mut mine, 0).unwrap();
            assert_eq!(mine, [2 * comm.rank() as u32, 2 * comm.rank() as u32 + 1]);
        });
    }

    #[test]
    fn scatter_from_nonzero_root() {
        Universe::run(3, |comm| {
            let send: Vec<u8> = if comm.rank() == 1 {
                vec![10, 20, 30]
            } else {
                vec![]
            };
            let mut mine = [0u8; 1];
            comm.scatter_into(&send, &mut mine, 1).unwrap();
            assert_eq!(mine[0], 10 * (comm.rank() as u8 + 1));
        });
    }

    #[test]
    fn scatterv_variable_blocks() {
        Universe::run(3, |comm| {
            let send: Vec<u64> = if comm.rank() == 0 {
                (0..6).collect()
            } else {
                vec![]
            };
            let counts = [3, 1, 2];
            let displs = [0, 3, 4];
            let got = comm
                .scatterv_vec(
                    (comm.rank() == 0).then_some((&send[..], &counts[..], &displs[..])),
                    0,
                )
                .unwrap();
            match comm.rank() {
                0 => assert_eq!(got, vec![0, 1, 2]),
                1 => assert_eq!(got, vec![3]),
                2 => assert_eq!(got, vec![4, 5]),
                _ => unreachable!(),
            }
        });
    }

    #[test]
    fn scatterv_into_prefix() {
        Universe::run(2, |comm| {
            let send: Vec<u16> = if comm.rank() == 0 {
                vec![7, 8, 9]
            } else {
                vec![]
            };
            let counts = [1, 2];
            let displs = [0, 1];
            let mut buf = [0u16; 4];
            comm.scatterv_into(&send, &counts, &displs, &mut buf, 0)
                .unwrap();
            if comm.rank() == 0 {
                assert_eq!(buf[0], 7);
            } else {
                assert_eq!(&buf[..2], &[8, 9]);
            }
        });
    }

    #[test]
    fn scatter_undersized_send_errors() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let send = vec![1u32; 3];
                let mut mine = [0u32; 2];
                assert!(comm.scatter_into(&send, &mut mine, 0).is_err());
            }
            // rank 1 does not participate: root errors before sending.
        });
    }
}
