//! Gather and gatherv (flat tree).

use super::{check_layout, send_slice_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{copy_bytes_into, copy_slice, element_count, extend_vec_from_bytes};
use crate::{Plain, Rank};

impl Comm {
    /// Gathers equal-sized contributions to the root, rank-ordered
    /// (mirrors `MPI_Gather`). `recv` is significant only at the root and
    /// must hold `p * send.len()` elements there.
    pub fn gather_into<T: Plain>(&self, send: &[T], recv: &mut [T], root: Rank) -> Result<()> {
        self.count_op("gather");
        let p = self.size();
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let n = send.len();
            if recv.len() < p * n {
                return Err(MpiError::InvalidLayout(format!(
                    "gather: receive buffer holds {} elements, need {}",
                    recv.len(),
                    p * n
                )));
            }
            copy_slice(send, &mut recv[root * n..(root + 1) * n]);
            for _ in 0..p - 1 {
                // Accept in arrival order; the tag identifies the call and
                // the source determines the block.
                let env =
                    self.recv_envelope(crate::message::Src::Any, crate::message::TagSel::Is(tag))?;
                let src = env.src;
                let block = &mut recv[src * n..(src + 1) * n];
                let written = copy_bytes_into(&env.payload, block);
                if written != n {
                    return Err(MpiError::Truncated {
                        message_bytes: env.payload.len(),
                        buffer_bytes: std::mem::size_of_val(send),
                    });
                }
            }
            Ok(())
        } else {
            send_slice_internal(self, root, tag, send)
        }
    }

    /// Gathers variable-sized contributions to the root
    /// (mirrors `MPI_Gatherv`). `counts`/`displs` are significant at the
    /// root only.
    pub fn gatherv_into<T: Plain>(
        &self,
        send: &[T],
        recv: &mut [T],
        counts: &[usize],
        displs: &[usize],
        root: Rank,
    ) -> Result<()> {
        self.count_op("gatherv");
        let p = self.size();
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            check_layout("gatherv", counts, displs, recv.len(), p)?;
            if send.len() != counts[root] {
                return Err(MpiError::InvalidLayout(format!(
                    "gatherv: root sends {} elements but counts[{root}] = {}",
                    send.len(),
                    counts[root]
                )));
            }
            copy_slice(send, &mut recv[displs[root]..displs[root] + counts[root]]);
            for _ in 0..p - 1 {
                let env =
                    self.recv_envelope(crate::message::Src::Any, crate::message::TagSel::Is(tag))?;
                let src = env.src;
                let block = &mut recv[displs[src]..displs[src] + counts[src]];
                let written = copy_bytes_into(&env.payload, block);
                if written != counts[src] {
                    return Err(MpiError::Truncated {
                        message_bytes: env.payload.len(),
                        buffer_bytes: counts[src] * std::mem::size_of::<T>(),
                    });
                }
            }
            Ok(())
        } else {
            send_slice_internal(self, root, tag, send)
        }
    }

    /// Gathers variable-sized contributions to the root, where only the
    /// root learns the counts (they travel with the messages). Returns
    /// `Some((data, counts))` at the root, `None` elsewhere.
    pub fn gatherv_vec<T: Plain>(
        &self,
        send: &[T],
        root: Rank,
    ) -> Result<Option<(Vec<T>, Vec<usize>)>> {
        self.count_op("gatherv");
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let (data, counts) = gather_assemble(self, tag, send, root)?;
            Ok(Some((data, counts)))
        } else {
            send_slice_internal(self, root, tag, send)?;
            Ok(None)
        }
    }
}

/// Root side of a counts-discovering gatherv: collects one shared payload
/// per rank and writes every block **straight into the final buffer** —
/// no intermediate per-rank vectors.
pub(crate) fn gather_assemble<T: Plain>(
    comm: &Comm,
    tag: crate::Tag,
    own: &[T],
    root: Rank,
) -> Result<(Vec<T>, Vec<usize>)> {
    let p = comm.size();
    let mut blocks: Vec<Option<bytes::Bytes>> = (0..p).map(|_| None).collect();
    for _ in 0..p - 1 {
        let env = comm.recv_envelope(crate::message::Src::Any, crate::message::TagSel::Is(tag))?;
        blocks[env.src] = Some(env.payload);
    }
    let counts: Vec<usize> = blocks
        .iter()
        .enumerate()
        .map(|(r, b)| {
            if r == root {
                own.len()
            } else {
                element_count::<T>(b.as_ref().expect("all blocks arrived").len())
            }
        })
        .collect();
    let mut data: Vec<T> = Vec::with_capacity(counts.iter().sum());
    for (r, b) in blocks.iter().enumerate() {
        if r == root {
            crate::metrics::record_copy(std::mem::size_of_val(own));
            data.extend_from_slice(own);
        } else {
            extend_vec_from_bytes(&mut data, b.as_ref().expect("block present"));
        }
    }
    Ok((data, counts))
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn gather_rank_ordered() {
        Universe::run(4, |comm| {
            let mine = [comm.rank() as u32; 2];
            let mut all = vec![0u32; 8];
            comm.gather_into(&mine, &mut all, 0).unwrap();
            if comm.rank() == 0 {
                assert_eq!(all, vec![0, 0, 1, 1, 2, 2, 3, 3]);
            }
        });
    }

    #[test]
    fn gather_to_nonzero_root() {
        Universe::run(3, |comm| {
            let mine = [comm.rank() as u8];
            let mut all = vec![0u8; 3];
            comm.gather_into(&mine, &mut all, 2).unwrap();
            if comm.rank() == 2 {
                assert_eq!(all, vec![0, 1, 2]);
            }
        });
    }

    #[test]
    fn gather_undersized_recv_errors() {
        Universe::run(2, |comm| {
            let mine = [1u32, 2];
            if comm.rank() == 0 {
                let mut small = vec![0u32; 3];
                assert!(comm.gather_into(&mine, &mut small, 0).is_err());
                // The peer's message stays queued; undelivered envelopes
                // are dropped with the universe.
            } else {
                let mut unused = vec![];
                comm.gather_into(&mine, &mut unused, 0).unwrap();
            }
        });
    }

    #[test]
    fn gatherv_variable_counts() {
        Universe::run(3, |comm| {
            let mine: Vec<u64> = (0..comm.rank() as u64 + 1).collect();
            let counts = [1, 2, 3];
            let displs = [0, 1, 3];
            let mut all = vec![0u64; 6];
            comm.gatherv_into(&mine, &mut all, &counts, &displs, 0)
                .unwrap();
            if comm.rank() == 0 {
                assert_eq!(all, vec![0, 0, 1, 0, 1, 2]);
            }
        });
    }

    #[test]
    fn gatherv_vec_discovers_counts() {
        Universe::run(4, |comm| {
            let mine: Vec<u16> = vec![comm.rank() as u16; comm.rank()];
            let out = comm.gatherv_vec(&mine, 1).unwrap();
            if comm.rank() == 1 {
                let (data, counts) = out.unwrap();
                assert_eq!(counts, vec![0, 1, 2, 3]);
                assert_eq!(data, vec![1, 2, 2, 3, 3, 3]);
            } else {
                assert!(out.is_none());
            }
        });
    }

    #[test]
    fn gatherv_empty_contributions() {
        Universe::run(3, |comm| {
            let out = comm.gatherv_vec::<u8>(&[], 0).unwrap();
            if comm.rank() == 0 {
                let (data, counts) = out.unwrap();
                assert!(data.is_empty());
                assert_eq!(counts, vec![0, 0, 0]);
            }
        });
    }
}
