//! Dissemination barrier.

use super::{recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::Result;

pub(crate) fn barrier_internal(comm: &Comm) -> Result<()> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let _sp = crate::trace::span(
        crate::trace::cat::COLL,
        "barrier/dissemination",
        0,
        p as u64,
    );
    let rank = comm.rank();
    let tag = comm.next_internal_tag();
    let mut step = 1usize;
    while step < p {
        let to = (rank + step) % p;
        let from = (rank + p - step) % p;
        send_internal(comm, to, tag, bytes::Bytes::new())?;
        recv_internal(comm, from, tag)?;
        step <<= 1;
    }
    Ok(())
}

impl Comm {
    /// Blocks until all ranks of the communicator have entered the barrier
    /// (mirrors `MPI_Barrier`). Dissemination algorithm:
    /// `ceil(log2 p)` rounds, one message sent and received per round.
    pub fn barrier(&self) -> Result<()> {
        self.count_op("barrier");
        barrier_internal(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes() {
        // No rank may pass the barrier until all have arrived.
        let before = AtomicUsize::new(0);
        Universe::run(8, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(before.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn barrier_single_rank() {
        Universe::run(1, |comm| comm.barrier().unwrap());
    }

    #[test]
    fn repeated_barriers() {
        Universe::run(5, |comm| {
            for _ in 0..20 {
                comm.barrier().unwrap();
            }
        });
    }

    #[test]
    fn barrier_counts_one_op() {
        Universe::run(3, |comm| {
            let before = comm.call_counts();
            comm.barrier().unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("barrier"), 1);
            assert_eq!(delta.total(), 1);
        });
    }

    #[test]
    fn barrier_non_power_of_two() {
        let before = AtomicUsize::new(0);
        Universe::run(7, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(before.load(Ordering::SeqCst), 7);
        });
    }
}
