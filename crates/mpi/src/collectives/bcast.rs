//! Broadcast: binomial tree, plus the size-dispatched large-message
//! algorithm for paths where every rank knows the payload size.

use bytes::Bytes;

use super::algos::{self, BcastAlgo, BcastParts};
use super::{recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{
    as_bytes, as_bytes_mut, bytes_from_slice, bytes_from_vec, bytes_into_vec, bytes_to_vec,
    extend_vec_from_bytes,
};
use crate::{Plain, Rank};

/// Broadcasts `payload` (significant at root) down a binomial tree over
/// virtual ranks `vrank = (rank - root) mod p`; returns the payload on
/// every rank.
pub(crate) fn bcast_bytes_internal(
    comm: &Comm,
    payload: Option<Bytes>,
    root: Rank,
) -> Result<Bytes> {
    let p = comm.size();
    let rank = comm.rank();
    if root >= p {
        return Err(MpiError::InvalidRank {
            rank: root,
            comm_size: p,
        });
    }
    let tag = comm.next_internal_tag();
    let vrank = (rank + p - root) % p;

    let mut data = if rank == root {
        Some(payload.expect("root must supply a payload"))
    } else {
        None
    };

    // Receive from the parent: the parent of vrank v is v with its lowest
    // set bit cleared.
    if vrank != 0 {
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % p;
        data = Some(recv_internal(comm, parent, tag)?);
    }
    let data = data.expect("payload present after receive");

    bcast_forward(comm, vrank, root, tag, &data)?;
    Ok(data)
}

/// Forwards `data` to the binomial-tree children of `vrank` (relative to
/// `root`): vrank v has children v | (1 << k) for each k above v's
/// lowest set bit (all k for the root). Shared with the non-blocking
/// `ibcast` / `iallreduce` engines.
pub(crate) fn bcast_forward(
    comm: &Comm,
    vrank: usize,
    root: Rank,
    tag: crate::Tag,
    data: &Bytes,
) -> Result<()> {
    let p = comm.size();
    let low = if vrank == 0 {
        usize::BITS
    } else {
        vrank.trailing_zeros()
    };
    for k in 0..low.min(usize::BITS - 1) {
        let child_v = vrank | (1usize << k);
        if child_v == vrank || child_v >= p {
            break;
        }
        send_internal(comm, (child_v + root) % p, tag, data.clone())?;
    }
    Ok(())
}

/// Sized broadcast: `size` (bytes) is known and identical on every rank
/// (as `MPI_Bcast`'s count is), which lets the tuning pick the
/// large-message algorithm. Returns the payload as [`BcastParts`].
pub(crate) fn bcast_parts_internal(
    comm: &Comm,
    payload: Option<Bytes>,
    size: usize,
    root: Rank,
) -> Result<BcastParts> {
    let p = comm.size();
    if root >= p {
        return Err(MpiError::InvalidRank {
            rank: root,
            comm_size: p,
        });
    }
    algos::model::tick(comm)?;
    let algo = algos::model::select_bcast(comm, size);
    let _sp = crate::trace::span(
        crate::trace::cat::COLL,
        match algo {
            BcastAlgo::Binomial => "bcast/binomial",
            BcastAlgo::ScatterAllgather => "bcast/scatter_allgather",
        },
        size as u64,
        p as u64,
    );
    let begun = algos::model::measure_begin(comm);
    let out = match algo {
        BcastAlgo::Binomial => bcast_bytes_internal(comm, payload, root).map(BcastParts::Whole)?,
        BcastAlgo::ScatterAllgather => algos::bcast::scatter_allgather(comm, payload, size, root)?,
    };
    algos::model::observe(comm, algos::model::bcast_class(algo), begun, size as f64);
    Ok(out)
}

/// Broadcasts a single plain value (used internally for context ids).
pub(crate) fn bcast_one_internal<T: Plain>(comm: &Comm, value: T, root: Rank) -> Result<T> {
    let payload = (comm.rank() == root).then(|| bytes_from_slice(std::slice::from_ref(&value)));
    let bytes = bcast_bytes_internal(comm, payload, root)?;
    let v: Vec<T> = bytes_into_vec(bytes);
    Ok(v[0])
}

impl Comm {
    /// Broadcasts a raw payload from the root down the binomial tree,
    /// returning the shared payload on every rank (zero-copy transport:
    /// forwarding clones a refcount, and the returned [`Bytes`] aliases
    /// the delivered message). The binding layer adopts the payload
    /// directly into the caller's buffer with a single copy.
    pub fn bcast_bytes(&self, payload: Option<Bytes>, root: Rank) -> Result<Bytes> {
        self.count_op("bcast");
        bcast_bytes_internal(self, payload, root)
    }

    /// Broadcasts the root's buffer contents into every rank's buffer
    /// (mirrors `MPI_Bcast`). All ranks must pass buffers of equal
    /// length — which is what lets the tuning switch to the
    /// large-message algorithm on this path.
    pub fn bcast_into<T: Plain>(&self, buf: &mut [T], root: Rank) -> Result<()> {
        self.count_op("bcast");
        let size = std::mem::size_of_val(buf);
        let payload = (self.rank() == root).then(|| bytes_from_slice(buf));
        let parts = bcast_parts_internal(self, payload, size, root)?;
        if self.rank() != root {
            parts.write_into(as_bytes_mut(buf))?;
        }
        Ok(())
    }

    /// Sized byte-level broadcast: every rank passes the payload size
    /// (so the tuning may pick the large-message algorithm, which the
    /// size-discovering [`Comm::bcast_bytes`] cannot). The root's
    /// payload length must equal `size`.
    pub fn bcast_parts(
        &self,
        payload: Option<Bytes>,
        size: usize,
        root: Rank,
    ) -> Result<BcastParts> {
        self.count_op("bcast");
        if let Some(p) = &payload {
            if p.len() != size {
                return Err(MpiError::InvalidLayout(format!(
                    "bcast: root payload holds {} bytes but size says {size}",
                    p.len()
                )));
            }
        }
        bcast_parts_internal(self, payload, size, root)
    }

    /// Broadcasts a vector from the root; non-root ranks receive a fresh
    /// vector of whatever length the root sent (a convenience the C API
    /// lacks: the length travels with the message).
    ///
    /// Header-first sized protocol: the root prepends an 8-byte length
    /// header, so the sized tuning — including the large-message
    /// scatter+allgather algorithm — applies even though only the root
    /// knows the payload size up front. Under the binomial pick the
    /// header rides fused with the payload in a single message; under
    /// scatter+allgather an 8-byte header-only broadcast goes first and
    /// every rank then joins the chunked exchange. The root's choice is
    /// conveyed purely by message shape — non-roots never re-select.
    pub fn bcast_vec<T: Plain>(&self, data: Option<&[T]>, root: Rank) -> Result<Vec<T>> {
        self.count_op("bcast");
        let p = self.size();
        if root >= p {
            return Err(MpiError::InvalidRank {
                rank: root,
                comm_size: p,
            });
        }
        algos::model::tick(self)?;
        let begun = algos::model::measure_begin(self);
        if self.rank() == root {
            let data = data.expect("root must supply data");
            let size = std::mem::size_of_val(data);
            // Empty payloads always fuse: scatter+allgather cannot ship
            // zero-length chunks, and 8 bytes is trivially small anyway.
            let algo = if size == 0 {
                BcastAlgo::Binomial
            } else {
                algos::model::select_bcast(self, size)
            };
            let _sp = crate::trace::span(
                crate::trace::cat::COLL,
                match algo {
                    BcastAlgo::Binomial => "bcast/binomial",
                    BcastAlgo::ScatterAllgather => "bcast/scatter_allgather",
                },
                size as u64,
                p as u64,
            );
            match algo {
                BcastAlgo::Binomial => {
                    let mut fused: Vec<u8> = Vec::with_capacity(8 + size);
                    crate::metrics::record_alloc();
                    fused.extend_from_slice(&(size as u64).to_le_bytes());
                    extend_vec_from_bytes(&mut fused, as_bytes(data));
                    bcast_bytes_internal(self, Some(bytes_from_vec(fused)), root)?;
                    algos::model::observe(
                        self,
                        algos::AlgoClass::BcastBinomial,
                        begun,
                        size as f64,
                    );
                    Ok(bytes_to_vec(as_bytes(data)))
                }
                BcastAlgo::ScatterAllgather => {
                    bcast_bytes_internal(self, Some(bytes_from_slice(&[size as u64])), root)?;
                    let parts = algos::bcast::scatter_allgather(
                        self,
                        Some(bytes_from_slice(data)),
                        size,
                        root,
                    )?;
                    algos::model::observe(
                        self,
                        algos::AlgoClass::BcastScatterAllgather,
                        begun,
                        size as f64,
                    );
                    Ok(parts.into_vec())
                }
            }
        } else {
            let msg = bcast_bytes_internal(self, None, root)?;
            if msg.len() < 8 {
                return Err(MpiError::InvalidLayout(format!(
                    "bcast_vec: malformed size header ({} bytes)",
                    msg.len()
                )));
            }
            let size = u64::from_le_bytes(msg[..8].try_into().expect("8-byte header")) as usize;
            if msg.len() == 8 + size {
                // Fused header + payload: the root picked binomial.
                let _sp = crate::trace::span(
                    crate::trace::cat::COLL,
                    "bcast/binomial",
                    size as u64,
                    p as u64,
                );
                let out = bytes_to_vec(&msg[8..]);
                algos::model::observe(self, algos::AlgoClass::BcastBinomial, begun, size as f64);
                Ok(out)
            } else if msg.len() == 8 {
                // Header only: the root picked scatter+allgather; join it.
                let _sp = crate::trace::span(
                    crate::trace::cat::COLL,
                    "bcast/scatter_allgather",
                    size as u64,
                    p as u64,
                );
                let parts = algos::bcast::scatter_allgather(self, None, size, root)?;
                algos::model::observe(
                    self,
                    algos::AlgoClass::BcastScatterAllgather,
                    begun,
                    size as f64,
                );
                Ok(parts.into_vec())
            } else {
                Err(MpiError::InvalidLayout(format!(
                    "bcast_vec: header says {size} bytes but message carries {}",
                    msg.len() - 8
                )))
            }
        }
    }

    /// Broadcasts one plain value from the root.
    pub fn bcast_one<T: Plain>(&self, value: T, root: Rank) -> Result<T> {
        self.count_op("bcast");
        bcast_one_internal(self, value, root)
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn bcast_from_rank_zero() {
        Universe::run(8, |comm| {
            let mut buf = if comm.rank() == 0 {
                [1u64, 2, 3]
            } else {
                [0; 3]
            };
            comm.bcast_into(&mut buf, 0).unwrap();
            assert_eq!(buf, [1, 2, 3]);
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        for root in 0..5 {
            Universe::run(5, move |comm| {
                let mut buf = if comm.rank() == root {
                    [root as u32 + 100]
                } else {
                    [0]
                };
                comm.bcast_into(&mut buf, root).unwrap();
                assert_eq!(buf, [root as u32 + 100]);
            });
        }
    }

    #[test]
    fn bcast_vec_carries_length() {
        Universe::run(4, |comm| {
            let data = vec![9u16; 17];
            let got = comm
                .bcast_vec(
                    if comm.rank() == 2 {
                        Some(&data[..])
                    } else {
                        None
                    },
                    2,
                )
                .unwrap();
            assert_eq!(got, data);
        });
    }

    #[test]
    fn bcast_one_value() {
        Universe::run(6, |comm| {
            let v = comm
                .bcast_one(if comm.rank() == 3 { 0xABCDu32 } else { 0 }, 3)
                .unwrap();
            assert_eq!(v, 0xABCD);
        });
    }

    #[test]
    fn bcast_empty_buffer() {
        Universe::run(3, |comm| {
            let mut buf: [u8; 0] = [];
            comm.bcast_into(&mut buf, 0).unwrap();
        });
    }

    #[test]
    fn bcast_invalid_root() {
        Universe::run(2, |comm| {
            let mut buf = [0u8; 1];
            assert!(comm.bcast_into(&mut buf, 5).is_err());
        });
    }

    #[test]
    fn bcast_length_mismatch_is_truncation() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut buf = [1u32, 2];
                comm.bcast_into(&mut buf, 0).unwrap();
            } else {
                let mut buf = [0u32; 1];
                let err = comm.bcast_into(&mut buf, 0).unwrap_err();
                assert!(matches!(err, crate::MpiError::Truncated { .. }));
            }
        });
    }

    #[test]
    fn bcast_vec_large_payload_joins_scatter_allgather() {
        // 512 KiB at p = 4 crosses `bcast_scatter_min_bytes`: the
        // header-first protocol lets non-roots join van de Geijn without
        // supplying the length up front (no recv_count required).
        Universe::run(4, |comm| {
            let data: Vec<u64> = (0..65_536u64).map(|i| i.wrapping_mul(3) + 1).collect();
            let got = comm
                .bcast_vec(
                    if comm.rank() == 1 {
                        Some(&data[..])
                    } else {
                        None
                    },
                    1,
                )
                .unwrap();
            assert_eq!(got, data);
        });
    }

    #[test]
    fn bcast_vec_forced_scatter_allgather_via_header() {
        // A forced large-message algorithm engages on the sized vec path
        // even for small payloads; non-roots follow the header-only shape.
        Universe::run(5, |comm| {
            comm.set_tuning(
                crate::collectives::CollTuning::default()
                    .bcast(crate::collectives::BcastAlgo::ScatterAllgather),
            );
            let data: Vec<u16> = (0..23u16).collect();
            let got = comm
                .bcast_vec(
                    if comm.rank() == 3 {
                        Some(&data[..])
                    } else {
                        None
                    },
                    3,
                )
                .unwrap();
            assert_eq!(got, data);
        });
    }

    #[test]
    fn bcast_vec_empty_payload() {
        // Zero-length payloads always fuse into the binomial header.
        Universe::run(4, |comm| {
            let empty: [u32; 0] = [];
            let got: Vec<u32> = comm
                .bcast_vec(
                    if comm.rank() == 0 {
                        Some(&empty[..])
                    } else {
                        None
                    },
                    0,
                )
                .unwrap();
            assert!(got.is_empty());
        });
    }

    #[test]
    fn large_broadcast() {
        Universe::run(7, |comm| {
            let data: Vec<u64> = (0..10_000).collect();
            let got = comm
                .bcast_vec(
                    if comm.rank() == 0 {
                        Some(&data[..])
                    } else {
                        None
                    },
                    0,
                )
                .unwrap();
            assert_eq!(got.len(), 10_000);
            assert_eq!(got[9_999], 9_999);
        });
    }
}
