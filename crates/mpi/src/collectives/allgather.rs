//! Allgather and allgatherv.
//!
//! Equal-block allgathers are tunable (see [`super::algos`]): the ring
//! with block forwarding stays the bandwidth default, recursive
//! doubling takes the small-message latency regime on power-of-two
//! communicators, and Bruck covers that regime on every other
//! communicator size. `allgatherv`'s variable blocks always travel the
//! ring (the packed rounds of both latency algorithms need one agreed
//! block size).

use bytes::Bytes;

use super::algos::{
    allgather::{allgather_blocks_bruck, allgather_blocks_rd},
    AllgatherAlgo,
};
use super::{check_layout, recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{bytes_from_slice, copy_bytes_into, copy_slice, extend_vec_from_bytes};
use crate::Plain;

/// Ring primitive on shared payloads: each rank contributes `own` and
/// receives every other rank's block, returned **by origin rank**. At
/// every step the block received in the previous step is forwarded as
/// the *same* [`Bytes`] (a refcount clone) — a payload is serialized
/// exactly once, at its origin, no matter how many hops it travels.
pub(crate) fn allgather_blocks(comm: &Comm, own: Bytes) -> Result<Vec<Bytes>> {
    let p = comm.size();
    let rank = comm.rank();
    let mut blocks: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
    blocks[rank] = Some(own);
    if p > 1 {
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        let tag = comm.next_internal_tag();
        for step in 0..p - 1 {
            // Forward the block that originated at (rank - step) % p; the
            // incoming block originated one rank further left.
            let outgoing_origin = (rank + p - step) % p;
            let outgoing = blocks[outgoing_origin]
                .clone()
                .expect("block arrived in a previous step");
            send_internal(comm, right, tag, outgoing)?;
            let incoming_origin = (rank + p - 1 - step) % p;
            blocks[incoming_origin] = Some(recv_internal(comm, left, tag)?);
        }
    }
    Ok(blocks
        .into_iter()
        .map(|b| b.expect("ring delivered all blocks"))
        .collect())
}

/// Equal-block primitive with algorithm selection: every rank
/// contributes the same number of bytes (the `MPI_Allgather` contract),
/// so all ranks resolve the same [`AllgatherAlgo`] from the shared
/// tuning and the agreed block size.
pub(crate) fn allgather_blocks_tuned(comm: &Comm, own: Bytes) -> Result<Vec<Bytes>> {
    let bytes = own.len();
    super::algos::model::tick(comm)?;
    let algo = super::algos::model::select_allgather(comm, bytes);
    let _sp = crate::trace::span(
        crate::trace::cat::COLL,
        match algo {
            AllgatherAlgo::RecursiveDoubling => "allgather/recursive_doubling",
            AllgatherAlgo::Bruck => "allgather/bruck",
            AllgatherAlgo::Ring => "allgather/ring",
        },
        bytes as u64,
        comm.size() as u64,
    );
    let begun = super::algos::model::measure_begin(comm);
    let out = match algo {
        AllgatherAlgo::RecursiveDoubling => allgather_blocks_rd(comm, own)?,
        AllgatherAlgo::Bruck => allgather_blocks_bruck(comm, own)?,
        AllgatherAlgo::Ring => allgather_blocks(comm, own)?,
    };
    super::algos::model::observe(
        comm,
        super::algos::model::allgather_class(algo),
        begun,
        bytes as f64,
    );
    Ok(out)
}

/// Allgather of equal-size contributions; returns the concatenation
/// in rank order. Used internally (e.g. by `split`) without counting.
pub(crate) fn allgather_internal<T: Plain>(comm: &Comm, send: &[T]) -> Result<Vec<T>> {
    let blocks = allgather_blocks_tuned(comm, bytes_from_slice(send))?;
    let total: usize = blocks.iter().map(|b| b.len()).sum();
    let mut result: Vec<T> = Vec::with_capacity(crate::plain::element_count::<T>(total));
    for b in &blocks {
        extend_vec_from_bytes(&mut result, b);
    }
    Ok(result)
}

impl Comm {
    /// Gathers equal-sized contributions from all ranks to all ranks,
    /// rank-ordered (mirrors `MPI_Allgather`). `recv` must hold
    /// `p * send.len()` elements. Ring algorithm: `p-1` messages per rank.
    pub fn allgather_into<T: Plain>(&self, send: &[T], recv: &mut [T]) -> Result<()> {
        self.count_op("allgather");
        let p = self.size();
        let n = send.len();
        if recv.len() < p * n {
            return Err(MpiError::InvalidLayout(format!(
                "allgather: receive buffer holds {} elements, need {}",
                recv.len(),
                p * n
            )));
        }
        let all = allgather_internal(self, send)?;
        copy_slice(&all, &mut recv[..p * n]);
        Ok(())
    }

    /// Gathers equal-sized contributions into a fresh vector.
    pub fn allgather_vec<T: Plain>(&self, send: &[T]) -> Result<Vec<T>> {
        self.count_op("allgather");
        allgather_internal(self, send)
    }

    /// In-place allgather mirroring the `MPI_IN_PLACE` idiom of Fig. 2:
    /// `buf` holds `p` blocks of `buf.len() / p` elements; each rank's own
    /// block is read from position `rank` and every block is filled on
    /// return.
    pub fn allgather_in_place<T: Plain>(&self, buf: &mut [T]) -> Result<()> {
        self.count_op("allgather");
        let p = self.size();
        if !buf.len().is_multiple_of(p) {
            return Err(MpiError::InvalidLayout(format!(
                "allgather in place: buffer length {} not divisible by {p}",
                buf.len()
            )));
        }
        let n = buf.len() / p;
        let own = &buf[self.rank() * n..(self.rank() + 1) * n];
        let blocks = allgather_blocks_tuned(self, bytes_from_slice(own))?;
        for (origin, bytes) in blocks.iter().enumerate() {
            if origin == self.rank() {
                continue; // own block is already in place
            }
            let dst = &mut buf[origin * n..(origin + 1) * n];
            if bytes.len() != std::mem::size_of_val(dst) {
                return Err(MpiError::Truncated {
                    message_bytes: bytes.len(),
                    buffer_bytes: std::mem::size_of_val(dst),
                });
            }
            copy_bytes_into(bytes, dst);
        }
        Ok(())
    }

    /// Gathers variable-sized contributions from all ranks to all ranks
    /// (mirrors `MPI_Allgatherv`). All ranks must pass identical
    /// `counts`/`displs`.
    pub fn allgatherv_into<T: Plain>(
        &self,
        send: &[T],
        recv: &mut [T],
        counts: &[usize],
        displs: &[usize],
    ) -> Result<()> {
        self.count_op("allgatherv");
        allgatherv_internal(self, send, recv, counts, displs)
    }
}

/// Ring allgatherv: forwards shared blocks around the ring (no per-hop
/// re-serialization) and writes each rank's block at its displacement
/// exactly once.
pub(crate) fn allgatherv_internal<T: Plain>(
    comm: &Comm,
    send: &[T],
    recv: &mut [T],
    counts: &[usize],
    displs: &[usize],
) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    check_layout("allgatherv", counts, displs, recv.len(), p)?;
    if send.len() != counts[rank] {
        return Err(MpiError::InvalidLayout(format!(
            "allgatherv: rank {rank} sends {} elements but counts[{rank}] = {}",
            send.len(),
            counts[rank]
        )));
    }
    copy_slice(send, &mut recv[displs[rank]..displs[rank] + counts[rank]]);
    if p == 1 {
        return Ok(());
    }
    let blocks = allgather_blocks(comm, bytes_from_slice(send))?;
    for (origin, bytes) in blocks.iter().enumerate() {
        if origin == rank {
            continue; // own block already placed
        }
        let dst = &mut recv[displs[origin]..displs[origin] + counts[origin]];
        if bytes.len() != std::mem::size_of_val(dst) {
            return Err(MpiError::Truncated {
                message_bytes: bytes.len(),
                buffer_bytes: std::mem::size_of_val(dst),
            });
        }
        copy_bytes_into(bytes, dst);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn allgather_concatenates_in_rank_order() {
        Universe::run(5, |comm| {
            let mine = [comm.rank() as u64 * 10, comm.rank() as u64 * 10 + 1];
            let all = comm.allgather_vec(&mine).unwrap();
            let expected: Vec<u64> = (0..5).flat_map(|r| [r * 10, r * 10 + 1]).collect();
            assert_eq!(all, expected);
        });
    }

    #[test]
    fn allgather_into_buffer() {
        Universe::run(3, |comm| {
            let mine = [comm.rank() as u8];
            let mut all = [0u8; 3];
            comm.allgather_into(&mine, &mut all).unwrap();
            assert_eq!(all, [0, 1, 2]);
        });
    }

    #[test]
    fn allgather_in_place_fig2_idiom() {
        Universe::run(4, |comm| {
            let mut counts = vec![0usize; 4];
            counts[comm.rank()] = comm.rank() + 100;
            comm.allgather_in_place(&mut counts).unwrap();
            assert_eq!(counts, vec![100, 101, 102, 103]);
        });
    }

    #[test]
    fn allgather_single_rank() {
        Universe::run(1, |comm| {
            let all = comm.allgather_vec(&[42u32]).unwrap();
            assert_eq!(all, vec![42]);
        });
    }

    #[test]
    fn allgatherv_variable_blocks() {
        Universe::run(4, |comm| {
            let mine: Vec<u32> = vec![comm.rank() as u32; comm.rank() + 1];
            let counts = [1usize, 2, 3, 4];
            let displs = [0usize, 1, 3, 6];
            let mut recv = vec![u32::MAX; 10];
            comm.allgatherv_into(&mine, &mut recv, &counts, &displs)
                .unwrap();
            assert_eq!(recv, vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3]);
        });
    }

    #[test]
    fn allgatherv_with_gaps() {
        // Displacements may leave gaps; untouched entries must survive.
        Universe::run(2, |comm| {
            let mine = vec![comm.rank() as u16 + 1];
            let counts = [1usize, 1];
            let displs = [0usize, 2];
            let mut recv = vec![99u16; 3];
            comm.allgatherv_into(&mine, &mut recv, &counts, &displs)
                .unwrap();
            assert_eq!(recv, vec![1, 99, 2]);
        });
    }

    #[test]
    fn allgatherv_wrong_count_errors() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                // counts say rank 0 sends 2 but it sends 1.
                let counts = [2usize, 1];
                let displs = [0usize, 2];
                let mut recv = vec![0u8; 3];
                assert!(comm
                    .allgatherv_into(&[1u8], &mut recv, &counts, &displs)
                    .is_err());
            }
        });
    }

    #[test]
    fn recursive_doubling_matches_ring() {
        use crate::{AllgatherAlgo, CollTuning};
        for p in [1, 2, 4, 8, 16] {
            Universe::run(p, move |comm| {
                let mine: Vec<u64> = (0..3).map(|i| comm.rank() as u64 * 100 + i).collect();
                comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::Ring));
                let ring = comm.allgather_vec(&mine).unwrap();
                comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::RecursiveDoubling));
                let rd = comm.allgather_vec(&mine).unwrap();
                assert_eq!(ring, rd, "p = {p}");
            });
        }
    }

    #[test]
    fn recursive_doubling_in_place_and_auto() {
        use crate::{AllgatherAlgo, CollTuning};
        Universe::run(8, |comm| {
            comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::RecursiveDoubling));
            let mut counts = vec![0usize; 8];
            counts[comm.rank()] = comm.rank() + 100;
            comm.allgather_in_place(&mut counts).unwrap();
            assert_eq!(counts, (100..108).collect::<Vec<_>>());
            // Auto picks RD below the threshold on this power-of-two
            // communicator; the result is identical either way.
            comm.set_tuning(CollTuning::default());
            let all = comm.allgather_vec(&[comm.rank() as u32]).unwrap();
            assert_eq!(all, (0..8).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bruck_matches_ring_on_any_p() {
        use crate::{AllgatherAlgo, CollTuning};
        for p in [1, 2, 3, 5, 6, 7, 8, 11, 16] {
            Universe::run(p, move |comm| {
                let mine: Vec<u64> = (0..3).map(|i| comm.rank() as u64 * 100 + i).collect();
                comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::Ring));
                let ring = comm.allgather_vec(&mine).unwrap();
                comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::Bruck));
                let bruck = comm.allgather_vec(&mine).unwrap();
                assert_eq!(ring, bruck, "p = {p}");
            });
        }
    }

    #[test]
    fn bruck_in_place_and_auto_on_non_power_of_two() {
        use crate::{AllgatherAlgo, CollTuning};
        Universe::run(6, |comm| {
            comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::Bruck));
            let mut counts = vec![0usize; 6];
            counts[comm.rank()] = comm.rank() + 100;
            comm.allgather_in_place(&mut counts).unwrap();
            assert_eq!(counts, (100..106).collect::<Vec<_>>());
            // Auto picks Bruck below the threshold on this
            // non-power-of-two communicator; identical result.
            comm.set_tuning(CollTuning::default());
            let all = comm.allgather_vec(&[comm.rank() as u32]).unwrap();
            assert_eq!(all, (0..6).collect::<Vec<_>>());
        });
    }

    #[test]
    fn forced_rd_on_non_power_of_two_falls_back() {
        use crate::{AllgatherAlgo, CollTuning};
        Universe::run(5, |comm| {
            comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::RecursiveDoubling));
            let all = comm.allgather_vec(&[comm.rank() as u16 * 2]).unwrap();
            assert_eq!(all, vec![0, 2, 4, 6, 8]);
        });
    }

    #[test]
    fn allgather_empty_contribution() {
        Universe::run(3, |comm| {
            let all = comm.allgather_vec::<u64>(&[]).unwrap();
            assert!(all.is_empty());
        });
    }
}
