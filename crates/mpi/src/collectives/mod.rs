//! Collective operations.
//!
//! Every collective is implemented **on top of the point-to-point layer**
//! with its textbook algorithm (Sanders et al., "Sequential and Parallel
//! Algorithms and Data Structures"):
//!
//! With `s` = bytes this rank sends and `r` = bytes of its final result,
//! the copies-per-rank column states the payload bytes memcpy'd by that
//! rank on the shared-`Bytes` datapath (forwarding a received payload is
//! a refcount clone, never a re-serialization; see [`crate::metrics`]):
//!
//! | operation        | algorithm                              | startups (per rank) | copies per rank      |
//! |------------------|----------------------------------------|---------------------|----------------------|
//! | `barrier`        | dissemination                          | ceil(log2 p)        | 0                    |
//! | `bcast`          | binomial tree                          | <= log2 p           | root: s; other: r    |
//! | `gather/scatter` | flat tree (linear at root)             | 1 (root: p-1)       | root: s + r; other: s + r |
//! | `allgather(v)`   | ring, block forwarding                 | p-1                 | s + r                |
//! | `alltoall(v/w)`  | pairwise exchange, pack-once + slice   | p-1                 | s + r                |
//! | `reduce`         | binomial tree (commutative ops)        | <= log2 p           | O(s log p) (folds)   |
//! | `allreduce`      | recursive doubling with non-pow2 fixup | ~log2 p             | O(s log p) (folds)   |
//! | `scan/exscan`    | linear chain                           | 1                   | O(s)                 |
//!
//! The reductions copy at every combining step because folding *reads
//! and rewrites* the accumulator — that is compute, not transport
//! overhead. Every non-reducing collective is bounded by `s + r`: each
//! payload byte is serialized once at its origin and materialized once
//! at each destination, independent of hop count or child count.
//!
//! This matters for the reproduction: the paper's §V-A compares all-to-all
//! strategies whose distinguishing property is *how many messages* they
//! send; building collectives from p2p makes those counts real (and
//! chargeable by the virtual clock) rather than hidden inside an opaque
//! vendor implementation.
//!
//! The internal (`*_internal`) functions do not bump the PMPI-style call
//! counters; the public `Comm` methods count exactly one operation per
//! user-visible call, so binding tests can assert which MPI operations a
//! KaMPIng call expands to.

mod allgather;
mod alltoall;
mod barrier;
mod bcast;
mod gather;
pub(crate) mod nonblocking;
mod reduce;
mod scan;
mod scatter;

pub(crate) use allgather::allgather_internal;
pub(crate) use alltoall::alltoallv_internal;
pub(crate) use bcast::{bcast_bytes_internal, bcast_one_internal};
pub(crate) use reduce::allreduce_internal;

use bytes::Bytes;

use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::message::{Src, TagSel};
use crate::plain::bytes_from_slice;
use crate::{Plain, Rank, Tag};

/// Sends raw bytes on an internal (negative) tag. Passing a clone of an
/// already-shared payload costs a refcount bump, not a copy.
#[inline]
pub(crate) fn send_internal(comm: &Comm, dest: Rank, tag: Tag, payload: Bytes) -> Result<()> {
    comm.deliver_bytes(dest, tag, payload, None)
}

/// Sends a typed slice on an internal tag (one counted copy into the
/// transport).
#[inline]
pub(crate) fn send_slice_internal<T: Plain>(
    comm: &Comm,
    dest: Rank,
    tag: Tag,
    data: &[T],
) -> Result<()> {
    send_internal(comm, dest, tag, bytes_from_slice(data))
}

/// Receives raw bytes from an exact source on an internal tag (the
/// payload is moved out of the envelope — no copy).
#[inline]
pub(crate) fn recv_internal(comm: &Comm, src: Rank, tag: Tag) -> Result<Bytes> {
    let env = comm.recv_envelope(Src::Rank(src), TagSel::Is(tag))?;
    Ok(env.payload)
}

/// Receives a typed vector from an exact source on an internal tag.
#[inline]
pub(crate) fn recv_vec_internal<T: Plain>(comm: &Comm, src: Rank, tag: Tag) -> Result<Vec<T>> {
    let bytes = recv_internal(comm, src, tag)?;
    Ok(crate::plain::bytes_into_vec(bytes))
}

/// Validates a counts/displacements layout against a buffer length.
pub(crate) fn check_layout(
    what: &str,
    counts: &[usize],
    displs: &[usize],
    buf_len: usize,
    comm_size: usize,
) -> Result<()> {
    if counts.len() != comm_size {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: counts has {} entries for communicator of size {comm_size}",
            counts.len()
        )));
    }
    if displs.len() != comm_size {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: displs has {} entries for communicator of size {comm_size}",
            displs.len()
        )));
    }
    for r in 0..comm_size {
        let end = displs[r].checked_add(counts[r]).ok_or_else(|| {
            MpiError::InvalidLayout(format!("{what}: displacement overflow at rank {r}"))
        })?;
        if end > buf_len {
            return Err(MpiError::InvalidLayout(format!(
                "{what}: rank {r} block [{}..{end}) exceeds buffer length {buf_len}",
                displs[r]
            )));
        }
    }
    Ok(())
}

/// Computes exclusive-prefix-sum displacements from counts
/// (the ubiquitous `std::exclusive_scan` pattern of Fig. 2).
pub fn displacements_from_counts(counts: &[usize]) -> Vec<usize> {
    let mut displs = Vec::with_capacity(counts.len());
    let mut acc = 0usize;
    for &c in counts {
        displs.push(acc);
        acc += c;
    }
    displs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_computation() {
        assert_eq!(displacements_from_counts(&[3, 1, 0, 2]), vec![0, 3, 4, 4]);
        assert_eq!(displacements_from_counts(&[]), Vec::<usize>::new());
    }

    #[test]
    fn layout_validation() {
        assert!(check_layout("t", &[1, 2], &[0, 1], 3, 2).is_ok());
        // counts length mismatch
        assert!(check_layout("t", &[1], &[0, 1], 3, 2).is_err());
        // displs length mismatch
        assert!(check_layout("t", &[1, 2], &[0], 3, 2).is_err());
        // out of bounds
        assert!(check_layout("t", &[1, 3], &[0, 1], 3, 2).is_err());
    }

    #[test]
    fn layout_overflow_detected() {
        assert!(check_layout("t", &[2], &[usize::MAX], 3, 1).is_err());
    }
}
