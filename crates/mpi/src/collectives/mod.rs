//! Collective operations.
//!
//! Every collective is implemented **on top of the point-to-point layer**
//! with its textbook algorithm (Sanders et al., "Sequential and Parallel
//! Algorithms and Data Structures"):
//!
//! With `s` = bytes this rank sends, `r` = bytes of its final result and
//! `b` = bytes of one alltoall block, the copies-per-rank column states
//! the payload bytes memcpy'd by that rank on the shared-`Bytes`
//! datapath (forwarding a received payload is a refcount clone, never a
//! re-serialization, and in-place folds over delivered payloads are
//! compute, not copies; see [`crate::metrics`]).
//!
//! The hot collectives are **tunable** (see [`algos`]): a
//! per-communicator [`CollTuning`] policy selects the
//! algorithm at call time, by default switching at the listed size
//! thresholds (chosen so the default is never slower under the cluster
//! cost model than the former single-algorithm behaviour):
//!
//! | operation        | algorithm                              | startups (per rank) | copies per rank      | selected when |
//! |------------------|----------------------------------------|---------------------|----------------------|---------------|
//! | `barrier`        | dissemination                          | ceil(log2 p)        | 0                    | always |
//! | `bcast`          | binomial tree                          | <= log2 p           | root: s; other: r    | `s < 256 KiB`, or size unknown at non-roots |
//! | `bcast`          | scatter + ring allgather (van de Geijn)| ~2p                 | root: s; other: r    | sized paths, `p >= 4`, `s >= 256 KiB` |
//! | `gather/scatter` | flat tree (linear at root)             | 1 (root: p-1)       | root: s + r; other: s + r | always |
//! | `allgather`      | ring, block forwarding                 | p-1                 | s + r                | `s > 8 KiB`, or `p < 4` |
//! | `allgather`      | recursive doubling (packed rounds)     | log2 p              | s·(p-1) + r          | `p >= 4` power of two, `s <= 8 KiB` |
//! | `allgather`      | Bruck (rotated packed rounds, any p)   | ceil(log2 p)        | <= s·(p-1) + r       | `p >= 4` not a power of two, `s <= 8 KiB` |
//! | `allgatherv`     | ring, block forwarding                 | p-1                 | s + r                | always |
//! | `alltoall`       | pairwise exchange, pack-once + slice   | p-1                 | s + r                | `b > 1 KiB` |
//! | `alltoall`       | Bruck (packed log-round forwarding)    | ceil(log2 p)        | s + r + s·ceil(log2 p)/2 | `p >= 4`, `b <= 1 KiB` |
//! | `alltoall(v/w)`  | pairwise exchange, pack-once + slice   | p-1                 | s + r                | always |
//! | `reduce`         | binomial tree, in-place folds          | <= log2 p           | non-root: s; root: r | op commutative |
//! | `reduce`         | flat gather + ordered fold             | 1 (root: p-1)       | s (root: + r)        | op non-commutative |
//! | `allreduce`      | recursive doubling, in-place folds     | ~log2 p             | s·log2 p             | `s < 128 KiB` |
//! | `allreduce`      | Rabenseifner (reduce-scatter + ring allgather) | log2 p + p  | ~2s                  | `p >= 4`, `s >= 128 KiB` |
//! | `scan/exscan`    | linear chain, in-place folds           | 1                   | scan: <= 2s; exscan: s | always |
//!
//! Every non-reducing collective is bounded by `s + r` (+ Bruck's
//! deliberate repack trade): each payload byte is serialized once at its
//! origin and materialized once at each destination, independent of hop
//! count or child count. The reductions' former `O(s log p)`
//! materialization bill is gone: combining steps fold the delivered
//! payload into the accumulator in place.
//!
//! The "selected when" column is the *static* policy — the warm-up
//! fallback. With [`CollTuning::self_tuning`] enabled, `Auto` is
//! instead driven by the communicator's **measured cost model**
//! ([`algos::model`]): an online per-class alpha-beta estimator fed by
//! wall-clock measurements of the calls that actually ran, folded on
//! rank 0 and published to all ranks on an epoch cadence so matching
//! calls keep selecting identically. The model is inherited on
//! `dup`/`split`, resettable ([`Comm::reset_model`]), frozen into
//! persistent plans at `*_init`, and never overrides `Select::Force`.
//! Decision counters are exposed per rank via [`Comm::tuning_stats`]
//! and `RankStats::tuning`.
//!
//! This matters for the reproduction: the paper's §V-A compares all-to-all
//! strategies whose distinguishing property is *how many messages* they
//! send; building collectives from p2p makes those counts real (and
//! chargeable by the virtual clock) rather than hidden inside an opaque
//! vendor implementation.
//!
//! The internal (`*_internal`) functions do not bump the PMPI-style call
//! counters; the public `Comm` methods count exactly one operation per
//! user-visible call, so binding tests can assert which MPI operations a
//! KaMPIng call expands to.

pub mod algos;
mod allgather;
mod alltoall;
mod barrier;
mod bcast;
mod gather;
pub mod neighborhood;
pub(crate) mod nonblocking;
mod reduce;
mod scan;
mod scatter;

pub use algos::{
    AlgoClass, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, BcastParts, ClassEstimate,
    ClassStat, CollTuning, ModelConfig, ModelSnapshot, NeighborhoodAlgo, ReduceAlgo, Select,
    TuningStats,
};
pub(crate) use allgather::{allgather_blocks, allgather_internal};
pub(crate) use alltoall::alltoallv_internal;
pub(crate) use bcast::{bcast_bytes_internal, bcast_forward, bcast_one_internal};
pub(crate) use reduce::allreduce_internal;

use bytes::Bytes;

use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::message::{Src, TagSel};
use crate::plain::bytes_from_slice;
use crate::{Plain, Rank, Tag};

/// Sends raw bytes on an internal (negative) tag. Passing a clone of an
/// already-shared payload costs a refcount bump, not a copy.
#[inline]
pub(crate) fn send_internal(comm: &Comm, dest: Rank, tag: Tag, payload: Bytes) -> Result<()> {
    comm.deliver_bytes(dest, tag, payload, None)
}

/// Sends a typed slice on an internal tag (one counted copy into the
/// transport).
#[inline]
pub(crate) fn send_slice_internal<T: Plain>(
    comm: &Comm,
    dest: Rank,
    tag: Tag,
    data: &[T],
) -> Result<()> {
    send_internal(comm, dest, tag, bytes_from_slice(data))
}

/// Receives raw bytes from an exact source on an internal tag (the
/// payload is moved out of the envelope — no copy).
#[inline]
pub(crate) fn recv_internal(comm: &Comm, src: Rank, tag: Tag) -> Result<Bytes> {
    let env = comm.recv_envelope(Src::Rank(src), TagSel::Is(tag))?;
    Ok(env.payload)
}

/// Validates a counts/displacements layout against a buffer length.
pub(crate) fn check_layout(
    what: &str,
    counts: &[usize],
    displs: &[usize],
    buf_len: usize,
    comm_size: usize,
) -> Result<()> {
    if counts.len() != comm_size {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: counts has {} entries for communicator of size {comm_size}",
            counts.len()
        )));
    }
    if displs.len() != comm_size {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: displs has {} entries for communicator of size {comm_size}",
            displs.len()
        )));
    }
    for r in 0..comm_size {
        let end = displs[r].checked_add(counts[r]).ok_or_else(|| {
            MpiError::InvalidLayout(format!("{what}: displacement overflow at rank {r}"))
        })?;
        if end > buf_len {
            return Err(MpiError::InvalidLayout(format!(
                "{what}: rank {r} block [{}..{end}) exceeds buffer length {buf_len}",
                displs[r]
            )));
        }
    }
    Ok(())
}

/// Computes exclusive-prefix-sum displacements from counts
/// (the ubiquitous `std::exclusive_scan` pattern of Fig. 2).
pub fn displacements_from_counts(counts: &[usize]) -> Vec<usize> {
    let mut displs = Vec::with_capacity(counts.len());
    let mut acc = 0usize;
    for &c in counts {
        displs.push(acc);
        acc += c;
    }
    displs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_computation() {
        assert_eq!(displacements_from_counts(&[3, 1, 0, 2]), vec![0, 3, 4, 4]);
        assert_eq!(displacements_from_counts(&[]), Vec::<usize>::new());
    }

    #[test]
    fn layout_validation() {
        assert!(check_layout("t", &[1, 2], &[0, 1], 3, 2).is_ok());
        // counts length mismatch
        assert!(check_layout("t", &[1], &[0, 1], 3, 2).is_err());
        // displs length mismatch
        assert!(check_layout("t", &[1, 2], &[0], 3, 2).is_err());
        // out of bounds
        assert!(check_layout("t", &[1, 3], &[0, 1], 3, 2).is_err());
    }

    #[test]
    fn layout_overflow_detected() {
        assert!(check_layout("t", &[2], &[usize::MAX], 3, 1).is_err());
    }
}
