//! Reduce and allreduce.
//!
//! Commutative operations run the tree algorithms selected by the
//! communicator's [`CollTuning`](super::algos::CollTuning): binomial
//! reduce with in-place folds, and recursive doubling or Rabenseifner
//! for allreduce (see [`super::algos`]). Non-commutative operations fall
//! back to gather + ordered local fold (+ broadcast), which preserves
//! strict rank order for any `p`.

use super::algos::{self, ReduceAlgo};
use super::send_slice_internal;
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::op::ReduceOp;
use crate::{Plain, Rank};

/// Elementwise combine; `low` must come from the lower-ranked block.
fn combine<T: Plain, O: ReduceOp<T>>(low: &mut [T], high: &[T], op: &O) {
    debug_assert_eq!(low.len(), high.len());
    for (a, b) in low.iter_mut().zip(high) {
        *a = op.apply(a, b);
    }
}

pub(crate) fn allreduce_internal<T: Plain, O: ReduceOp<T>>(
    comm: &Comm,
    send: &[T],
    op: &O,
) -> Result<Vec<T>> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return Ok(send.to_vec());
    }
    if !op.is_commutative() {
        // Gather + ordered fold + broadcast keeps strict rank order.
        let gathered = comm.gatherv_vec_uncounted(send, 0)?;
        let result = if rank == 0 {
            let (data, counts) = gathered.expect("root gathered");
            Some(fold_blocks(&data, &counts, op))
        } else {
            None
        };
        // The folded result moves into the broadcast payload (no copy).
        let payload = result.map(crate::plain::bytes_from_vec);
        let bytes = super::bcast_bytes_internal(comm, payload, 0)?;
        return Ok(crate::plain::bytes_into_vec(bytes));
    }
    algos::allreduce::dispatch(comm, send, op)
}

fn fold_blocks<T: Plain, O: ReduceOp<T>>(data: &[T], counts: &[usize], op: &O) -> Vec<T> {
    let n = counts[0];
    debug_assert!(
        counts.iter().all(|&c| c == n),
        "reduce blocks must be equal-sized"
    );
    let mut acc = data[..n].to_vec();
    for r in 1..counts.len() {
        combine(&mut acc, &data[r * n..(r + 1) * n], op);
    }
    acc
}

impl Comm {
    /// Variant of gatherv_vec that does not bump the call counters (used
    /// inside other collectives).
    pub(crate) fn gatherv_vec_uncounted<T: Plain>(
        &self,
        send: &[T],
        root: Rank,
    ) -> Result<Option<(Vec<T>, Vec<usize>)>> {
        let tag = self.next_internal_tag();
        if self.rank() == root {
            let (data, counts) = super::gather::gather_assemble(self, tag, send, root)?;
            Ok(Some((data, counts)))
        } else {
            send_slice_internal(self, root, tag, send)?;
            Ok(None)
        }
    }

    /// Elementwise reduction to the root (mirrors `MPI_Reduce`). `recv` is
    /// significant at the root only and must match `send` in length there.
    pub fn reduce_into<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: O,
        root: Rank,
    ) -> Result<()> {
        self.count_op("reduce");
        self.check_rank(root)?;
        let rank = self.rank();

        let bytes = std::mem::size_of_val(send);
        algos::model::tick(self)?;
        let algo = algos::model::select_reduce(self, op.is_commutative(), bytes);
        let _sp = crate::trace::span(
            crate::trace::cat::COLL,
            match algo {
                ReduceAlgo::FlatGather => "reduce/flat_gather",
                ReduceAlgo::BinomialTree => "reduce/binomial_tree",
            },
            bytes as u64,
            self.size() as u64,
        );
        let begun = algos::model::measure_begin(self);
        let folded: Option<Vec<T>> = match algo {
            ReduceAlgo::FlatGather => {
                let gathered = self.gatherv_vec_uncounted(send, root)?;
                gathered.map(|(data, counts)| fold_blocks(&data, &counts, &op))
            }
            ReduceAlgo::BinomialTree => {
                // Binomial tree over virtual ranks, folding delivered
                // payloads in place (no materialization per child).
                let tag = self.next_internal_tag();
                algos::reduce::binomial_inplace(self, tag, send, &op, root)?
            }
        };
        algos::model::observe(self, algos::model::reduce_class(algo), begun, bytes as f64);
        if rank == root {
            let folded = folded.expect("root holds the folded result");
            if recv.len() != folded.len() {
                return Err(MpiError::InvalidLayout(format!(
                    "reduce: receive buffer holds {} elements, need {}",
                    recv.len(),
                    folded.len()
                )));
            }
            crate::plain::copy_slice(&folded, recv);
        }
        Ok(())
    }

    /// Elementwise reduction to all ranks (mirrors `MPI_Allreduce`).
    pub fn allreduce_into<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: O,
    ) -> Result<()> {
        self.count_op("allreduce");
        if send.len() != recv.len() {
            return Err(MpiError::InvalidLayout(format!(
                "allreduce: send has {} elements, recv has {}",
                send.len(),
                recv.len()
            )));
        }
        let out = allreduce_internal(self, send, &op)?;
        crate::plain::copy_slice(&out, recv);
        Ok(())
    }

    /// Elementwise reduction to all ranks, returning a fresh vector (no
    /// receive-buffer copy; the algorithm's accumulator moves out).
    pub fn allreduce_vec<T: Plain, O: ReduceOp<T>>(&self, send: &[T], op: O) -> Result<Vec<T>> {
        self.count_op("allreduce");
        allreduce_internal(self, send, &op)
    }

    /// Reduces a single value to all ranks.
    pub fn allreduce_one<T: Plain, O: ReduceOp<T>>(&self, value: T, op: O) -> Result<T> {
        self.count_op("allreduce");
        let out = allreduce_internal(self, std::slice::from_ref(&value), &op)?;
        Ok(out[0])
    }
}

#[cfg(test)]
mod tests {
    use crate::op::{Max, Min, Sum};
    use crate::{non_commutative, Universe};

    #[test]
    fn allreduce_sum() {
        for p in [1, 2, 3, 4, 5, 7, 8] {
            Universe::run(p, move |comm| {
                let total = comm.allreduce_one(comm.rank() as u64 + 1, Sum).unwrap();
                let expected = (p * (p + 1) / 2) as u64;
                assert_eq!(total, expected, "p = {p}");
            });
        }
    }

    #[test]
    fn allreduce_elementwise_min_max() {
        Universe::run(4, |comm| {
            let r = comm.rank() as i64;
            let mine = [r, -r];
            let mut lo = [0i64; 2];
            let mut hi = [0i64; 2];
            comm.allreduce_into(&mine, &mut lo, Min).unwrap();
            comm.allreduce_into(&mine, &mut hi, Max).unwrap();
            assert_eq!(lo, [0, -3]);
            assert_eq!(hi, [3, 0]);
        });
    }

    #[test]
    fn allreduce_closure_op() {
        Universe::run(3, |comm| {
            let prod = comm
                .allreduce_one(comm.rank() as u64 + 2, |a: &u64, b: &u64| a * b)
                .unwrap();
            assert_eq!(prod, 2 * 3 * 4);
        });
    }

    #[test]
    fn allreduce_non_commutative_preserves_order() {
        // String-like concatenation encoded as digit mixing:
        // f(a, b) = a * 10 + b is associative-ish over this domain for a
        // left fold; rank order 0..p must be preserved exactly.
        for p in [2, 3, 5] {
            Universe::run(p, move |comm| {
                let op = non_commutative(|a: &u64, b: &u64| a * 10 + b);
                let out = comm.allreduce_one(comm.rank() as u64 + 1, op).unwrap();
                let expected =
                    (1..=p as u64).fold(0, |acc, d| if acc == 0 { d } else { acc * 10 + d });
                assert_eq!(out, expected, "p = {p}");
            });
        }
    }

    #[test]
    fn reduce_to_each_root() {
        for root in 0..4 {
            Universe::run(4, move |comm| {
                let mine = [comm.rank() as u32, 1];
                let mut out = [0u32; 2];
                comm.reduce_into(&mine, &mut out, Sum, root).unwrap();
                if comm.rank() == root {
                    assert_eq!(out, [1 + 2 + 3, 4]);
                }
            });
        }
    }

    #[test]
    fn reduce_non_commutative() {
        Universe::run(4, |comm| {
            let op = non_commutative(|a: &u64, b: &u64| a * 10 + b);
            let mine = [comm.rank() as u64];
            let mut out = [0u64];
            comm.reduce_into(&mine, &mut out, op, 1).unwrap();
            if comm.rank() == 1 {
                assert_eq!(out[0], 123); // 0,1,2,3 folded left-to-right
            }
        });
    }

    #[test]
    fn allreduce_length_mismatch_errors() {
        Universe::run(1, |comm| {
            let mut out = [0u8; 2];
            assert!(comm.allreduce_into(&[1u8], &mut out, Sum).is_err());
        });
    }

    #[test]
    fn allreduce_float_sum() {
        Universe::run(6, |comm| {
            let s = comm.allreduce_one(0.5f64, Sum).unwrap();
            assert!((s - 3.0).abs() < 1e-12);
        });
    }
}
