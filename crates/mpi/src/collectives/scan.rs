//! Inclusive and exclusive prefix reductions (linear chain).

use super::{recv_vec_internal, send_slice_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::op::ReduceOp;
use crate::Plain;

impl Comm {
    /// Inclusive prefix reduction (mirrors `MPI_Scan`): rank `r` receives
    /// the elementwise reduction over ranks `0..=r`. Rank order is always
    /// preserved, so non-commutative operations are safe.
    pub fn scan_into<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: O,
    ) -> Result<()> {
        self.count_op("scan");
        if send.len() != recv.len() {
            return Err(MpiError::InvalidLayout(format!(
                "scan: send has {} elements, recv has {}",
                send.len(),
                recv.len()
            )));
        }
        let rank = self.rank();
        let p = self.size();
        let tag = self.next_internal_tag();
        let mut acc = send.to_vec();
        if rank > 0 {
            let prefix: Vec<T> = recv_vec_internal(self, rank - 1, tag)?;
            for (a, pre) in acc.iter_mut().zip(&prefix) {
                *a = op.apply(pre, a);
            }
        }
        if rank + 1 < p {
            send_slice_internal(self, rank + 1, tag, &acc)?;
        }
        crate::plain::copy_slice(&acc, recv);
        Ok(())
    }

    /// Exclusive prefix reduction (mirrors `MPI_Exscan`): rank `r > 0`
    /// receives the reduction over ranks `0..r`; rank 0 receives `None`
    /// (its value is undefined in MPI).
    pub fn exscan_vec<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        op: O,
    ) -> Result<Option<Vec<T>>> {
        self.count_op("exscan");
        let rank = self.rank();
        let p = self.size();
        let tag = self.next_internal_tag();
        let prefix: Option<Vec<T>> = if rank > 0 {
            Some(recv_vec_internal(self, rank - 1, tag)?)
        } else {
            None
        };
        if rank + 1 < p {
            // Forward the inclusive prefix over 0..=rank.
            let mut fwd = send.to_vec();
            if let Some(pre) = &prefix {
                for (a, p) in fwd.iter_mut().zip(pre) {
                    *a = op.apply(p, a);
                }
            }
            send_slice_internal(self, rank + 1, tag, &fwd)?;
        }
        Ok(prefix)
    }
}

#[cfg(test)]
mod tests {
    use crate::op::Sum;
    use crate::{non_commutative, Universe};

    #[test]
    fn scan_running_sums() {
        Universe::run(5, |comm| {
            let mine = [comm.rank() as u64 + 1];
            let mut out = [0u64];
            comm.scan_into(&mine, &mut out, Sum).unwrap();
            let r = comm.rank() as u64 + 1;
            assert_eq!(out[0], r * (r + 1) / 2);
        });
    }

    #[test]
    fn scan_preserves_order() {
        Universe::run(4, |comm| {
            let op = non_commutative(|a: &u64, b: &u64| a * 10 + b);
            let mine = [comm.rank() as u64 + 1];
            let mut out = [0u64];
            comm.scan_into(&mine, &mut out, op).unwrap();
            let expected = (1..=comm.rank() as u64 + 1).fold(0, |acc, d| acc * 10 + d);
            assert_eq!(out[0], expected);
        });
    }

    #[test]
    fn exscan_shifted_prefix() {
        Universe::run(4, |comm| {
            let mine = [comm.rank() as u32 + 1];
            let pre = comm.exscan_vec(&mine, Sum).unwrap();
            match comm.rank() {
                0 => assert!(pre.is_none()),
                r => {
                    let r = r as u32;
                    assert_eq!(pre.unwrap(), vec![r * (r + 1) / 2]);
                }
            }
        });
    }

    #[test]
    fn scan_elementwise() {
        Universe::run(3, |comm| {
            let mine = [1u32, comm.rank() as u32];
            let mut out = [0u32; 2];
            comm.scan_into(&mine, &mut out, Sum).unwrap();
            assert_eq!(out[0], comm.rank() as u32 + 1);
            let r = comm.rank() as u32;
            assert_eq!(out[1], r * (r + 1) / 2);
        });
    }

    #[test]
    fn scan_single_rank() {
        Universe::run(1, |comm| {
            let mut out = [0u8];
            comm.scan_into(&[9u8], &mut out, Sum).unwrap();
            assert_eq!(out[0], 9);
            assert!(comm.exscan_vec(&[9u8], Sum).unwrap().is_none());
        });
    }
}
