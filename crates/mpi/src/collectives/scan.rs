//! Inclusive and exclusive prefix reductions (linear chain) on the
//! shared-`Bytes` datapath: the upstream prefix is folded straight from
//! the delivered payload (no per-hop `Vec` materialization), and the
//! forwarded prefix moves into the transport without a copy.

use super::algos::{fold_bytes_map, fold_bytes_to_vec};
use super::{recv_internal, send_internal, send_slice_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::op::ReduceOp;
use crate::plain::{bytes_from_vec, bytes_into_vec};
use crate::Plain;

impl Comm {
    /// Inclusive prefix reduction (mirrors `MPI_Scan`): rank `r` receives
    /// the elementwise reduction over ranks `0..=r`. Rank order is always
    /// preserved, so non-commutative operations are safe.
    pub fn scan_into<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        recv: &mut [T],
        op: O,
    ) -> Result<()> {
        self.count_op("scan");
        if send.len() != recv.len() {
            return Err(MpiError::InvalidLayout(format!(
                "scan: send has {} elements, recv has {}",
                send.len(),
                recv.len()
            )));
        }
        let rank = self.rank();
        let p = self.size();
        let tag = self.next_internal_tag();
        if rank > 0 {
            // Fold the delivered prefix directly into the result buffer.
            let prefix = recv_internal(self, rank - 1, tag)?;
            fold_bytes_map(&prefix, send, recv, &op)?;
        } else {
            crate::plain::copy_slice(send, recv);
        }
        if rank + 1 < p {
            send_slice_internal(self, rank + 1, tag, recv)?;
        }
        Ok(())
    }

    /// Exclusive prefix reduction (mirrors `MPI_Exscan`): rank `r > 0`
    /// receives the reduction over ranks `0..r`; rank 0 receives `None`
    /// (its value is undefined in MPI).
    pub fn exscan_vec<T: Plain, O: ReduceOp<T>>(
        &self,
        send: &[T],
        op: O,
    ) -> Result<Option<Vec<T>>> {
        self.count_op("exscan");
        let rank = self.rank();
        let p = self.size();
        let tag = self.next_internal_tag();
        let prefix_bytes = if rank > 0 {
            Some(recv_internal(self, rank - 1, tag)?)
        } else {
            None
        };
        if rank + 1 < p {
            // Forward the inclusive prefix over 0..=rank. Middle ranks'
            // fold output moves into the transport (no serialization
            // copy); rank 0 forwards its own data, which is one counted
            // serialization like any other borrowed send.
            let payload = match &prefix_bytes {
                Some(pre) => bytes_from_vec(fold_bytes_to_vec(pre, send, &op)?),
                None => crate::plain::bytes_from_slice(send),
            };
            send_internal(self, rank + 1, tag, payload)?;
        }
        // Materialize the returned prefix once (zero-copy for unique
        // byte-shaped payloads).
        Ok(prefix_bytes.map(bytes_into_vec))
    }
}

#[cfg(test)]
mod tests {
    use crate::op::Sum;
    use crate::{non_commutative, Universe};

    #[test]
    fn scan_running_sums() {
        Universe::run(5, |comm| {
            let mine = [comm.rank() as u64 + 1];
            let mut out = [0u64];
            comm.scan_into(&mine, &mut out, Sum).unwrap();
            let r = comm.rank() as u64 + 1;
            assert_eq!(out[0], r * (r + 1) / 2);
        });
    }

    #[test]
    fn scan_preserves_order() {
        Universe::run(4, |comm| {
            let op = non_commutative(|a: &u64, b: &u64| a * 10 + b);
            let mine = [comm.rank() as u64 + 1];
            let mut out = [0u64];
            comm.scan_into(&mine, &mut out, op).unwrap();
            let expected = (1..=comm.rank() as u64 + 1).fold(0, |acc, d| acc * 10 + d);
            assert_eq!(out[0], expected);
        });
    }

    #[test]
    fn exscan_shifted_prefix() {
        Universe::run(4, |comm| {
            let mine = [comm.rank() as u32 + 1];
            let pre = comm.exscan_vec(&mine, Sum).unwrap();
            match comm.rank() {
                0 => assert!(pre.is_none()),
                r => {
                    let r = r as u32;
                    assert_eq!(pre.unwrap(), vec![r * (r + 1) / 2]);
                }
            }
        });
    }

    #[test]
    fn scan_elementwise() {
        Universe::run(3, |comm| {
            let mine = [1u32, comm.rank() as u32];
            let mut out = [0u32; 2];
            comm.scan_into(&mine, &mut out, Sum).unwrap();
            assert_eq!(out[0], comm.rank() as u32 + 1);
            let r = comm.rank() as u32;
            assert_eq!(out[1], r * (r + 1) / 2);
        });
    }

    #[test]
    fn scan_single_rank() {
        Universe::run(1, |comm| {
            let mut out = [0u8];
            comm.scan_into(&[9u8], &mut out, Sum).unwrap();
            assert_eq!(out[0], 9);
            assert!(comm.exscan_vec(&[9u8], Sum).unwrap().is_none());
        });
    }
}
