//! Online measured cost model: `Auto` selection driven by runtime
//! evidence instead of compile-time thresholds.
//!
//! Every static threshold in [`CollTuning`](super::CollTuning) was
//! hand-set above one cluster cost model's crossovers; on a different
//! machine or message mix they are wrong (the committed
//! `BENCH_collectives.json` showed `auto` riding the slower wall-clock
//! algorithm in whole regimes). This module replaces guessing with
//! measuring: a per-communicator **alpha–beta estimator** maintains
//! `(alpha, beta)` — per-startup and per-byte cost in nanoseconds — for
//! every *algorithm class* (13 of them, one per concrete algorithm:
//! recursive-doubling allreduce, Rabenseifner, binomial bcast, van de
//! Geijn, ring/RD/Bruck allgather, pairwise/Bruck alltoall,
//! binomial/flat reduce, sparse/dense neighborhood), fitted by EWMA
//! from wall-clock measurements of the calls that actually ran. At
//! call time each candidate's cost is predicted as
//! `startups·alpha + bytes·beta` and `Auto` picks the argmin.
//!
//! ## Why per-algorithm classes, not per-collective
//!
//! A single `(alpha, beta)` per *collective* can never rank the
//! candidates correctly: it would only ever be fitted from the
//! algorithm the fallback already picks, so the predicted cost of the
//! never-run alternative is pure extrapolation from the wrong
//! datapath (packing copies, cache behaviour and refcount forwarding
//! differ *per algorithm*, not per collective). Fitting each
//! algorithm's own class from its own runs makes the prediction at an
//! observed workload converge to that algorithm's observed mean — so
//! the argmin converges to the measured-best algorithm.
//!
//! ## Symmetry: how every rank picks the same algorithm
//!
//! Selection must be symmetric (it is part of the wire protocol), but
//! wall-clock measurements are inherently rank-local. The model
//! therefore separates *measuring* from *deciding*:
//!
//! - rank 0 measures the wall time of each driven blocking collective
//!   and accumulates observations in a rank-local pending buffer;
//! - every driven blocking collective call counts a per-communicator
//!   sequence number (`tick`), and every
//!   [`ModelConfig::epoch_len`]-th call rank 0 folds its pending
//!   observations into the snapshot and **broadcasts the snapshot**
//!   (a ~270-byte binomial bcast on an internal tag — a matched
//!   collective, inserted at the same call index on every rank);
//! - decisions read only the *published snapshot*, which every rank
//!   replaced at the same point in its call sequence. Same snapshot +
//!   same collectively-agreed inputs (`p`, byte size, tuning) ⇒ same
//!   choice everywhere.
//!
//! Non-blocking initiations and persistent `*_init` never tick: a
//! blocking synchronization inside an initiation would violate MPI's
//! local-completion semantics (a legal program may post `iallgather`
//! on one rank while another blocks in an unrelated `recv` first).
//! They read the current snapshot, which is identical across ranks
//! because it only changes at matched blocking sync points.
//!
//! ## Warm-up and bounded exploration
//!
//! A class with fewer than [`ModelConfig::warmup_obs`] folded
//! observations is *cold*. While the static choice's class is cold,
//! `Auto` follows the static thresholds (today's behaviour). Once it
//! is warm, the driven blocking collectives *explore*: they run the
//! cold candidate with the fewest observations until every candidate
//! class is warm — deterministically (the choice depends only on the
//! snapshot), so exploration is symmetric too. Warm-up is bounded by
//! `#candidates × max(epoch_len, warmup_obs)` calls per collective.
//! Non-blocking selection never explores (its engines are not
//! measured); it stays static until every candidate class has been
//! warmed by the blocking side.
//!
//! ## Design note: overlap friendliness is a cost term, not a hard-code
//!
//! The non-blocking engines historically *never* left the eager flat
//! algorithms, on the argument that call-time sends are what make
//! communication/computation overlap work. That argument is real but
//! not absolute: it is worth roughly one message latency per
//! *serialized round* an engine adds (a round whose send cannot be
//! posted until the previous round's payload arrived — flat engines
//! have one such round, tree/RD/Bruck engines `~log2 p`). Encoding it
//! as a per-round alpha penalty ([`ModelConfig::overlap_alpha_pct`])
//! keeps the trade measurable and tunable: in the latency regime the
//! log-round engines win *despite* the penalty, and the model switches
//! to them — while a hard-coded "never" can never be right on both
//! sides of the crossover.
//!
//! ## Lifecycle
//!
//! The model state lives on the [`Comm`]: snapshots are
//! inherited on `dup`/`split` (like [`CollTuning`](super::CollTuning)),
//! resettable via [`Comm::reset_model`](crate::Comm::reset_model), and
//! frozen into persistent plans at `*_init` (a plan never re-selects
//! at `start()`). With [`ModelConfig::drive`] off (the default) the
//! model neither measures nor syncs nor alters any selection — the
//! default-tuning wire protocol and copy bill are bit-identical to a
//! build without this module.

use std::cell::RefCell;
use std::time::Instant;

use bytes::Bytes;

use super::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, NeighborhoodAlgo, ReduceAlgo, Select,
};
use crate::comm::Comm;
use crate::error::Result;

/// Number of algorithm classes the model tracks.
pub const CLASS_COUNT: usize = 13;

/// One concrete collective algorithm — the granularity at which
/// `(alpha, beta)` is fitted and selection counts are reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoClass {
    /// Recursive-doubling allreduce.
    AllreduceRd = 0,
    /// Rabenseifner allreduce (reduce-scatter + ring allgather).
    AllreduceRabenseifner = 1,
    /// Binomial-tree broadcast.
    BcastBinomial = 2,
    /// Van de Geijn broadcast (scatter + ring allgather).
    BcastScatterAllgather = 3,
    /// Ring allgather (also the proxy class for the flat eager
    /// `iallgather` fan-out: same startup count and volume, no packing).
    AllgatherRing = 4,
    /// Recursive-doubling allgather (power-of-two `p` only).
    AllgatherRd = 5,
    /// Bruck allgather (any `p`).
    AllgatherBruck = 6,
    /// Pairwise alltoall.
    AlltoallPairwise = 7,
    /// Bruck alltoall.
    AlltoallBruck = 8,
    /// Binomial-tree reduce (also the tree phase of `iallreduce`).
    ReduceBinomial = 9,
    /// Flat-gather reduce (also the flat phase of `iallreduce`).
    ReduceFlat = 10,
    /// Sparse neighborhood exchange (one message per declared edge).
    NeighborhoodSparse = 11,
    /// Dense neighborhood exchange (one message per rank).
    NeighborhoodDense = 12,
}

impl AlgoClass {
    /// All classes, in index order.
    pub const ALL: [AlgoClass; CLASS_COUNT] = [
        AlgoClass::AllreduceRd,
        AlgoClass::AllreduceRabenseifner,
        AlgoClass::BcastBinomial,
        AlgoClass::BcastScatterAllgather,
        AlgoClass::AllgatherRing,
        AlgoClass::AllgatherRd,
        AlgoClass::AllgatherBruck,
        AlgoClass::AlltoallPairwise,
        AlgoClass::AlltoallBruck,
        AlgoClass::ReduceBinomial,
        AlgoClass::ReduceFlat,
        AlgoClass::NeighborhoodSparse,
        AlgoClass::NeighborhoodDense,
    ];

    /// Array index of this class.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name (`collective/algorithm`, matching the trace
    /// span names).
    pub fn name(self) -> &'static str {
        match self {
            AlgoClass::AllreduceRd => "allreduce/recursive_doubling",
            AlgoClass::AllreduceRabenseifner => "allreduce/rabenseifner",
            AlgoClass::BcastBinomial => "bcast/binomial",
            AlgoClass::BcastScatterAllgather => "bcast/scatter_allgather",
            AlgoClass::AllgatherRing => "allgather/ring",
            AlgoClass::AllgatherRd => "allgather/recursive_doubling",
            AlgoClass::AllgatherBruck => "allgather/bruck",
            AlgoClass::AlltoallPairwise => "alltoall/pairwise",
            AlgoClass::AlltoallBruck => "alltoall/bruck",
            AlgoClass::ReduceBinomial => "reduce/binomial_tree",
            AlgoClass::ReduceFlat => "reduce/flat_gather",
            AlgoClass::NeighborhoodSparse => "neighborhood/sparse",
            AlgoClass::NeighborhoodDense => "neighborhood/dense",
        }
    }
}

/// Model configuration, carried inside
/// [`CollTuning`](super::CollTuning) (so it inherits, overrides per
/// call through `tuning(...)`, and participates in the
/// same-tuning-on-every-rank wire contract for free).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Master switch: measure, synchronize, and let warm predictions
    /// override the static `Auto` thresholds. Off by default — the
    /// default tuning behaves bit-identically to the pre-model code.
    pub drive: bool,
    /// Publish the snapshot every this many driven blocking collective
    /// calls (the sync-broadcast cadence).
    pub epoch_len: u32,
    /// Folded observations a class needs before it counts as warm.
    pub warmup_obs: u32,
    /// EWMA weight of a new observation, in percent (30 ⇒
    /// `new = 0.3·measured + 0.7·old`).
    pub ewma_pct: u32,
    /// Overlap bias for non-blocking selection: each serialized round
    /// of a candidate engine is charged this percentage of the class's
    /// alpha on top of its predicted cost (see the module docs for why
    /// this is a cost term rather than a hard-coded "flat only").
    pub overlap_alpha_pct: u32,
    /// Once every this many driven calls, a warm blocking selection
    /// re-measures the candidate with the fewest folded observations
    /// instead of taking the argmin (0 disables). Without this, a
    /// losing class is only ever measured during cold warm-up: its
    /// stale estimate can lock in a wrong winner forever (measurements
    /// taken while allocators and caches were cold systematically
    /// mis-rank near-crossover regimes). The periodic refresh keeps
    /// both estimates current at a bounded steady-state cost of
    /// `gap / reexplore_every` per call.
    pub reexplore_every: u32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            drive: false,
            epoch_len: 8,
            warmup_obs: 5,
            ewma_pct: 30,
            overlap_alpha_pct: 100,
            reexplore_every: 16,
        }
    }
}

impl ModelConfig {
    /// Enables driving (equivalent to `CollTuning::self_tuning`).
    pub fn drive(mut self, on: bool) -> Self {
        self.drive = on;
        self
    }

    /// Sets the publish cadence (calls per epoch; min 1).
    pub fn epoch_len(mut self, calls: u32) -> Self {
        self.epoch_len = calls.max(1);
        self
    }

    /// Sets the per-class warm-up threshold (folded observations).
    pub fn warmup_obs(mut self, obs: u32) -> Self {
        self.warmup_obs = obs.max(1);
        self
    }

    /// Sets the EWMA weight of a new observation (percent, 1..=100).
    pub fn ewma_pct(mut self, pct: u32) -> Self {
        self.ewma_pct = pct.clamp(1, 100);
        self
    }

    /// Sets the per-serialized-round overlap penalty (percent of
    /// alpha).
    pub fn overlap_alpha_pct(mut self, pct: u32) -> Self {
        self.overlap_alpha_pct = pct;
        self
    }

    /// Sets the warm re-exploration cadence (driven calls between
    /// refresh measurements of the least-observed candidate; 0
    /// disables).
    pub fn reexplore_every(mut self, calls: u32) -> Self {
        self.reexplore_every = calls;
        self
    }
}

/// Fitted `(alpha, beta)` of one algorithm class.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassEstimate {
    /// Cost per message startup, nanoseconds.
    pub alpha_ns: f64,
    /// Cost per payload byte, nanoseconds.
    pub beta_ns_per_byte: f64,
    /// Folded observations (the warm-up state).
    pub obs: u32,
}

#[inline]
fn ewma(old: f64, new: f64, pct: u32) -> f64 {
    let w = f64::from(pct.clamp(1, 100)) / 100.0;
    old + (new - old) * w
}

impl ClassEstimate {
    /// Predicted cost of `startups` messages moving `bytes` payload
    /// bytes, in nanoseconds. Monotone in both arguments (`alpha` and
    /// `beta` are clamped non-negative by construction).
    #[inline]
    pub fn predict_ns(&self, startups: f64, bytes: f64) -> f64 {
        startups * self.alpha_ns + bytes * self.beta_ns_per_byte
    }

    /// True once the class has folded at least `warmup_obs`
    /// observations.
    #[inline]
    pub fn warm(&self, warmup_obs: u32) -> bool {
        self.obs >= warmup_obs
    }

    /// Folds one (possibly averaged) measurement: `startups` messages,
    /// `bytes` payload bytes, `t_ns` measured wall nanoseconds,
    /// weighted as `weight` observations. Coordinate descent: the
    /// bootstrap observation splits the cost between alpha and beta;
    /// each later observation updates whichever coordinate currently
    /// explains *less* of the measured cost, attributing the residual
    /// to it (clamped at zero, so estimates never go negative and
    /// prediction stays monotone).
    pub fn fold(&mut self, startups: f64, bytes: f64, t_ns: f64, ewma_pct: u32, weight: u32) {
        let s = startups.max(1.0);
        let t = t_ns.max(0.0);
        if self.obs == 0 {
            if bytes <= 0.0 {
                self.alpha_ns = t / s;
                self.beta_ns_per_byte = 0.0;
            } else {
                self.alpha_ns = t / (2.0 * s);
                self.beta_ns_per_byte = t / (2.0 * bytes);
            }
        } else if bytes <= 0.0 || bytes * self.beta_ns_per_byte <= s * self.alpha_ns {
            let target = ((t - bytes * self.beta_ns_per_byte) / s).max(0.0);
            self.alpha_ns = ewma(self.alpha_ns, target, ewma_pct);
        } else {
            let target = ((t - s * self.alpha_ns) / bytes).max(0.0);
            self.beta_ns_per_byte = ewma(self.beta_ns_per_byte, target, ewma_pct);
        }
        self.obs = self.obs.saturating_add(weight.max(1));
    }
}

/// The published model state: one estimate per algorithm class, plus
/// the publish epoch. Identical on every rank of a communicator between
/// two sync points — the only state selection is allowed to read.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModelSnapshot {
    /// Per-class estimates, indexed by [`AlgoClass::index`].
    pub classes: [ClassEstimate; CLASS_COUNT],
    /// Number of publishes folded into this snapshot.
    pub epoch: u64,
}

/// Wire size of a serialized snapshot (`epoch` + 13 × (alpha, beta,
/// obs)).
const SNAPSHOT_WIRE_BYTES: usize = 8 + CLASS_COUNT * (8 + 8 + 4);

impl ModelSnapshot {
    /// Estimate for `class`.
    #[inline]
    pub fn class(&self, class: AlgoClass) -> &ClassEstimate {
        &self.classes[class.index()]
    }

    pub(crate) fn to_wire(self) -> Bytes {
        let mut out = Vec::with_capacity(SNAPSHOT_WIRE_BYTES);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        for c in &self.classes {
            out.extend_from_slice(&c.alpha_ns.to_le_bytes());
            out.extend_from_slice(&c.beta_ns_per_byte.to_le_bytes());
            out.extend_from_slice(&c.obs.to_le_bytes());
        }
        Bytes::from(out)
    }

    pub(crate) fn from_wire(bytes: &[u8]) -> Option<ModelSnapshot> {
        if bytes.len() != SNAPSHOT_WIRE_BYTES {
            return None;
        }
        let mut snap = ModelSnapshot {
            epoch: u64::from_le_bytes(bytes[..8].try_into().ok()?),
            ..ModelSnapshot::default()
        };
        let mut at = 8;
        for c in &mut snap.classes {
            c.alpha_ns = f64::from_le_bytes(bytes[at..at + 8].try_into().ok()?);
            c.beta_ns_per_byte = f64::from_le_bytes(bytes[at + 8..at + 16].try_into().ok()?);
            c.obs = u32::from_le_bytes(bytes[at + 16..at + 20].try_into().ok()?);
            at += 20;
        }
        Some(snap)
    }
}

/// Rank-local accumulation of not-yet-published observations of one
/// class.
#[derive(Clone, Copy, Debug, Default)]
struct PendingObs {
    startups: f64,
    bytes: f64,
    t_ns: f64,
    calls: u32,
}

/// Per-communicator model state (one per [`Comm`] handle, i.e. per
/// rank per communicator).
#[derive(Debug, Default)]
pub(crate) struct ModelState {
    snapshot: ModelSnapshot,
    pending: [PendingObs; CLASS_COUNT],
    seq: u64,
}

impl ModelState {
    /// Child state for `dup`/`split`: the parent's published snapshot
    /// (identical across ranks at a matched derive call) carries over;
    /// pending observations and the epoch counter start fresh.
    pub(crate) fn inherit(parent: &ModelState) -> ModelState {
        ModelState {
            snapshot: parent.snapshot,
            ..ModelState::default()
        }
    }

    pub(crate) fn snapshot(&self) -> ModelSnapshot {
        self.snapshot
    }

    /// Driven-call sequence number: incremented by [`tick`] on every
    /// matched driven collective, hence identical across ranks — the
    /// clock the symmetric re-exploration cadence runs on.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    pub(crate) fn reset(&mut self) {
        *self = ModelState::default();
    }
}

// ---------------------------------------------------------------------------
// Per-rank observability (`TuningStats`)
// ---------------------------------------------------------------------------

/// Per-class slice of [`TuningStats`]: the published estimate in
/// integer units (so the whole stats struct stays `Copy + Eq` inside
/// [`RankStats`](crate::RankStats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ClassStat {
    /// Published alpha, nanoseconds (rounded).
    pub alpha_ns: u64,
    /// Published beta, **femtoseconds** per byte (1 ns/B = 1_000_000;
    /// sub-nanosecond per-byte costs survive the integer conversion).
    pub beta_fs_per_byte: u64,
    /// Folded observations (warm-up state).
    pub obs: u32,
}

/// Per-rank tuning diagnostics: why selections happened. Collected per
/// thread (like the copy bill) and surfaced in
/// [`RankStats::tuning`](crate::RankStats) via
/// [`Universe::run_stats`](crate::Universe::run_stats), or live via
/// [`Comm::tuning_stats`](crate::Comm::tuning_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TuningStats {
    /// Algorithm decisions taken (blocking + non-blocking + persistent
    /// init).
    pub decisions: u64,
    /// Decisions resolved by a warm model prediction.
    pub model_picks: u64,
    /// Decisions that followed the static thresholds (drive off, or
    /// warm-up not reached).
    pub static_picks: u64,
    /// Decisions spent exploring a cold candidate class.
    pub explore_picks: u64,
    /// Decisions dictated by `Select::Force` (never overridden by the
    /// model).
    pub forced_picks: u64,
    /// Decisions frozen into persistent plans at `*_init`.
    pub frozen_picks: u64,
    /// Wall-clock observations recorded (rank 0 of driven
    /// communicators only).
    pub observations: u64,
    /// Snapshot publishes participated in (folds on rank 0, receives
    /// elsewhere).
    pub publishes: u64,
    /// Per-class selection counts, indexed by [`AlgoClass::index`].
    pub selections: [u64; CLASS_COUNT],
    /// Last published estimate per class, indexed by
    /// [`AlgoClass::index`].
    pub classes: [ClassStat; CLASS_COUNT],
}

thread_local! {
    static STATS: RefCell<TuningStats> = RefCell::new(TuningStats::default());
}

fn with_stats(f: impl FnOnce(&mut TuningStats)) {
    STATS.with(|s| f(&mut s.borrow_mut()));
}

/// This thread's (rank's) tuning statistics so far.
pub fn stats_snapshot() -> TuningStats {
    STATS.with(|s| *s.borrow())
}

fn mirror_snapshot_into_stats(snap: &ModelSnapshot, stats: &mut TuningStats) {
    for (dst, src) in stats.classes.iter_mut().zip(&snap.classes) {
        dst.alpha_ns = src.alpha_ns.max(0.0).round() as u64;
        dst.beta_fs_per_byte = (src.beta_ns_per_byte.max(0.0) * 1_000_000.0).round() as u64;
        dst.obs = src.obs;
    }
}

/// How a decision was resolved (stats bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pick {
    Static,
    Explore,
    Model,
    Forced,
    Frozen,
}

fn note_decision(class: AlgoClass, pick: Pick) {
    with_stats(|s| {
        s.decisions += 1;
        s.selections[class.index()] += 1;
        match pick {
            Pick::Static => s.static_picks += 1,
            Pick::Explore => s.explore_picks += 1,
            Pick::Model => s.model_picks += 1,
            Pick::Forced => s.forced_picks += 1,
            Pick::Frozen => s.frozen_picks += 1,
        }
    });
}

// ---------------------------------------------------------------------------
// Tick: the sync point that keeps snapshots identical across ranks
// ---------------------------------------------------------------------------

/// Counts one driven blocking collective call; every
/// [`ModelConfig::epoch_len`]-th call publishes rank 0's folded
/// estimates to the whole communicator over an internal-tag binomial
/// broadcast. Call sites place this exactly where the collective's
/// first internal tag would be allocated, so the model sequence number
/// stays as rank-aligned as the tag counters. No-op (and
/// allocation-free) when the tuning does not drive the model.
pub(crate) fn tick(comm: &Comm) -> Result<()> {
    let cfg = comm.tuning().model;
    if !cfg.drive || comm.size() < 2 {
        return Ok(());
    }
    let seq = {
        let mut m = comm.model_state_mut();
        m.seq += 1;
        m.seq
    };
    if seq % u64::from(cfg.epoch_len.max(1)) != 0 {
        return Ok(());
    }
    let payload = if comm.rank() == 0 {
        let mut m = comm.model_state_mut();
        let m = &mut *m;
        for (i, pend) in m.pending.iter_mut().enumerate() {
            if pend.calls > 0 {
                let c = f64::from(pend.calls);
                m.snapshot.classes[i].fold(
                    pend.startups / c,
                    pend.bytes / c,
                    pend.t_ns / c,
                    cfg.ewma_pct,
                    pend.calls,
                );
                *pend = PendingObs::default();
            }
        }
        m.snapshot.epoch += 1;
        let snap = m.snapshot;
        with_stats(|s| {
            s.publishes += 1;
            mirror_snapshot_into_stats(&snap, s);
        });
        Some(snap.to_wire())
    } else {
        None
    };
    let wire = crate::collectives::bcast_bytes_internal(comm, payload, 0)?;
    if comm.rank() != 0 {
        if let Some(snap) = ModelSnapshot::from_wire(&wire) {
            comm.model_state_mut().snapshot = snap;
            with_stats(|s| {
                s.publishes += 1;
                mirror_snapshot_into_stats(&snap, s);
            });
        }
    }
    Ok(())
}

/// Starts a wall-clock measurement of a driven blocking collective.
/// Only rank 0 measures (its observations are the ones published), so
/// every other rank gets a free `None`.
#[inline]
pub(crate) fn measure_begin(comm: &Comm) -> Option<Instant> {
    (comm.tuning().model.drive && comm.size() > 1 && comm.rank() == 0).then(Instant::now)
}

/// Records one finished measurement into the pending buffer of
/// `class`. `size` is the same collectively-agreed scalar the selection
/// saw (contribution bytes; block bytes for alltoall; the maximum
/// degree for the neighborhood classes) — it is mapped to the class's
/// `(startups, bytes)` workload features here.
pub(crate) fn observe(comm: &Comm, class: AlgoClass, begun: Option<Instant>, size: f64) {
    let Some(t0) = begun else { return };
    let t_ns = t0.elapsed().as_nanos() as f64;
    let (startups, bytes) = class_features(class, comm.size(), size);
    let mut m = comm.model_state_mut();
    let pend = &mut m.pending[class.index()];
    pend.startups += startups;
    pend.bytes += bytes;
    pend.t_ns += t_ns;
    pend.calls += 1;
    drop(m);
    with_stats(|s| s.observations += 1);
}

// ---------------------------------------------------------------------------
// Candidates and choice
// ---------------------------------------------------------------------------

/// Ceil(log2 p) as f64 (0 for p <= 1).
#[inline]
fn ceil_log2(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        f64::from(usize::BITS - (p - 1).leading_zeros())
    }
}

/// One selectable algorithm with its coarse workload features:
/// `startups` messages on the critical path and `bytes` of payload
/// moved (wire + packing). The absolute scale only needs to be
/// consistent *within* a class across workloads — cross-class
/// comparison happens through the fitted costs — so the formulas stay
/// deliberately simple.
#[derive(Clone, Copy, Debug)]
struct Candidate<A> {
    algo: A,
    class: AlgoClass,
    startups: f64,
    bytes: f64,
    /// Serialized rounds for the overlap bias (non-blocking selection
    /// only): rounds whose sends wait on a previous round's receive.
    rounds: f64,
}

/// Workload features of `class` for a `p`-rank communicator moving `s`
/// bytes (contribution bytes; block bytes for alltoall; ignored for
/// the degree-driven neighborhood classes).
fn class_features(class: AlgoClass, p: usize, s: f64) -> (f64, f64) {
    let pf = p as f64;
    let l = ceil_log2(p);
    match class {
        AlgoClass::AllreduceRd => {
            let fix = if p.is_power_of_two() { 0.0 } else { 2.0 };
            (l + fix, s * l + fix * s)
        }
        AlgoClass::AllreduceRabenseifner => (l + pf - 1.0, 2.0 * s),
        AlgoClass::BcastBinomial => (l, s * l),
        AlgoClass::BcastScatterAllgather => (2.0 * (pf - 1.0), 2.0 * s),
        AlgoClass::AllgatherRing => (pf - 1.0, (pf - 1.0) * s),
        AlgoClass::AllgatherRd | AlgoClass::AllgatherBruck => (l, (2.0 * pf - 3.0).max(1.0) * s),
        AlgoClass::AlltoallPairwise => (pf - 1.0, (pf - 1.0) * s),
        AlgoClass::AlltoallBruck => (l, l * (pf / 2.0) * s),
        AlgoClass::ReduceBinomial => (l, s * l),
        AlgoClass::ReduceFlat => (pf - 1.0, (pf - 1.0) * s),
        // Degree-driven: `s` carries the collectively-agreed degree,
        // and the payload volume is deliberately not modelled (per-rank
        // payload sizes are not symmetric inputs) — alpha absorbs the
        // typical per-message cost.
        AlgoClass::NeighborhoodSparse => (s.max(1.0), 0.0),
        AlgoClass::NeighborhoodDense => ((pf - 1.0).max(1.0), 0.0),
    }
}

fn candidate<A>(algo: A, class: AlgoClass, p: usize, s: f64, rounds: f64) -> Candidate<A> {
    let (startups, bytes) = class_features(class, p, s);
    Candidate {
        algo,
        class,
        startups,
        bytes,
        rounds,
    }
}

/// Blocking choice: static until the static class is warm, then
/// explore cold candidates (fewest observations first, ties to the
/// lowest index), then the warm argmin — refreshed every
/// [`ModelConfig::reexplore_every`]-th driven call (`seq`, the
/// rank-aligned tick counter) by re-measuring the least-observed
/// candidate so stale cold-start estimates cannot lock in a loser.
fn choose_blocking<A: Copy>(
    snap: &ModelSnapshot,
    cfg: &ModelConfig,
    cands: &[Candidate<A>],
    static_i: usize,
    seq: u64,
) -> (usize, Pick) {
    let est = |i: usize| snap.classes[cands[i].class.index()];
    if !est(static_i).warm(cfg.warmup_obs) {
        return (static_i, Pick::Static);
    }
    let mut cold: Option<usize> = None;
    for i in 0..cands.len() {
        if !est(i).warm(cfg.warmup_obs) && cold.is_none_or(|j| est(i).obs < est(j).obs) {
            cold = Some(i);
        }
    }
    if let Some(i) = cold {
        return (i, Pick::Explore);
    }
    if cfg.reexplore_every > 0 && seq.is_multiple_of(u64::from(cfg.reexplore_every)) {
        let stalest = (0..cands.len()).min_by_key(|&i| est(i).obs).unwrap_or(0);
        return (stalest, Pick::Explore);
    }
    (argmin_cost(snap, cfg, cands, 0.0), Pick::Model)
}

/// Non-blocking choice: static until *every* candidate class is warm
/// (the engines are never measured, so exploration could not warm them
/// anyway), then the argmin with the per-round overlap penalty.
fn choose_overlap<A: Copy>(
    snap: &ModelSnapshot,
    cfg: &ModelConfig,
    cands: &[Candidate<A>],
    static_i: usize,
) -> (usize, Pick) {
    let all_warm = cands
        .iter()
        .all(|c| snap.classes[c.class.index()].warm(cfg.warmup_obs));
    if !all_warm {
        return (static_i, Pick::Static);
    }
    let bias = f64::from(cfg.overlap_alpha_pct) / 100.0;
    (argmin_cost(snap, cfg, cands, bias), Pick::Model)
}

fn argmin_cost<A: Copy>(
    snap: &ModelSnapshot,
    _cfg: &ModelConfig,
    cands: &[Candidate<A>],
    round_bias: f64,
) -> usize {
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    for (i, c) in cands.iter().enumerate() {
        let e = snap.classes[c.class.index()];
        let cost = e.predict_ns(c.startups, c.bytes) + c.rounds * e.alpha_ns * round_bias;
        if cost < best_cost {
            best = i;
            best_cost = cost;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Per-collective selection (blocking: model may explore and override;
// non-blocking `i*` variants: snapshot-only, overlap-biased)
// ---------------------------------------------------------------------------

/// Class of a concrete allreduce algorithm.
pub(crate) fn allreduce_class(algo: AllreduceAlgo) -> AlgoClass {
    match algo {
        AllreduceAlgo::RecursiveDoubling => AlgoClass::AllreduceRd,
        AllreduceAlgo::Rabenseifner => AlgoClass::AllreduceRabenseifner,
    }
}

/// Class of a concrete bcast algorithm.
pub(crate) fn bcast_class(algo: BcastAlgo) -> AlgoClass {
    match algo {
        BcastAlgo::Binomial => AlgoClass::BcastBinomial,
        BcastAlgo::ScatterAllgather => AlgoClass::BcastScatterAllgather,
    }
}

/// Class of a concrete allgather algorithm.
pub(crate) fn allgather_class(algo: AllgatherAlgo) -> AlgoClass {
    match algo {
        AllgatherAlgo::Ring => AlgoClass::AllgatherRing,
        AllgatherAlgo::RecursiveDoubling => AlgoClass::AllgatherRd,
        AllgatherAlgo::Bruck => AlgoClass::AllgatherBruck,
    }
}

/// Class of a concrete alltoall algorithm.
pub(crate) fn alltoall_class(algo: AlltoallAlgo) -> AlgoClass {
    match algo {
        AlltoallAlgo::Pairwise => AlgoClass::AlltoallPairwise,
        AlltoallAlgo::Bruck => AlgoClass::AlltoallBruck,
    }
}

/// Class of a concrete reduce algorithm.
pub(crate) fn reduce_class(algo: ReduceAlgo) -> AlgoClass {
    match algo {
        ReduceAlgo::BinomialTree => AlgoClass::ReduceBinomial,
        ReduceAlgo::FlatGather => AlgoClass::ReduceFlat,
    }
}

/// Class of a concrete neighborhood algorithm.
pub(crate) fn neighborhood_class(algo: NeighborhoodAlgo) -> AlgoClass {
    match algo {
        NeighborhoodAlgo::Sparse => AlgoClass::NeighborhoodSparse,
        NeighborhoodAlgo::Dense => AlgoClass::NeighborhoodDense,
    }
}

macro_rules! blocking_select {
    ($comm:expr, $stat:expr, $force:expr, $class_of:expr, $cands:expr) => {{
        let tuning = $comm.tuning();
        let stat = $stat;
        if $force {
            note_decision($class_of(stat), Pick::Forced);
            return stat;
        }
        if !tuning.model.drive || $comm.size() < 2 {
            note_decision($class_of(stat), Pick::Static);
            return stat;
        }
        let (snap, seq) = {
            let m = $comm.model_state_mut();
            (m.snapshot(), m.seq())
        };
        let cands = $cands;
        let static_i = cands
            .iter()
            .position(|c| c.algo == stat)
            .unwrap_or_default();
        let (i, pick) = choose_blocking(&snap, &tuning.model, &cands, static_i, seq);
        note_decision(cands[i].class, pick);
        cands[i].algo
    }};
}

/// Blocking allreduce selection for `bytes` payload bytes per rank.
pub(crate) fn select_allreduce(comm: &Comm, bytes: usize) -> AllreduceAlgo {
    let p = comm.size();
    let s = bytes as f64;
    let t = comm.tuning();
    blocking_select!(
        comm,
        t.allreduce_algo(p, bytes),
        matches!(t.allreduce, Select::Force(_)),
        allreduce_class,
        [
            candidate(
                AllreduceAlgo::RecursiveDoubling,
                AlgoClass::AllreduceRd,
                p,
                s,
                0.0
            ),
            candidate(
                AllreduceAlgo::Rabenseifner,
                AlgoClass::AllreduceRabenseifner,
                p,
                s,
                0.0
            ),
        ]
    )
}

/// Sized-bcast selection for a payload of `bytes` bytes.
pub(crate) fn select_bcast(comm: &Comm, bytes: usize) -> BcastAlgo {
    let p = comm.size();
    let s = bytes as f64;
    let t = comm.tuning();
    blocking_select!(
        comm,
        t.bcast_algo(p, bytes),
        matches!(t.bcast, Select::Force(_)),
        bcast_class,
        [
            candidate(BcastAlgo::Binomial, AlgoClass::BcastBinomial, p, s, 0.0),
            candidate(
                BcastAlgo::ScatterAllgather,
                AlgoClass::BcastScatterAllgather,
                p,
                s,
                0.0
            ),
        ]
    )
}

/// Equal-block allgather selection for `bytes` contribution bytes per
/// rank. Recursive doubling stays gated to power-of-two `p`.
pub(crate) fn select_allgather(comm: &Comm, bytes: usize) -> AllgatherAlgo {
    let p = comm.size();
    let s = bytes as f64;
    let t = comm.tuning();
    if p.is_power_of_two() {
        blocking_select!(
            comm,
            t.allgather_algo(p, bytes),
            matches!(t.allgather, Select::Force(_)),
            allgather_class,
            [
                candidate(AllgatherAlgo::Ring, AlgoClass::AllgatherRing, p, s, 0.0),
                candidate(
                    AllgatherAlgo::RecursiveDoubling,
                    AlgoClass::AllgatherRd,
                    p,
                    s,
                    0.0
                ),
                candidate(AllgatherAlgo::Bruck, AlgoClass::AllgatherBruck, p, s, 0.0),
            ]
        )
    } else {
        blocking_select!(
            comm,
            t.allgather_algo(p, bytes),
            matches!(t.allgather, Select::Force(_)),
            allgather_class,
            [
                candidate(AllgatherAlgo::Ring, AlgoClass::AllgatherRing, p, s, 0.0),
                candidate(AllgatherAlgo::Bruck, AlgoClass::AllgatherBruck, p, s, 0.0),
            ]
        )
    }
}

/// Equal-block alltoall selection for `block_bytes` bytes per block.
pub(crate) fn select_alltoall(comm: &Comm, block_bytes: usize) -> AlltoallAlgo {
    let p = comm.size();
    let s = block_bytes as f64;
    let t = comm.tuning();
    blocking_select!(
        comm,
        t.alltoall_algo(p, block_bytes),
        matches!(t.alltoall, Select::Force(_)),
        alltoall_class,
        [
            candidate(
                AlltoallAlgo::Pairwise,
                AlgoClass::AlltoallPairwise,
                p,
                s,
                0.0
            ),
            candidate(AlltoallAlgo::Bruck, AlgoClass::AlltoallBruck, p, s, 0.0),
        ]
    )
}

/// Blocking reduce selection. Non-commutative operations always fold
/// flat in rank order (the model never overrides correctness).
pub(crate) fn select_reduce(comm: &Comm, commutative: bool, bytes: usize) -> ReduceAlgo {
    let p = comm.size();
    let s = bytes as f64;
    let t = comm.tuning();
    let stat = t.reduce_algo(commutative, ReduceAlgo::BinomialTree);
    if !commutative {
        note_decision(reduce_class(stat), Pick::Static);
        return stat;
    }
    blocking_select!(
        comm,
        stat,
        matches!(t.reduce, Select::Force(_)),
        reduce_class,
        [
            candidate(
                ReduceAlgo::BinomialTree,
                AlgoClass::ReduceBinomial,
                p,
                s,
                0.0
            ),
            candidate(ReduceAlgo::FlatGather, AlgoClass::ReduceFlat, p, s, 0.0),
        ]
    )
}

/// Neighborhood exchange selection from collectively-agreed inputs
/// only (`p`, `max_degree`, eligibility — never per-rank payload
/// sizes).
pub(crate) fn select_neighborhood(
    comm: &Comm,
    dense_eligible: bool,
    max_degree: usize,
) -> NeighborhoodAlgo {
    let p = comm.size();
    let d = max_degree as f64;
    let t = comm.tuning();
    if !dense_eligible {
        note_decision(AlgoClass::NeighborhoodSparse, Pick::Static);
        return NeighborhoodAlgo::Sparse;
    }
    blocking_select!(
        comm,
        t.neighborhood_algo(p, max_degree),
        matches!(t.neighborhood, Select::Force(_)),
        neighborhood_class,
        [
            candidate(
                NeighborhoodAlgo::Sparse,
                AlgoClass::NeighborhoodSparse,
                p,
                d,
                0.0
            ),
            candidate(
                NeighborhoodAlgo::Dense,
                AlgoClass::NeighborhoodDense,
                p,
                d,
                0.0
            ),
        ]
    )
}

/// Non-blocking alltoall selection (snapshot-only; overlap-biased).
/// The pairwise engine posts everything eagerly (one serialized
/// round); the Bruck engine serializes `ceil(log2 p)` rounds.
pub(crate) fn select_ialltoall(comm: &Comm, block_bytes: usize) -> AlltoallAlgo {
    let p = comm.size();
    let s = block_bytes as f64;
    let t = comm.tuning();
    if let Select::Force(a) = t.alltoall {
        let a = if p < 2 { AlltoallAlgo::Pairwise } else { a };
        note_decision(alltoall_class(a), Pick::Forced);
        return a;
    }
    let stat = AlltoallAlgo::Pairwise;
    if !t.model.drive || p < 2 {
        note_decision(alltoall_class(stat), Pick::Static);
        return stat;
    }
    let snap = comm.model_state_mut().snapshot();
    let cands = [
        candidate(
            AlltoallAlgo::Pairwise,
            AlgoClass::AlltoallPairwise,
            p,
            s,
            1.0,
        ),
        candidate(
            AlltoallAlgo::Bruck,
            AlgoClass::AlltoallBruck,
            p,
            s,
            ceil_log2(p),
        ),
    ];
    let (i, pick) = choose_overlap(&snap, &t.model, &cands, 0);
    note_decision(cands[i].class, pick);
    cands[i].algo
}

/// Non-blocking reduce/allreduce selection (snapshot-only;
/// overlap-biased). Reuses the blocking reduce classes as estimates —
/// the engines move the same messages, just drained on poll.
pub(crate) fn select_ireduce(comm: &Comm, commutative: bool, bytes: usize) -> ReduceAlgo {
    let p = comm.size();
    let s = bytes as f64;
    let t = comm.tuning();
    let stat = t.reduce_algo(commutative, ReduceAlgo::FlatGather);
    if !commutative {
        note_decision(reduce_class(stat), Pick::Static);
        return stat;
    }
    if let Select::Force(_) = t.reduce {
        note_decision(reduce_class(stat), Pick::Forced);
        return stat;
    }
    if !t.model.drive || p < 2 {
        note_decision(reduce_class(stat), Pick::Static);
        return stat;
    }
    let snap = comm.model_state_mut().snapshot();
    let cands = [
        candidate(ReduceAlgo::FlatGather, AlgoClass::ReduceFlat, p, s, 1.0),
        candidate(
            ReduceAlgo::BinomialTree,
            AlgoClass::ReduceBinomial,
            p,
            s,
            ceil_log2(p),
        ),
    ];
    let (i, pick) = choose_overlap(&snap, &t.model, &cands, 0);
    note_decision(cands[i].class, pick);
    cands[i].algo
}

/// Non-blocking equal-block allgather selection (snapshot-only;
/// overlap-biased). `Ring` denotes the flat eager fan-out engine (same
/// startups and volume, all sends posted at call time); the RD and
/// Bruck engines serialize their log rounds. RD requires power-of-two
/// `p` and yields to the flat engine elsewhere, like the blocking
/// selection.
pub(crate) fn select_iallgather(comm: &Comm, bytes: usize) -> AllgatherAlgo {
    let p = comm.size();
    let s = bytes as f64;
    let t = comm.tuning();
    if p < 2 {
        note_decision(AlgoClass::AllgatherRing, Pick::Static);
        return AllgatherAlgo::Ring;
    }
    if let Select::Force(a) = t.allgather {
        let a = match a {
            AllgatherAlgo::RecursiveDoubling if !p.is_power_of_two() => AllgatherAlgo::Ring,
            a => a,
        };
        note_decision(allgather_class(a), Pick::Forced);
        return a;
    }
    if !t.model.drive {
        note_decision(AlgoClass::AllgatherRing, Pick::Static);
        return AllgatherAlgo::Ring;
    }
    let snap = comm.model_state_mut().snapshot();
    let flat = candidate(AllgatherAlgo::Ring, AlgoClass::AllgatherRing, p, s, 1.0);
    let bruck = candidate(
        AllgatherAlgo::Bruck,
        AlgoClass::AllgatherBruck,
        p,
        s,
        ceil_log2(p),
    );
    if p.is_power_of_two() {
        let rd = candidate(
            AllgatherAlgo::RecursiveDoubling,
            AlgoClass::AllgatherRd,
            p,
            s,
            ceil_log2(p),
        );
        let cands = [flat, rd, bruck];
        let (i, pick) = choose_overlap(&snap, &t.model, &cands, 0);
        note_decision(cands[i].class, pick);
        cands[i].algo
    } else {
        let cands = [flat, bruck];
        let (i, pick) = choose_overlap(&snap, &t.model, &cands, 0);
        note_decision(cands[i].class, pick);
        cands[i].algo
    }
}

/// Records a selection frozen into a persistent plan at `*_init`
/// (snapshot-only — a plan never re-selects at `start()`).
pub(crate) fn freeze_selection(_comm: &Comm, class: AlgoClass) {
    note_decision(class, Pick::Frozen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_fold_splits_cost() {
        let mut e = ClassEstimate::default();
        // 4 startups, no bytes: all cost is alpha.
        e.fold(4.0, 0.0, 8_000.0, 30, 1);
        assert_eq!(e.alpha_ns, 2_000.0);
        assert_eq!(e.beta_ns_per_byte, 0.0);
        assert_eq!(e.obs, 1);

        let mut e = ClassEstimate::default();
        // 2 startups, 1000 bytes, 4000 ns: half to each coordinate.
        e.fold(2.0, 1000.0, 4_000.0, 30, 1);
        assert_eq!(e.alpha_ns, 1_000.0);
        assert_eq!(e.beta_ns_per_byte, 2.0);
    }

    #[test]
    fn repeated_folds_converge_to_the_measurement() {
        let mut e = ClassEstimate::default();
        for _ in 0..50 {
            e.fold(3.0, 4096.0, 90_000.0, 30, 1);
        }
        let predicted = e.predict_ns(3.0, 4096.0);
        assert!(
            (predicted - 90_000.0).abs() < 900.0,
            "prediction {predicted} should converge to the repeated measurement"
        );
        assert_eq!(e.obs, 50);
    }

    #[test]
    fn ewma_decays_old_observations() {
        let mut e = ClassEstimate::default();
        e.fold(1.0, 0.0, 1_000_000.0, 30, 1); // one slow call
        for _ in 0..40 {
            e.fold(1.0, 0.0, 1_000.0, 30, 1); // then consistently fast
        }
        assert!(
            e.alpha_ns < 1_100.0,
            "old outlier must decay away, alpha = {}",
            e.alpha_ns
        );
    }

    #[test]
    fn estimates_never_go_negative_and_prediction_is_monotone() {
        let mut e = ClassEstimate::default();
        e.fold(2.0, 1000.0, 4_000.0, 50, 1);
        // Adversarial follow-ups cheaper than the current other-term
        // share: residual clamps at zero instead of going negative.
        for _ in 0..20 {
            e.fold(2.0, 1000.0, 1.0, 100, 1);
        }
        assert!(e.alpha_ns >= 0.0 && e.beta_ns_per_byte >= 0.0);
        // Monotonicity in both features.
        let base = e.predict_ns(2.0, 1000.0);
        assert!(e.predict_ns(3.0, 1000.0) >= base);
        assert!(e.predict_ns(2.0, 2000.0) >= base);
        assert!(e.predict_ns(5.0, 9000.0) >= e.predict_ns(4.0, 9000.0));
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let mut snap = ModelSnapshot {
            epoch: 17,
            ..ModelSnapshot::default()
        };
        for (i, c) in snap.classes.iter_mut().enumerate() {
            c.alpha_ns = 100.0 + i as f64;
            c.beta_ns_per_byte = 0.25 * i as f64;
            c.obs = 3 * i as u32;
        }
        let wire = snap.to_wire();
        assert_eq!(wire.len(), SNAPSHOT_WIRE_BYTES);
        let back = ModelSnapshot::from_wire(&wire).expect("valid wire form");
        assert_eq!(back, snap);
        assert!(ModelSnapshot::from_wire(&wire[1..]).is_none());
    }

    fn cands2(a_class: AlgoClass, b_class: AlgoClass) -> [Candidate<u8>; 2] {
        [
            candidate(0u8, a_class, 8, 1024.0, 1.0),
            candidate(1u8, b_class, 8, 1024.0, 3.0),
        ]
    }

    #[test]
    fn choose_follows_static_until_warm_then_explores_then_predicts() {
        let cfg = ModelConfig::default().drive(true);
        let mut snap = ModelSnapshot::default();
        let cands = cands2(AlgoClass::AllreduceRd, AlgoClass::AllreduceRabenseifner);

        // Everything cold: static.
        assert_eq!(
            choose_blocking(&snap, &cfg, &cands, 0, 1),
            (0, Pick::Static)
        );

        // Static class warm, other cold: explore it.
        snap.classes[AlgoClass::AllreduceRd.index()].obs = cfg.warmup_obs;
        assert_eq!(
            choose_blocking(&snap, &cfg, &cands, 0, 1),
            (1, Pick::Explore)
        );

        // All warm: argmin of predicted cost.
        let rd = &mut snap.classes[AlgoClass::AllreduceRd.index()];
        rd.alpha_ns = 10_000.0;
        let rab = &mut snap.classes[AlgoClass::AllreduceRabenseifner.index()];
        rab.obs = cfg.warmup_obs;
        rab.alpha_ns = 1.0;
        assert_eq!(choose_blocking(&snap, &cfg, &cands, 0, 1), (1, Pick::Model));
    }

    #[test]
    fn warm_choice_periodically_remeasures_the_stalest_candidate() {
        let cfg = ModelConfig::default().drive(true);
        let mut snap = ModelSnapshot::default();
        let cands = cands2(AlgoClass::AllreduceRd, AlgoClass::AllreduceRabenseifner);
        // Both warm; the winner (index 1) has accrued many more
        // observations than the loser's warm-up leftovers.
        let rd = &mut snap.classes[AlgoClass::AllreduceRd.index()];
        rd.obs = cfg.warmup_obs;
        rd.alpha_ns = 10_000.0;
        let rab = &mut snap.classes[AlgoClass::AllreduceRabenseifner.index()];
        rab.obs = cfg.warmup_obs + 40;
        rab.alpha_ns = 1.0;
        // Off-cadence: argmin. On-cadence: the stale loser is refreshed.
        let every = u64::from(cfg.reexplore_every);
        assert_eq!(
            choose_blocking(&snap, &cfg, &cands, 0, every + 1),
            (1, Pick::Model)
        );
        assert_eq!(
            choose_blocking(&snap, &cfg, &cands, 0, every),
            (0, Pick::Explore)
        );
        // Disabled cadence never re-explores.
        let off = cfg.reexplore_every(0);
        assert_eq!(
            choose_blocking(&snap, &off, &cands, 0, every),
            (1, Pick::Model)
        );
    }

    #[test]
    fn overlap_choice_stays_static_until_all_warm_and_charges_rounds() {
        let cfg = ModelConfig::default().drive(true);
        let mut snap = ModelSnapshot::default();
        let cands = cands2(AlgoClass::AlltoallPairwise, AlgoClass::AlltoallBruck);

        // Partial warmth is not enough for the unmeasured engines.
        snap.classes[AlgoClass::AlltoallPairwise.index()].obs = cfg.warmup_obs;
        assert_eq!(choose_overlap(&snap, &cfg, &cands, 0), (0, Pick::Static));

        // Warm, identical base costs: the per-round alpha penalty makes
        // the 3-round candidate lose.
        for class in [AlgoClass::AlltoallPairwise, AlgoClass::AlltoallBruck] {
            let c = &mut snap.classes[class.index()];
            c.obs = cfg.warmup_obs;
            c.alpha_ns = 1_000.0;
            c.beta_ns_per_byte = 0.0;
        }
        // Equalize the base cost by feature count: pairwise (p-1 = 7
        // startups) vs Bruck (3 startups × ~4096 packed bytes·0) —
        // Bruck's base is cheaper, but crank the round bias to flip it.
        let heavy = ModelConfig::default().drive(true).overlap_alpha_pct(10_000);
        assert_eq!(choose_overlap(&snap, &heavy, &cands, 0), (0, Pick::Model));
        // With no bias, Bruck's fewer startups win.
        let none = ModelConfig::default().drive(true).overlap_alpha_pct(0);
        assert_eq!(choose_overlap(&snap, &none, &cands, 0), (1, Pick::Model));
    }

    #[test]
    fn class_features_are_positive_and_scale() {
        for class in AlgoClass::ALL {
            let (s1, v1) = class_features(class, 8, 1024.0);
            let (s2, v2) = class_features(class, 8, 4096.0);
            assert!(s1 >= 1.0, "{class:?} startups");
            assert!(v1 >= 0.0, "{class:?} bytes");
            assert!(s2 >= s1 && v2 >= v1, "{class:?} monotone in size");
        }
    }

    #[test]
    fn weighted_fold_counts_all_calls() {
        let mut e = ClassEstimate::default();
        e.fold(2.0, 64.0, 5_000.0, 30, 7);
        assert_eq!(e.obs, 7);
    }
}
