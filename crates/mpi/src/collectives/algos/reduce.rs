//! Binomial-tree reduction with in-place folds.
//!
//! The PR 2 datapath still materialized every child's block
//! (`recv_vec` + fold), paying `O(s log p)` copies at inner nodes. Here
//! a child's delivered payload folds straight into the accumulator
//! ([`fold_bytes_right`]): the only payload copy left is the single
//! serialization towards the parent, halving (or better) every inner
//! node's bill.

use super::fold_bytes_right;
use crate::collectives::{recv_internal, send_slice_internal};
use crate::comm::Comm;
use crate::error::Result;
use crate::op::ReduceOp;
use crate::{Plain, Rank, Tag};

/// Binomial-tree shape for `vrank` (rank relative to the root):
/// children in receive order, and the parent (None for the root).
pub(crate) fn binomial_children(vrank: usize, p: usize) -> (Vec<usize>, Option<usize>) {
    let mut children = Vec::new();
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            return (children, Some(vrank & !mask));
        }
        let child_v = vrank | mask;
        if child_v < p {
            children.push(child_v);
        }
        mask <<= 1;
    }
    (children, None)
}

/// Blocking binomial reduce over virtual ranks. Returns `Some(folded)`
/// at the root, `None` elsewhere. Commutative operations only: the tree
/// combines blocks out of rank order.
pub(crate) fn binomial_inplace<T: Plain, O: ReduceOp<T>>(
    comm: &Comm,
    tag: Tag,
    send: &[T],
    op: &O,
    root: Rank,
) -> Result<Option<Vec<T>>> {
    let p = comm.size();
    let rank = comm.rank();
    let vrank = (rank + p - root) % p;
    let (children, parent) = binomial_children(vrank, p);
    let mut acc = send.to_vec();
    for child_v in children {
        let child = (child_v + root) % p;
        let theirs = recv_internal(comm, child, tag)?;
        fold_bytes_right(&mut acc, &theirs, op)?;
    }
    if let Some(parent_v) = parent {
        let parent = (parent_v + root) % p;
        send_slice_internal(comm, parent, tag, &acc)?;
        Ok(None)
    } else {
        Ok(Some(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;
    use crate::Universe;

    #[test]
    fn tree_shape_matches_the_classic_binomial_tree() {
        // p = 8: vrank 0 has children 1, 2, 4; vrank 4 has 5, 6; leaves
        // have none.
        assert_eq!(binomial_children(0, 8), (vec![1, 2, 4], None));
        assert_eq!(binomial_children(4, 8), (vec![5, 6], Some(0)));
        assert_eq!(binomial_children(6, 8), (vec![7], Some(4)));
        assert_eq!(binomial_children(7, 8), (vec![], Some(6)));
        // Truncated tree at p = 5.
        assert_eq!(binomial_children(0, 5), (vec![1, 2, 4], None));
        assert_eq!(binomial_children(2, 5), (vec![3], Some(0)));
        assert_eq!(binomial_children(4, 5), (vec![], Some(0)));
    }

    #[test]
    fn inplace_reduce_sums_to_any_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in [0, p - 1] {
                Universe::run(p, move |comm| {
                    let tag = comm.next_internal_tag();
                    let mine = [comm.rank() as u64 + 1, 1];
                    let out = binomial_inplace(&comm, tag, &mine, &Sum, root).unwrap();
                    if comm.rank() == root {
                        let total = (p * (p + 1) / 2) as u64;
                        assert_eq!(out.unwrap(), vec![total, p as u64]);
                    } else {
                        assert!(out.is_none());
                    }
                });
            }
        }
    }
}
