//! Latency-regime allgathers: recursive doubling (power-of-two
//! communicators) and Bruck (any communicator size).
//!
//! **Recursive doubling:** round `k` pairs each rank with `rank ^ 2^k`;
//! the pair exchanges the `2^k` origin blocks each side has accumulated
//! so far, so after `log2 p` rounds every rank holds all `p` blocks.
//! Compared to the ring this trades `p-1` startups for `log2 p` at the
//! same total volume — but rounds past the first must *pack* their
//! block group into one contiguous message (`s·(p-2)` bytes memcpy'd
//! per rank), which is why the `Auto` selection keeps it to small
//! contributions (see
//! [`CollTuning::allgather_rd_max_bytes`](super::CollTuning)).
//!
//! **Bruck:** the same `ceil(log2 p)` startup count without the
//! power-of-two restriction. Every rank keeps its accumulated blocks
//! rotated so its *own* block sits first; round `k` sends the first
//! `min(2^k, p - 2^k)` blocks to rank `rank - 2^k` and appends the same
//! count received from rank `rank + 2^k`. After the rounds, local index
//! `i` holds the block that originated at rank `(rank + i) mod p` — one
//! index rotation puts everything in rank order. Rounds sending a
//! single block forward it as a refcount clone; multi-block rounds pack
//! (`s·(p - 1 - #single-block rounds)` memcpy'd per rank, e.g. `2s` at
//! `p = 5`), so like recursive doubling it is gated to the latency
//! regime ([`CollTuning::allgather_bruck_max_bytes`](super::CollTuning)).
//!
//! In both algorithms incoming groups are carved into per-origin blocks
//! by refcount slicing, copy-free.

use bytes::Bytes;

use crate::collectives::{recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{bytes_from_vec, extend_vec_from_bytes};

/// Equal-block recursive-doubling allgather at the shared-payload
/// level: contributes `own`, returns one block per origin rank.
/// Requires `comm.size()` to be a power of two (the selection engine
/// guarantees this) and every rank to contribute `own.len()` bytes
/// (MPI's equal-count contract for `MPI_Allgather`; violations surface
/// as [`MpiError::InvalidLayout`]).
pub(crate) fn allgather_blocks_rd(comm: &Comm, own: Bytes) -> Result<Vec<Bytes>> {
    let p = comm.size();
    let rank = comm.rank();
    debug_assert!(p.is_power_of_two(), "selection gates RD to power-of-two p");
    let s = own.len();
    let mut blocks: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
    blocks[rank] = Some(own);
    let rounds = p.trailing_zeros() as usize;
    // One tag per round, allocated in the same order on every rank.
    let tags: Vec<_> = (0..rounds).map(|_| comm.next_internal_tag()).collect();
    for (k, &tag) in tags.iter().enumerate() {
        let group = 1usize << k;
        let partner = rank ^ group;
        // Origins this rank has accumulated: the `group`-aligned span
        // containing it.
        let base = rank & !(group - 1);
        let outgoing = if group == 1 {
            blocks[rank].clone().expect("own block present")
        } else {
            // Pack the group in ascending origin order (the counted
            // copy this algorithm trades for its latency win).
            let mut packed: Vec<u8> = Vec::with_capacity(group * s);
            for b in &blocks[base..base + group] {
                let b = b.as_ref().expect("block from earlier round");
                extend_vec_from_bytes(&mut packed, b);
            }
            bytes_from_vec(packed)
        };
        send_internal(comm, partner, tag, outgoing)?;
        let incoming = recv_internal(comm, partner, tag)?;
        if incoming.len() != group * s {
            return Err(MpiError::InvalidLayout(format!(
                "allgather (recursive doubling): round {k} delivered {} bytes, \
                 expected {} ({} blocks of {s}) — unequal contributions?",
                incoming.len(),
                group * s,
                group
            )));
        }
        let partner_base = partner & !(group - 1);
        for (i, origin) in (partner_base..partner_base + group).enumerate() {
            // Carve per-origin blocks as refcount sub-views (copy-free).
            blocks[origin] = Some(incoming.slice(i * s..(i + 1) * s));
        }
    }
    Ok(blocks
        .into_iter()
        .map(|b| b.expect("all groups exchanged"))
        .collect())
}

/// Equal-block Bruck allgather at the shared-payload level: contributes
/// `own`, returns one block per origin rank. Works for **any** `p`;
/// every rank must contribute `own.len()` bytes (violations surface as
/// [`MpiError::InvalidLayout`]).
pub(crate) fn allgather_blocks_bruck(comm: &Comm, own: Bytes) -> Result<Vec<Bytes>> {
    let p = comm.size();
    let rank = comm.rank();
    let s = own.len();
    // `local[i]` accumulates the block of origin rank `(rank + i) % p`.
    let mut local: Vec<Bytes> = Vec::with_capacity(p);
    local.push(own);
    // One tag per round, allocated in the same order on every rank.
    let rounds = p.next_power_of_two().trailing_zeros() as usize;
    let tags: Vec<_> = (0..rounds).map(|_| comm.next_internal_tag()).collect();
    let mut step = 1usize;
    for (k, &tag) in tags.iter().enumerate() {
        let cnt = step.min(p - step);
        let dest = (rank + p - step) % p;
        let src = (rank + step) % p;
        let outgoing = if cnt == 1 {
            // A single block travels as a refcount clone, copy-free
            // (round 0 always; also the short final round of
            // non-power-of-two sizes, e.g. p = 5).
            local[0].clone()
        } else {
            // Pack the first `cnt` accumulated blocks (the counted copy
            // this algorithm trades for its startup win).
            let mut packed: Vec<u8> = Vec::with_capacity(cnt * s);
            for b in &local[..cnt] {
                extend_vec_from_bytes(&mut packed, b);
            }
            bytes_from_vec(packed)
        };
        send_internal(comm, dest, tag, outgoing)?;
        let incoming = recv_internal(comm, src, tag)?;
        if incoming.len() != cnt * s {
            return Err(MpiError::InvalidLayout(format!(
                "allgather (Bruck): round {k} delivered {} bytes, expected {} \
                 ({cnt} blocks of {s}) — unequal contributions?",
                incoming.len(),
                cnt * s
            )));
        }
        for i in 0..cnt {
            // Carve per-origin blocks as refcount sub-views (copy-free).
            local.push(incoming.slice(i * s..(i + 1) * s));
        }
        step <<= 1;
    }
    debug_assert_eq!(local.len(), p, "Bruck rounds deliver every block");
    // Inverse rotation: origin `o`'s block sits at local index
    // `(o - rank) mod p`.
    Ok((0..p)
        .map(|origin| local[(origin + p - rank) % p].clone())
        .collect())
}
