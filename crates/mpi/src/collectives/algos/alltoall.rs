//! Bruck's algorithm for small-message all-to-all.
//!
//! The pairwise exchange sends `p-1` messages per rank; for small blocks
//! that cost is pure startup latency. Bruck routes every block through
//! `ceil(log2 p)` rounds instead: in round `k` each rank packs all
//! blocks whose (rotated) index has bit `k` set into **one** message to
//! rank `rank + 2^k`. A block destined `i` ranks ahead travels exactly
//! the set bits of `i`, so after the rounds plus a final inverse
//! rotation every block is home. Works for any `p` (not just powers of
//! two).
//!
//! Copy bill: `s` (initial pack) `+ r` (final placement) `+` the
//! per-round repacks (`~s/2` each, `ceil(log2 p)` rounds) — a deliberate
//! bandwidth-for-latency trade that only pays off for small blocks,
//! which is exactly when [`CollTuning::alltoall_algo`] selects it.
//!
//! [`CollTuning::alltoall_algo`]: super::CollTuning::alltoall_algo

use bytes::Bytes;

use crate::collectives::{recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::{bytes_from_slice, bytes_from_vec, copy_bytes_into, extend_vec_from_bytes};
use crate::{Plain, Rank, Tag};

/// One Bruck round: the peers and the (rotated) block indices exchanged.
pub(crate) struct BruckRound {
    /// Destination of this rank's packed message.
    pub dest: Rank,
    /// Source of the packed message this rank receives.
    pub src: Rank,
    /// Block indices (into the rotated block array) sent and replaced,
    /// in ascending order.
    pub indices: Vec<usize>,
}

/// The round plan for `rank` in a `p`-rank Bruck exchange
/// (`ceil(log2 p)` rounds).
pub(crate) fn bruck_rounds(rank: Rank, p: usize) -> Vec<BruckRound> {
    let mut rounds = Vec::new();
    let mut step = 1usize;
    while step < p {
        let indices: Vec<usize> = (1..p).filter(|i| i & step != 0).collect();
        rounds.push(BruckRound {
            dest: (rank + step) % p,
            src: (rank + p - step) % p,
            indices,
        });
        step <<= 1;
    }
    rounds
}

/// Initial rotation: `blocks[i]` = the caller's block destined to rank
/// `(rank + i) % p`, sliced out of one packed payload.
pub(crate) fn bruck_rotate(packed: &Bytes, rank: Rank, p: usize, block_bytes: usize) -> Vec<Bytes> {
    (0..p)
        .map(|i| {
            let dest = (rank + i) % p;
            packed.slice(dest * block_bytes..(dest + 1) * block_bytes)
        })
        .collect()
}

/// Packs the blocks of one round into a single message (one counted
/// repack; the message adopts the fresh buffer without another copy).
pub(crate) fn bruck_pack(blocks: &[Bytes], indices: &[usize]) -> Bytes {
    let total: usize = indices.iter().map(|&i| blocks[i].len()).sum();
    let mut packed: Vec<u8> = Vec::with_capacity(total);
    crate::metrics::record_alloc();
    for &i in indices {
        extend_vec_from_bytes(&mut packed, &blocks[i]);
    }
    bytes_from_vec(packed)
}

/// Unpacks a received round message back into the block array (refcount
/// slices, no copies).
pub(crate) fn bruck_unpack(
    blocks: &mut [Bytes],
    indices: &[usize],
    payload: &Bytes,
    block_bytes: usize,
) -> Result<()> {
    if payload.len() != indices.len() * block_bytes {
        return Err(MpiError::Truncated {
            message_bytes: payload.len(),
            buffer_bytes: indices.len() * block_bytes,
        });
    }
    for (j, &i) in indices.iter().enumerate() {
        blocks[i] = payload.slice(j * block_bytes..(j + 1) * block_bytes);
    }
    Ok(())
}

/// After the rounds, the block received *from* rank `j` sits at rotated
/// index `(rank - j) mod p`.
#[inline]
pub(crate) fn bruck_source_index(rank: Rank, j: usize, p: usize) -> usize {
    (rank + p - j) % p
}

/// Blocking Bruck alltoall of `p` equal blocks of `n` elements; writes
/// the result (rank-ordered by source) into `recv[..p * n]`.
pub(crate) fn bruck<T: Plain>(comm: &Comm, send: &[T], n: usize, recv: &mut [T]) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    let block_bytes = n * std::mem::size_of::<T>();
    let rounds = bruck_rounds(rank, p);
    // One tag per round, allocated in the same order on every rank.
    let tags: Vec<Tag> = rounds.iter().map(|_| comm.next_internal_tag()).collect();

    let packed = bytes_from_slice(send);
    let mut blocks = bruck_rotate(&packed, rank, p, block_bytes);

    for (round, &tag) in rounds.iter().zip(&tags) {
        let msg = bruck_pack(&blocks, &round.indices);
        send_internal(comm, round.dest, tag, msg)?;
        let payload = recv_internal(comm, round.src, tag)?;
        bruck_unpack(&mut blocks, &round.indices, &payload, block_bytes)?;
    }

    for j in 0..p {
        let block = &blocks[bruck_source_index(rank, j, p)];
        copy_bytes_into(block, &mut recv[j * n..(j + 1) * n]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn bruck_matches_pairwise_semantics() {
        for p in [2, 3, 4, 5, 7, 8] {
            for n in [1usize, 3] {
                Universe::run(p, move |comm| {
                    let rank = comm.rank();
                    let send: Vec<u32> =
                        (0..p * n).map(|i| rank as u32 * 1000 + i as u32).collect();
                    let mut recv = vec![0u32; p * n];
                    bruck(&comm, &send, n, &mut recv).unwrap();
                    let expected: Vec<u32> = (0..p)
                        .flat_map(|src| {
                            (0..n).map(move |e| src as u32 * 1000 + (rank * n + e) as u32)
                        })
                        .collect();
                    assert_eq!(recv, expected, "p = {p}, n = {n}");
                });
            }
        }
    }

    #[test]
    fn bruck_zero_sized_blocks() {
        Universe::run(3, |comm| {
            let send: Vec<u64> = vec![];
            let mut recv: Vec<u64> = vec![];
            bruck(&comm, &send, 0, &mut recv).unwrap();
        });
    }

    #[test]
    fn round_plan_has_log_rounds() {
        assert_eq!(bruck_rounds(0, 2).len(), 1);
        assert_eq!(bruck_rounds(0, 4).len(), 2);
        assert_eq!(bruck_rounds(0, 5).len(), 3);
        assert_eq!(bruck_rounds(0, 8).len(), 3);
        // Round k exchanges the indices with bit k set.
        let rounds = bruck_rounds(1, 5);
        assert_eq!(rounds[0].indices, vec![1, 3]);
        assert_eq!(rounds[1].indices, vec![2, 3]);
        assert_eq!(rounds[2].indices, vec![4]);
        assert_eq!(rounds[0].dest, 2);
        assert_eq!(rounds[0].src, 0);
    }
}
