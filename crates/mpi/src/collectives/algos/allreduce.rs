//! Allreduce algorithms: recursive doubling and Rabenseifner.
//!
//! Both handle non-power-of-two communicators with the standard fixup:
//! the `extra = p - p2` highest ranks fold their vector into a partner
//! in the low half before the main phase and receive the finished
//! result afterwards.

use bytes::Bytes;

use super::fold_bytes_right;
use crate::collectives::{recv_internal, send_internal, send_slice_internal};
use crate::comm::Comm;
use crate::error::Result;
use crate::op::ReduceOp;
use crate::plain::{bytes_from_slice, bytes_into_vec, extend_vec_from_bytes};
use crate::Plain;

/// Largest power of two `<= p`.
fn pow2_below(p: usize) -> usize {
    p.next_power_of_two() >> usize::from(!p.is_power_of_two())
}

/// Recursive doubling with in-place folds: log2 p rounds, each
/// serializing the full vector once (`s` copied per round); the received
/// payload folds into the accumulator without materializing.
pub(crate) fn recursive_doubling<T: Plain, O: ReduceOp<T>>(
    comm: &Comm,
    send: &[T],
    op: &O,
) -> Result<Vec<T>> {
    let p = comm.size();
    let rank = comm.rank();
    let tag = comm.next_internal_tag();
    let p2 = pow2_below(p);
    let extra = p - p2;
    let mut acc = send.to_vec();

    // Fold the `extra` highest ranks into the low half.
    if rank >= p2 {
        send_slice_internal(comm, rank - p2, tag, &acc)?;
    } else if rank + p2 < p {
        let theirs = recv_internal(comm, rank + p2, tag)?;
        fold_bytes_right(&mut acc, &theirs, op)?;
    }

    // Recursive doubling among ranks < p2.
    if rank < p2 {
        let mut mask = 1usize;
        while mask < p2 {
            let partner = rank ^ mask;
            send_slice_internal(comm, partner, tag, &acc)?;
            let theirs = recv_internal(comm, partner, tag)?;
            fold_bytes_right(&mut acc, &theirs, op)?;
            mask <<= 1;
        }
    }

    // Return results to the folded-in ranks.
    if rank < extra {
        send_slice_internal(comm, rank + p2, tag, &acc)?;
    } else if rank >= p2 {
        acc = bytes_into_vec(recv_internal(comm, rank - p2, tag)?);
    }
    Ok(acc)
}

/// Chunk boundary `i` (in elements) when splitting `n` elements into
/// `parts` near-equal chunks. Every rank computes the same split.
#[inline]
fn chunk_bound(n: usize, parts: usize, i: usize) -> usize {
    n * i / parts
}

/// Rabenseifner's algorithm: recursive-halving reduce-scatter (each
/// round serializes half of the shrinking working range and folds the
/// received half in place), then a ring allgather of the reduced
/// chunks (refcount forwarding). Total copy bill per rank:
/// `s·(1 - 1/p2)` (reduce-scatter sends) `+ s/p2` (own chunk pack)
/// `+ s` (result assembly) ≈ **2s**, versus `s·log2 p` for recursive
/// doubling.
pub(crate) fn rabenseifner<T: Plain, O: ReduceOp<T>>(
    comm: &Comm,
    send: &[T],
    op: &O,
) -> Result<Vec<T>> {
    let p = comm.size();
    let rank = comm.rank();
    let n = send.len();
    let p2 = pow2_below(p);
    let extra = p - p2;
    let fixup_tag = comm.next_internal_tag();
    let rs_tag = comm.next_internal_tag();
    let ring_tag = comm.next_internal_tag();
    let result_tag = comm.next_internal_tag();

    // Non-power-of-two fixup: the high ranks contribute and then wait
    // for the finished result.
    if rank >= p2 {
        send_slice_internal(comm, rank - p2, fixup_tag, send)?;
        return Ok(bytes_into_vec(recv_internal(comm, rank - p2, result_tag)?));
    }
    let mut acc = send.to_vec();
    if rank + p2 < p {
        let theirs = recv_internal(comm, rank + p2, fixup_tag)?;
        fold_bytes_right(&mut acc, &theirs, op)?;
    }

    // Recursive-halving reduce-scatter over the p2 low ranks: the
    // working range [lo, hi) (in chunks) halves every round; after
    // log2 p2 rounds rank v owns exactly chunk v.
    let (mut lo, mut hi) = (0usize, p2);
    let mut mask = p2 >> 1;
    while mask > 0 {
        let partner = rank ^ mask;
        let mid = lo + (hi - lo) / 2;
        let (keep, give) = if rank & mask == 0 {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let give_elems = &acc[chunk_bound(n, p2, give.0)..chunk_bound(n, p2, give.1)];
        send_internal(comm, partner, rs_tag, bytes_from_slice(give_elems))?;
        let theirs = recv_internal(comm, partner, rs_tag)?;
        fold_bytes_right(
            &mut acc[chunk_bound(n, p2, keep.0)..chunk_bound(n, p2, keep.1)],
            &theirs,
            op,
        )?;
        (lo, hi) = keep;
        mask >>= 1;
    }
    debug_assert_eq!((lo, hi), (rank, rank + 1));

    // Ring allgather of the reduced chunks among the p2 low ranks:
    // chunks travel as shared payloads (forwarding clones a refcount).
    let own_chunk = bytes_from_slice(&acc[chunk_bound(n, p2, rank)..chunk_bound(n, p2, rank + 1)]);
    let mut chunks: Vec<Option<Bytes>> = (0..p2).map(|_| None).collect();
    chunks[rank] = Some(own_chunk);
    if p2 > 1 {
        let right = (rank + 1) % p2;
        let left = (rank + p2 - 1) % p2;
        for step in 0..p2 - 1 {
            let outgoing_origin = (rank + p2 - step) % p2;
            let outgoing = chunks[outgoing_origin]
                .clone()
                .expect("chunk arrived in a previous step");
            send_internal(comm, right, ring_tag, outgoing)?;
            let incoming_origin = (rank + p2 - 1 - step) % p2;
            chunks[incoming_origin] = Some(recv_internal(comm, left, ring_tag)?);
        }
    }

    // Assemble the result in chunk order (one copy of `r` total).
    let mut result: Vec<T> = Vec::with_capacity(n);
    crate::metrics::record_alloc();
    for chunk in &chunks {
        extend_vec_from_bytes(
            &mut result,
            chunk.as_ref().expect("ring delivered all chunks"),
        );
    }

    // Hand the finished result to the folded-in high rank, if any.
    if rank < extra {
        send_slice_internal(comm, rank + p2, result_tag, &result)?;
    }
    Ok(result)
}

/// Dispatches a commutative allreduce by the communicator's tuning
/// (model-driven when warm; see [`super::model`]).
pub(crate) fn dispatch<T: Plain, O: ReduceOp<T>>(
    comm: &Comm,
    send: &[T],
    op: &O,
) -> Result<Vec<T>> {
    let bytes = std::mem::size_of_val(send);
    super::model::tick(comm)?;
    let algo = super::model::select_allreduce(comm, bytes);
    let _sp = crate::trace::span(
        crate::trace::cat::COLL,
        match algo {
            super::AllreduceAlgo::RecursiveDoubling => "allreduce/recursive_doubling",
            super::AllreduceAlgo::Rabenseifner => "allreduce/rabenseifner",
        },
        bytes as u64,
        comm.size() as u64,
    );
    let begun = super::model::measure_begin(comm);
    let out = match algo {
        super::AllreduceAlgo::RecursiveDoubling => recursive_doubling(comm, send, op)?,
        super::AllreduceAlgo::Rabenseifner => rabenseifner(comm, send, op)?,
    };
    super::model::observe(
        comm,
        super::model::allreduce_class(algo),
        begun,
        bytes as f64,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;
    use crate::Universe;

    /// Rabenseifner must agree with the oracle on every communicator
    /// size, including non-powers-of-two and vectors shorter than p.
    #[test]
    fn rabenseifner_matches_oracle_for_all_sizes() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 9] {
            for n in [1usize, 2, 3, 7, 64] {
                Universe::run(p, move |comm| {
                    let mine: Vec<u64> = (0..n as u64)
                        .map(|i| comm.rank() as u64 * 100 + i)
                        .collect();
                    let out = rabenseifner(&comm, &mine, &Sum).unwrap();
                    let expected: Vec<u64> = (0..n as u64)
                        .map(|i| (0..p as u64).map(|r| r * 100 + i).sum())
                        .collect();
                    assert_eq!(out, expected, "p = {p}, n = {n}");
                });
            }
        }
    }

    #[test]
    fn recursive_doubling_matches_oracle() {
        for p in [1, 2, 3, 5, 8] {
            Universe::run(p, move |comm| {
                let mine = [comm.rank() as u64 + 1, 2];
                let out = recursive_doubling(&comm, &mine, &Sum).unwrap();
                assert_eq!(out, vec![(p * (p + 1) / 2) as u64, 2 * p as u64]);
            });
        }
    }
}
