//! Large-message broadcast: scatter + ring allgather (van de Geijn).
//!
//! The root splits the payload into `p` near-equal chunks (byte
//! granularity, so any element size works), sends chunk `i` to rank `i`,
//! and all ranks ring-allgather the chunks. Wire volume is
//! `~2s·(p-1)/p` on the critical path instead of the binomial tree's
//! `s·log2 p`, which wins for large payloads; chunks are shared
//! [`Bytes`], so forwarding stays refcount cloning and the per-rank copy
//! bill is identical to the binomial tree (root `s`, non-root `r`).

use bytes::Bytes;

use crate::collectives::{allgather_blocks, recv_internal, send_internal};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::element_count;
use crate::{Plain, Rank};

/// The delivery of a sized broadcast: either the whole payload (binomial
/// tree, or the root's own buffer) or the rank-ordered chunks of the
/// scatter+allgather algorithm. Both shapes write into the caller's
/// buffer with one copy of `r` total.
#[derive(Debug)]
pub enum BcastParts {
    /// The payload in one piece.
    Whole(Bytes),
    /// The payload split into rank-ordered chunks (chunk `i` covers
    /// bytes `[i*len/p, (i+1)*len/p)` of the payload).
    Chunks(Vec<Bytes>),
}

impl BcastParts {
    /// Total payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            BcastParts::Whole(b) => b.len(),
            BcastParts::Chunks(c) => c.iter().map(|b| b.len()).sum(),
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload as a sequence of byte parts.
    fn parts(&self) -> &[Bytes] {
        match self {
            BcastParts::Whole(b) => std::slice::from_ref(b),
            BcastParts::Chunks(c) => c.as_slice(),
        }
    }

    /// Writes the payload into `dst` (one counted copy of `r`).
    pub fn write_into(&self, dst: &mut [u8]) -> Result<()> {
        if self.len() != dst.len() {
            return Err(MpiError::Truncated {
                message_bytes: self.len(),
                buffer_bytes: dst.len(),
            });
        }
        let mut offset = 0usize;
        for part in self.parts() {
            crate::plain::copy_slice(part, &mut dst[offset..offset + part.len()]);
            offset += part.len();
        }
        Ok(())
    }

    /// Materializes the payload as a typed vector (at most one copy;
    /// zero for a unique `Vec<u8>`-backed whole payload).
    ///
    /// # Panics
    ///
    /// Panics if the total length is not a multiple of the element size.
    pub fn into_vec<T: Plain>(self) -> Vec<T> {
        match self {
            BcastParts::Whole(b) => crate::plain::bytes_into_vec(b),
            BcastParts::Chunks(chunks) => {
                let total = chunks.iter().map(|b| b.len()).sum::<usize>();
                let n = element_count::<T>(total);
                assert!(
                    std::mem::size_of::<T>() == 0 || total == n * std::mem::size_of::<T>(),
                    "byte length {total} is not a multiple of element size {}",
                    std::mem::size_of::<T>()
                );
                crate::metrics::record_alloc();
                let mut out = Vec::<T>::with_capacity(n);
                let mut offset = 0usize;
                for chunk in &chunks {
                    crate::metrics::record_copy(chunk.len());
                    // SAFETY: total capacity reserved above; chunks are
                    // written back to back and `T: Plain` accepts any
                    // bytes.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            chunk.as_ptr(),
                            out.as_mut_ptr().cast::<u8>().add(offset),
                            chunk.len(),
                        );
                    }
                    offset += chunk.len();
                }
                // SAFETY: all `total` bytes initialized above.
                unsafe { out.set_len(n) };
                out
            }
        }
    }
}

/// Chunk boundary `i` in bytes for a `len`-byte payload over `p` ranks.
#[inline]
fn chunk_bound(len: usize, p: usize, i: usize) -> usize {
    len * i / p
}

/// Van de Geijn broadcast. `size` must be identical on every rank (the
/// caller's contract: it comes from a buffer length all ranks agree on,
/// like `MPI_Bcast`'s count). The root returns its own payload whole;
/// non-roots return the gathered chunks.
pub(crate) fn scatter_allgather(
    comm: &Comm,
    payload: Option<Bytes>,
    size: usize,
    root: Rank,
) -> Result<BcastParts> {
    let p = comm.size();
    let rank = comm.rank();
    let scatter_tag = comm.next_internal_tag();

    let own_chunk = if rank == root {
        let payload = payload.expect("root must supply a payload");
        debug_assert_eq!(payload.len(), size, "sized bcast: payload/size mismatch");
        for r in 0..p {
            if r != root {
                let block = payload.slice(chunk_bound(size, p, r)..chunk_bound(size, p, r + 1));
                send_internal(comm, r, scatter_tag, block)?;
            }
        }
        let own = payload.slice(chunk_bound(size, p, rank)..chunk_bound(size, p, rank + 1));
        // The ring below circulates chunks the root already has; it
        // returns the original payload untouched.
        allgather_blocks_discard(comm, own)?;
        return Ok(BcastParts::Whole(payload));
    } else {
        let chunk = recv_internal(comm, root, scatter_tag)?;
        let expected = chunk_bound(size, p, rank + 1) - chunk_bound(size, p, rank);
        if chunk.len() != expected {
            return Err(MpiError::Truncated {
                message_bytes: chunk.len(),
                buffer_bytes: expected,
            });
        }
        chunk
    };

    let blocks = allgather_blocks(comm, own_chunk)?;
    Ok(BcastParts::Chunks(blocks))
}

/// Root side of the ring: participate (so the ring closes) but drop the
/// gathered blocks.
fn allgather_blocks_discard(comm: &Comm, own: Bytes) -> Result<()> {
    let _ = allgather_blocks(comm, own)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::bytes_from_slice;
    use crate::Universe;

    #[test]
    fn scatter_allgather_delivers_everywhere() {
        for p in [2, 3, 4, 5, 8] {
            for root in [0, p - 1] {
                Universe::run(p, move |comm| {
                    let data: Vec<u8> = (0..1031u32).map(|i| (i % 251) as u8).collect();
                    let payload = (comm.rank() == root).then(|| bytes_from_slice(&data));
                    let parts = scatter_allgather(&comm, payload, data.len(), root).unwrap();
                    let got: Vec<u8> = parts.into_vec();
                    assert_eq!(got, data, "p = {p}, root = {root}");
                });
            }
        }
    }

    #[test]
    fn parts_write_into_checks_length() {
        let parts = BcastParts::Whole(bytes_from_slice(&[1u8, 2, 3]));
        let mut small = [0u8; 2];
        assert!(parts.write_into(&mut small).is_err());
        let mut exact = [0u8; 3];
        parts.write_into(&mut exact).unwrap();
        assert_eq!(exact, [1, 2, 3]);
    }

    #[test]
    fn chunked_parts_reassemble_typed() {
        // Chunk boundaries deliberately misaligned with the element
        // size: 3 u64 over 4 parts splits at bytes 6/12/18.
        let data = [7u64, 8, 9];
        let bytes = bytes_from_slice(&data);
        let chunks: Vec<Bytes> = (0..4)
            .map(|i| bytes.slice(chunk_bound(24, 4, i)..chunk_bound(24, 4, i + 1)))
            .collect();
        let parts = BcastParts::Chunks(chunks);
        assert_eq!(parts.len(), 24);
        let back: Vec<u64> = parts.into_vec();
        assert_eq!(back, vec![7, 8, 9]);
    }
}
