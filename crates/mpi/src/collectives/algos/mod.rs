//! Tunable collective algorithms: the selection engine.
//!
//! Real MPI implementations do not hard-wire one algorithm per
//! collective — they switch algorithms by message size and communicator
//! size, which is exactly the baseline the paper's §V overhead
//! measurements compete against. This module gives the substrate the
//! same structure: each hot collective has at least two algorithm
//! implementations, and a per-communicator [`CollTuning`] policy picks
//! one at call time. The binding layer stays policy-free; it forwards a
//! user-provided tuning (the `tuning(...)` named parameter in `kamping`)
//! through [`Comm::tuning_guard`](crate::Comm::tuning_guard).
//!
//! Algorithm menu (`s` = bytes a rank contributes, `r` = bytes of its
//! result, `b` = bytes of one all-to-all block, `p` = communicator
//! size). "Copies per rank" is the payload-byte memcpy bill on the
//! shared-`Bytes` datapath; folds that combine a received payload into
//! an accumulator *in place* read the delivered bytes directly and are
//! compute, not copies:
//!
//! | collective  | algorithm              | startups   | copies/rank | auto-selected when |
//! |-------------|------------------------|------------|-------------|--------------------|
//! | `allreduce` | recursive doubling     | log2 p     | s·log2 p    | `s <` [`CollTuning::rabenseifner_min_bytes`] |
//! | `allreduce` | Rabenseifner (reduce-scatter + ring allgather) | log2 p + p | ~2s | `p >= 4` and `s >=` threshold |
//! | `bcast`     | binomial tree          | <= log2 p  | root s, other r | `s <` [`CollTuning::bcast_scatter_min_bytes`] (and always on unsized paths) |
//! | `bcast`     | scatter + ring allgather (van de Geijn) | ~2p | root s, other r | sized paths, `p >= 4` and `s >=` threshold |
//! | `allgather` | ring, block forwarding | p-1        | s + r       | `s >` the latency thresholds below |
//! | `allgather` | recursive doubling (packed rounds) | log2 p | s·(p-1) + r | `p >= 4` power of two and `s <=` [`CollTuning::allgather_rd_max_bytes`] |
//! | `allgather` | Bruck (rotated packed rounds, any p) | ceil(log2 p) | <= s·(p-1) + r | `p >= 4` not a power of two and `s <=` [`CollTuning::allgather_bruck_max_bytes`] |
//! | `alltoall`  | pairwise exchange      | p-1        | s + r       | `b >` [`CollTuning::bruck_max_block_bytes`] |
//! | `alltoall`  | Bruck                  | ceil(log2 p) | s + r + s·ceil(log2 p)/2 | `p >= 4` and `b <=` threshold |
//! | `reduce`    | binomial tree, in-place fold | <= log2 p | non-root s, root r | op commutative |
//! | `reduce`    | flat gather + ordered fold | 1 (root p-1) | s (root: + r) | op non-commutative, or forced |
//!
//! The "auto-selected when" column describes the **static fallback**.
//! With [`CollTuning::self_tuning`] enabled, `Auto` selection is driven
//! by the online measured cost model in [`model`]: per-algorithm
//! `(alpha, beta)` estimates fitted by EWMA from wall-clock
//! measurements predict each candidate's cost at call time, and the
//! cheapest wins — the static thresholds only govern the warm-up phase
//! (and remain the whole story when the model is off, the default).
//! `Select::Force` is never overridden by the model.
//!
//! Selection must be *symmetric*: every rank of a communicator must
//! arrive at a collective with the same tuning (like MPI info hints) and
//! the same message size, otherwise ranks would disagree on the wire
//! protocol. The `Auto` policies only consult values MPI already
//! requires to agree across ranks — including the model's published
//! snapshot, which only changes at matched sync points (see [`model`]).

pub(crate) mod allgather;
pub(crate) mod allreduce;
pub(crate) mod alltoall;
pub(crate) mod bcast;
pub mod model;
pub(crate) mod reduce;

pub use bcast::BcastParts;
pub use model::{
    AlgoClass, ClassEstimate, ClassStat, ModelConfig, ModelSnapshot, TuningStats, CLASS_COUNT,
};

use crate::error::{MpiError, Result};
use crate::op::ReduceOp;
use crate::Plain;

/// An algorithm slot of [`CollTuning`]: either the size-thresholded
/// default policy or a forced algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Select<A> {
    /// Pick by the tuning's thresholds (the default).
    #[default]
    Auto,
    /// Always use this algorithm (when it is correct for the call; e.g.
    /// a non-commutative reduction ignores a forced tree algorithm).
    Force(A),
}

/// Allreduce algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Latency-optimal: log2 p rounds exchanging the full vector.
    RecursiveDoubling,
    /// Bandwidth-optimal: recursive-halving reduce-scatter followed by a
    /// ring allgather of the reduced chunks (~2s copied per rank).
    Rabenseifner,
}

/// Broadcast algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Latency-optimal binomial tree (forwarding is refcount cloning).
    Binomial,
    /// Bandwidth-optimal van de Geijn: scatter chunks from the root,
    /// then ring-allgather them. Requires the payload size to be known
    /// on every rank (the sized bcast paths).
    ScatterAllgather,
}

/// Allgather algorithm (equal-sized blocks; `allgatherv` always rings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllgatherAlgo {
    /// `p-1` rounds forwarding one block per step as a refcount clone —
    /// bandwidth-friendly (no repacking) but `p-1` startups.
    Ring,
    /// log2 p rounds exchanging doubling-size packed block groups.
    /// Latency-optimal for small blocks; requires a power-of-two
    /// communicator (falls back to the ring otherwise) and pays
    /// `s·(p-2)` packing copies per rank.
    RecursiveDoubling,
    /// ceil(log2 p) rounds of rotated block-group forwarding — the same
    /// startup count as recursive doubling with **no power-of-two
    /// restriction**. Latency-optimal for small blocks on any
    /// communicator size; single-block rounds forward refcount clones,
    /// multi-block rounds pack (at most `s·(p-2)` copies per rank).
    Bruck,
}

/// All-to-all algorithm (equal-sized blocks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlltoallAlgo {
    /// One message per peer; bandwidth-optimal.
    Pairwise,
    /// ceil(log2 p) rounds of packed block forwarding; latency-optimal
    /// for small blocks.
    Bruck,
}

/// Neighborhood-exchange algorithm (topology collectives over
/// [`Neighborhood`](crate::topology::Neighborhood) communicators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NeighborhoodAlgo {
    /// One message per declared neighbor: `d_out` envelopes per rank
    /// per round instead of `p-1` — the whole point of the topology
    /// subsystem. Always correct (duplicate neighbors become repeated
    /// messages on the same FIFO stream).
    Sparse,
    /// Route through the dense pairwise `alltoallv` with zeroed
    /// non-neighbor counts. On near-complete graphs (`d ≈ p-1`) sparsity
    /// saves nothing, and the dense engine's pack-once + slice datapath
    /// is already optimal there. Requires duplicate-free neighbor lists
    /// (one `alltoallv` block per peer); ineligible topologies resolve
    /// to [`NeighborhoodAlgo::Sparse`] at the call site.
    Dense,
}

/// Reduce algorithm (also selects the reduction phase of `iallreduce`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceAlgo {
    /// Binomial tree with in-place folds over delivered payloads.
    /// Requires a commutative operation.
    BinomialTree,
    /// Gather everything to the root, fold in strict rank order. Works
    /// for any operation; the only choice for non-commutative ones.
    FlatGather,
}

/// Per-communicator collective tuning policy.
///
/// Stored on every [`Comm`](crate::Comm) (inherited by `dup`/`split`)
/// and consulted at each collective call. All ranks of a communicator
/// must use the same tuning for the same call — the policy is part of
/// the wire protocol, exactly like an MPI info hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollTuning {
    /// Allreduce algorithm slot.
    pub allreduce: Select<AllreduceAlgo>,
    /// Broadcast algorithm slot (sized paths only; unsized broadcasts
    /// always run the binomial tree, because non-roots cannot agree on
    /// a size they do not know).
    pub bcast: Select<BcastAlgo>,
    /// Allgather algorithm slot (equal-block exchanges only;
    /// `allgatherv`'s variable blocks always travel the ring).
    pub allgather: Select<AllgatherAlgo>,
    /// All-to-all algorithm slot (equal-block exchanges only).
    pub alltoall: Select<AlltoallAlgo>,
    /// Reduce algorithm slot. Blocking `reduce` defaults to the
    /// binomial tree; the non-blocking `ireduce`/`iallreduce` default to
    /// the flat gather (whose eager sends are what makes overlap work)
    /// and switch to the tree only when forced.
    pub reduce: Select<ReduceAlgo>,
    /// Neighborhood-exchange algorithm slot (topology communicators).
    pub neighborhood: Select<NeighborhoodAlgo>,
    /// `Auto` switches neighborhood exchanges to the dense pairwise path
    /// when the collectively-agreed maximum degree reaches this
    /// percentage of `p - 1` (near-complete graphs, where sparsity saves
    /// nothing).
    pub neighborhood_dense_min_degree_pct: usize,
    /// `Auto` switches allreduce to Rabenseifner at this many payload
    /// bytes per rank (and `p >= 4`).
    pub rabenseifner_min_bytes: usize,
    /// `Auto` switches sized broadcasts to scatter+allgather at this
    /// many payload bytes (and `p >= 4`).
    pub bcast_scatter_min_bytes: usize,
    /// `Auto` switches alltoall to Bruck at or below this many bytes
    /// per block (and `p >= 4`).
    pub bruck_max_block_bytes: usize,
    /// `Auto` switches allgather to recursive doubling at or below this
    /// many contribution bytes per rank (and `p >= 4`, power of two).
    pub allgather_rd_max_bytes: usize,
    /// `Auto` switches allgather to Bruck at or below this many
    /// contribution bytes per rank on non-power-of-two communicators
    /// (`p >= 4`) — the latency regime recursive doubling cannot serve
    /// there.
    pub allgather_bruck_max_bytes: usize,
    /// Online measured cost model configuration (see [`model`]). With
    /// [`ModelConfig::drive`] off (the default) every `Auto` selection
    /// above is decided purely by the static thresholds and the model
    /// neither measures nor synchronizes anything.
    pub model: ModelConfig,
}

impl Default for CollTuning {
    fn default() -> Self {
        CollTuning {
            allreduce: Select::Auto,
            bcast: Select::Auto,
            allgather: Select::Auto,
            alltoall: Select::Auto,
            reduce: Select::Auto,
            neighborhood: Select::Auto,
            // At 90% of p-1 the alpha saving is under 10% while the
            // sparse path gives up the dense engine's single shared
            // internal tag; near-complete graphs go dense.
            neighborhood_dense_min_degree_pct: 90,
            // Crossover points measured with the cluster cost model
            // (alpha = 1.5 us, beta = 0.1 ns/B): the bandwidth-optimal
            // algorithms overtake at ~100-180 KiB for p in {4, 8}, so
            // the defaults sit just above — Auto never picks an
            // algorithm into its losing regime.
            rabenseifner_min_bytes: 128 * 1024,
            bcast_scatter_min_bytes: 256 * 1024,
            bruck_max_block_bytes: 1024,
            // In alpha-beta terms recursive doubling never loses to the
            // ring on a power-of-two communicator (log2 p vs p-1
            // startups, same volume), but its packed rounds memcpy
            // s·(p-2) bytes the ring forwards for free — so Auto keeps
            // it in the latency regime where packing cost is noise.
            allgather_rd_max_bytes: 8 * 1024,
            // Bruck has the same startup/packing trade on any p; the
            // same latency-regime ceiling applies off powers of two.
            allgather_bruck_max_bytes: 8 * 1024,
            model: ModelConfig::default(),
        }
    }
}

impl CollTuning {
    /// Forces the allreduce algorithm.
    pub fn allreduce(mut self, algo: AllreduceAlgo) -> Self {
        self.allreduce = Select::Force(algo);
        self
    }

    /// Forces the (sized) broadcast algorithm.
    pub fn bcast(mut self, algo: BcastAlgo) -> Self {
        self.bcast = Select::Force(algo);
        self
    }

    /// Forces the allgather algorithm (recursive doubling still falls
    /// back to the ring on non-power-of-two communicators).
    pub fn allgather(mut self, algo: AllgatherAlgo) -> Self {
        self.allgather = Select::Force(algo);
        self
    }

    /// Forces the alltoall algorithm.
    pub fn alltoall(mut self, algo: AlltoallAlgo) -> Self {
        self.alltoall = Select::Force(algo);
        self
    }

    /// Forces the reduce algorithm.
    pub fn reduce(mut self, algo: ReduceAlgo) -> Self {
        self.reduce = Select::Force(algo);
        self
    }

    /// Forces the neighborhood-exchange algorithm (the dense path still
    /// yields to sparse on topologies with duplicate neighbors, which
    /// it cannot express).
    pub fn neighborhood(mut self, algo: NeighborhoodAlgo) -> Self {
        self.neighborhood = Select::Force(algo);
        self
    }

    /// Sets the dense switch-over degree ratio (percent of `p - 1`).
    pub fn neighborhood_dense_min_degree_pct(mut self, pct: usize) -> Self {
        self.neighborhood_dense_min_degree_pct = pct;
        self
    }

    /// Sets the Rabenseifner switch-over size (bytes per rank).
    pub fn rabenseifner_min_bytes(mut self, bytes: usize) -> Self {
        self.rabenseifner_min_bytes = bytes;
        self
    }

    /// Sets the scatter+allgather broadcast switch-over size (bytes).
    pub fn bcast_scatter_min_bytes(mut self, bytes: usize) -> Self {
        self.bcast_scatter_min_bytes = bytes;
        self
    }

    /// Sets the Bruck block-size ceiling (bytes per block).
    pub fn bruck_max_block_bytes(mut self, bytes: usize) -> Self {
        self.bruck_max_block_bytes = bytes;
        self
    }

    /// Sets the recursive-doubling allgather ceiling (bytes per rank).
    pub fn allgather_rd_max_bytes(mut self, bytes: usize) -> Self {
        self.allgather_rd_max_bytes = bytes;
        self
    }

    /// Sets the Bruck allgather ceiling (bytes per rank,
    /// non-power-of-two communicators).
    pub fn allgather_bruck_max_bytes(mut self, bytes: usize) -> Self {
        self.allgather_bruck_max_bytes = bytes;
        self
    }

    /// Enables the online measured cost model: `Auto` slots are driven
    /// by runtime wall-clock evidence once warm (see [`model`]), with
    /// the static thresholds governing the warm-up phase. All ranks of
    /// a communicator must enable it together — the model's sync
    /// broadcasts are matched collectives.
    pub fn self_tuning(mut self) -> Self {
        self.model.drive = true;
        self
    }

    /// Replaces the model configuration wholesale (cadence, warm-up,
    /// EWMA weight, overlap bias — see [`ModelConfig`]).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Selects the allreduce algorithm for `bytes` payload bytes per
    /// rank on a communicator of `p` ranks.
    pub fn allreduce_algo(&self, p: usize, bytes: usize) -> AllreduceAlgo {
        match self.allreduce {
            Select::Force(a) => a,
            Select::Auto => {
                if p >= 4 && bytes >= self.rabenseifner_min_bytes {
                    AllreduceAlgo::Rabenseifner
                } else {
                    AllreduceAlgo::RecursiveDoubling
                }
            }
        }
    }

    /// Selects the broadcast algorithm for a payload of `bytes` bytes
    /// whose size is known on every rank.
    pub fn bcast_algo(&self, p: usize, bytes: usize) -> BcastAlgo {
        match self.bcast {
            Select::Force(a) => a,
            Select::Auto => {
                if p >= 4 && bytes >= self.bcast_scatter_min_bytes {
                    BcastAlgo::ScatterAllgather
                } else {
                    BcastAlgo::Binomial
                }
            }
        }
    }

    /// Selects the allgather algorithm for equal contributions of
    /// `bytes` bytes per rank. Recursive doubling requires a
    /// power-of-two communicator: forcing it on any other size resolves
    /// to the ring, mirroring how a forced tree reduce yields to
    /// non-commutative operations. Bruck works for any `p`, completing
    /// the latency-regime menu off powers of two.
    pub fn allgather_algo(&self, p: usize, bytes: usize) -> AllgatherAlgo {
        if p < 2 {
            return AllgatherAlgo::Ring;
        }
        match self.allgather {
            Select::Force(AllgatherAlgo::RecursiveDoubling) if !p.is_power_of_two() => {
                AllgatherAlgo::Ring
            }
            Select::Force(a) => a,
            Select::Auto => {
                if p >= 4 && bytes <= self.allgather_rd_max_bytes && p.is_power_of_two() {
                    AllgatherAlgo::RecursiveDoubling
                } else if p >= 4 && bytes <= self.allgather_bruck_max_bytes && !p.is_power_of_two()
                {
                    AllgatherAlgo::Bruck
                } else {
                    AllgatherAlgo::Ring
                }
            }
        }
    }

    /// Selects the alltoall algorithm for equal blocks of `block_bytes`
    /// bytes.
    pub fn alltoall_algo(&self, p: usize, block_bytes: usize) -> AlltoallAlgo {
        match self.alltoall {
            Select::Force(a) => a,
            Select::Auto => {
                if p >= 4 && block_bytes <= self.bruck_max_block_bytes {
                    AlltoallAlgo::Bruck
                } else {
                    AlltoallAlgo::Pairwise
                }
            }
        }
    }

    /// Selects the neighborhood-exchange algorithm from the
    /// collectively-agreed maximum degree
    /// ([`Neighborhood::max_degree`](crate::topology::Neighborhood) —
    /// never the local degree, which differs across ranks while the
    /// selection must not). The caller still routes dense through sparse
    /// when the topology is not
    /// [`dense_eligible`](crate::topology::Neighborhood::dense_eligible).
    pub fn neighborhood_algo(&self, p: usize, max_degree: usize) -> NeighborhoodAlgo {
        match self.neighborhood {
            Select::Force(a) => a,
            Select::Auto => {
                if p >= 2 && max_degree * 100 >= self.neighborhood_dense_min_degree_pct * (p - 1) {
                    NeighborhoodAlgo::Dense
                } else {
                    NeighborhoodAlgo::Sparse
                }
            }
        }
    }

    /// Selects the reduce algorithm. `auto` is the caller's default
    /// (binomial tree for blocking reduce, flat gather for the
    /// non-blocking engines); non-commutative operations always fold in
    /// strict rank order via the flat gather.
    pub fn reduce_algo(&self, commutative: bool, auto: ReduceAlgo) -> ReduceAlgo {
        if !commutative {
            return ReduceAlgo::FlatGather;
        }
        match self.reduce {
            Select::Force(a) => a,
            Select::Auto => auto,
        }
    }
}

// ---------------------------------------------------------------------------
// In-place folds over delivered payloads
// ---------------------------------------------------------------------------

/// Checks that a delivered payload matches the accumulator's byte size.
fn check_fold_len<T: Plain>(what: &str, acc: &[T], bytes: &[u8]) -> Result<()> {
    if bytes.len() != std::mem::size_of_val(acc) {
        return Err(MpiError::InvalidLayout(format!(
            "{what}: received {} payload bytes for a {}-byte accumulator",
            bytes.len(),
            std::mem::size_of_val(acc)
        )));
    }
    Ok(())
}

/// Elementwise `acc[i] = op(acc[i], bytes[i])`, reading the delivered
/// payload in place (unaligned reads; `T: Plain` accepts any pattern).
/// The received block is the *right* (higher-ranked) operand. This is
/// compute, not a payload copy — the reductions' former
/// `O(s log p)` materialization bill becomes zero.
pub(crate) fn fold_bytes_right<T: Plain, O: ReduceOp<T>>(
    acc: &mut [T],
    bytes: &[u8],
    op: &O,
) -> Result<()> {
    check_fold_len("reduce fold", acc, bytes)?;
    let base = bytes.as_ptr();
    for (i, a) in acc.iter_mut().enumerate() {
        // SAFETY: bounds checked above; `T: Plain` permits unaligned
        // reads of arbitrary byte patterns.
        let b = unsafe {
            base.add(i * std::mem::size_of::<T>())
                .cast::<T>()
                .read_unaligned()
        };
        *a = op.apply(a, &b);
    }
    Ok(())
}

/// `dst[i] = op(prefix[i], send[i])` where `prefix` is a delivered
/// payload read in place — the scan datapath: the upstream prefix is the
/// *left* operand, so non-commutative operations stay rank-ordered.
pub(crate) fn fold_bytes_map<T: Plain, O: ReduceOp<T>>(
    prefix: &[u8],
    send: &[T],
    dst: &mut [T],
    op: &O,
) -> Result<()> {
    check_fold_len("scan fold", send, prefix)?;
    debug_assert_eq!(send.len(), dst.len());
    let base = prefix.as_ptr();
    for (i, (s, d)) in send.iter().zip(dst.iter_mut()).enumerate() {
        // SAFETY: as in `fold_bytes_right`.
        let pre = unsafe {
            base.add(i * std::mem::size_of::<T>())
                .cast::<T>()
                .read_unaligned()
        };
        *d = op.apply(&pre, s);
    }
    Ok(())
}

/// `out[i] = op(prefix[i], send[i])` into a fresh vector (the exscan
/// forward path; the result moves into the transport without a copy).
pub(crate) fn fold_bytes_to_vec<T: Plain, O: ReduceOp<T>>(
    prefix: &[u8],
    send: &[T],
    op: &O,
) -> Result<Vec<T>> {
    check_fold_len("exscan fold", send, prefix)?;
    let base = prefix.as_ptr();
    let mut out = Vec::with_capacity(send.len());
    for (i, s) in send.iter().enumerate() {
        // SAFETY: as in `fold_bytes_right`.
        let pre = unsafe {
            base.add(i * std::mem::size_of::<T>())
                .cast::<T>()
                .read_unaligned()
        };
        out.push(op.apply(&pre, s));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;
    use crate::plain::as_bytes;

    #[test]
    fn default_tuning_thresholds() {
        let t = CollTuning::default();
        assert_eq!(t.allreduce_algo(8, 1024), AllreduceAlgo::RecursiveDoubling);
        assert_eq!(t.allreduce_algo(8, 1 << 20), AllreduceAlgo::Rabenseifner);
        // Small communicators never switch automatically.
        assert_eq!(
            t.allreduce_algo(2, 1 << 20),
            AllreduceAlgo::RecursiveDoubling
        );
        assert_eq!(t.bcast_algo(8, 1 << 20), BcastAlgo::ScatterAllgather);
        assert_eq!(t.bcast_algo(8, 1024), BcastAlgo::Binomial);
        assert_eq!(t.alltoall_algo(8, 64), AlltoallAlgo::Bruck);
        assert_eq!(t.alltoall_algo(8, 1 << 20), AlltoallAlgo::Pairwise);
        assert_eq!(t.alltoall_algo(2, 64), AlltoallAlgo::Pairwise);
        assert_eq!(t.allgather_algo(8, 64), AllgatherAlgo::RecursiveDoubling);
        assert_eq!(t.allgather_algo(8, 1 << 20), AllgatherAlgo::Ring);
        // Non-power-of-two communicators take Bruck in the latency
        // regime and ring above it.
        assert_eq!(t.allgather_algo(6, 64), AllgatherAlgo::Bruck);
        assert_eq!(t.allgather_algo(5, 8 * 1024), AllgatherAlgo::Bruck);
        assert_eq!(t.allgather_algo(6, 1 << 20), AllgatherAlgo::Ring);
        // Small communicators never switch automatically.
        assert_eq!(t.allgather_algo(2, 64), AllgatherAlgo::Ring);
        assert_eq!(t.allgather_algo(3, 64), AllgatherAlgo::Ring);
    }

    #[test]
    fn neighborhood_selection_by_degree_ratio() {
        let t = CollTuning::default();
        // The bench scenario: degree 8 at p = 16 is sparse territory.
        assert_eq!(t.neighborhood_algo(16, 8), NeighborhoodAlgo::Sparse);
        // A complete graph gains nothing from sparsity.
        assert_eq!(t.neighborhood_algo(16, 15), NeighborhoodAlgo::Dense);
        // 90% of p-1 is the default crossover: 14/15 = 93% goes dense,
        // 13/15 = 87% stays sparse.
        assert_eq!(t.neighborhood_algo(16, 14), NeighborhoodAlgo::Dense);
        assert_eq!(t.neighborhood_algo(16, 13), NeighborhoodAlgo::Sparse);
        // Degenerate communicators stay sparse.
        assert_eq!(t.neighborhood_algo(1, 1), NeighborhoodAlgo::Sparse);
        // Forcing wins regardless of ratio.
        let f = CollTuning::default().neighborhood(NeighborhoodAlgo::Dense);
        assert_eq!(f.neighborhood_algo(16, 1), NeighborhoodAlgo::Dense);
        let s = CollTuning::default().neighborhood(NeighborhoodAlgo::Sparse);
        assert_eq!(s.neighborhood_algo(16, 15), NeighborhoodAlgo::Sparse);
    }

    #[test]
    fn forced_rd_allgather_yields_on_non_power_of_two() {
        let t = CollTuning::default().allgather(AllgatherAlgo::RecursiveDoubling);
        assert_eq!(
            t.allgather_algo(4, 1 << 20),
            AllgatherAlgo::RecursiveDoubling
        );
        assert_eq!(
            t.allgather_algo(2, 1 << 20),
            AllgatherAlgo::RecursiveDoubling
        );
        assert_eq!(t.allgather_algo(5, 1), AllgatherAlgo::Ring);
        assert_eq!(t.allgather_algo(1, 1), AllgatherAlgo::Ring);
    }

    #[test]
    fn forced_bruck_allgather_works_on_any_p() {
        let t = CollTuning::default().allgather(AllgatherAlgo::Bruck);
        for p in [2, 3, 5, 6, 8, 16] {
            assert_eq!(
                t.allgather_algo(p, 1 << 20),
                AllgatherAlgo::Bruck,
                "p = {p}"
            );
        }
        assert_eq!(t.allgather_algo(1, 1), AllgatherAlgo::Ring);
    }

    #[test]
    fn forced_algorithms_win() {
        let t = CollTuning::default()
            .allreduce(AllreduceAlgo::Rabenseifner)
            .bcast(BcastAlgo::ScatterAllgather)
            .alltoall(AlltoallAlgo::Bruck)
            .reduce(ReduceAlgo::FlatGather);
        assert_eq!(t.allreduce_algo(2, 1), AllreduceAlgo::Rabenseifner);
        assert_eq!(t.bcast_algo(2, 1), BcastAlgo::ScatterAllgather);
        assert_eq!(t.alltoall_algo(2, 1 << 20), AlltoallAlgo::Bruck);
        assert_eq!(
            t.reduce_algo(true, ReduceAlgo::BinomialTree),
            ReduceAlgo::FlatGather
        );
    }

    #[test]
    fn non_commutative_reduce_never_uses_the_tree() {
        let t = CollTuning::default().reduce(ReduceAlgo::BinomialTree);
        assert_eq!(
            t.reduce_algo(false, ReduceAlgo::BinomialTree),
            ReduceAlgo::FlatGather
        );
        assert_eq!(
            t.reduce_algo(true, ReduceAlgo::BinomialTree),
            ReduceAlgo::BinomialTree
        );
    }

    #[test]
    fn fold_right_combines_in_place() {
        let mut acc = vec![1u64, 2, 3];
        let theirs = [10u64, 20, 30];
        fold_bytes_right(&mut acc, as_bytes(&theirs), &Sum).unwrap();
        assert_eq!(acc, vec![11, 22, 33]);
    }

    #[test]
    fn fold_map_keeps_prefix_on_the_left() {
        let op = crate::op::non_commutative(|a: &u64, b: &u64| a * 10 + b);
        let prefix = [1u64, 2];
        let send = [3u64, 4];
        let mut dst = [0u64; 2];
        fold_bytes_map(as_bytes(&prefix), &send, &mut dst, &op).unwrap();
        assert_eq!(dst, [13, 24]);
    }

    #[test]
    fn fold_length_mismatch_errors() {
        let mut acc = vec![1u64];
        assert!(fold_bytes_right(&mut acc, &[0u8; 4], &Sum).is_err());
        assert!(fold_bytes_to_vec::<u64, _>(&[0u8; 4], &[1u64], &Sum).is_err());
    }
}
