//! Distributed-graph communicators.
//!
//! Two constructors mirror MPI's pair: `create_dist_graph_adjacent`
//! (every rank declares its own in/out edge lists; construction
//! *validates* consistency) and the general `create_dist_graph`
//! (ranks contribute arbitrary edges; construction *redistributes* each
//! edge to both endpoints). Both cost `Θ(p)` messages per rank — the
//! setup bill that makes per-iteration graph rebuilds unscalable
//! (§V-A) — while each subsequent neighborhood exchange costs only
//! `deg` messages ([`crate::collectives::neighborhood`]).

use super::{finish_topology, Neighborhood, TopologyBase};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::Rank;

/// A communicator with an attached directed communication graph
/// (mirrors `MPI_Dist_graph_create_adjacent` /
/// `MPI_Dist_graph_create`).
pub struct DistGraphComm {
    base: TopologyBase,
    /// Ranks this rank receives from, in declaration order.
    sources: Vec<Rank>,
    /// Ranks this rank sends to, in declaration order.
    destinations: Vec<Rank>,
}

impl Comm {
    /// Creates a distributed-graph communicator from adjacency lists.
    /// Every rank declares its in-neighbors (`sources`) and out-neighbors
    /// (`destinations`); construction validates that the declarations
    /// agree (`u` lists `v` as destination iff `v` lists `u` as source)
    /// with a dense all-to-all — the `Θ(p)` setup cost that makes
    /// per-iteration graph rebuilds unscalable (§V-A).
    pub fn create_dist_graph_adjacent(
        &self,
        sources: &[Rank],
        destinations: &[Rank],
    ) -> Result<DistGraphComm> {
        self.count_op("dist_graph_create_adjacent");
        let p = self.size();
        for &r in sources.iter().chain(destinations) {
            self.check_rank(r)?;
        }
        // Dense consistency exchange: one flag per peer.
        let mut out_flags = vec![0u8; p];
        for &d in destinations {
            out_flags[d] = 1;
        }
        let mut in_flags = vec![0u8; p];
        crate::collectives::alltoallv_internal(
            self,
            &out_flags,
            &vec![1usize; p],
            &(0..p).collect::<Vec<_>>(),
            &mut in_flags,
            &vec![1usize; p],
            &(0..p).collect::<Vec<_>>(),
        )?;
        let mut local_mismatch: Option<Rank> = None;
        for (r, &flag) in in_flags.iter().enumerate() {
            let declared = sources.contains(&r);
            if (flag != 0) != declared {
                local_mismatch = Some(r);
                break;
            }
        }
        // Graph construction is collective: every rank must agree on
        // whether the declarations were consistent, otherwise the ranks
        // would diverge (some building the communicator, some erroring).
        let any_mismatch = crate::collectives::allreduce_internal(
            self,
            &[u8::from(local_mismatch.is_some())],
            &crate::op::LogicalOr,
        )?[0];
        if any_mismatch != 0 {
            return Err(MpiError::InvalidLayout(match local_mismatch {
                Some(r) => format!(
                    "dist graph: declarations of rank {} and rank {r} disagree",
                    self.rank()
                ),
                None => "dist graph: declarations disagree on another rank".to_string(),
            }));
        }
        let base = finish_topology(self, sources, destinations)?;
        Ok(DistGraphComm {
            base,
            sources: sources.to_vec(),
            destinations: destinations.to_vec(),
        })
    }

    /// Creates a distributed-graph communicator from arbitrary edge
    /// contributions (mirrors `MPI_Dist_graph_create`): any rank may
    /// contribute any `(source, destination)` edge; construction
    /// redistributes each edge to both endpoints with a dense exchange,
    /// so every rank learns exactly its own in- and out-neighbors. The
    /// resulting neighbor lists are sorted and duplicate-free
    /// (contributing an edge twice is allowed and idempotent).
    pub fn create_dist_graph(&self, edges: &[(Rank, Rank)]) -> Result<DistGraphComm> {
        self.count_op("dist_graph_create");
        let p = self.size();
        for &(u, v) in edges {
            self.check_rank(u)?;
            self.check_rank(v)?;
        }
        // Each edge (u, v) becomes two notifications: u gains the
        // out-neighbor v, v gains the in-neighbor u. Encoded as one u64
        // per notification — direction in the high bit, peer below.
        const IN_EDGE: u64 = 1 << 63;
        let mut for_peer: Vec<Vec<u64>> = vec![Vec::new(); p];
        for &(u, v) in edges {
            for_peer[u].push(v as u64);
            for_peer[v].push(u as u64 | IN_EDGE);
        }
        let send_counts: Vec<usize> = for_peer.iter().map(Vec::len).collect();
        let send_displs = crate::collectives::displacements_from_counts(&send_counts);
        let packed: Vec<u64> = for_peer.into_iter().flatten().collect();

        // Count exchange, then the notification payloads themselves.
        let mut recv_counts = vec![0usize; p];
        let unit: Vec<usize> = vec![1; p];
        let ident: Vec<usize> = (0..p).collect();
        crate::collectives::alltoallv_internal(
            self,
            &send_counts,
            &unit,
            &ident,
            &mut recv_counts,
            &unit,
            &ident,
        )?;
        let recv_displs = crate::collectives::displacements_from_counts(&recv_counts);
        let total: usize = recv_counts.iter().sum();
        let mut notes = vec![0u64; total];
        crate::collectives::alltoallv_internal(
            self,
            &packed,
            &send_counts,
            &send_displs,
            &mut notes,
            &recv_counts,
            &recv_displs,
        )?;

        let mut sources: Vec<Rank> = Vec::new();
        let mut destinations: Vec<Rank> = Vec::new();
        for note in notes {
            if note & IN_EDGE != 0 {
                sources.push((note & !IN_EDGE) as Rank);
            } else {
                destinations.push(note as Rank);
            }
        }
        sources.sort_unstable();
        sources.dedup();
        destinations.sort_unstable();
        destinations.dedup();

        let base = finish_topology(self, &sources, &destinations)?;
        Ok(DistGraphComm {
            base,
            sources,
            destinations,
        })
    }
}

impl Neighborhood for DistGraphComm {
    fn comm(&self) -> &Comm {
        &self.base.comm
    }

    fn sources(&self) -> &[Rank] {
        &self.sources
    }

    fn destinations(&self) -> &[Rank] {
        &self.destinations
    }

    fn max_degree(&self) -> usize {
        self.base.max_degree
    }

    fn dense_eligible(&self) -> bool {
        self.base.dense_eligible
    }
}

impl DistGraphComm {
    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.base.comm
    }

    /// Declared in-neighbors.
    pub fn sources(&self) -> &[Rank] {
        &self.sources
    }

    /// Declared out-neighbors.
    pub fn destinations(&self) -> &[Rank] {
        &self.destinations
    }
}

#[cfg(test)]
mod tests {
    use crate::collectives::neighborhood::NeighborhoodColl;
    use crate::topology::Neighborhood;
    use crate::Universe;

    #[test]
    fn ring_topology_exchange() {
        Universe::run(4, |comm| {
            let left = (comm.rank() + 3) % 4;
            let right = (comm.rank() + 1) % 4;
            // Receive from left, send to right.
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            let got = g
                .neighbor_alltoall_vecs(&[vec![comm.rank() as u32]])
                .unwrap();
            assert_eq!(got, vec![vec![left as u32]]);
        });
    }

    #[test]
    fn star_topology() {
        // Rank 0 receives from everyone; leaves send to 0 only.
        Universe::run(4, |comm| {
            if comm.rank() == 0 {
                let g = comm.create_dist_graph_adjacent(&[1, 2, 3], &[]).unwrap();
                let got = g.neighbor_alltoall_vecs::<u8>(&[]).unwrap();
                assert_eq!(got, vec![vec![1], vec![2], vec![3]]);
            } else {
                let g = comm.create_dist_graph_adjacent(&[], &[0]).unwrap();
                let got = g
                    .neighbor_alltoall_vecs(&[vec![comm.rank() as u8]])
                    .unwrap();
                assert!(got.is_empty());
            }
        });
    }

    #[test]
    fn inconsistent_graph_rejected() {
        Universe::run(2, |comm| {
            // Rank 0 claims it sends to 1, but rank 1 does not list 0 as a
            // source.
            let r = if comm.rank() == 0 {
                comm.create_dist_graph_adjacent(&[], &[1])
            } else {
                comm.create_dist_graph_adjacent(&[], &[])
            };
            assert!(r.is_err());
        });
    }

    #[test]
    fn neighbor_alltoallv_with_layout() {
        Universe::run(3, |comm| {
            // Complete graph.
            let others: Vec<usize> = (0..3).filter(|&r| r != comm.rank()).collect();
            let g = comm.create_dist_graph_adjacent(&others, &others).unwrap();
            let send: Vec<u64> = vec![comm.rank() as u64; 4];
            let send_counts = [2usize, 2];
            let send_displs = [0usize, 2];
            let mut recv = [u64::MAX; 4];
            let recv_counts = [2usize, 2];
            let recv_displs = [0usize, 2];
            g.neighbor_alltoallv_into(
                &send,
                &send_counts,
                &send_displs,
                &mut recv,
                &recv_counts,
                &recv_displs,
            )
            .unwrap();
            let expected: Vec<u64> = others.iter().flat_map(|&r| [r as u64, r as u64]).collect();
            assert_eq!(&recv[..], &expected[..]);
        });
    }

    #[test]
    fn repeated_exchanges_on_same_graph() {
        Universe::run(3, |comm| {
            let right = (comm.rank() + 1) % 3;
            let left = (comm.rank() + 2) % 3;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            for round in 0..5u32 {
                let got = g
                    .neighbor_alltoall_vecs(&[vec![round * 10 + comm.rank() as u32]])
                    .unwrap();
                assert_eq!(got[0], vec![round * 10 + left as u32]);
            }
        });
    }

    #[test]
    fn general_create_redistributes_edges() {
        // Rank 0 contributes the whole ring; every rank still learns
        // exactly its own neighbors.
        Universe::run(4, |comm| {
            let edges: Vec<(usize, usize)> = if comm.rank() == 0 {
                (0..4).map(|r| (r, (r + 1) % 4)).collect()
            } else {
                Vec::new()
            };
            let g = comm.create_dist_graph(&edges).unwrap();
            assert_eq!(g.destinations(), &[(comm.rank() + 1) % 4]);
            assert_eq!(g.sources(), &[(comm.rank() + 3) % 4]);
            let got = g
                .neighbor_alltoall_vecs(&[vec![comm.rank() as u32]])
                .unwrap();
            assert_eq!(got, vec![vec![((comm.rank() + 3) % 4) as u32]]);
        });
    }

    #[test]
    fn general_create_dedups_and_sorts() {
        // The same edge contributed by several ranks collapses to one;
        // neighbor lists come out sorted.
        Universe::run(3, |comm| {
            let edges: Vec<(usize, usize)> = vec![(1, 0), (2, 0), (1, 0)];
            let g = comm.create_dist_graph(&edges).unwrap();
            if comm.rank() == 0 {
                assert_eq!(g.sources(), &[1, 2]);
                assert!(g.destinations().is_empty());
            } else {
                assert!(g.sources().is_empty());
                assert_eq!(g.destinations(), &[0]);
            }
            assert_eq!(g.max_degree(), 2, "rank 0's in-degree is the maximum");
            assert!(g.dense_eligible());
        });
    }

    #[test]
    fn self_loop_edges_are_allowed() {
        Universe::run(2, |comm| {
            let me = comm.rank();
            let g = comm.create_dist_graph(&[(0, 0), (1, 1)]).unwrap();
            assert_eq!(g.sources(), &[me]);
            assert_eq!(g.destinations(), &[me]);
            let got = g.neighbor_alltoall_vecs(&[vec![me as u8]]).unwrap();
            assert_eq!(got, vec![vec![me as u8]]);
        });
    }

    #[test]
    fn max_degree_is_collectively_agreed() {
        // A star: rank 0 has degree p-1, leaves degree 1 — every rank
        // must report the same (global) maximum.
        Universe::run(4, |comm| {
            let g = if comm.rank() == 0 {
                comm.create_dist_graph_adjacent(&[1, 2, 3], &[1, 2, 3])
            } else {
                comm.create_dist_graph_adjacent(&[0], &[0])
            }
            .unwrap();
            assert_eq!(g.max_degree(), 3);
        });
    }
}
