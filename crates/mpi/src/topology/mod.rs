//! Process topologies: cartesian grids and distributed graphs.
//!
//! MPI-3.0's topology machinery exists to make one fact visible to the
//! library: *who actually talks to whom*. A communicator with an
//! attached topology lets the neighborhood collectives
//! ([`crate::collectives::neighborhood`]) exchange along declared edges
//! only, replacing the dense `alltoallv` a topology-blind code would
//! issue. The paper's Fig. 10 uses `MPI_Neighbor_alltoallv` as the
//! strongest sparse-exchange baseline for exactly this reason.
//!
//! # The degree-vs-p cost model
//!
//! With `p` ranks, out-degree `d_out` and in-degree `d_in` per rank,
//! and the alpha-beta message cost `alpha + beta * bytes`:
//!
//! ```text
//!   dense alltoallv (pairwise):  (p-1) * alpha + beta * bytes_total
//!   neighborhood exchange:       d_out * alpha + beta * bytes_total
//! ```
//!
//! The byte term is identical — both paths pack once and slice
//! refcounts per peer — so the whole difference is the envelope count:
//! `p-1` posted envelopes (and `p-1` matching-engine slots) per rank
//! per round versus `d_out`. On a degree-8 graph at `p = 1024`, that is
//! a 127x reduction in per-round messages; the `neighborhood_experiment`
//! bench pins the counts via
//! [`MailboxStats::envelopes_posted`](crate::MailboxStats). The flip
//! side is setup: topology construction costs `Θ(p)` messages per rank
//! (a dense consistency/redistribution exchange plus collective
//! agreement), which is why rebuilding the graph every iteration
//! destroys the win — construct once, exchange `deg` messages forever.
//! Near-complete graphs (`d ≈ p-1`) gain nothing from sparsity; the
//! [`CollTuning`](crate::CollTuning) `neighborhood` slot switches those
//! back to the dense pairwise path by the collectively-agreed
//! degree/p ratio.
//!
//! # Shapes
//!
//! - [`CartComm`] (`Comm::create_cart`): an n-dimensional grid with
//!   per-dimension periodicity, `cart_shift` / `cart_coords` /
//!   `cart_rank` navigation, and the standard per-dimension
//!   (negative neighbor, then positive) neighbor order.
//! - [`DistGraphComm`]: a general directed graph, built either from
//!   adjacent-style local edge lists
//!   (`Comm::create_dist_graph_adjacent`) or from arbitrary edge
//!   contributions redistributed to their endpoints
//!   (`Comm::create_dist_graph`, mirroring `MPI_Dist_graph_create`).
//!
//! Both implement [`Neighborhood`], the one seam the neighborhood
//! collectives are written against: a communicator plus frozen,
//! declaration-ordered source and destination lists.

mod cart;
mod dist_graph;

pub use cart::CartComm;
pub use dist_graph::DistGraphComm;

use crate::comm::Comm;
use crate::error::Result;
use crate::Rank;

/// A communicator with an attached sparse communication topology: the
/// seam the neighborhood collectives
/// ([`crate::collectives::neighborhood::NeighborhoodColl`]) are written
/// against, implemented by [`CartComm`] and [`DistGraphComm`].
///
/// The neighbor lists are frozen at construction (the MPI model:
/// topologies describe *static* patterns) and ordered — block `k` of a
/// neighborhood send goes to `destinations()[k]`, block `j` of a
/// receive comes from `sources()[j]`.
pub trait Neighborhood {
    /// The underlying communicator (a private dup of the parent, so
    /// neighborhood traffic never collides with other collectives).
    fn comm(&self) -> &Comm;

    /// Ranks this rank receives from, in declaration order.
    fn sources(&self) -> &[Rank];

    /// Ranks this rank sends to, in declaration order.
    fn destinations(&self) -> &[Rank];

    /// The maximum per-rank degree over the whole topology, agreed
    /// collectively at construction. Algorithm selection consults this
    /// instead of the local degree because the sparse/dense choice must
    /// be symmetric across ranks (all-or-nothing, like every tuning
    /// decision).
    fn max_degree(&self) -> usize;

    /// True when every rank's neighbor lists are duplicate-free —
    /// agreed collectively at construction. Only then can the dense
    /// fallback express the exchange (one alltoallv block per peer);
    /// duplicated edges (e.g. a periodic cartesian dimension of extent
    /// 2, where the left and right neighbor coincide) always take the
    /// sparse path.
    fn dense_eligible(&self) -> bool;
}

/// Collectively-agreed topology metadata computed at construction:
/// the tuning inputs of [`Neighborhood::max_degree`] /
/// [`Neighborhood::dense_eligible`] plus the private communicator dup.
pub(crate) struct TopologyBase {
    pub(crate) comm: Comm,
    pub(crate) max_degree: usize,
    pub(crate) dense_eligible: bool,
}

/// Shared tail of every topology constructor: agree on the global
/// maximum degree and duplicate-freeness (the symmetric tuning inputs),
/// then dup the parent into a private context. Runs two collectives —
/// part of the `Θ(p)`-ish setup bill the per-exchange savings amortize.
pub(crate) fn finish_topology(
    parent: &Comm,
    sources: &[Rank],
    destinations: &[Rank],
) -> Result<TopologyBase> {
    // A planned crash here dies between a topology constructor's
    // setup collectives — peers must surface the failure, not hang.
    crate::fault::point("topology/build");
    let local_max = sources.len().max(destinations.len()) as u64;
    let max_degree =
        crate::collectives::allreduce_internal(parent, &[local_max], &crate::op::Max)?[0] as usize;
    let local_dup = u8::from(has_duplicates(sources) || has_duplicates(destinations));
    let any_dup =
        crate::collectives::allreduce_internal(parent, &[local_dup], &crate::op::LogicalOr)?[0];
    Ok(TopologyBase {
        comm: parent.dup_uncounted()?,
        max_degree,
        dense_eligible: any_dup == 0,
    })
}

fn has_duplicates(ranks: &[Rank]) -> bool {
    let mut sorted = ranks.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

impl Comm {
    /// Communicator duplication without bumping call counters (used for
    /// derived communicators inside other operations).
    pub(crate) fn dup_uncounted(&self) -> Result<Comm> {
        let base = if self.rank() == 0 {
            self.world.alloc_contexts(1)
        } else {
            0
        };
        let base = crate::collectives::bcast_one_internal(self, base, 0)?;
        Ok(self.derived(std::sync::Arc::clone(&self.group), self.rank(), base))
    }
}
