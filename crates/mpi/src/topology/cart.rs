//! Cartesian communicators (mirrors `MPI_Cart_create` and friends).
//!
//! An n-dimensional grid with per-dimension periodicity. Ranks are laid
//! out row-major (last dimension varies fastest, the MPI convention),
//! so `rank = ((c0 * d1) + c1) * d2 + c2 ...`. The neighbor lists feed
//! the neighborhood collectives: per dimension, the negative-direction
//! neighbor then the positive-direction neighbor, skipping
//! non-periodic boundaries (where MPI would report `MPI_PROC_NULL`, we
//! simply omit the block — the lists stay dense and
//! declaration-ordered).

use super::{finish_topology, Neighborhood, TopologyBase};
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::Rank;

/// A communicator with an attached cartesian grid topology.
pub struct CartComm {
    base: TopologyBase,
    dims: Vec<usize>,
    periods: Vec<bool>,
    coords: Vec<usize>,
    sources: Vec<Rank>,
    destinations: Vec<Rank>,
}

impl Comm {
    /// Creates a cartesian communicator over all ranks (mirrors
    /// `MPI_Cart_create`). `dims` must multiply out to exactly the
    /// communicator size, and `periods` declares per-dimension wraparound.
    ///
    /// `reorder` is accepted for interface fidelity but ignored: ranks
    /// here are homogeneous threads of one process, so there is no
    /// placement to optimize and every rank keeps its parent rank.
    pub fn create_cart(&self, dims: &[usize], periods: &[bool], reorder: bool) -> Result<CartComm> {
        let _ = reorder;
        self.count_op("cart_create");
        if dims.is_empty() || dims.contains(&0) {
            return Err(MpiError::InvalidLayout(format!(
                "cart: dims {dims:?} must be non-empty and positive"
            )));
        }
        if periods.len() != dims.len() {
            return Err(MpiError::InvalidLayout(format!(
                "cart: {} periods for {} dims",
                periods.len(),
                dims.len()
            )));
        }
        let cells: usize = dims.iter().product();
        if cells != self.size() {
            return Err(MpiError::InvalidLayout(format!(
                "cart: dims {dims:?} cover {cells} ranks, communicator has {}",
                self.size()
            )));
        }
        let coords = coords_of(self.rank(), dims);

        // Per dimension: negative neighbor, then positive neighbor.
        // Symmetric grid ⇒ the set of ranks that send to us equals the
        // set we send to, in the same declaration order.
        let mut neighbors: Vec<Rank> = Vec::with_capacity(2 * dims.len());
        for dim in 0..dims.len() {
            for disp in [-1isize, 1] {
                if let Some(r) = shifted_rank(&coords, dims, periods, dim, disp) {
                    neighbors.push(r);
                }
            }
        }

        let base = finish_topology(self, &neighbors, &neighbors)?;
        Ok(CartComm {
            base,
            dims: dims.to_vec(),
            periods: periods.to_vec(),
            coords,
            sources: neighbors.clone(),
            destinations: neighbors,
        })
    }
}

impl CartComm {
    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.base.comm
    }

    /// The grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-dimension periodicity.
    pub fn periods(&self) -> &[bool] {
        &self.periods
    }

    /// This rank's grid coordinates.
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// Coordinates of an arbitrary rank (mirrors `MPI_Cart_coords`).
    pub fn cart_coords(&self, rank: Rank) -> Result<Vec<usize>> {
        self.base.comm.check_rank(rank)?;
        Ok(coords_of(rank, &self.dims))
    }

    /// Rank at the given coordinates (mirrors `MPI_Cart_rank`).
    /// Coordinates on periodic dimensions wrap; out-of-range
    /// coordinates on non-periodic dimensions are an error.
    pub fn cart_rank(&self, coords: &[isize]) -> Result<Rank> {
        if coords.len() != self.dims.len() {
            return Err(MpiError::InvalidLayout(format!(
                "cart: {} coords for {} dims",
                coords.len(),
                self.dims.len()
            )));
        }
        let mut rank = 0usize;
        for (dim, &c) in coords.iter().enumerate() {
            let extent = self.dims[dim] as isize;
            let c = if self.periods[dim] {
                c.rem_euclid(extent)
            } else if (0..extent).contains(&c) {
                c
            } else {
                return Err(MpiError::InvalidLayout(format!(
                    "cart: coordinate {c} out of range 0..{extent} in non-periodic dim {dim}"
                )));
            };
            rank = rank * self.dims[dim] + c as usize;
        }
        Ok(rank)
    }

    /// The `(source, destination)` pair for a shift of `disp` along
    /// `dim` (mirrors `MPI_Cart_shift`): `destination` is the rank
    /// `disp` steps in the positive direction (whom you'd send to),
    /// `source` the rank `disp` steps in the negative direction (whom
    /// you'd receive from). `None` stands in for `MPI_PROC_NULL` at a
    /// non-periodic boundary.
    pub fn cart_shift(&self, dim: usize, disp: isize) -> Result<(Option<Rank>, Option<Rank>)> {
        if dim >= self.dims.len() {
            return Err(MpiError::InvalidLayout(format!(
                "cart: shift along dim {dim}, grid has {} dims",
                self.dims.len()
            )));
        }
        let source = shifted_rank(&self.coords, &self.dims, &self.periods, dim, -disp);
        let dest = shifted_rank(&self.coords, &self.dims, &self.periods, dim, disp);
        Ok((source, dest))
    }
}

impl Neighborhood for CartComm {
    fn comm(&self) -> &Comm {
        &self.base.comm
    }

    fn sources(&self) -> &[Rank] {
        &self.sources
    }

    fn destinations(&self) -> &[Rank] {
        &self.destinations
    }

    fn max_degree(&self) -> usize {
        self.base.max_degree
    }

    fn dense_eligible(&self) -> bool {
        self.base.dense_eligible
    }
}

/// Row-major coordinate decomposition (last dim fastest).
fn coords_of(rank: Rank, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; dims.len()];
    let mut rest = rank;
    for dim in (0..dims.len()).rev() {
        coords[dim] = rest % dims[dim];
        rest /= dims[dim];
    }
    coords
}

/// Rank `disp` steps along `dim` from `coords`, or `None` past a
/// non-periodic boundary.
fn shifted_rank(
    coords: &[usize],
    dims: &[usize],
    periods: &[bool],
    dim: usize,
    disp: isize,
) -> Option<Rank> {
    let extent = dims[dim] as isize;
    let raw = coords[dim] as isize + disp;
    let shifted = if periods[dim] {
        raw.rem_euclid(extent)
    } else if (0..extent).contains(&raw) {
        raw
    } else {
        return None;
    };
    let mut rank = 0usize;
    for (d, &c) in coords.iter().enumerate() {
        let c = if d == dim { shifted as usize } else { c };
        rank = rank * dims[d] + c;
    }
    Some(rank)
}

#[cfg(test)]
mod tests {
    use crate::collectives::neighborhood::NeighborhoodColl;
    use crate::topology::Neighborhood;
    use crate::Universe;

    #[test]
    fn coords_round_trip() {
        Universe::run(6, |comm| {
            let cart = comm.create_cart(&[2, 3], &[false, false], false).unwrap();
            let coords = cart.coords().to_vec();
            assert_eq!(coords, [comm.rank() / 3, comm.rank() % 3]);
            let back = cart
                .cart_rank(&coords.iter().map(|&c| c as isize).collect::<Vec<_>>())
                .unwrap();
            assert_eq!(back, comm.rank());
            assert_eq!(cart.cart_coords(comm.rank()).unwrap(), coords);
        });
    }

    #[test]
    fn bad_dims_rejected() {
        Universe::run(4, |comm| {
            assert!(comm.create_cart(&[3], &[false], false).is_err());
            assert!(comm.create_cart(&[2, 2], &[false], false).is_err());
            assert!(comm.create_cart(&[], &[], false).is_err());
            assert!(comm.create_cart(&[4, 0], &[false, false], false).is_err());
        });
    }

    #[test]
    fn shift_periodic_ring() {
        Universe::run(4, |comm| {
            let cart = comm.create_cart(&[4], &[true], false).unwrap();
            let (src, dst) = cart.cart_shift(0, 1).unwrap();
            assert_eq!(src, Some((comm.rank() + 3) % 4));
            assert_eq!(dst, Some((comm.rank() + 1) % 4));
            let (src2, dst2) = cart.cart_shift(0, 2).unwrap();
            assert_eq!(src2, Some((comm.rank() + 2) % 4));
            assert_eq!(dst2, Some((comm.rank() + 2) % 4));
        });
    }

    #[test]
    fn shift_open_line_has_boundaries() {
        Universe::run(4, |comm| {
            let cart = comm.create_cart(&[4], &[false], false).unwrap();
            let (src, dst) = cart.cart_shift(0, 1).unwrap();
            assert_eq!(src, comm.rank().checked_sub(1));
            assert_eq!(
                dst,
                if comm.rank() + 1 < 4 {
                    Some(comm.rank() + 1)
                } else {
                    None
                }
            );
        });
    }

    #[test]
    fn cart_rank_wraps_only_periodic_dims() {
        Universe::run(6, |comm| {
            let cart = comm.create_cart(&[2, 3], &[true, false], false).unwrap();
            // Periodic dim 0 wraps: coordinate -1 ≡ 1.
            assert_eq!(cart.cart_rank(&[-1, 0]).unwrap(), 3);
            // Non-periodic dim 1 does not.
            assert!(cart.cart_rank(&[0, 3]).is_err());
        });
    }

    #[test]
    fn neighbor_order_is_negative_then_positive_per_dim() {
        Universe::run(6, |comm| {
            let cart = comm.create_cart(&[2, 3], &[true, true], false).unwrap();
            if comm.rank() == 4 {
                // coords (1, 1): dim-0 neighbors (0,1)=1 both ways (extent
                // 2 periodic ⇒ duplicate), dim-1 neighbors (1,0)=3 and
                // (1,2)=5.
                assert_eq!(cart.sources(), &[1, 1, 3, 5]);
                assert!(!cart.dense_eligible(), "duplicate neighbors");
            }
            assert_eq!(cart.max_degree(), 4);
        });
    }

    #[test]
    fn halo_exchange_on_2d_torus() {
        // Classic stencil halo: every rank sends its rank id to all four
        // neighbors and checks what it gets back.
        Universe::run(6, |comm| {
            let cart = comm.create_cart(&[2, 3], &[true, true], false).unwrap();
            let sends: Vec<Vec<u32>> = cart
                .destinations()
                .iter()
                .map(|_| vec![comm.rank() as u32])
                .collect();
            let got = cart.neighbor_alltoall_vecs(&sends).unwrap();
            let expected: Vec<Vec<u32>> = cart.sources().iter().map(|&s| vec![s as u32]).collect();
            assert_eq!(got, expected);
        });
    }
}
