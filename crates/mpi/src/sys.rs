//! Thread-CPU-time access.
//!
//! The virtual clock (see [`crate::clock`]) charges local compute between
//! message-passing calls using the calling thread's CPU time, which stays
//! meaningful even when ranks (threads) heavily oversubscribe the host
//! cores. On Linux this reads `CLOCK_THREAD_CPUTIME_ID` directly; other
//! platforms fall back to a monotonic wall clock.

#[cfg(target_os = "linux")]
mod imp {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    unsafe extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    /// Nanoseconds of CPU time consumed by the calling thread.
    pub fn thread_cpu_ns() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid out-pointer; the clock id is a Linux constant.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    static START: OnceLock<Instant> = OnceLock::new();

    /// Fallback: monotonic wall time (coarser than thread CPU time).
    pub fn thread_cpu_ns() -> u64 {
        let start = *START.get_or_init(Instant::now);
        start.elapsed().as_nanos() as u64
    }
}

pub use imp::thread_cpu_ns;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_advances_under_load() {
        let a = thread_cpu_ns();
        // Burn CPU until the clock advances (bounded by the iteration cap).
        let mut x = 0u64;
        let mut b = a;
        for round in 0..1_000u64 {
            for i in 0..1_000_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i ^ round);
            }
            std::hint::black_box(x);
            b = thread_cpu_ns();
            if b > a {
                break;
            }
        }
        assert!(b >= a);
        assert!(b > a, "thread CPU clock did not advance");
    }

    #[test]
    fn per_thread_isolation() {
        // A sleeping thread must accumulate (almost) no CPU time.
        let handle = std::thread::spawn(|| {
            let a = thread_cpu_ns();
            std::thread::sleep(std::time::Duration::from_millis(30));
            thread_cpu_ns() - a
        });
        let slept = handle.join().unwrap();
        // Generous bound: sleeping 30ms should cost far less than 20ms CPU.
        #[cfg(target_os = "linux")]
        assert!(
            slept < 20_000_000,
            "sleeping thread consumed {slept} ns CPU"
        );
        #[cfg(not(target_os = "linux"))]
        let _ = slept;
    }
}
