//! Communicators.
//!
//! A [`Comm`] is a rank's handle to one communication context: it knows
//! the rank's position in the group, translates communicator ranks to
//! world ranks, owns the rank's virtual clock (shared between all handles
//! of the same rank), and provides the internal envelope-level transport
//! primitives that the point-to-point and collective operations build on.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use bytes::Bytes;

use crate::clock::Clock;
use crate::collectives::algos::model::{ModelSnapshot, ModelState, TuningStats};
use crate::collectives::CollTuning;
use crate::counter::CallCounts;
use crate::error::{MpiError, Result};
use crate::fault;
use crate::message::{AckSlot, Envelope, Src, Status, TagSel};
use crate::trace;
use crate::universe::WorldState;
use crate::{Rank, Tag};

/// A rank's handle to a communicator.
pub struct Comm {
    pub(crate) world: Arc<WorldState>,
    /// Maps communicator rank -> world rank.
    pub(crate) group: Arc<Vec<Rank>>,
    /// This rank's position in `group`.
    pub(crate) rank: Rank,
    /// Context id separating message streams of different communicators.
    pub(crate) context: u64,
    /// Virtual clock, shared by every `Comm` handle of this rank.
    pub(crate) clock: Rc<RefCell<Clock>>,
    /// Sequence number for internal (collective) tags.
    coll_seq: Cell<u64>,
    /// Sequence number for ULFM agreement instances. Kept separate from
    /// `coll_seq` on purpose: a collective allocates internal tags
    /// incrementally, so a mid-collective failure can leave survivors
    /// with *diverged* tag counters (a rank erroring in an early phase
    /// allocated fewer than one erroring later). Agreements are keyed
    /// per agree/shrink *call*, which the ULFM contract does keep
    /// collective — aligned across survivors whatever the crash point.
    agree_seq: Cell<i32>,
    /// Collective algorithm tuning policy (see [`crate::collectives::algos`]).
    tuning: Cell<CollTuning>,
    /// Online cost-model state (snapshot + pending observations + call
    /// sequence; see [`crate::collectives::algos::model`]). Inert
    /// unless the tuning's [`ModelConfig::drive`] is on.
    ///
    /// [`ModelConfig::drive`]: crate::collectives::algos::model::ModelConfig::drive
    model: RefCell<ModelState>,
}

impl Comm {
    /// Creates the world communicator handle for `rank`. Called by the
    /// universe when spawning ranks.
    pub(crate) fn world(world: Arc<WorldState>, rank: Rank) -> Self {
        let size = world.size();
        let cost = world.cost;
        Comm {
            world,
            group: Arc::new((0..size).collect()),
            rank,
            context: 0,
            clock: Rc::new(RefCell::new(Clock::new(cost))),
            coll_seq: Cell::new(0),
            agree_seq: Cell::new(0),
            tuning: Cell::new(CollTuning::default()),
            model: RefCell::new(ModelState::default()),
        }
    }

    pub(crate) fn derived(&self, group: Arc<Vec<Rank>>, rank: Rank, context: u64) -> Self {
        Comm {
            world: Arc::clone(&self.world),
            group,
            rank,
            context,
            clock: Rc::clone(&self.clock),
            coll_seq: Cell::new(0),
            agree_seq: Cell::new(0),
            // Derived communicators inherit the parent's tuning, like
            // MPI info hints — and the parent's published model
            // snapshot (identical across ranks at a matched dup/split,
            // so the child starts symmetric and warm).
            tuning: Cell::new(self.tuning.get()),
            model: RefCell::new(ModelState::inherit(&self.model.borrow())),
        }
    }

    /// This rank's rank within the communicator.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// True on rank 0 (a common convenience, cf. `comm.is_root()`).
    #[inline]
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// This rank's world rank.
    #[inline]
    pub fn world_rank(&self) -> Rank {
        self.group[self.rank]
    }

    /// Translates a communicator rank to a world rank.
    pub fn translate_to_world(&self, comm_rank: Rank) -> Result<Rank> {
        self.group
            .get(comm_rank)
            .copied()
            .ok_or(MpiError::InvalidRank {
                rank: comm_rank,
                comm_size: self.group.len(),
            })
    }

    /// The communicator's context id (unique per universe).
    #[inline]
    pub fn context_id(&self) -> u64 {
        self.context
    }

    // ----- clock ---------------------------------------------------------

    /// Current virtual time of this rank, in nanoseconds.
    pub fn clock_now_ns(&self) -> u64 {
        self.clock.borrow_mut().absorb_cpu();
        self.clock.borrow().now_ns()
    }

    /// Manually advances this rank's virtual clock.
    pub fn clock_add_ns(&self, ns: u64) {
        self.clock.borrow_mut().add_ns(ns);
    }

    /// Resets this rank's virtual clock to zero.
    pub fn clock_reset(&self) {
        self.clock.borrow_mut().reset();
    }

    // ----- collective tuning ---------------------------------------------

    /// The communicator's collective tuning policy.
    #[inline]
    pub fn tuning(&self) -> CollTuning {
        self.tuning.get()
    }

    /// Replaces the communicator's collective tuning policy. All ranks
    /// must use the same tuning for matching calls — the policy is part
    /// of the wire protocol, like an MPI info hint.
    pub fn set_tuning(&self, tuning: CollTuning) {
        self.tuning.set(tuning);
    }

    /// Temporarily overrides the tuning for the duration of the guard
    /// (used by the binding layer's `tuning(...)` named parameter).
    /// `None` is a no-op guard.
    pub fn tuning_guard(&self, tuning: Option<CollTuning>) -> TuningGuard<'_> {
        let prev = tuning.map(|t| self.tuning.replace(t));
        TuningGuard { comm: self, prev }
    }

    /// The communicator's current published cost-model snapshot
    /// (per-algorithm `(alpha, beta)` estimates; see
    /// [`crate::collectives::algos::model`]). Identical on every rank
    /// between two sync points.
    pub fn model_snapshot(&self) -> ModelSnapshot {
        self.model.borrow().snapshot()
    }

    /// Resets the communicator's cost model to cold (snapshot, pending
    /// observations and the sync sequence). Like tuning changes, this
    /// must be performed symmetrically — at the same point of the call
    /// sequence on every rank — or ranks will disagree on selections.
    pub fn reset_model(&self) {
        self.model.borrow_mut().reset();
    }

    /// Snapshot of this rank's tuning diagnostics (selection counts,
    /// model observations, published estimates). Whole-run per-rank
    /// values are available without in-closure snapshotting via
    /// [`crate::Universe::run_stats`].
    pub fn tuning_stats(&self) -> TuningStats {
        crate::collectives::algos::model::stats_snapshot()
    }

    #[inline]
    pub(crate) fn model_state_mut(&self) -> std::cell::RefMut<'_, ModelState> {
        self.model.borrow_mut()
    }

    // ----- call counting (PMPI substitute) -------------------------------

    /// Snapshot of this rank's per-operation call counts.
    pub fn call_counts(&self) -> CallCounts {
        self.world.counters[self.world_rank()].lock().clone()
    }

    /// Snapshot of this rank's payload copy counters (convenience
    /// mirror of [`crate::metrics::snapshot`]; per-rank totals of a
    /// whole run are available without any in-closure snapshotting via
    /// [`crate::Universe::run_stats`]).
    pub fn copy_stats(&self) -> crate::metrics::CopyStats {
        crate::metrics::snapshot()
    }

    /// Snapshot of this rank's matching-engine diagnostics: current and
    /// high-water unexpected-queue depth (how far senders ran ahead of
    /// this rank's receives) and the number of targeted deliveries.
    /// Whole-run per-rank values are available without in-closure
    /// snapshotting via [`crate::Universe::run_stats`].
    pub fn mailbox_stats(&self) -> crate::mailbox::MailboxStats {
        self.world.mailboxes[self.world_rank()].stats()
    }

    /// Snapshots every rank's live trace ring mid-run (see
    /// [`Universe::trace_snapshot`](crate::Universe::trace_snapshot)):
    /// lets one rank export a trace of a still-running universe.
    pub fn trace_snapshot(&self) -> crate::trace::TraceData {
        crate::Universe::trace_snapshot(&self.world)
    }

    #[inline]
    pub(crate) fn count_op(&self, name: &'static str) {
        self.world.counters[self.world_rank()].lock().inc(name);
    }

    /// This rank's matching engine (the completion subsystem parks on
    /// it).
    #[inline]
    pub(crate) fn mailbox(&self) -> &crate::mailbox::Mailbox {
        &self.world.mailboxes[self.world_rank()]
    }

    // ----- internal transport --------------------------------------------

    /// Validates a user-facing destination/source rank.
    pub(crate) fn check_rank(&self, rank: Rank) -> Result<Rank> {
        self.translate_to_world(rank)
    }

    /// Validates a user-supplied tag (must be non-negative).
    pub(crate) fn check_tag(&self, tag: Tag) -> Result<Tag> {
        if tag < 0 {
            return Err(MpiError::InvalidTag { tag });
        }
        Ok(tag)
    }

    /// Allocates an internal tag for one collective call. Internal tags
    /// are negative and therefore invisible to wildcard receives.
    pub(crate) fn next_internal_tag(&self) -> Tag {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        -1 - ((seq % (i32::MAX as u64 - 1)) as i32)
    }

    /// Next agreement-instance number on this communicator (see the
    /// `agree_seq` field for why this is not `next_internal_tag`).
    pub(crate) fn next_agree_seq(&self) -> i32 {
        let seq = self.agree_seq.get();
        self.agree_seq.set(seq.wrapping_add(1));
        seq
    }

    /// Core send: stamps the virtual clock, wraps the payload in an
    /// envelope and pushes it to the destination mailbox. Sending to a
    /// failed rank succeeds (as a buffered MPI send may).
    pub(crate) fn deliver_bytes(
        &self,
        dest: Rank,
        tag: Tag,
        payload: Bytes,
        ack: Option<Arc<AckSlot>>,
    ) -> Result<()> {
        let dest_world = self.translate_to_world(dest)?;
        if self.world.is_revoked(self.context) {
            return Err(MpiError::Revoked);
        }
        let _sp = trace::span(trace::cat::SEND, "send", dest as u64, payload.len() as u64);
        let arrival_ns = {
            let mut clock = self.clock.borrow_mut();
            clock.absorb_cpu();
            clock.on_send(payload.len())
        };
        let env = Envelope {
            src: self.rank,
            src_world: self.world_rank(),
            context: self.context,
            tag,
            payload,
            arrival_ns,
            ack,
        };
        // The message-fault interception boundary: a planned rule may
        // drop, delay, or duplicate the envelope here.
        fault::deliver(&self.world, dest_world, env, |e| {
            self.world.mailboxes[dest_world].push(e)
        });
        Ok(())
    }

    /// Interruption predicate for blocking waits on this communicator:
    /// revocation always aborts; waiting on a specific failed source (or on
    /// a wildcard when every peer has failed) reports `ProcessFailed`.
    pub(crate) fn wait_interrupted(&self, src: Src) -> Option<MpiError> {
        if self.world.is_revoked(self.context) {
            return Some(MpiError::Revoked);
        }
        match src {
            Src::Rank(r) => {
                let w = self.group.get(r).copied()?;
                self.world
                    .is_failed(w)
                    .then_some(MpiError::ProcessFailed { world_rank: w })
            }
            Src::Any => {
                let mut failed_peer = None;
                for (cr, &w) in self.group.iter().enumerate() {
                    if cr == self.rank {
                        continue;
                    }
                    if !self.world.is_failed(w) {
                        return None;
                    }
                    failed_peer = Some(w);
                }
                failed_peer.map(|w| MpiError::ProcessFailed { world_rank: w })
            }
        }
    }

    /// Core blocking receive at envelope level.
    pub(crate) fn recv_envelope(&self, src: Src, tag: TagSel) -> Result<Envelope> {
        let _sp = trace::span(trace::cat::RECV, "recv", src_code(src), 0);
        self.clock.borrow_mut().absorb_cpu();
        let mb = &self.world.mailboxes[self.world_rank()];
        let env = mb.wait_match(self.context, src, tag, || self.wait_interrupted(src))?;
        self.complete_envelope(&env);
        Ok(env)
    }

    /// Core non-blocking receive at envelope level.
    pub(crate) fn try_recv_envelope(&self, src: Src, tag: TagSel) -> Option<Envelope> {
        self.clock.borrow_mut().absorb_cpu();
        let mb = &self.world.mailboxes[self.world_rank()];
        let env = mb.try_match(self.context, src, tag)?;
        self.complete_envelope(&env);
        Some(env)
    }

    fn complete_envelope(&self, env: &Envelope) {
        self.clock.borrow_mut().on_recv_complete(env.arrival_ns);
        if let Some(ack) = &env.ack {
            ack.complete();
        }
    }

    /// Blocking probe at envelope level (does not consume the message).
    pub(crate) fn peek_envelope(&self, src: Src, tag: TagSel) -> Result<Status> {
        let _sp = trace::span(trace::cat::RECV, "probe", src_code(src), 0);
        self.clock.borrow_mut().absorb_cpu();
        let mb = &self.world.mailboxes[self.world_rank()];
        mb.wait_peek(self.context, src, tag, || self.wait_interrupted(src))
    }

    /// Non-blocking probe at envelope level.
    pub(crate) fn try_peek_envelope(&self, src: Src, tag: TagSel) -> Option<Status> {
        let mb = &self.world.mailboxes[self.world_rank()];
        mb.try_peek(self.context, src, tag)
    }

    // ----- communicator management ---------------------------------------

    /// Duplicates the communicator: same group, fresh context
    /// (mirrors `MPI_Comm_dup`).
    pub fn dup(&self) -> Result<Comm> {
        self.count_op("comm_dup");
        // Rank 0 allocates the context id and broadcasts it so all members
        // agree.
        let base = if self.rank == 0 {
            self.world.alloc_contexts(1)
        } else {
            0
        };
        let base = crate::collectives::bcast_one_internal(self, base, 0)?;
        Ok(self.derived(Arc::clone(&self.group), self.rank, base))
    }

    /// Splits the communicator by `color`; ranks passing the same color
    /// form a new communicator, ordered by `(key, rank)`. Passing `None`
    /// as color (mirroring `MPI_UNDEFINED`) yields no communicator.
    pub fn split(&self, color: Option<u64>, key: i64) -> Result<Option<Comm>> {
        self.count_op("comm_split");
        const UNDEF: u64 = u64::MAX;
        let mine = [color.unwrap_or(UNDEF), key as u64];
        let all = crate::collectives::allgather_internal(self, &mine)?;

        // Distinct defined colors in sorted order; every rank computes the
        // same list, so the context offsets agree.
        let mut colors: Vec<u64> = all
            .chunks_exact(2)
            .map(|c| c[0])
            .filter(|&c| c != UNDEF)
            .collect();
        colors.sort_unstable();
        colors.dedup();

        let base = if self.rank == 0 {
            self.world.alloc_contexts(colors.len() as u64)
        } else {
            0
        };
        let base = crate::collectives::bcast_one_internal(self, base, 0)?;

        let Some(my_color) = color else {
            return Ok(None);
        };
        let color_index = colors
            .binary_search(&my_color)
            .expect("own color must be present") as u64;

        // Members of my color, ordered by (key, old rank).
        let mut members: Vec<(i64, Rank)> = all
            .chunks_exact(2)
            .enumerate()
            .filter(|(_, c)| c[0] == my_color)
            .map(|(r, c)| (c[1] as i64, r))
            .collect();
        members.sort_unstable();

        let group: Vec<Rank> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("calling rank must be in its own color group");

        Ok(Some(self.derived(
            Arc::new(group),
            new_rank,
            base + color_index,
        )))
    }

    /// Collectively frees a derived communicator (mirrors
    /// `MPI_Comm_free`), reclaiming its per-context shard from this
    /// rank's matching engine — the PR 4 leak fix: dup/split-heavy
    /// loops that free their communicators hold `shard_count` flat.
    ///
    /// All members must call `free`; it synchronizes with a barrier, so
    /// every in-flight message on the context is consumed before any
    /// rank drops its shard (the dissemination barrier only completes
    /// at a rank once all messages addressed to it have been received).
    /// Pending operations on the communicator must be completed first,
    /// as with `MPI_Comm_free`. The world communicator cannot be freed.
    pub fn free(self) -> Result<()> {
        self.count_op("comm_free");
        if self.context == 0 {
            return Err(MpiError::InvalidLayout(
                "the world communicator cannot be freed".into(),
            ));
        }
        self.barrier()?;
        self.mailbox().remove_shard(self.context);
        Ok(())
    }
}

/// Trace encoding of a receive selector: the peer rank, or `u64::MAX`
/// for `ANY_SOURCE`.
fn src_code(src: Src) -> u64 {
    match src {
        Src::Rank(r) => r as u64,
        Src::Any => u64::MAX,
    }
}

/// Restores a communicator's previous tuning when dropped (see
/// [`Comm::tuning_guard`]).
pub struct TuningGuard<'a> {
    comm: &'a Comm,
    prev: Option<CollTuning>,
}

impl Drop for TuningGuard<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            self.comm.tuning.set(prev);
        }
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .field("context", &self.context)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn rank_and_size() {
        Universe::run(3, |comm| {
            assert_eq!(comm.size(), 3);
            assert!(comm.rank() < 3);
            assert_eq!(comm.world_rank(), comm.rank());
            assert_eq!(comm.is_root(), comm.rank() == 0);
        });
    }

    #[test]
    fn translate_out_of_range() {
        Universe::run(2, |comm| {
            assert!(comm.translate_to_world(1).is_ok());
            assert!(matches!(
                comm.translate_to_world(2),
                Err(MpiError::InvalidRank {
                    rank: 2,
                    comm_size: 2
                })
            ));
        });
    }

    #[test]
    fn internal_tags_are_negative_and_distinct() {
        Universe::run(1, |comm| {
            let a = comm.next_internal_tag();
            let b = comm.next_internal_tag();
            assert!(a < 0 && b < 0);
            assert_ne!(a, b);
        });
    }

    #[test]
    fn user_tag_validation() {
        Universe::run(1, |comm| {
            assert!(comm.check_tag(0).is_ok());
            assert!(comm.check_tag(123).is_ok());
            assert!(matches!(
                comm.check_tag(-1),
                Err(MpiError::InvalidTag { tag: -1 })
            ));
        });
    }

    #[test]
    fn dup_creates_distinct_context() {
        Universe::run(3, |comm| {
            let dup = comm.dup().unwrap();
            assert_ne!(dup.context_id(), comm.context_id());
            assert_eq!(dup.rank(), comm.rank());
            assert_eq!(dup.size(), comm.size());
        });
    }

    #[test]
    fn split_into_even_and_odd() {
        Universe::run(5, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm
                .split(Some(color), comm.rank() as i64)
                .unwrap()
                .unwrap();
            let expected_size = if color == 0 { 3 } else { 2 };
            assert_eq!(sub.size(), expected_size);
            assert_eq!(sub.rank(), comm.rank() / 2);
            assert_eq!(sub.world_rank(), comm.rank());
        });
    }

    #[test]
    fn split_with_undefined_color() {
        Universe::run(4, |comm| {
            let color = if comm.rank() == 0 { None } else { Some(0u64) };
            let sub = comm.split(color, 0).unwrap();
            if comm.rank() == 0 {
                assert!(sub.is_none());
            } else {
                let sub = sub.unwrap();
                assert_eq!(sub.size(), 3);
                assert_eq!(sub.rank(), comm.rank() - 1);
            }
        });
    }

    #[test]
    fn split_reverse_key_order() {
        Universe::run(4, |comm| {
            // All same color, keys reversed: new ranks are the old reversed.
            let sub = comm.split(Some(0), -(comm.rank() as i64)).unwrap().unwrap();
            assert_eq!(sub.rank(), comm.size() - 1 - comm.rank());
        });
    }

    #[test]
    fn nested_split_contexts_are_unique() {
        Universe::run(4, |comm| {
            let a = comm
                .split(Some((comm.rank() % 2) as u64), 0)
                .unwrap()
                .unwrap();
            let b = comm.dup().unwrap();
            let ids = [comm.context_id(), a.context_id(), b.context_id()];
            let mut dedup = ids.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                3,
                "contexts must be pairwise distinct: {ids:?}"
            );
        });
    }
}
