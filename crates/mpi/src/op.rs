//! Reduction operations.
//!
//! MPI reductions take an operation handle; KaMPIng additionally maps STL
//! functors (`std::plus`) to MPI built-ins and accepts plain lambdas
//! (§II, §V-C). The substrate models this with the [`ReduceOp`] trait:
//! built-in operations are zero-sized types the compiler can inline and
//! (at the binding layer) recognize; user lambdas are wrapped with an
//! explicit commutativity declaration, which reduction algorithms use to
//! decide whether they must preserve rank order.

/// A binary reduction operation over values of type `T`.
pub trait ReduceOp<T> {
    /// Applies the operation. For non-commutative operations, `a` is
    /// always the operand originating from the *lower-ranked* block.
    fn apply(&self, a: &T, b: &T) -> T;

    /// Whether the operation may be applied in arbitrary order.
    fn is_commutative(&self) -> bool {
        true
    }
}

/// Elementwise sum (`MPI_SUM`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sum;

/// Elementwise product (`MPI_PROD`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Prod;

/// Elementwise minimum (`MPI_MIN`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Min;

/// Elementwise maximum (`MPI_MAX`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Max;

/// Logical and over `u8`-encoded booleans (`MPI_LAND`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogicalAnd;

/// Logical or over `u8`-encoded booleans (`MPI_LOR`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogicalOr;

/// Bitwise and (`MPI_BAND`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitAnd;

/// Bitwise or (`MPI_BOR`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitOr;

/// Bitwise xor (`MPI_BXOR`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitXor;

impl<T: Copy + std::ops::Add<Output = T>> ReduceOp<T> for Sum {
    #[inline]
    fn apply(&self, a: &T, b: &T) -> T {
        *a + *b
    }
}

impl<T: Copy + std::ops::Mul<Output = T>> ReduceOp<T> for Prod {
    #[inline]
    fn apply(&self, a: &T, b: &T) -> T {
        *a * *b
    }
}

impl<T: Copy + PartialOrd> ReduceOp<T> for Min {
    #[inline]
    fn apply(&self, a: &T, b: &T) -> T {
        if *b < *a {
            *b
        } else {
            *a
        }
    }
}

impl<T: Copy + PartialOrd> ReduceOp<T> for Max {
    #[inline]
    fn apply(&self, a: &T, b: &T) -> T {
        if *b > *a {
            *b
        } else {
            *a
        }
    }
}

impl ReduceOp<u8> for LogicalAnd {
    #[inline]
    fn apply(&self, a: &u8, b: &u8) -> u8 {
        u8::from(*a != 0 && *b != 0)
    }
}

impl ReduceOp<u8> for LogicalOr {
    #[inline]
    fn apply(&self, a: &u8, b: &u8) -> u8 {
        u8::from(*a != 0 || *b != 0)
    }
}

macro_rules! impl_bit_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for BitAnd {
            #[inline]
            fn apply(&self, a: &$t, b: &$t) -> $t { a & b }
        }
        impl ReduceOp<$t> for BitOr {
            #[inline]
            fn apply(&self, a: &$t, b: &$t) -> $t { a | b }
        }
        impl ReduceOp<$t> for BitXor {
            #[inline]
            fn apply(&self, a: &$t, b: &$t) -> $t { a ^ b }
        }
    )*};
}

impl_bit_ops!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// A user-provided reduction lambda with declared commutativity.
#[derive(Clone, Copy, Debug)]
pub struct Lambda<F> {
    f: F,
    commutative: bool,
}

impl<T, F: Fn(&T, &T) -> T> ReduceOp<T> for Lambda<F> {
    #[inline]
    fn apply(&self, a: &T, b: &T) -> T {
        (self.f)(a, b)
    }

    #[inline]
    fn is_commutative(&self) -> bool {
        self.commutative
    }
}

/// Wraps a lambda as a commutative reduction operation.
pub fn commutative<T, F: Fn(&T, &T) -> T>(f: F) -> Lambda<F> {
    Lambda {
        f,
        commutative: true,
    }
}

/// Wraps a lambda as a non-commutative reduction operation; reduction
/// algorithms will preserve rank order for it.
pub fn non_commutative<T, F: Fn(&T, &T) -> T>(f: F) -> Lambda<F> {
    Lambda {
        f,
        commutative: false,
    }
}

// Plain `Fn(&T, &T) -> T` closures are accepted directly and treated as
// commutative, matching the common case (and KaMPIng's default).
impl<T, F: Fn(&T, &T) -> T> ReduceOp<T> for F {
    #[inline]
    fn apply(&self, a: &T, b: &T) -> T {
        self(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_ops() {
        assert_eq!(ReduceOp::<u32>::apply(&Sum, &2, &3), 5);
        assert_eq!(ReduceOp::<u32>::apply(&Prod, &2, &3), 6);
        assert_eq!(ReduceOp::<i32>::apply(&Min, &-2, &3), -2);
        assert_eq!(ReduceOp::<i32>::apply(&Max, &-2, &3), 3);
        assert_eq!(LogicalAnd.apply(&1, &0), 0);
        assert_eq!(LogicalAnd.apply(&1, &2), 1);
        assert_eq!(LogicalOr.apply(&0, &0), 0);
        assert_eq!(LogicalOr.apply(&0, &7), 1);
        assert_eq!(ReduceOp::<u8>::apply(&BitXor, &0b1010, &0b0110), 0b1100);
    }

    #[test]
    fn float_min_max() {
        assert_eq!(ReduceOp::<f64>::apply(&Min, &1.5, &-0.5), -0.5);
        assert_eq!(ReduceOp::<f64>::apply(&Max, &1.5, &-0.5), 1.5);
    }

    #[test]
    fn lambda_commutativity_flags() {
        let c = commutative(|a: &u32, b: &u32| a + b);
        assert!(ReduceOp::<u32>::is_commutative(&c));
        let nc = non_commutative(|a: &u32, b: &u32| a.wrapping_sub(*b));
        assert!(!ReduceOp::<u32>::is_commutative(&nc));
        assert_eq!(nc.apply(&10, &3), 7);
    }

    #[test]
    fn bare_closures_are_ops() {
        fn takes_op<T, O: ReduceOp<T>>(op: O, a: T, b: T) -> T {
            op.apply(&a, &b)
        }
        assert_eq!(takes_op(|a: &u64, b: &u64| a * b, 6, 7), 42);
    }
}
