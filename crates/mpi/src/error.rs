//! Error types.
//!
//! MPI reports both *failures* (process death, resource exhaustion) and
//! *usage errors* through return codes. Mirroring §III-G of the paper, the
//! substrate distinguishes the two: recoverable failures are reported as
//! [`MpiError`] values (the binding layer turns them into rich results);
//! usage errors (type mismatches, buffer overruns) panic, which is the
//! Rust analogue of a failed assertion.

use crate::Rank;

/// Errors reported by substrate operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// A process taking part in the operation has failed
    /// (ULFM `MPI_ERR_PROC_FAILED`).
    ProcessFailed {
        /// World rank of a failed process involved in the operation.
        world_rank: Rank,
    },
    /// The communicator has been revoked (ULFM `MPI_ERR_REVOKED`).
    Revoked,
    /// A receive was posted with a buffer too small for the matched
    /// message (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes in the matched message.
        message_bytes: usize,
        /// Bytes available in the receive buffer.
        buffer_bytes: usize,
    },
    /// An invalid rank was named (out of range for the communicator).
    InvalidRank { rank: Rank, comm_size: usize },
    /// An invalid (negative) tag was supplied by user code.
    InvalidTag { tag: i32 },
    /// Counts/displacements describe a layout outside the buffer.
    InvalidLayout(String),
    /// Deserialization of an incoming message failed.
    Deserialize(String),
    /// Serialization of outgoing data failed.
    Serialize(String),
    /// A persistent request was started while a previous cycle was
    /// still active (MPI requires the prior `start` to complete first).
    RequestActive,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::ProcessFailed { world_rank } => {
                write!(f, "process failure detected (world rank {world_rank})")
            }
            MpiError::Revoked => write!(f, "communicator has been revoked"),
            MpiError::Truncated {
                message_bytes,
                buffer_bytes,
            } => write!(
                f,
                "message truncated: {message_bytes} bytes arrived, buffer holds {buffer_bytes}"
            ),
            MpiError::InvalidRank { rank, comm_size } => {
                write!(
                    f,
                    "invalid rank {rank} for communicator of size {comm_size}"
                )
            }
            MpiError::InvalidTag { tag } => {
                write!(f, "invalid tag {tag}: user tags must be non-negative")
            }
            MpiError::InvalidLayout(msg) => write!(f, "invalid counts/displacements: {msg}"),
            MpiError::Deserialize(msg) => write!(f, "deserialization failed: {msg}"),
            MpiError::Serialize(msg) => write!(f, "serialization failed: {msg}"),
            MpiError::RequestActive => write!(
                f,
                "persistent request started while still active: complete the \
                 previous cycle with wait() first"
            ),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_human_readable() {
        let e = MpiError::ProcessFailed { world_rank: 3 };
        assert!(e.to_string().contains("world rank 3"));
        let e = MpiError::Truncated {
            message_bytes: 100,
            buffer_bytes: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        let e = MpiError::InvalidRank {
            rank: 9,
            comm_size: 4,
        };
        assert!(e.to_string().contains("size 4"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MpiError::Revoked, MpiError::Revoked);
        assert_ne!(MpiError::Revoked, MpiError::ProcessFailed { world_rank: 0 });
    }
}
