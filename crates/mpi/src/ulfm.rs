//! User-Level Failure Mitigation (ULFM) substrate operations.
//!
//! The upcoming MPI 5.0 standard lets applications recover from process
//! failures via ULFM (§V-B of the paper): failed processes surface as
//! `MPI_ERR_PROC_FAILED`, survivors *revoke* the communicator to make
//! every pending and future operation on it fail, then *shrink* it to a
//! new communicator of survivors and continue. `agree` provides a
//! failure-aware agreement (logical AND) among survivors.
//!
//! The substrate implements:
//! - [`Comm::fail_here`] — failure injection (simulated crash);
//! - failure detection in all blocking operations (they return
//!   [`MpiError::ProcessFailed`](crate::MpiError::ProcessFailed) instead
//!   of hanging);
//! - [`Comm::revoke`] / [`Comm::is_revoked`];
//! - [`Comm::shrink`] and [`Comm::agree_and`], built on a shared
//!   agreement table that acts as the perfect failure detector shared
//!   memory affords.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::comm::Comm;
use crate::completion::{fresh_waiter, Waiter};
use crate::error::Result;
use crate::universe::RankFailure;
use crate::Rank;

/// One in-flight agreement instance.
struct AgreeEntry {
    /// Contributions by world rank (a rank contributes exactly once).
    contributions: HashMap<Rank, u64>,
    /// Set once the agreement freezes: (AND of contributions, surviving
    /// participant world ranks in canonical order, fresh context id).
    outcome: Option<(u64, Vec<Rank>, u64)>,
    /// How many survivors have collected the outcome (for cleanup).
    collected: usize,
    /// Parked participants awaiting this entry's outcome. The freezing
    /// rank claims and wakes exactly these waiters — other agreements'
    /// waiters never hear about it (no table-wide herd), and there is
    /// no timed re-check: interruption reaches parked waiters through
    /// the table epoch ([`AgreementTable::interrupt`]).
    waiters: Vec<Arc<Waiter>>,
}

/// Shared table of in-flight agreements, keyed by
/// `(context id, per-communicator call sequence)`.
///
/// Waiting is event-driven via the completion protocol
/// ([`crate::completion`]): a participant that cannot freeze the
/// agreement yet registers a waiter on the entry and parks; the freezer
/// wakes exactly that entry's waiters, and interruption (process
/// failure — which can change the freeze condition) bumps the table
/// epoch before waking everyone, so no interleaving can strand a
/// waiter. The 50 ms timed re-check the seed used — the substrate's
/// last poll loop — is gone.
#[derive(Default)]
pub struct AgreementTable {
    entries: Mutex<HashMap<(u64, i32), AgreeEntry>>,
    /// Interruption epoch; captured by waiters before their freeze
    /// checks, bumped (then published by waking) by `interrupt`.
    epoch: AtomicU64,
}

impl AgreementTable {
    pub(crate) fn new() -> Self {
        AgreementTable::default()
    }

    /// Wakes all waiters so they can re-examine failure flags. The
    /// epoch is bumped *before* any waiter is woken: a waiter that
    /// captured the old epoch either sees the new failure flags in its
    /// checks or observes the epoch difference and re-checks.
    pub(crate) fn interrupt(&self) {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        crate::trace::instant(crate::trace::cat::ULFM, "ulfm_epoch_bump", epoch, 0);
        let entries = self.entries.lock();
        for entry in entries.values() {
            for w in &entry.waiters {
                let _g = w.state.lock();
                w.cond.notify_one();
            }
        }
    }
}

impl Comm {
    /// Simulates a crash of this rank: marks it failed (waking all blocked
    /// peers, which then observe `ProcessFailed`) and unwinds the rank
    /// thread. Never returns.
    pub fn fail_here(&self) -> ! {
        self.world.mark_failed(self.world_rank());
        std::panic::panic_any(RankFailure);
    }

    /// Revokes the communicator: every pending and future operation on it
    /// (on any rank) fails with
    /// [`MpiError::Revoked`](crate::MpiError::Revoked). Mirrors
    /// `MPI_Comm_revoke`; like it, revocation is not itself collective.
    pub fn revoke(&self) {
        self.count_op("comm_revoke");
        self.world.revoke(self.context);
    }

    /// True if this communicator has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.world.is_revoked(self.context)
    }

    /// True if the given communicator rank is known to have failed.
    pub fn is_failed(&self, rank: Rank) -> bool {
        self.translate_to_world(rank)
            .map(|w| self.world.is_failed(w))
            .unwrap_or(false)
    }

    /// Failure-aware agreement (mirrors `MPI_Comm_agree`): returns the
    /// logical AND of `flag` over all *surviving* ranks of the
    /// communicator. Unlike regular collectives, agreement succeeds in the
    /// presence of failed ranks (their contributions are excluded) and on
    /// revoked communicators.
    pub fn agree_and(&self, flag: bool) -> Result<bool> {
        self.count_op("comm_agree");
        let bits = self.agree_raw(u64::from(flag))?;
        Ok(bits != 0)
    }

    /// Shrinks the communicator to its surviving ranks (mirrors
    /// `MPI_Comm_shrink`). Works on revoked communicators; the surviving
    /// ranks obtain a fresh, non-revoked communicator with ranks assigned
    /// in the old rank order.
    pub fn shrink(&self) -> Result<Comm> {
        self.count_op("comm_shrink");
        let (_, survivors_world, fresh_context) = self.agree_full(1)?;
        let my_world = self.world_rank();
        let new_rank = survivors_world
            .iter()
            .position(|&w| w == my_world)
            .expect("calling rank survives its own shrink");
        Ok(self.derived(Arc::new(survivors_world), new_rank, fresh_context))
    }

    fn agree_raw(&self, value: u64) -> Result<u64> {
        self.agree_full(value).map(|(v, _, _)| v)
    }

    /// Core agreement: each surviving member contributes once; the call
    /// returns when every member has contributed or failed. The freezing
    /// participant computes the result and allocates a fresh context id
    /// (used by `shrink`) under the table lock, so all survivors observe
    /// the identical outcome.
    fn agree_full(&self, value: u64) -> Result<(u64, Vec<Rank>, u64)> {
        let key = (self.context, self.next_internal_tag());
        let my_world = self.world_rank();
        let members: Vec<Rank> = self.group.as_ref().clone();
        let table = &self.world.agreements;

        // The epoch must be captured before the first freeze check: a
        // failure raised after this load is caught by the epoch
        // comparison in the park loop (`interrupt` bumps before
        // waking), one raised before it by the `is_failed` reads below.
        let mut seen_epoch = table.epoch.load(Ordering::SeqCst);
        let mut entries = table.entries.lock();
        let entry = entries.entry(key).or_insert_with(|| AgreeEntry {
            contributions: HashMap::new(),
            outcome: None,
            collected: 0,
            waiters: Vec::new(),
        });
        entry.contributions.insert(my_world, value);

        loop {
            let entry = entries.get_mut(&key).expect("entry exists while awaited");
            if entry.outcome.is_none() {
                let frozen = members
                    .iter()
                    .all(|&w| entry.contributions.contains_key(&w) || self.world.is_failed(w));
                if frozen {
                    let survivors: Vec<Rank> = members
                        .iter()
                        .copied()
                        .filter(|&w| {
                            entry.contributions.contains_key(&w) && !self.world.is_failed(w)
                        })
                        .collect();
                    let folded = entry
                        .contributions
                        .iter()
                        .filter(|(w, _)| survivors.contains(w))
                        .fold(u64::MAX, |acc, (_, &v)| acc & v);
                    let fresh = self.world.alloc_contexts(1);
                    entry.outcome = Some((folded, survivors, fresh));
                    // Targeted wakeups: exactly this entry's parked
                    // participants; waiters of other in-flight
                    // agreements sleep on.
                    for w in entry.waiters.drain(..) {
                        w.claim(0);
                    }
                }
            }
            if let Some((v, survivors, ctx)) = entry.outcome.clone() {
                entry.collected += 1;
                if entry.collected >= survivors.len() {
                    entries.remove(&key);
                }
                return Ok((v, survivors, ctx));
            }
            // Park until the freezer claims this waiter or the epoch
            // moves (a failure may have completed the freeze condition
            // this rank must now evaluate). Registration happens under
            // the entries lock freezers take, so no outcome can slip
            // between the check above and the park below.
            let waiter = fresh_waiter();
            entry.waiters.push(Arc::clone(&waiter));
            drop(entries);
            {
                let mut st = waiter.state.lock();
                loop {
                    if st.fired.is_some() {
                        break;
                    }
                    let now = table.epoch.load(Ordering::SeqCst);
                    if now != seen_epoch {
                        seen_epoch = now;
                        break;
                    }
                    waiter.cond.wait(&mut st);
                }
            }
            entries = table.entries.lock();
            if let Some(e) = entries.get_mut(&key) {
                e.waiters.retain(|w| !Arc::ptr_eq(w, &waiter));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Config, MpiError, RankOutcome, Universe};

    #[test]
    fn failure_is_detected_by_blocked_receiver() {
        let out = Universe::run_with(Config::new(2), |comm| {
            if comm.rank() == 1 {
                comm.fail_here();
            }
            // Rank 0 blocks on a receive from the failed rank.
            let err = comm.recv_vec::<u8>(1, 0).unwrap_err();
            assert!(matches!(err, MpiError::ProcessFailed { world_rank: 1 }));
            true
        });
        assert_eq!(out[0], RankOutcome::Completed(true));
        assert_eq!(out[1], RankOutcome::Failed);
    }

    #[test]
    fn failure_surfaces_in_collectives() {
        // A collective may fail on some ranks while others would keep
        // waiting on non-failed peers — the reason ULFM requires revoking
        // the communicator before recovery. Ranks that observe the error
        // revoke; the remaining ranks are then released with `Revoked`.
        let out = Universe::run_with(Config::new(4), |comm| {
            if comm.rank() == 2 {
                comm.fail_here();
            }
            let r = comm.allreduce_one(1u64, crate::op::Sum);
            if r.is_err() && !comm.is_revoked() {
                comm.revoke();
            }
            r.is_err()
        });
        for (rank, o) in out.iter().enumerate() {
            match o {
                RankOutcome::Failed => assert_eq!(rank, 2),
                RankOutcome::Completed(errored) => {
                    assert!(errored, "rank {rank} must see the failure")
                }
                RankOutcome::Panicked(m) => panic!("rank {rank} panicked: {m}"),
            }
        }
    }

    #[test]
    fn revoked_comm_rejects_operations() {
        Universe::run(2, |comm| {
            // Work on a duplicate so the world communicator stays usable.
            let dup = comm.dup().unwrap();
            if comm.rank() == 0 {
                dup.revoke();
            }
            // Spin until the revocation is visible on all ranks.
            while !dup.is_revoked() {
                std::thread::yield_now();
            }
            let err = dup.send(&[1u8], (comm.rank() + 1) % 2, 0).unwrap_err();
            assert_eq!(err, MpiError::Revoked);
        });
    }

    #[test]
    fn revocation_racing_a_send_never_hangs_the_receiver() {
        // Regression for the matching engine's interruption protocol:
        // the receiver blocks in `wait_match` with no timed-poll safety
        // net while the peer's send and the revocation race each other.
        // Every iteration must terminate — with the message if the push
        // matched first, with `Revoked` otherwise. Before the
        // targeted-wakeup engine this interleaving was only guarded by
        // the 50 ms poll.
        for i in 0..200u32 {
            Universe::run(2, move |comm| {
                let dup = comm.dup().unwrap();
                if comm.rank() == 1 {
                    if i % 2 == 0 {
                        std::thread::yield_now();
                    }
                    let sent = dup.send(&[i], 0, 3).is_ok();
                    dup.revoke();
                    sent
                } else {
                    match dup.recv_vec::<u32>(1, 3) {
                        Ok((v, _)) => v == vec![i],
                        Err(MpiError::Revoked) => true,
                        Err(e) => panic!("iteration {i}: unexpected error {e}"),
                    }
                }
            })
            .into_iter()
            .for_each(|ok| assert!(ok));
        }
    }

    #[test]
    fn shrink_after_failure_produces_working_comm() {
        let out = Universe::run_with(Config::new(4), |comm| {
            if comm.rank() == 1 {
                comm.fail_here();
            }
            // Survivors: detect the failure, then recover (Fig. 12 flow).
            let err = comm.allreduce_one(1u64, crate::op::Sum);
            assert!(err.is_err());
            if !comm.is_revoked() {
                comm.revoke();
            }
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 3);
            assert!(!shrunk.is_revoked());
            // The shrunken communicator is fully operational.
            shrunk
                .allreduce_one(shrunk.rank() as u64, crate::op::Sum)
                .unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        // New ranks are 0,1,2 -> sum 3 on every survivor.
        assert_eq!(survivors, vec![3, 3, 3]);
    }

    #[test]
    fn agree_and_over_survivors() {
        let out = Universe::run_with(Config::new(3), |comm| {
            if comm.rank() == 0 {
                comm.fail_here();
            }
            // Survivors 1 and 2 both pass true; the failed rank is excluded.
            comm.agree_and(true).unwrap()
        });
        assert_eq!(out[1], RankOutcome::Completed(true));
        assert_eq!(out[2], RankOutcome::Completed(true));
    }

    #[test]
    fn agree_and_is_logical_and() {
        let out = Universe::run_with(Config::new(3), |comm| {
            comm.agree_and(comm.rank() != 1).unwrap()
        });
        for o in out {
            assert_eq!(o, RankOutcome::Completed(false));
        }
    }

    #[test]
    fn double_shrink_tolerates_sequential_failures() {
        let out = Universe::run_with(Config::new(4), |comm| {
            if comm.rank() == 3 {
                comm.fail_here();
            }
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 3);
            if shrunk.rank() == 2 {
                shrunk.fail_here();
            }
            let again = shrunk.shrink().unwrap();
            assert_eq!(again.size(), 2);
            again.allreduce_one(1u64, crate::op::Sum).unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        assert_eq!(survivors, vec![2, 2]);
    }
}
