//! User-Level Failure Mitigation (ULFM): the substrate's
//! fault-tolerance design note.
//!
//! The upcoming MPI 5.0 standard lets applications recover from process
//! failures via ULFM (§V-B of the paper): failed processes surface as
//! `MPI_ERR_PROC_FAILED`, survivors *revoke* the communicator to make
//! every pending and future operation on it fail, then *shrink* it to a
//! new communicator of survivors and continue; `agree` provides a
//! failure-aware agreement (logical AND) among survivors. This module
//! implements those operations — [`Comm::revoke`] / [`Comm::is_revoked`],
//! [`Comm::shrink`], [`Comm::agree_and`], plus the voluntary crash
//! [`Comm::fail_here`] — and this note records the model and the
//! argument for why **no survivor can hang**, whatever the crash point.
//!
//! # Failure detector model
//!
//! Ranks are OS threads sharing one address space, so the substrate has
//! the *perfect* failure detector shared memory affords: a crash is an
//! unwinding rank thread, caught by the universe, which sets the rank's
//! `failed` flag (one atomic store, release) **before** any survivor can
//! be told to look. Detection is neither eventual nor inaccurate —
//! `is_failed` is the ground truth the moment it returns `true` — which
//! maps to ULFM's assumption of a local failure detector with
//! completeness, and strengthens accuracy to "perfect" (no wrongful
//! suspicion). What remains hard — and what this module is really about
//! — is *propagation*: a failure must reach every survivor **parked in a
//! blocking wait**, of which the substrate has many kinds (matching
//! waits, multi-source completion parks, standing-registration sessions,
//! agreement parks, persistent and partitioned cycle waits).
//!
//! # The wake-on-epoch protocol (proof sketch)
//!
//! Every parking structure follows one discipline, and the argument is
//! the same for each:
//!
//! 1. A waiter **captures the interruption epoch** `e` *before* its last
//!    predicate check (queue scan, freeze evaluation, failure-flag
//!    read).
//! 2. It parks only if the predicate came up empty, and re-checks the
//!    epoch under its own lock before every sleep: it sleeps only while
//!    `epoch == e`.
//! 3. An interruption (failure mark or revocation) first updates the
//!    condition (failed flag / revoked set), then **bumps the epoch, then
//!    wakes** every parked waiter — each wake taken under that waiter's
//!    lock ([`Mailbox::interrupt`](crate::mailbox::Mailbox),
//!    `AgreementTable::interrupt`).
//!
//! Case split on when the failure happens relative to the waiter's
//! epoch capture: (a) *before* — the waiter's predicate check already
//! sees the updated flags and returns an error without parking;
//! (b) *after* — the bump makes `epoch != e`, and since the wake is
//! taken under the waiter's lock it cannot interleave between the
//! waiter's last epoch test and its sleep, so the waiter wakes, observes
//! the mismatch, and re-runs its predicate against the new flags. Either
//! way the waiter terminates with the message, `ProcessFailed`, or
//! `Revoked` — there is no third branch and no timed poll anywhere.
//! Higher layers (request sets, park sessions, pools, persistent waits)
//! tear down to a full re-check whenever their captured epoch moves, so
//! the argument composes.
//!
//! # Agreement and shrink
//!
//! [`Comm::agree_and`] runs on a shared [`AgreementTable`]: each member
//! contributes under the table lock; whoever observes the freeze
//! condition (*every member contributed or failed*) computes the
//! outcome — fold over survivors, survivor list, fresh context id —
//! still under the lock, and claims exactly that entry's waiters. The
//! freeze evaluation is **idempotent and lock-atomic**: if the would-be
//! freezer crashes before freezing (injection point `ulfm/contribute`),
//! its failure mark bumps the epoch and any parked member re-evaluates
//! the same condition — now satisfied by the crasher's `failed` flag —
//! and freezes in its stead. [`Comm::shrink`] is `agree` plus a derived
//! communicator build, inheriting the parent's collective tuning; it
//! also releases what the dead can no longer drain (their mailbox
//! engines) and, when the parent is revoked, this rank's shard for the
//! dead context — the [`Comm::free`] reclamation without the barrier a
//! revoked communicator could not run.
//!
//! # The canonical recovery loop
//!
//! Applications wrap each fault-tolerant step as: attempt → **revoke on
//! local error** → `agree_and(ok)` → count the step, or revoke + shrink
//! together. The revoke-before-agree order is load-bearing. ULFM only
//! guarantees an error at *some* ranks: a peer can be parked inside the
//! failed collective waiting on a rank that is still **alive** but
//! errored out and moved on (the classic case: non-roots parked on a
//! broadcast whose root's gather failed). Agreement cannot free that
//! peer — `agree_and` freezes only when every member *contributed or
//! failed*, and the stuck peer will do neither. Revocation can: it
//! interrupts every pending operation on the communicator, so the stuck
//! peer wakes with `Revoked`, revokes idempotently, and joins the
//! agreement. Skipping the revoke turns "one rank errored" into a
//! distributed deadlock whenever the error is asymmetric.
//!
//! # Crash-testing this argument
//!
//! The `fault` feature (see [`crate::fault`]) compiles injection points
//! into the paths above — `mailbox/push`, `mailbox/match`,
//! `completion/register`, `completion/park`, `completion/claim`,
//! `coll/phase`, `persistent/start`, `partitioned/pready`,
//! `topology/build`, `ulfm/contribute` — so a deterministic
//! [`FaultPlan`](crate::FaultPlan) can land a crash inside any of them.
//! The chaos suite (`crates/mpi/tests/chaos.rs`) replays hundreds of
//! randomized fault schedules against randomized workloads under a hard
//! liveness deadline; the `fault_experiment` bench pins
//! failure-detection latency and shrink-and-continue recovery time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::comm::Comm;
use crate::completion::{fresh_waiter, Waiter};
use crate::error::Result;
use crate::universe::RankFailure;
use crate::Rank;

/// One in-flight agreement instance.
struct AgreeEntry {
    /// Contributions by world rank (a rank contributes exactly once).
    contributions: HashMap<Rank, u64>,
    /// Set once the agreement freezes: (AND of contributions, surviving
    /// participant world ranks in canonical order, fresh context id).
    outcome: Option<(u64, Vec<Rank>, u64)>,
    /// How many survivors have collected the outcome (for cleanup).
    collected: usize,
    /// Parked participants awaiting this entry's outcome. The freezing
    /// rank claims and wakes exactly these waiters — other agreements'
    /// waiters never hear about it (no table-wide herd), and there is
    /// no timed re-check: interruption reaches parked waiters through
    /// the table epoch ([`AgreementTable::interrupt`]).
    waiters: Vec<Arc<Waiter>>,
}

/// Shared table of in-flight agreements, keyed by
/// `(context id, per-communicator call sequence)`.
///
/// Waiting is event-driven via the completion protocol
/// ([`crate::completion`]): a participant that cannot freeze the
/// agreement yet registers a waiter on the entry and parks; the freezer
/// wakes exactly that entry's waiters, and interruption (process
/// failure — which can change the freeze condition) bumps the table
/// epoch before waking everyone, so no interleaving can strand a
/// waiter. The 50 ms timed re-check the seed used — the substrate's
/// last poll loop — is gone.
#[derive(Default)]
pub struct AgreementTable {
    entries: Mutex<HashMap<(u64, i32), AgreeEntry>>,
    /// Interruption epoch; captured by waiters before their freeze
    /// checks, bumped (then published by waking) by `interrupt`.
    epoch: AtomicU64,
}

impl AgreementTable {
    pub(crate) fn new() -> Self {
        AgreementTable::default()
    }

    /// Wakes all waiters so they can re-examine failure flags. The
    /// epoch is bumped *before* any waiter is woken: a waiter that
    /// captured the old epoch either sees the new failure flags in its
    /// checks or observes the epoch difference and re-checks.
    pub(crate) fn interrupt(&self) {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        crate::trace::instant(crate::trace::cat::ULFM, "ulfm_epoch_bump", epoch, 0);
        let entries = self.entries.lock();
        for entry in entries.values() {
            for w in &entry.waiters {
                let _g = w.state.lock();
                w.cond.notify_one();
            }
        }
    }
}

impl Comm {
    /// Simulates a crash of this rank: marks it failed (waking all blocked
    /// peers, which then observe `ProcessFailed`) and unwinds the rank
    /// thread. Never returns.
    pub fn fail_here(&self) -> ! {
        self.world.mark_failed(self.world_rank());
        std::panic::panic_any(RankFailure);
    }

    /// Revokes the communicator: every pending and future operation on it
    /// (on any rank) fails with
    /// [`MpiError::Revoked`](crate::MpiError::Revoked). Mirrors
    /// `MPI_Comm_revoke`; like it, revocation is not itself collective.
    pub fn revoke(&self) {
        self.count_op("comm_revoke");
        self.world.revoke(self.context);
    }

    /// True if this communicator has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.world.is_revoked(self.context)
    }

    /// True if the given communicator rank is known to have failed.
    pub fn is_failed(&self, rank: Rank) -> bool {
        self.translate_to_world(rank)
            .map(|w| self.world.is_failed(w))
            .unwrap_or(false)
    }

    /// Failure-aware agreement (mirrors `MPI_Comm_agree`): returns the
    /// logical AND of `flag` over all *surviving* ranks of the
    /// communicator. Unlike regular collectives, agreement succeeds in the
    /// presence of failed ranks (their contributions are excluded) and on
    /// revoked communicators.
    pub fn agree_and(&self, flag: bool) -> Result<bool> {
        self.count_op("comm_agree");
        let bits = self.agree_raw(u64::from(flag))?;
        Ok(bits != 0)
    }

    /// Shrinks the communicator to its surviving ranks (mirrors
    /// `MPI_Comm_shrink`). Works on revoked communicators; the surviving
    /// ranks obtain a fresh, non-revoked communicator with ranks assigned
    /// in the old rank order.
    pub fn shrink(&self) -> Result<Comm> {
        self.count_op("comm_shrink");
        let _sp = crate::trace::span(crate::trace::cat::COLL, "ulfm/shrink", 0, 0);
        let (_, survivors_world, fresh_context) = self.agree_full(1)?;
        let my_world = self.world_rank();
        // Reclaim what the dead can no longer drain: buffered sends to
        // a failed rank succeed by design, so its matching engine would
        // otherwise pin shards and payloads for the rest of the run.
        // Every survivor purges idempotently (racing purges are safe:
        // the owner thread is gone).
        for &w in self.group.iter() {
            if self.world.is_failed(w) {
                self.world.mailboxes[w].purge();
            }
        }
        // A revoked parent can never run the collective `Comm::free`,
        // so its per-rank shard would leak; shrink is the last
        // collective-ish call on it, and every survivor passes through
        // here — reclaim the shard now (the free path minus the
        // barrier).
        if self.is_revoked() {
            self.mailbox().remove_shard(self.context);
        }
        let new_rank = survivors_world
            .iter()
            .position(|&w| w == my_world)
            .expect("calling rank survives its own shrink");
        Ok(self.derived(Arc::new(survivors_world), new_rank, fresh_context))
    }

    fn agree_raw(&self, value: u64) -> Result<u64> {
        self.agree_full(value).map(|(v, _, _)| v)
    }

    /// Core agreement: each surviving member contributes once; the call
    /// returns when every member has contributed or failed. The freezing
    /// participant computes the result and allocates a fresh context id
    /// (used by `shrink`) under the table lock, so all survivors observe
    /// the identical outcome.
    fn agree_full(&self, value: u64) -> Result<(u64, Vec<Rank>, u64)> {
        let _sp = crate::trace::span(crate::trace::cat::COLL, "ulfm/agree", self.size() as u64, 0);
        // Keyed by the dedicated agreement sequence, NOT the internal
        // tag counter: tag counters diverge across survivors when a
        // collective dies mid-phase (each rank allocated only the tags
        // of the phases it reached), and a diverged key would park the
        // survivors on *different* entries — a deadlock no epoch bump
        // can break. Agreement calls themselves are collective, so this
        // counter cannot diverge.
        let key = (self.context, self.next_agree_seq());
        let my_world = self.world_rank();
        let members: Vec<Rank> = self.group.as_ref().clone();
        let table = &self.world.agreements;

        // The epoch must be captured before the first freeze check: a
        // failure raised after this load is caught by the epoch
        // comparison in the park loop (`interrupt` bumps before
        // waking), one raised before it by the `is_failed` reads below.
        let mut seen_epoch = table.epoch.load(Ordering::SeqCst);
        let mut entries = table.entries.lock();
        let entry = entries.entry(key).or_insert_with(|| AgreeEntry {
            contributions: HashMap::new(),
            outcome: None,
            collected: 0,
            waiters: Vec::new(),
        });
        entry.contributions.insert(my_world, value);
        // A crash here (planned via `ulfm/contribute`) kills a member
        // that has contributed but not frozen: the would-be freezer
        // dying mid-agreement. The table lock releases on unwind; the
        // failure mark bumps the epoch and a parked survivor re-runs
        // the (idempotent) freeze evaluation in its stead.
        crate::fault::point("ulfm/contribute");

        loop {
            let entry = entries.get_mut(&key).expect("entry exists while awaited");
            if entry.outcome.is_none() {
                let frozen = members
                    .iter()
                    .all(|&w| entry.contributions.contains_key(&w) || self.world.is_failed(w));
                if frozen {
                    let survivors: Vec<Rank> = members
                        .iter()
                        .copied()
                        .filter(|&w| {
                            entry.contributions.contains_key(&w) && !self.world.is_failed(w)
                        })
                        .collect();
                    let folded = entry
                        .contributions
                        .iter()
                        .filter(|(w, _)| survivors.contains(w))
                        .fold(u64::MAX, |acc, (_, &v)| acc & v);
                    let fresh = self.world.alloc_contexts(1);
                    entry.outcome = Some((folded, survivors, fresh));
                    // Targeted wakeups: exactly this entry's parked
                    // participants; waiters of other in-flight
                    // agreements sleep on.
                    for w in entry.waiters.drain(..) {
                        w.claim(0);
                    }
                }
            }
            if let Some((v, survivors, ctx)) = entry.outcome.clone() {
                entry.collected += 1;
                if entry.collected >= survivors.len() {
                    entries.remove(&key);
                }
                return Ok((v, survivors, ctx));
            }
            // Park until the freezer claims this waiter or the epoch
            // moves (a failure may have completed the freeze condition
            // this rank must now evaluate). Registration happens under
            // the entries lock freezers take, so no outcome can slip
            // between the check above and the park below.
            let waiter = fresh_waiter();
            entry.waiters.push(Arc::clone(&waiter));
            drop(entries);
            {
                let mut st = waiter.state.lock();
                loop {
                    if st.fired.is_some() {
                        break;
                    }
                    let now = table.epoch.load(Ordering::SeqCst);
                    if now != seen_epoch {
                        seen_epoch = now;
                        break;
                    }
                    waiter.cond.wait(&mut st);
                }
            }
            entries = table.entries.lock();
            if let Some(e) = entries.get_mut(&key) {
                e.waiters.retain(|w| !Arc::ptr_eq(w, &waiter));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Config, MpiError, RankOutcome, Universe};

    #[test]
    fn failure_is_detected_by_blocked_receiver() {
        let out = Universe::run_with(Config::new(2), |comm| {
            if comm.rank() == 1 {
                comm.fail_here();
            }
            // Rank 0 blocks on a receive from the failed rank.
            let err = comm.recv_vec::<u8>(1, 0).unwrap_err();
            assert!(matches!(err, MpiError::ProcessFailed { world_rank: 1 }));
            true
        });
        assert_eq!(out[0], RankOutcome::Completed(true));
        assert_eq!(out[1], RankOutcome::Failed);
    }

    #[test]
    fn failure_surfaces_in_collectives() {
        // A collective may fail on some ranks while others would keep
        // waiting on non-failed peers — the reason ULFM requires revoking
        // the communicator before recovery. Ranks that observe the error
        // revoke; the remaining ranks are then released with `Revoked`.
        let out = Universe::run_with(Config::new(4), |comm| {
            if comm.rank() == 2 {
                comm.fail_here();
            }
            let r = comm.allreduce_one(1u64, crate::op::Sum);
            if r.is_err() && !comm.is_revoked() {
                comm.revoke();
            }
            r.is_err()
        });
        for (rank, o) in out.iter().enumerate() {
            match o {
                RankOutcome::Failed => assert_eq!(rank, 2),
                RankOutcome::Completed(errored) => {
                    assert!(errored, "rank {rank} must see the failure")
                }
                RankOutcome::Panicked(m) => panic!("rank {rank} panicked: {m}"),
            }
        }
    }

    #[test]
    fn revoked_comm_rejects_operations() {
        Universe::run(2, |comm| {
            // Work on a duplicate so the world communicator stays usable.
            let dup = comm.dup().unwrap();
            if comm.rank() == 0 {
                dup.revoke();
            }
            // Spin until the revocation is visible on all ranks.
            while !dup.is_revoked() {
                std::thread::yield_now();
            }
            let err = dup.send(&[1u8], (comm.rank() + 1) % 2, 0).unwrap_err();
            assert_eq!(err, MpiError::Revoked);
        });
    }

    #[test]
    fn revocation_racing_a_send_never_hangs_the_receiver() {
        // Regression for the matching engine's interruption protocol:
        // the receiver blocks in `wait_match` with no timed-poll safety
        // net while the peer's send and the revocation race each other.
        // Every iteration must terminate — with the message if the push
        // matched first, with `Revoked` otherwise. Before the
        // targeted-wakeup engine this interleaving was only guarded by
        // the 50 ms poll.
        for i in 0..200u32 {
            Universe::run(2, move |comm| {
                let dup = comm.dup().unwrap();
                if comm.rank() == 1 {
                    if i % 2 == 0 {
                        std::thread::yield_now();
                    }
                    let sent = dup.send(&[i], 0, 3).is_ok();
                    dup.revoke();
                    sent
                } else {
                    match dup.recv_vec::<u32>(1, 3) {
                        Ok((v, _)) => v == vec![i],
                        Err(MpiError::Revoked) => true,
                        Err(e) => panic!("iteration {i}: unexpected error {e}"),
                    }
                }
            })
            .into_iter()
            .for_each(|ok| assert!(ok));
        }
    }

    #[test]
    fn shrink_after_failure_produces_working_comm() {
        let out = Universe::run_with(Config::new(4), |comm| {
            if comm.rank() == 1 {
                comm.fail_here();
            }
            // Survivors: detect the failure, then recover (Fig. 12 flow).
            let err = comm.allreduce_one(1u64, crate::op::Sum);
            assert!(err.is_err());
            if !comm.is_revoked() {
                comm.revoke();
            }
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 3);
            assert!(!shrunk.is_revoked());
            // The shrunken communicator is fully operational.
            shrunk
                .allreduce_one(shrunk.rank() as u64, crate::op::Sum)
                .unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        // New ranks are 0,1,2 -> sum 3 on every survivor.
        assert_eq!(survivors, vec![3, 3, 3]);
    }

    #[test]
    fn agree_and_over_survivors() {
        let out = Universe::run_with(Config::new(3), |comm| {
            if comm.rank() == 0 {
                comm.fail_here();
            }
            // Survivors 1 and 2 both pass true; the failed rank is excluded.
            comm.agree_and(true).unwrap()
        });
        assert_eq!(out[1], RankOutcome::Completed(true));
        assert_eq!(out[2], RankOutcome::Completed(true));
    }

    #[test]
    fn agree_and_is_logical_and() {
        let out = Universe::run_with(Config::new(3), |comm| {
            comm.agree_and(comm.rank() != 1).unwrap()
        });
        for o in out {
            assert_eq!(o, RankOutcome::Completed(false));
        }
    }

    #[test]
    fn double_shrink_tolerates_sequential_failures() {
        let out = Universe::run_with(Config::new(4), |comm| {
            if comm.rank() == 3 {
                comm.fail_here();
            }
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 3);
            if shrunk.rank() == 2 {
                shrunk.fail_here();
            }
            let again = shrunk.shrink().unwrap();
            assert_eq!(again.size(), 2);
            again.allreduce_one(1u64, crate::op::Sum).unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        assert_eq!(survivors, vec![2, 2]);
    }

    /// Watchdog for liveness assertions: a hang's only observable
    /// signature is "never returns", so the fault-matrix tests run
    /// under a deadline generous enough for a loaded CI machine. On
    /// timeout the worker thread is leaked — the test is failing
    /// anyway.
    fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        match rx.recv_timeout(std::time::Duration::from_secs(secs)) {
            Ok(v) => v,
            Err(_) => panic!("liveness deadline of {secs}s exceeded: a survivor is hung"),
        }
    }

    #[test]
    fn revoked_while_parked_request_sets_wake() {
        // A `RequestSet` parked on the matching engine must wake with
        // `Revoked` when the communicator is revoked under it — both
        // the standing-registration fast path (`wait_any` on an
        // all-receive set keeps a `ParkSession`) and the transient park
        // (`wait_some`). 500 schedules race the revocation against set
        // construction and the park itself; tag 6 never receives a
        // message, so the only exit is the revocation surfacing —
        // reaching it at all is the assertion.
        with_deadline(240, || {
            for i in 0..500u32 {
                Universe::run(2, move |comm| {
                    let dup = comm.dup().unwrap();
                    if comm.rank() == 1 {
                        if i % 4 == 0 {
                            // Let the receiver reach the parked state.
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                        if i % 3 == 0 {
                            let _ = dup.send(&[i], 0, 5);
                        }
                        dup.revoke();
                    } else {
                        let mut set = crate::RequestSet::new();
                        set.push(dup.irecv(1, 5));
                        set.push(dup.irecv(1, 6));
                        loop {
                            let r = if i % 2 == 0 {
                                set.wait_any()
                                    .map(|hit| hit.into_iter().collect::<Vec<_>>())
                            } else {
                                set.wait_some()
                            };
                            match r {
                                Ok(_) => continue,
                                Err(MpiError::Revoked) => break,
                                Err(e) => panic!("iteration {i}: unexpected error {e}"),
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn revoked_while_parked_pool_session_wakes() {
        // Same race for the caller-managed standing registrations
        // (`PoolSession`, the request-pool fast path): a session parked
        // in `next_signalled` must come back `Interrupted` when the
        // communicator is revoked, and the pooled receives must then
        // surface `Revoked`.
        use crate::completion::{PoolSession, PoolStep};
        use crate::request::TestOutcome;
        with_deadline(240, || {
            for i in 0..200u32 {
                Universe::run(2, move |comm| {
                    let dup = comm.dup().unwrap();
                    if comm.rank() == 1 {
                        if i % 2 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                        dup.revoke();
                    } else {
                        // The build protocol: capture the epoch, re-check
                        // by sweeping, only then park — a revocation
                        // landing before the capture is seen by the
                        // sweep, one landing after it bumps the epoch.
                        let reqs = vec![dup.irecv(1, 5), dup.irecv(1, 6)];
                        let epoch = crate::completion::park_epoch(&reqs[0]);
                        let mut kept = Vec::new();
                        let mut revoked = false;
                        for r in reqs {
                            match r.test() {
                                Ok(TestOutcome::Pending(r)) => kept.push(r),
                                Ok(TestOutcome::Ready(_)) => {
                                    panic!("iteration {i}: nothing was sent")
                                }
                                Err(e) => {
                                    assert_eq!(e, MpiError::Revoked, "iteration {i}");
                                    revoked = true;
                                }
                            }
                        }
                        if !revoked {
                            let entries: Vec<(usize, &crate::Request<'_>)> =
                                kept.iter().enumerate().collect();
                            let mut sess =
                                PoolSession::build(&entries, epoch).expect("all plain receives");
                            match sess.next_signalled() {
                                PoolStep::Interrupted => {}
                                PoolStep::Signalled(id) => {
                                    panic!("iteration {i}: spurious signal for {id}")
                                }
                            }
                        }
                        for r in kept {
                            assert_eq!(r.wait().unwrap_err(), MpiError::Revoked, "iteration {i}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn shrink_inherits_parent_coll_tuning() {
        // Recovery must not forget performance decisions: `CollTuning`
        // is per-communicator and collectively agreed, so the shrunken
        // communicator inherits the parent's settings rather than
        // resetting to defaults.
        let out = Universe::run_with(Config::new(3), |comm| {
            let dup = comm.dup().unwrap();
            let mut t = dup.tuning();
            t.rabenseifner_min_bytes = 4242;
            dup.set_tuning(t);
            if comm.rank() == 1 {
                comm.fail_here();
            }
            let r = dup.allreduce_one(1u64, crate::op::Sum);
            assert!(r.is_err());
            if !dup.is_revoked() {
                dup.revoke();
            }
            let shrunk = dup.shrink().unwrap();
            assert_eq!(shrunk.tuning().rabenseifner_min_bytes, 4242);
            shrunk.allreduce_one(1u64, crate::op::Sum).unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        assert_eq!(survivors, vec![2, 2]);
    }

    #[test]
    fn shrink_releases_dead_ranks_mailbox_shards() {
        // Buffered sends to a failed rank succeed by design, so a dead
        // rank's matching engine would pin its shards and queued
        // payloads for the rest of the run. The survivors' `shrink`
        // purges it: afterwards only the world shard remains and the
        // unexpected-queue gauge reads zero.
        let (out, stats) = Universe::run_stats(Config::new(3), |comm| {
            let dup = comm.dup().unwrap();
            if comm.rank() == 1 {
                // Carry traffic on the dup context so this rank's
                // engine holds a live derived shard, then die.
                let _ = dup.recv_vec::<u8>(0, 1).unwrap();
                comm.fail_here();
            }
            if comm.rank() == 0 {
                dup.send(&[1u8], 1, 1).unwrap();
            }
            let r = dup.allreduce_one(1u64, crate::op::Sum);
            assert!(r.is_err());
            // More traffic for the dead engine: either it queues
            // unmatched (the leak this test pins) or the failure is
            // already visible and the send errors — both are fine.
            let _ = dup.send(&[9u8], 1, 2);
            if !dup.is_revoked() {
                dup.revoke();
            }
            let shrunk = dup.shrink().unwrap();
            assert_eq!(shrunk.size(), 2);
            shrunk.allreduce_one(1u64, crate::op::Sum).unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        assert_eq!(survivors, vec![2, 2]);
        assert_eq!(
            stats[1].mailbox.shard_count, 1,
            "shrink must reclaim the dead rank's derived shards: {:?}",
            stats[1].mailbox
        );
        assert_eq!(
            stats[1].mailbox.queued, 0,
            "shrink must drain the dead rank's unexpected queues: {:?}",
            stats[1].mailbox
        );
    }

    #[test]
    fn persistent_wait_surfaces_peer_failure_mid_cycle() {
        // A persistent receive in its steady state (standing
        // registration, zero per-cycle setup) parks on an arrival that
        // will never come once the sender dies; the failure mark must
        // wake it with `ProcessFailed`, not leave it parked.
        with_deadline(60, || {
            let out = Universe::run_with(Config::new(2), |comm| {
                if comm.rank() == 0 {
                    let mut rx = comm.recv_init(1, 7).unwrap();
                    for _ in 0..3 {
                        rx.start().unwrap();
                        rx.wait().unwrap();
                    }
                    rx.start().unwrap();
                    let err = rx.wait().unwrap_err();
                    assert_eq!(err, MpiError::ProcessFailed { world_rank: 1 });
                    true
                } else {
                    let mut tx = comm.send_init(&[1u8], 0, 7).unwrap();
                    for _ in 0..3 {
                        tx.start().unwrap();
                        tx.wait().unwrap();
                    }
                    comm.fail_here();
                }
            });
            assert!(matches!(out[0], RankOutcome::Completed(true)));
            assert!(matches!(out[1], RankOutcome::Failed));
        });
    }

    #[test]
    fn persistent_cycle_surfaces_revocation() {
        // Revocation mid-steady-state: the parked persistent receive
        // wakes with `Revoked`, and re-arming the plan is refused.
        with_deadline(60, || {
            Universe::run(2, |comm| {
                let dup = comm.dup().unwrap();
                if comm.rank() == 0 {
                    let mut rx = dup.recv_init(1, 7).unwrap();
                    rx.start().unwrap();
                    rx.wait().unwrap();
                    // Ack on the (never revoked) parent so cycle 1 is
                    // deterministically complete before the revocation.
                    comm.send(&[1u8], 1, 0).unwrap();
                    rx.start().unwrap();
                    let err = rx.wait().unwrap_err();
                    assert_eq!(err, MpiError::Revoked);
                    assert_eq!(rx.start().unwrap_err(), MpiError::Revoked);
                } else {
                    let mut tx = dup.send_init(&[1u8], 0, 7).unwrap();
                    tx.start().unwrap();
                    tx.wait().unwrap();
                    let _ = comm.recv_vec::<u8>(0, 0).unwrap();
                    dup.revoke();
                }
            });
        });
    }

    #[test]
    fn partitioned_pready_after_peer_death_poisons_the_cycle() {
        // Partitioned sends are rendezvous-like: the receiver froze a
        // matching plan, so publishing into a dead peer can never
        // complete a cycle. `pready` must fail fast with
        // `ProcessFailed` and poison the cycle so the rank thread's
        // `wait` sees it too.
        with_deadline(60, || {
            let out = Universe::run_with(Config::new(2), |comm| {
                if comm.rank() == 0 {
                    let mut tx = comm.psend_init::<u64>(2, 1, 1, 9).unwrap();
                    let w = tx.writer();
                    tx.start().unwrap();
                    w.pready(0, &[1u64]).unwrap();
                    w.pready(1, &[2u64]).unwrap();
                    tx.wait().unwrap();
                    while !comm.is_failed(1) {
                        std::thread::yield_now();
                    }
                    tx.start().unwrap();
                    let err = w.pready(0, &[3u64]).unwrap_err();
                    assert_eq!(err, MpiError::ProcessFailed { world_rank: 1 });
                    let err = tx.wait().unwrap_err();
                    assert_eq!(err, MpiError::ProcessFailed { world_rank: 1 });
                    true
                } else {
                    let mut rx = comm.precv_init::<u64>(2, 1, 0, 9).unwrap();
                    rx.start().unwrap();
                    assert_eq!(rx.wait().unwrap(), vec![1, 2]);
                    comm.fail_here();
                }
            });
            assert!(matches!(out[0], RankOutcome::Completed(true)));
        });
    }

    #[test]
    fn partitioned_recv_wait_surfaces_sender_death_mid_cycle() {
        // The reassembly loop parks between partition arrivals; a
        // sender dying after publishing only part of the cycle must
        // wake it with `ProcessFailed`, never strand it waiting for the
        // missing partitions.
        with_deadline(60, || {
            let out = Universe::run_with(Config::new(2), |comm| {
                if comm.rank() == 1 {
                    let mut rx = comm.precv_init::<u64>(2, 1, 0, 9).unwrap();
                    rx.start().unwrap();
                    assert_eq!(rx.wait().unwrap(), vec![4, 5]);
                    rx.start().unwrap();
                    let err = rx.wait().unwrap_err();
                    assert_eq!(err, MpiError::ProcessFailed { world_rank: 0 });
                    true
                } else {
                    let mut tx = comm.psend_init::<u64>(2, 1, 1, 9).unwrap();
                    let w = tx.writer();
                    tx.start().unwrap();
                    w.pready(0, &[4u64]).unwrap();
                    w.pready(1, &[5u64]).unwrap();
                    tx.wait().unwrap();
                    tx.start().unwrap();
                    w.pready(0, &[6u64]).unwrap();
                    comm.fail_here();
                }
            });
            assert!(matches!(out[1], RankOutcome::Completed(true)));
        });
    }

    #[test]
    fn ineighbor_in_mixed_request_set_surfaces_peer_failure() {
        // A neighborhood collective parked inside a *mixed* RequestSet
        // (collective + plain receive ⇒ transient park, not a
        // ParkSession) must surface a dead in-neighbor through
        // `wait_any`; afterwards the survivors recover by shrinking the
        // topology's underlying communicator — the DistGraph half of
        // the shrink-from-topology-parents matrix.
        use crate::NeighborhoodColl;
        with_deadline(60, || {
            let out = Universe::run_with(Config::new(3), |comm| {
                let me = comm.rank();
                let prev = (me + 2) % 3;
                let next = (me + 1) % 3;
                let g = comm.create_dist_graph_adjacent(&[prev], &[next]).unwrap();
                if me == 2 {
                    comm.fail_here();
                }
                let req = g.ineighbor_allgatherv(&[me as u64]).unwrap();
                let mut set = crate::RequestSet::new();
                set.push(req);
                set.push(g.comm().irecv(prev, 77));
                let round_ok = match set.wait_any() {
                    // Only the neighborhood request can complete —
                    // nothing is ever sent on tag 77.
                    Ok(Some((0, _))) => true,
                    Ok(other) => panic!("rank {me}: unexpected completion {other:?}"),
                    Err(MpiError::ProcessFailed { world_rank: 2 }) => false,
                    Err(e) => panic!("rank {me}: unexpected error {e}"),
                };
                drop(set);
                // Rank 0 reads from the dead rank (errored); rank 1
                // reads from rank 0 whose eager sends landed before the
                // wait (completed). Either way, recover together.
                assert_eq!(round_ok, me == 1, "rank {me}");
                let base = g.comm();
                if !base.agree_and(round_ok).unwrap() {
                    if !base.is_revoked() {
                        base.revoke();
                    }
                    let shrunk = base.shrink().unwrap();
                    assert_eq!(shrunk.size(), 2);
                    return shrunk.allreduce_one(1u64, crate::op::Sum).unwrap();
                }
                unreachable!("rank 0's failure forces recovery on every survivor")
            });
            let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
            assert_eq!(survivors, vec![2, 2]);
        });
    }

    #[test]
    fn shrink_recovers_from_cart_topology_parent() {
        // The Cart half of the matrix: a periodic ring loses a member;
        // the survivors revoke and shrink the cartesian communicator's
        // underlying dup and continue on the result.
        use crate::NeighborhoodColl;
        with_deadline(60, || {
            let out = Universe::run_with(Config::new(4), |comm| {
                let cart = comm.create_cart(&[4], &[true], false).unwrap();
                if comm.rank() == 3 {
                    comm.fail_here();
                }
                let r = cart.neighbor_allgather_vecs(&[comm.rank() as u64]);
                let base = cart.comm();
                if !base.agree_and(r.is_ok()).unwrap() {
                    if !base.is_revoked() {
                        base.revoke();
                    }
                    let shrunk = base.shrink().unwrap();
                    assert_eq!(shrunk.size(), 3);
                    return shrunk.allreduce_one(1u64, crate::op::Sum).unwrap();
                }
                unreachable!("ranks 0 and 2 border the dead rank and must error")
            });
            let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
            assert_eq!(survivors, vec![3, 3, 3]);
        });
    }
}
