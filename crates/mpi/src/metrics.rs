//! Copy accounting: per-rank counters proving the zero-overhead claim.
//!
//! The paper's headline is *(near) zero overhead* — the binding layer
//! must not add copies the transport doesn't need. These counters make
//! that claim testable: every payload memcpy and payload allocation in
//! the substrate is routed through the crate-internal `record_copy` /
//! `record_alloc` (see the helpers in [`crate::plain`]), and tests assert copy *bounds*
//! — e.g. a non-root bcast rank copies O(N) bytes for an N-byte payload
//! regardless of how many children it forwards to, because forwarding
//! clones a refcount, not the payload.
//!
//! Counters are thread-local. The universe runs one OS thread per rank,
//! so a thread's counters are that rank's counters; snapshot/diff them
//! inside the rank closure exactly like [`crate::counter::CallCounts`].
//!
//! Accounting is feature-gated behind `copy-metrics` (enabled by
//! default). With the feature disabled the recording functions compile
//! to nothing and [`snapshot`] reports zeros.

/// Per-rank payload copy/allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyStats {
    /// Total payload bytes memcpy'd on this rank (serialization into the
    /// transport, delivery into receive buffers, fallback copies).
    pub bytes_copied: u64,
    /// Number of payload buffer allocations on this rank.
    pub allocations: u64,
}

impl CopyStats {
    /// Difference `self - earlier` (saturating), for isolating a region.
    pub fn since(&self, earlier: &CopyStats) -> CopyStats {
        CopyStats {
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            allocations: self.allocations.saturating_sub(earlier.allocations),
        }
    }
}

#[cfg(feature = "copy-metrics")]
mod imp {
    use std::cell::Cell;

    thread_local! {
        static BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub fn record_copy(bytes: usize) {
        BYTES_COPIED.with(|c| c.set(c.get() + bytes as u64));
    }

    #[inline]
    pub fn record_alloc() {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
    }

    pub fn snapshot() -> super::CopyStats {
        super::CopyStats {
            bytes_copied: BYTES_COPIED.with(|c| c.get()),
            allocations: ALLOCATIONS.with(|c| c.get()),
        }
    }

    pub fn reset() {
        BYTES_COPIED.with(|c| c.set(0));
        ALLOCATIONS.with(|c| c.set(0));
    }
}

#[cfg(not(feature = "copy-metrics"))]
mod imp {
    #[inline]
    pub fn record_copy(_bytes: usize) {}

    #[inline]
    pub fn record_alloc() {}

    pub fn snapshot() -> super::CopyStats {
        super::CopyStats::default()
    }

    pub fn reset() {}
}

pub(crate) use imp::{record_alloc, record_copy};

/// This rank's (thread's) counters.
pub fn snapshot() -> CopyStats {
    imp::snapshot()
}

/// Resets this rank's (thread's) counters to zero.
pub fn reset() {
    imp::reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_diff() {
        let a = CopyStats {
            bytes_copied: 10,
            allocations: 2,
        };
        let b = CopyStats {
            bytes_copied: 25,
            allocations: 3,
        };
        assert_eq!(
            b.since(&a),
            CopyStats {
                bytes_copied: 15,
                allocations: 1
            }
        );
        assert_eq!(a.since(&b), CopyStats::default());
    }

    #[cfg(feature = "copy-metrics")]
    #[test]
    fn records_are_thread_local() {
        // Run in a fresh thread so parallel tests on this thread cannot
        // perturb the counts.
        std::thread::spawn(|| {
            reset();
            let before = snapshot();
            record_copy(100);
            record_copy(28);
            record_alloc();
            let delta = snapshot().since(&before);
            assert_eq!(delta.bytes_copied, 128);
            assert_eq!(delta.allocations, 1);
        })
        .join()
        .unwrap();
    }
}
