//! Plain-old-data marker trait and byte-view helpers.
//!
//! The substrate transfers messages as raw bytes, exactly like an MPI
//! implementation on a homogeneous system. A type may be transferred this
//! way when it is *trivially copyable* in the sense of §III-D1 of the
//! paper: any byte pattern of the right length is a valid value, and the
//! type contains no padding (so no uninitialized bytes are read).
//!
//! [`Plain`] is the substrate-level equivalent of KaMPIng's implicit
//! "static type" construction for trivially copyable types: primitives,
//! fixed-size arrays of plain types, and user structs declared through the
//! [`plain_struct!`](crate::plain_struct) macro (which verifies the
//! no-padding requirement with a compile-time assertion).

/// Marker for types that can be sent as raw bytes.
///
/// # Safety
///
/// Implementors must guarantee that
/// - every bit pattern of `size_of::<Self>()` bytes is a valid value, and
/// - the type has no padding bytes (so reading it as bytes never touches
///   uninitialized memory).
pub unsafe trait Plain: Copy + Send + 'static {}

macro_rules! impl_plain_prims {
    ($($t:ty),* $(,)?) => {
        $(unsafe impl Plain for $t {})*
    };
}

impl_plain_prims!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

unsafe impl<T: Plain, const N: usize> Plain for [T; N] {}

/// Declares a user struct as a plain (trivially copyable) type.
///
/// Mirrors KaMPIng's `struct_type<T>` reflection-based type construction
/// (§III-D1): the macro verifies at compile time that the struct has no
/// padding (the sum of its field sizes equals its size) and then marks it
/// [`Plain`], so it is transferred as a contiguous block of bytes — the
/// paper's recommended default (§III-D4).
///
/// ```
/// use kmp_mpi::plain_struct;
///
/// #[derive(Clone, Copy, Debug, PartialEq)]
/// struct Particle {
///     id: u64,
///     x: f64,
///     y: f64,
/// }
/// plain_struct!(Particle { id: u64, x: f64, y: f64 });
/// ```
#[macro_export]
macro_rules! plain_struct {
    ($name:ident { $($field:ident : $ftype:ty),* $(,)? }) => {
        const _: () = {
            // No-padding check: a padded struct would expose uninitialized
            // bytes when viewed as a byte slice.
            assert!(
                ::core::mem::size_of::<$name>() == 0 $(+ ::core::mem::size_of::<$ftype>())*,
                concat!("plain_struct!(", stringify!($name), "): struct has padding; \
                         reorder fields or add explicit filler fields")
            );
        };
        unsafe impl $crate::plain::Plain for $name {}
    };
}

/// Views a slice of plain values as its underlying bytes.
#[inline]
pub fn as_bytes<T: Plain>(s: &[T]) -> &[u8] {
    // SAFETY: `T: Plain` guarantees no padding, so all bytes are initialized.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Copies a byte buffer into a freshly allocated vector of plain values.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
#[inline]
pub fn bytes_to_vec<T: Plain>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return Vec::new();
    }
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {size}",
        bytes.len()
    );
    let n = bytes.len() / size;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: the destination has capacity for `n` elements and `T: Plain`
    // accepts arbitrary byte patterns.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

/// Copies a byte buffer into the prefix of an existing slice of plain
/// values, returning the number of elements written.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of the element size or if
/// the destination is too small.
#[inline]
pub fn copy_bytes_into<T: Plain>(bytes: &[u8], dst: &mut [T]) -> usize {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return 0;
    }
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {size}",
        bytes.len()
    );
    let n = bytes.len() / size;
    assert!(
        n <= dst.len(),
        "receive buffer too small: need {n} elements, have {}",
        dst.len()
    );
    // SAFETY: bounds checked above; `T: Plain` accepts arbitrary bytes.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst.as_mut_ptr().cast::<u8>(), bytes.len());
    }
    n
}

/// The all-zero value of a plain type (valid because `Plain` types accept
/// every bit pattern).
#[inline]
pub fn zeroed<T: Plain>() -> T {
    // SAFETY: `T: Plain` guarantees all-zero bytes form a valid value.
    unsafe { std::mem::zeroed() }
}

/// Allocates a zero-initialized vector of plain values.
#[inline]
pub fn zeroed_vec<T: Plain>(n: usize) -> Vec<T> {
    let mut v = Vec::<T>::with_capacity(n);
    // SAFETY: capacity reserved above; the zero pattern is valid for
    // `T: Plain`, and `write_bytes` initializes every byte.
    unsafe {
        std::ptr::write_bytes(v.as_mut_ptr(), 0, n);
        v.set_len(n);
    }
    v
}

/// Number of `T` elements encoded by a byte count.
#[inline]
pub fn element_count<T: Plain>(bytes: usize) -> usize {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        0
    } else {
        debug_assert!(bytes.is_multiple_of(size));
        bytes / size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        let v = vec![1u64, 2, 3, u64::MAX];
        let b = as_bytes(&v);
        assert_eq!(b.len(), 32);
        let back: Vec<u64> = bytes_to_vec(b);
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_f64() {
        let v = vec![1.5f64, -0.0, f64::INFINITY, f64::MIN_POSITIVE];
        let back: Vec<f64> = bytes_to_vec(as_bytes(&v));
        assert_eq!(back.len(), v.len());
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn copy_into_prefix() {
        let v = vec![7u32, 8, 9];
        let mut dst = [0u32; 5];
        let n = copy_bytes_into(as_bytes(&v), &mut dst);
        assert_eq!(n, 3);
        assert_eq!(&dst[..3], &[7, 8, 9]);
        assert_eq!(&dst[3..], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let b = [0u8; 7];
        let _: Vec<u32> = bytes_to_vec(&b);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_dst_panics() {
        let v = vec![1u8, 2, 3, 4];
        let mut dst = [0u16; 1];
        copy_bytes_into(&v, &mut dst);
    }

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Edge {
        src: u64,
        dst: u64,
        weight: f64,
    }
    plain_struct!(Edge {
        src: u64,
        dst: u64,
        weight: f64
    });

    #[test]
    fn plain_struct_roundtrip() {
        let v = vec![
            Edge {
                src: 1,
                dst: 2,
                weight: 0.5,
            },
            Edge {
                src: 3,
                dst: 4,
                weight: -1.25,
            },
        ];
        let back: Vec<Edge> = bytes_to_vec(as_bytes(&v));
        assert_eq!(back, v);
    }

    #[test]
    fn arrays_are_plain() {
        let v = vec![[1u32, 2, 3], [4, 5, 6]];
        let back: Vec<[u32; 3]> = bytes_to_vec(as_bytes(&v));
        assert_eq!(back, v);
    }

    #[test]
    fn element_count_zero_sized_logic() {
        assert_eq!(element_count::<u64>(24), 3);
        assert_eq!(element_count::<u8>(7), 7);
    }

    #[test]
    fn zeroed_values_and_vectors() {
        assert_eq!(zeroed::<u64>(), 0);
        assert_eq!(zeroed::<f64>(), 0.0);
        let v = zeroed_vec::<u32>(5);
        assert_eq!(v, vec![0; 5]);
        let e = zeroed_vec::<Edge>(2);
        assert_eq!(
            e[0],
            Edge {
                src: 0,
                dst: 0,
                weight: 0.0
            }
        );
        assert_eq!(e.len(), 2);
        assert!(zeroed_vec::<u8>(0).is_empty());
    }
}
