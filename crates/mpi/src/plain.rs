//! Plain-old-data marker trait and byte-view helpers.
//!
//! The substrate transfers messages as raw bytes, exactly like an MPI
//! implementation on a homogeneous system. A type may be transferred this
//! way when it is *trivially copyable* in the sense of §III-D1 of the
//! paper: any byte pattern of the right length is a valid value, and the
//! type contains no padding (so no uninitialized bytes are read).
//!
//! [`Plain`] is the substrate-level equivalent of KaMPIng's implicit
//! "static type" construction for trivially copyable types: primitives,
//! fixed-size arrays of plain types, and user structs declared through the
//! [`plain_struct!`](crate::plain_struct) macro (which verifies the
//! no-padding requirement with a compile-time assertion).

use std::any::TypeId;
use std::sync::Arc;

use bytes::{ByteOwner, Bytes};

use crate::metrics;

/// Marker for types that can be sent as raw bytes.
///
/// # Safety
///
/// Implementors must guarantee that
/// - every bit pattern of `size_of::<Self>()` bytes is a valid value, and
/// - the type has no padding bytes (so reading it as bytes never touches
///   uninitialized memory).
pub unsafe trait Plain: Copy + Send + Sync + 'static {}

macro_rules! impl_plain_prims {
    ($($t:ty),* $(,)?) => {
        $(unsafe impl Plain for $t {})*
    };
}

impl_plain_prims!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

unsafe impl<T: Plain, const N: usize> Plain for [T; N] {}

/// Declares a user struct as a plain (trivially copyable) type.
///
/// Mirrors KaMPIng's `struct_type<T>` reflection-based type construction
/// (§III-D1): the macro verifies at compile time that the struct has no
/// padding (the sum of its field sizes equals its size) and then marks it
/// [`Plain`], so it is transferred as a contiguous block of bytes — the
/// paper's recommended default (§III-D4).
///
/// ```
/// use kmp_mpi::plain_struct;
///
/// #[derive(Clone, Copy, Debug, PartialEq)]
/// struct Particle {
///     id: u64,
///     x: f64,
///     y: f64,
/// }
/// plain_struct!(Particle { id: u64, x: f64, y: f64 });
/// ```
#[macro_export]
macro_rules! plain_struct {
    ($name:ident { $($field:ident : $ftype:ty),* $(,)? }) => {
        const _: () = {
            // No-padding check: a padded struct would expose uninitialized
            // bytes when viewed as a byte slice.
            assert!(
                ::core::mem::size_of::<$name>() == 0 $(+ ::core::mem::size_of::<$ftype>())*,
                concat!("plain_struct!(", stringify!($name), "): struct has padding; \
                         reorder fields or add explicit filler fields")
            );
        };
        unsafe impl $crate::plain::Plain for $name {}
    };
}

/// Views a slice of plain values as its underlying bytes.
#[inline]
pub fn as_bytes<T: Plain>(s: &[T]) -> &[u8] {
    // SAFETY: `T: Plain` guarantees no padding, so all bytes are initialized.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Views a slice of plain values as its underlying bytes, mutably —
/// for writing payload chunks whose boundaries need not align with the
/// element size (e.g. the scatter+allgather broadcast).
#[inline]
pub fn as_bytes_mut<T: Plain>(s: &mut [T]) -> &mut [u8] {
    let len = std::mem::size_of_val(s);
    // SAFETY: `T: Plain` has no padding and accepts every byte pattern,
    // so byte-level writes cannot create an invalid value.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), len) }
}

/// Copies a byte buffer into a freshly allocated vector of plain values.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
#[inline]
pub fn bytes_to_vec<T: Plain>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return Vec::new();
    }
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {size}",
        bytes.len()
    );
    let n = bytes.len() / size;
    metrics::record_alloc();
    metrics::record_copy(bytes.len());
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: the destination has capacity for `n` elements and `T: Plain`
    // accepts arbitrary byte patterns.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

/// Copies a byte buffer into the prefix of an existing slice of plain
/// values, returning the number of elements written.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of the element size or if
/// the destination is too small.
#[inline]
pub fn copy_bytes_into<T: Plain>(bytes: &[u8], dst: &mut [T]) -> usize {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return 0;
    }
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {size}",
        bytes.len()
    );
    let n = bytes.len() / size;
    assert!(
        n <= dst.len(),
        "receive buffer too small: need {n} elements, have {}",
        dst.len()
    );
    metrics::record_copy(bytes.len());
    // SAFETY: bounds checked above; `T: Plain` accepts arbitrary bytes.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst.as_mut_ptr().cast::<u8>(), bytes.len());
    }
    n
}

/// The all-zero value of a plain type (valid because `Plain` types accept
/// every bit pattern).
#[inline]
pub fn zeroed<T: Plain>() -> T {
    // SAFETY: `T: Plain` guarantees all-zero bytes form a valid value.
    unsafe { std::mem::zeroed() }
}

/// Allocates a zero-initialized vector of plain values.
#[inline]
pub fn zeroed_vec<T: Plain>(n: usize) -> Vec<T> {
    metrics::record_alloc();
    let mut v = Vec::<T>::with_capacity(n);
    // SAFETY: capacity reserved above; the zero pattern is valid for
    // `T: Plain`, and `write_bytes` initializes every byte.
    unsafe {
        std::ptr::write_bytes(v.as_mut_ptr(), 0, n);
        v.set_len(n);
    }
    v
}

/// Copies between typed slices, charging the copy counters. Use instead
/// of `copy_from_slice` for payload-sized copies in the datapath.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn copy_slice<T: Plain>(src: &[T], dst: &mut [T]) {
    metrics::record_copy(std::mem::size_of_val(src));
    dst.copy_from_slice(src);
}

/// Appends the typed content of a byte buffer to a vector with a single
/// copy (no intermediate vector, no zero-fill), returning the number of
/// elements appended.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
#[inline]
pub fn extend_vec_from_bytes<T: Plain>(dst: &mut Vec<T>, bytes: &[u8]) -> usize {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return 0;
    }
    assert!(
        bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {size}",
        bytes.len()
    );
    let n = bytes.len() / size;
    metrics::record_copy(bytes.len());
    dst.reserve(n);
    let old_len = dst.len();
    // SAFETY: capacity reserved above; `T: Plain` accepts arbitrary bytes.
    unsafe {
        std::ptr::copy_nonoverlapping(
            bytes.as_ptr(),
            dst.as_mut_ptr().add(old_len).cast::<u8>(),
            bytes.len(),
        );
        dst.set_len(old_len + n);
    }
    n
}

// ---------------------------------------------------------------------------
// Zero-copy Bytes conversions
// ---------------------------------------------------------------------------

/// Copies a typed slice into a fresh [`Bytes`] payload (the borrowed send
/// path: one counted copy).
#[inline]
pub fn bytes_from_slice<T: Plain>(s: &[T]) -> Bytes {
    metrics::record_alloc();
    metrics::record_copy(std::mem::size_of_val(s));
    Bytes::copy_from_slice(as_bytes(s))
}

/// A `Vec<T>` adopted as [`ByteOwner`] backing storage for a [`Bytes`].
struct PlainVec<T: Plain>(Vec<T>);

impl<T: Plain> ByteOwner for PlainVec<T> {
    fn as_bytes(&self) -> &[u8] {
        as_bytes(&self.0)
    }
}

/// Moves an owned vector into a [`Bytes`] payload **without copying**:
/// the allocation is adopted, not re-serialized. `Vec<u8>` payloads stay
/// recoverable on the receive side via [`bytes_into_vec`].
pub fn bytes_from_vec<T: Plain>(v: Vec<T>) -> Bytes {
    if TypeId::of::<T>() == TypeId::of::<u8>() {
        // SAFETY: T is u8 (checked above), so this is a no-op transmute
        // of the vector's type parameter.
        let v = unsafe {
            let mut v = std::mem::ManuallyDrop::new(v);
            Vec::from_raw_parts(v.as_mut_ptr().cast::<u8>(), v.len(), v.capacity())
        };
        Bytes::from(v)
    } else {
        Bytes::from_owner(Arc::new(PlainVec(v)))
    }
}

/// Converts a received payload into a typed vector with at most one copy —
/// and **zero** copies for `Vec<u8>`-shaped targets when the payload is
/// the unique view of its allocation (the common case for a delivered
/// point-to-point message).
///
/// # Panics
///
/// Panics if the byte length is not a multiple of the element size.
pub fn bytes_into_vec<T: Plain>(b: Bytes) -> Vec<T> {
    if TypeId::of::<T>() == TypeId::of::<u8>() {
        let v: Vec<u8> = match b.try_into_vec() {
            Ok(v) => v,
            Err(b) => bytes_to_vec::<u8>(&b),
        };
        // SAFETY: T is u8 (checked above).
        return unsafe {
            let mut v = std::mem::ManuallyDrop::new(v);
            Vec::from_raw_parts(v.as_mut_ptr().cast::<T>(), v.len(), v.capacity())
        };
    }
    bytes_to_vec(&b)
}

/// An owned send container moved into the transport (§III-E): the
/// transport holds [`Bytes`] views aliasing the same allocation, and the
/// caller reclaims the container through [`SharedPayload::take`] once the
/// operation completes.
pub struct SharedPayload<T: Plain>(SharedRepr<T>);

enum SharedRepr<T: Plain> {
    /// The vector is aliased by in-flight `Bytes` views.
    Shared(Arc<PlainVec<T>>),
    /// The vector never entered the transport (e.g. it was repacked
    /// first); hand it back directly.
    Ready(Vec<T>),
}

impl<T: Plain> SharedPayload<T> {
    /// Moves `v` into the transport: returns the reclaim handle and the
    /// zero-copy [`Bytes`] payload aliasing it.
    pub fn new(v: Vec<T>) -> (Self, Bytes) {
        let arc = Arc::new(PlainVec(v));
        let payload = Bytes::from_owner(Arc::clone(&arc) as Arc<dyn ByteOwner>);
        (SharedPayload(SharedRepr::Shared(arc)), payload)
    }

    /// Wraps a vector that is handed back as-is (no transport aliasing).
    pub fn ready(v: Vec<T>) -> Self {
        SharedPayload(SharedRepr::Ready(v))
    }

    /// Reclaims the container. Zero-copy when the transport has dropped
    /// every alias (the usual case after completion); falls back to one
    /// counted copy if a peer still holds a view of the payload.
    pub fn take(self) -> Vec<T> {
        match self.0 {
            SharedRepr::Ready(v) => v,
            SharedRepr::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(pv) => pv.0,
                Err(arc) => {
                    metrics::record_alloc();
                    metrics::record_copy(std::mem::size_of_val(arc.0.as_slice()));
                    arc.0.clone()
                }
            },
        }
    }
}

/// Number of `T` elements encoded by a byte count.
#[inline]
pub fn element_count<T: Plain>(bytes: usize) -> usize {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        0
    } else {
        debug_assert!(bytes.is_multiple_of(size));
        bytes / size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        let v = vec![1u64, 2, 3, u64::MAX];
        let b = as_bytes(&v);
        assert_eq!(b.len(), 32);
        let back: Vec<u64> = bytes_to_vec(b);
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_f64() {
        let v = vec![1.5f64, -0.0, f64::INFINITY, f64::MIN_POSITIVE];
        let back: Vec<f64> = bytes_to_vec(as_bytes(&v));
        assert_eq!(back.len(), v.len());
        for (a, b) in v.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn copy_into_prefix() {
        let v = vec![7u32, 8, 9];
        let mut dst = [0u32; 5];
        let n = copy_bytes_into(as_bytes(&v), &mut dst);
        assert_eq!(n, 3);
        assert_eq!(&dst[..3], &[7, 8, 9]);
        assert_eq!(&dst[3..], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let b = [0u8; 7];
        let _: Vec<u32> = bytes_to_vec(&b);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_dst_panics() {
        let v = vec![1u8, 2, 3, 4];
        let mut dst = [0u16; 1];
        copy_bytes_into(&v, &mut dst);
    }

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Edge {
        src: u64,
        dst: u64,
        weight: f64,
    }
    plain_struct!(Edge {
        src: u64,
        dst: u64,
        weight: f64
    });

    #[test]
    fn plain_struct_roundtrip() {
        let v = vec![
            Edge {
                src: 1,
                dst: 2,
                weight: 0.5,
            },
            Edge {
                src: 3,
                dst: 4,
                weight: -1.25,
            },
        ];
        let back: Vec<Edge> = bytes_to_vec(as_bytes(&v));
        assert_eq!(back, v);
    }

    #[test]
    fn arrays_are_plain() {
        let v = vec![[1u32, 2, 3], [4, 5, 6]];
        let back: Vec<[u32; 3]> = bytes_to_vec(as_bytes(&v));
        assert_eq!(back, v);
    }

    #[test]
    fn element_count_zero_sized_logic() {
        assert_eq!(element_count::<u64>(24), 3);
        assert_eq!(element_count::<u8>(7), 7);
    }

    #[test]
    fn bytes_from_vec_adopts_u8_without_copy() {
        let v = vec![3u8; 64];
        let ptr = v.as_ptr();
        let b = bytes_from_vec(v);
        assert_eq!(b.as_ptr(), ptr, "u8 vectors are adopted in place");
        let back: Vec<u8> = bytes_into_vec(b);
        assert_eq!(
            back.as_ptr(),
            ptr,
            "unique byte payloads come back in place"
        );
        assert_eq!(back, vec![3u8; 64]);
    }

    #[test]
    fn bytes_from_vec_adopts_typed_without_copy() {
        let v = vec![7u64, 8, 9];
        let ptr = v.as_ptr();
        let b = bytes_from_vec(v);
        assert_eq!(b.as_ptr().cast::<u64>(), ptr, "typed vectors are adopted");
        assert_eq!(b.len(), 24);
        let back: Vec<u64> = bytes_into_vec(b);
        assert_eq!(back, vec![7, 8, 9]);
    }

    #[test]
    fn bytes_into_vec_copies_shared_payloads() {
        let b = bytes_from_vec(vec![1u8, 2, 3]);
        let keep = b.clone();
        let back: Vec<u8> = bytes_into_vec(b);
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(&*keep, &[1, 2, 3], "the shared view stays valid");
    }

    #[test]
    fn shared_payload_take_is_zero_copy_when_unique() {
        let v = vec![5u32; 8];
        let ptr = v.as_ptr();
        let (hold, payload) = SharedPayload::new(v);
        assert_eq!(payload.len(), 32);
        drop(payload); // transport done with it
        let back = hold.take();
        assert_eq!(back.as_ptr(), ptr, "unique payloads are reclaimed in place");
        assert_eq!(back, vec![5u32; 8]);
    }

    #[test]
    fn shared_payload_take_falls_back_to_copy() {
        let (hold, payload) = SharedPayload::new(vec![9u16; 4]);
        let back = hold.take(); // payload still alive: copy
        assert_eq!(back, vec![9u16; 4]);
        assert_eq!(&*payload, as_bytes(&[9u16; 4]));
    }

    #[test]
    fn shared_payload_ready_hands_back_directly() {
        let v = vec![1u8, 2];
        let ptr = v.as_ptr();
        let back = SharedPayload::ready(v).take();
        assert_eq!(back.as_ptr(), ptr);
    }

    #[test]
    fn extend_from_bytes_appends_typed() {
        let mut v = vec![1u32];
        let n = extend_vec_from_bytes(&mut v, as_bytes(&[2u32, 3]));
        assert_eq!(n, 2);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn extend_from_bytes_rejects_misaligned() {
        let mut v: Vec<u32> = Vec::new();
        extend_vec_from_bytes(&mut v, &[0u8; 7]);
    }

    #[test]
    fn counted_slice_copy() {
        let src = [1u64, 2];
        let mut dst = [0u64; 2];
        copy_slice(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn zeroed_values_and_vectors() {
        assert_eq!(zeroed::<u64>(), 0);
        assert_eq!(zeroed::<f64>(), 0.0);
        let v = zeroed_vec::<u32>(5);
        assert_eq!(v, vec![0; 5]);
        let e = zeroed_vec::<Edge>(2);
        assert_eq!(
            e[0],
            Edge {
                src: 0,
                dst: 0,
                weight: 0.0
            }
        );
        assert_eq!(e.len(), 2);
        assert!(zeroed_vec::<u8>(0).is_empty());
    }
}
