//! Non-blocking operations: requests, test/wait, request sets, ibarrier
//! — and the design note for the **completion protocol** that makes
//! every blocking wait on them event-driven.
//!
//! Substrate requests are byte-level; the binding layer wraps them in the
//! buffer-owning `NonBlockingResult` that provides the paper's §III-E
//! memory-safety guarantees. Requests borrow the communicator, so a
//! request can never outlive the universe it communicates in.
//!
//! # How a request completes
//!
//! The *non-blocking* paths are unchanged from PR 4: `test` and the
//! collective engines' drain loops hit the matching engine's
//! `(source, tag)` index ([`crate::mailbox`]) — each poll is an O(1)
//! lookup rather than a linear scan of everything queued at the rank.
//!
//! The *blocking* paths never poll. Every one of them — `wait` on a
//! receive, on a synchronous-mode send, on a collective engine;
//! [`RequestSet::wait_any`] / [`RequestSet::wait_some`] over a mixed
//! set — runs the parking protocol of [`crate::completion`]:
//!
//! ```text
//!   capture epoch -> sweep (one non-blocking test of everything)
//!                 -> register one waiter on every blocked source
//!                    (posted receives across shards, sync-send acks)
//!                 -> park          [thread sleeps; costs nothing]
//!                 -> first completion claims the waiter with its
//!                    source index; re-test ONLY that index
//!                 -> cancel the other registrations
//! ```
//!
//! Registration / wake / cancel state diagram (the full version with
//! the lock-ordering argument is in [`crate::completion`]):
//!
//! ```text
//!            register N sources            claim(k): source k fired
//!   [sweep] ───────────────────> [parked] ─────────────────────────┐
//!      ^                            │                              v
//!      │                            │ epoch bump (interrupt)   [test k]
//!      │        cancel N            v                              │
//!      └────────────────────── [re-check] <──────── pending ───────┘
//!                                                   ready -> return
//! ```
//!
//! Each request kind reports the sources it is blocked on through
//! `Request::park_spec`: a posted receive its `(context, source,
//! tag)` selectors, a barrier its current round's receive, a collective
//! engine the receives its state machine is stalled on (the hook every
//! engine in `crate::collectives::nonblocking` implements), a
//! synchronous-mode send its acknowledgement slot. Sends buffered at
//! creation report "ready" and never park.
//!
//! **Why spurious wakeups are bounded:** a parked waiter is woken by a
//! claim (a source really completed — re-testing that index finds the
//! progress, so the wakeup is productive) or by an interruption-epoch
//! bump (process failure / revocation). There is no timed safety net
//! and no broadcast: a push wakes at most one waiter, so the only
//! non-productive wakeups are the per-interrupt re-checks, bounded by
//! the number of interruption events in the run. The
//! `spurious_wakeups` counter in [`crate::MailboxStats`] measures
//! exactly this.
//!
//! The seed's sweep-and-yield strategy survives as
//! [`crate::completion::reference`] — the differential-testing baseline
//! and the `completion_experiment` benchmark's yardstick.
//!
//! # Request lifecycles
//!
//! A one-shot [`Request`] is born started and dies at its first
//! observed completion. Persistent requests
//! ([`crate::persistent::PersistentRequest`]) add the *inactive* and
//! *restartable* states around that core — the same plan cycles
//! through started → complete → restartable without re-doing any
//! setup:
//!
//! ```text
//!   one-shot:    [started] ──wait/test──> [complete]      (consumed)
//!
//!   persistent:  *_init
//!              ─────────> [inactive] ──start──> [started]
//!                             ^                     │ wait/test
//!                             │    restartable      v
//!                             └───────────────  [complete]
//! ```
//!
//! Both lifetimes are visible in traces as async `"b"`/`"e"` span
//! pairs (categories `async_op` and `persist`, see [`crate::trace`]).

use std::sync::Arc;

use bytes::Bytes;

use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::message::{AckSlot, Src, Status, TagSel};
use crate::plain::bytes_from_slice;
use crate::{Plain, Rank, Tag};

/// What a completed request yields: receives carry a payload,
/// per-rank-block collectives carry one payload per rank.
#[derive(Clone, Debug)]
pub enum Completion {
    /// A send (or barrier, or the no-result side of a rooted collective)
    /// completed; nothing to return.
    Done,
    /// A receive (or single-result collective) completed with this
    /// payload.
    Message(Bytes, Status),
    /// A per-rank-block collective (`igatherv`, `iallgatherv`,
    /// `ialltoallv`) completed: one payload per rank, in rank order.
    Blocks(Vec<Bytes>),
}

impl Completion {
    /// The payload of a completed receive, decoded as `Vec<T>`.
    pub fn into_vec<T: Plain>(self) -> Option<(Vec<T>, Status)> {
        match self {
            Completion::Done | Completion::Blocks(_) => None,
            Completion::Message(b, st) => Some((crate::plain::bytes_to_vec(&b), st)),
        }
    }

    /// The raw payload of a completed receive.
    pub fn into_bytes(self) -> Option<(Bytes, Status)> {
        match self {
            Completion::Done | Completion::Blocks(_) => None,
            Completion::Message(b, st) => Some((b, st)),
        }
    }

    /// The per-rank payloads of a completed collective. Single-payload
    /// completions yield one block, so callers can treat every data-
    /// carrying completion uniformly.
    pub fn into_blocks(self) -> Option<Vec<Bytes>> {
        match self {
            Completion::Done => None,
            Completion::Message(b, _) => Some(vec![b]),
            Completion::Blocks(blocks) => Some(blocks),
        }
    }
}

/// Outcome of a non-blocking [`Request::test`].
pub enum TestOutcome<'a> {
    /// The operation completed.
    Ready(Completion),
    /// Not yet complete; the request is handed back.
    Pending(Request<'a>),
}

enum ReqState {
    /// Eagerly-buffered send: complete on creation.
    SendDone,
    /// Synchronous-mode send: completes when the receiver matches.
    SyncSend { ack: Arc<AckSlot>, dest: Rank },
    /// Posted receive: matches lazily in test/wait.
    Recv { src: Src, tag: TagSel },
    /// Non-blocking dissemination barrier state machine.
    Barrier { tag: Tag, step: usize, sent: bool },
    /// Non-blocking collective engine
    /// (see [`crate::collectives::nonblocking`]).
    Coll(Box<dyn crate::collectives::nonblocking::CollEngine>),
}

/// A handle to an in-flight non-blocking operation
/// (mirrors `MPI_Request`).
pub struct Request<'a> {
    comm: &'a Comm,
    state: ReqState,
    /// Async-trace correlation id: the constructor's `"b"` event and
    /// the completing wait/test's `"e"` event share it, so the
    /// operation's whole initiate→complete lifetime renders as one
    /// span on Perfetto's async tracks (0 when tracing is off).
    id: u64,
}

impl<'a> Request<'a> {
    /// Allocates the request and opens its async trace span.
    fn new(comm: &'a Comm, state: ReqState) -> Self {
        let req = Request {
            comm,
            state,
            id: crate::trace::next_async_id(),
        };
        crate::trace::async_begin(crate::trace::cat::ASYNC, req.op_name(), req.id);
        req
    }

    /// Wraps a non-blocking collective engine (crate-internal; users
    /// obtain these from the `Comm::i*` collectives).
    pub(crate) fn collective(
        comm: &'a Comm,
        engine: Box<dyn crate::collectives::nonblocking::CollEngine>,
    ) -> Self {
        Request::new(comm, ReqState::Coll(engine))
    }

    /// The static name shared by this request's async begin/end events.
    fn op_name(&self) -> &'static str {
        match &self.state {
            ReqState::SendDone => "isend",
            ReqState::SyncSend { .. } => "issend",
            ReqState::Recv { .. } => "irecv",
            ReqState::Barrier { .. } => "ibarrier",
            ReqState::Coll(_) => "icoll",
        }
    }

    /// Blocks until the operation completes (mirrors `MPI_Wait`).
    pub fn wait(self) -> Result<Completion> {
        let _sp = crate::trace::span(crate::trace::cat::WAIT, "wait", 0, 0);
        let comm = self.comm;
        let (id, name) = (self.id, self.op_name());
        let result = match self.state {
            ReqState::SendDone => Ok(Completion::Done),
            ReqState::SyncSend { ack, dest } => {
                // Event-driven: parks on the acknowledgement slot; the
                // receiver's match (or an interrupt epoch bump) wakes it.
                crate::completion::wait_sync_send(comm, &ack, dest)
            }
            ReqState::Recv { src, tag } => {
                let env = comm.recv_envelope(src, tag)?;
                let st = Status {
                    source: env.src,
                    tag: env.tag,
                    bytes: env.payload.len(),
                };
                Ok(Completion::Message(env.payload, st))
            }
            ReqState::Barrier {
                tag,
                mut step,
                mut sent,
            } => {
                let p = comm.size();
                let rank = comm.rank();
                let mut dist = 1usize << step;
                while dist < p {
                    if !sent {
                        crate::collectives::send_internal(
                            comm,
                            (rank + dist) % p,
                            tag,
                            Bytes::new(),
                        )?;
                    }
                    comm.recv_envelope(Src::Rank((rank + p - dist) % p), TagSel::Is(tag))?;
                    step += 1;
                    sent = false;
                    dist = 1usize << step;
                }
                Ok(Completion::Done)
            }
            ReqState::Coll(mut engine) => {
                let c = engine.advance(comm, true)?;
                Ok(c.expect("blocking advance completes the collective"))
            }
        };
        if result.is_ok() {
            crate::trace::async_end(crate::trace::cat::ASYNC, name, id);
        }
        result
    }

    /// Non-blocking completion check (mirrors `MPI_Test`). Returns
    /// [`TestOutcome::Pending`] with the request handed back if the
    /// operation has not completed yet.
    pub fn test(self) -> Result<TestOutcome<'a>> {
        let comm = self.comm;
        let (id, name) = (self.id, self.op_name());
        let outcome = match self.state {
            ReqState::SendDone => Ok(TestOutcome::Ready(Completion::Done)),
            ReqState::SyncSend { ack, dest } => {
                if ack.is_complete() {
                    return Ok(TestOutcome::Ready(Completion::Done));
                }
                let dest_world = comm.translate_to_world(dest)?;
                if comm.world.is_revoked(comm.context) {
                    return Err(MpiError::Revoked);
                }
                if comm.world.is_failed(dest_world) {
                    return Err(MpiError::ProcessFailed {
                        world_rank: dest_world,
                    });
                }
                Ok(TestOutcome::Pending(Request {
                    comm,
                    state: ReqState::SyncSend { ack, dest },
                    id,
                }))
            }
            ReqState::Recv { src, tag } => match comm.try_recv_envelope(src, tag) {
                Some(env) => {
                    let st = Status {
                        source: env.src,
                        tag: env.tag,
                        bytes: env.payload.len(),
                    };
                    Ok(TestOutcome::Ready(Completion::Message(env.payload, st)))
                }
                None => {
                    if let Some(err) = comm.wait_interrupted(src) {
                        return Err(err);
                    }
                    Ok(TestOutcome::Pending(Request {
                        comm,
                        state: ReqState::Recv { src, tag },
                        id,
                    }))
                }
            },
            ReqState::Barrier {
                tag,
                mut step,
                mut sent,
            } => {
                let p = comm.size();
                let rank = comm.rank();
                let mut dist = 1usize << step;
                while dist < p {
                    if !sent {
                        crate::collectives::send_internal(
                            comm,
                            (rank + dist) % p,
                            tag,
                            Bytes::new(),
                        )?;
                        sent = true;
                    }
                    let from = Src::Rank((rank + p - dist) % p);
                    match comm.try_recv_envelope(from, TagSel::Is(tag)) {
                        Some(_) => {
                            step += 1;
                            sent = false;
                            dist = 1usize << step;
                        }
                        None => {
                            if let Some(err) = comm.wait_interrupted(from) {
                                return Err(err);
                            }
                            return Ok(TestOutcome::Pending(Request {
                                comm,
                                state: ReqState::Barrier { tag, step, sent },
                                id,
                            }));
                        }
                    }
                }
                Ok(TestOutcome::Ready(Completion::Done))
            }
            ReqState::Coll(mut engine) => match engine.advance(comm, false)? {
                Some(c) => Ok(TestOutcome::Ready(c)),
                None => Ok(TestOutcome::Pending(Request {
                    comm,
                    state: ReqState::Coll(engine),
                    id,
                })),
            },
        };
        if let Ok(TestOutcome::Ready(_)) = &outcome {
            crate::trace::async_end(crate::trace::cat::ASYNC, name, id);
        }
        outcome
    }

    /// The communicator this request operates on.
    pub(crate) fn comm(&self) -> &'a Comm {
        self.comm
    }

    /// The `(context, source, tag)` selectors of a plain posted
    /// receive — the requests whose park sources never change, making
    /// them eligible for standing registrations
    /// ([`ParkSession`](crate::completion::ParkSession)).
    pub(crate) fn recv_selectors(&self) -> Option<(u64, Src, TagSel)> {
        match &self.state {
            ReqState::Recv { src, tag } => Some((self.comm.context, *src, *tag)),
            _ => None,
        }
    }

    /// Appends the sources whose completion could let this request make
    /// progress (the completion subsystem registers a parked waiter on
    /// each). Returns `true` if the request needs no parking — it is
    /// intrinsically complete and the caller's next sweep collects it.
    ///
    /// The reported sources are *sufficient for liveness*, not a
    /// completion certificate: a request is allowed to still be pending
    /// when a source fires (the caller re-tests), but whenever a
    /// request is pending, at least one reported source must eventually
    /// fire or an interrupt epoch bump must occur.
    pub(crate) fn park_spec<'r>(
        &'r self,
        out: &mut Vec<crate::completion::ParkSource<'r>>,
    ) -> bool {
        use crate::completion::ParkSource;
        match &self.state {
            ReqState::SendDone => true,
            ReqState::SyncSend { ack, .. } => {
                out.push(ParkSource::Ack(ack));
                false
            }
            ReqState::Recv { src, tag } => {
                out.push(ParkSource::Mailbox {
                    context: self.comm.context,
                    src: *src,
                    tag: *tag,
                });
                false
            }
            ReqState::Barrier { tag, step, .. } => {
                let p = self.comm.size();
                let dist = 1usize << step;
                if dist >= p {
                    return true;
                }
                // The round's send happens inside test(); by the time a
                // set parks, the preceding sweep has posted it, so the
                // round blocks only on this receive.
                out.push(ParkSource::Mailbox {
                    context: self.comm.context,
                    src: Src::Rank((self.comm.rank() + p - dist) % p),
                    tag: TagSel::Is(*tag),
                });
                false
            }
            ReqState::Coll(engine) => {
                let before = out.len();
                let mut pairs: Vec<(Rank, Tag)> = Vec::new();
                engine.sources(self.comm, &mut pairs);
                out.extend(pairs.into_iter().map(|(r, t)| ParkSource::Mailbox {
                    context: self.comm.context,
                    src: Src::Rank(r),
                    tag: TagSel::Is(t),
                }));
                out.len() == before
            }
        }
    }
}

impl Comm {
    /// Starts a non-blocking send (mirrors `MPI_Isend`). The eager
    /// transport buffers the payload, so the request is complete on
    /// creation — but, as in MPI, completion must still be observed via
    /// wait/test.
    pub fn isend<T: Plain>(&self, data: &[T], dest: Rank, tag: Tag) -> Result<Request<'_>> {
        self.isend_bytes(bytes_from_slice(data), dest, tag)
    }

    /// Byte-level [`Comm::isend`]: the payload enters the transport
    /// as-is (zero-copy for adopted owned buffers).
    pub fn isend_bytes(&self, payload: Bytes, dest: Rank, tag: Tag) -> Result<Request<'_>> {
        self.count_op("isend");
        self.check_tag(tag)?;
        self.deliver_bytes(dest, tag, payload, None)?;
        Ok(Request::new(self, ReqState::SendDone))
    }

    /// Starts a non-blocking *synchronous-mode* send (mirrors
    /// `MPI_Issend`): the request completes only once the receiver has
    /// matched the message. This is the primitive the NBX sparse
    /// all-to-all (§V-A) is built on.
    pub fn issend<T: Plain>(&self, data: &[T], dest: Rank, tag: Tag) -> Result<Request<'_>> {
        self.issend_bytes(bytes_from_slice(data), dest, tag)
    }

    /// Byte-level [`Comm::issend`] (zero-copy for adopted owned buffers).
    pub fn issend_bytes(&self, payload: Bytes, dest: Rank, tag: Tag) -> Result<Request<'_>> {
        self.count_op("issend");
        self.check_tag(tag)?;
        let ack = AckSlot::new();
        self.deliver_bytes(dest, tag, payload, Some(ack.clone()))?;
        Ok(Request::new(self, ReqState::SyncSend { ack, dest }))
    }

    /// Posts a non-blocking receive (mirrors `MPI_Irecv`). The payload is
    /// delivered by `wait`/`test`.
    pub fn irecv(&self, src: impl Into<Src>, tag: impl Into<TagSel>) -> Request<'_> {
        self.count_op("irecv");
        Request::new(
            self,
            ReqState::Recv {
                src: src.into(),
                tag: tag.into(),
            },
        )
    }

    /// Starts a non-blocking barrier (mirrors `MPI_Ibarrier`);
    /// dissemination algorithm driven by test/wait.
    pub fn ibarrier(&self) -> Result<Request<'_>> {
        self.count_op("ibarrier");
        let tag = self.next_internal_tag();
        Ok(Request::new(
            self,
            ReqState::Barrier {
                tag,
                step: 0,
                sent: false,
            },
        ))
    }
}

/// A set of requests completed together
/// (mirrors `MPI_Waitall` over an array of requests; the substrate
/// counterpart of KaMPIng's request pools).
#[derive(Default)]
pub struct RequestSet<'a> {
    pub(crate) requests: Vec<Request<'a>>,
    /// Standing registrations kept across `wait_any` calls (sets of
    /// plain receives only — see
    /// [`ParkSession`](crate::completion::ParkSession)). Torn down by
    /// any other mutation of the set.
    pub(crate) session: Option<crate::completion::ParkSession>,
}

impl<'a> RequestSet<'a> {
    pub fn new() -> Self {
        RequestSet {
            requests: Vec::new(),
            session: None,
        }
    }

    /// Adds a request to the set.
    pub fn push(&mut self, req: Request<'a>) {
        crate::completion::teardown_session(&self.requests, &mut self.session);
        self.requests.push(req);
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the set holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Waits for all requests, returning completions in insertion order.
    pub fn wait_all(mut self) -> Result<Vec<Completion>> {
        let _sp = crate::trace::span(
            crate::trace::cat::WAIT,
            "wait_all",
            self.requests.len() as u64,
            0,
        );
        crate::completion::teardown_session(&self.requests, &mut self.session);
        std::mem::take(&mut self.requests)
            .into_iter()
            .map(|r| r.wait())
            .collect()
    }

    /// Tests all requests once; completed ones are returned (with their
    /// insertion index), pending ones are kept. If a request errors
    /// (peer failure, revocation), that request is consumed but every
    /// other one stays in the set, so fault-tolerant callers can keep
    /// waiting on the survivors.
    pub fn test_some(&mut self) -> Result<Vec<(usize, Completion)>> {
        crate::completion::teardown_session(&self.requests, &mut self.session);
        let mut done = Vec::new();
        let mut pending = Vec::new();
        let mut erred = None;
        for (i, req) in std::mem::take(&mut self.requests).into_iter().enumerate() {
            if erred.is_some() {
                pending.push(req);
                continue;
            }
            match req.test() {
                Ok(TestOutcome::Ready(c)) => done.push((i, c)),
                Ok(TestOutcome::Pending(r)) => pending.push(r),
                Err(e) => erred = Some(e),
            }
        }
        self.requests = pending;
        match erred {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }

    /// One non-blocking sweep of the `wait_any` loop: tests requests in
    /// order until one completes, keeping the rest. If a request errors
    /// (peer failure, revocation), that request is consumed but every
    /// other one stays in the set, so fault-tolerant callers can keep
    /// waiting on the survivors.
    pub(crate) fn sweep_any(&mut self) -> Result<Option<(usize, Completion)>> {
        let mut ready: Option<(usize, Completion)> = None;
        let mut erred = None;
        let mut kept = Vec::with_capacity(self.requests.len());
        for (i, req) in std::mem::take(&mut self.requests).into_iter().enumerate() {
            if ready.is_some() || erred.is_some() {
                kept.push(req);
                continue;
            }
            match req.test() {
                Ok(TestOutcome::Ready(c)) => ready = Some((i, c)),
                Ok(TestOutcome::Pending(r)) => kept.push(r),
                // The erroring request is consumed; the others stay
                // in the set so survivors remain completable.
                Err(e) => erred = Some(e),
            }
        }
        self.requests = kept;
        match erred {
            Some(e) => Err(e),
            None => Ok(ready),
        }
    }

    /// Tests only the request at `index` (the fast path after a
    /// targeted wakeup named that index): `Ok(Some(..))` if it
    /// completed, `Ok(None)` if it is still pending (handed back in
    /// place). An erroring request is consumed, the others kept.
    pub(crate) fn test_at(&mut self, index: usize) -> Result<Option<(usize, Completion)>> {
        if index >= self.requests.len() {
            return Ok(None);
        }
        let req = self.requests.remove(index);
        match req.test() {
            Ok(TestOutcome::Ready(c)) => Ok(Some((index, c))),
            Ok(TestOutcome::Pending(r)) => {
                self.requests.insert(index, r);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// The first request in the set, if any.
    pub(crate) fn first(&self) -> Option<&Request<'a>> {
        self.requests.first()
    }

    /// Iterates the pending requests in insertion order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Request<'a>> {
        self.requests.iter()
    }

    /// Blocks until *one* request completes (mirrors `MPI_Waitany`),
    /// removing it from the set. Returns the completed request's index
    /// *at call time* together with its completion, or `None` if the set
    /// is empty. Remaining requests shift down by one, as after
    /// `Vec::remove`.
    ///
    /// Fully event-driven: after one test sweep the thread parks with a
    /// waiter registered on every pending source, and the first
    /// completion wakes it with the index to re-test (see
    /// [`crate::completion`]). The seed's sweep-and-yield loop survives
    /// as [`crate::completion::reference::wait_any`].
    pub fn wait_any(&mut self) -> Result<Option<(usize, Completion)>> {
        let _sp = crate::trace::span(
            crate::trace::cat::WAIT,
            "wait_any",
            self.requests.len() as u64,
            0,
        );
        crate::completion::wait_any(self)
    }

    /// Blocks until *at least one* request completes (mirrors
    /// `MPI_Waitsome`), removing every completed request from the set.
    /// Returns `(index at call time, completion)` pairs in index order;
    /// an empty set yields an empty vector. Event-driven, like
    /// [`RequestSet::wait_any`].
    pub fn wait_some(&mut self) -> Result<Vec<(usize, Completion)>> {
        let _sp = crate::trace::span(
            crate::trace::cat::WAIT,
            "wait_some",
            self.requests.len() as u64,
            0,
        );
        crate::completion::wait_some(self)
    }
}

impl Drop for RequestSet<'_> {
    /// Dropping a set with standing registrations
    /// (`crate::completion::ParkSession`) must remove them from the
    /// mailbox's posted queue — abandoned sets (e.g. the
    /// wait-for-fastest pattern that drops the losers) would otherwise
    /// accumulate dead entries for the communicator's lifetime.
    fn drop(&mut self) {
        crate::completion::teardown_session(&self.requests, &mut self.session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn isend_irecv_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(&[5u32, 6], 1, 0).unwrap();
                req.wait().unwrap();
            } else {
                let req = comm.irecv(0, 0);
                let (v, st) = req.wait().unwrap().into_vec::<u32>().unwrap();
                assert_eq!(v, vec![5, 6]);
                assert_eq!(st.source, 0);
            }
        });
    }

    #[test]
    fn irecv_test_pending_then_ready() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                let mut req = comm.irecv(0, 3);
                loop {
                    match req.test().unwrap() {
                        TestOutcome::Ready(c) => {
                            let (v, _) = c.into_vec::<u8>().unwrap();
                            assert_eq!(v, vec![77]);
                            break;
                        }
                        TestOutcome::Pending(r) => {
                            req = r;
                            std::thread::yield_now();
                        }
                    }
                }
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                comm.send(&[77u8], 1, 3).unwrap();
            }
        });
    }

    #[test]
    fn issend_completes_only_on_match() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let req = comm.issend(&[1u8], 1, 0).unwrap();
                // Until rank 1 posts its receive, the request stays pending.
                let req = match req.test().unwrap() {
                    TestOutcome::Pending(r) => r,
                    TestOutcome::Ready(_) => {
                        // Possible only if rank 1 already received; tolerated.
                        return;
                    }
                };
                req.wait().unwrap();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(10));
                let (v, _) = comm.recv_vec::<u8>(0, 0).unwrap();
                assert_eq!(v, vec![1]);
            }
        });
    }

    #[test]
    fn ibarrier_overlaps_compute() {
        Universe::run(4, |comm| {
            let req = comm.ibarrier().unwrap();
            // Overlap: do local work while the barrier progresses.
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            req.wait().unwrap();
        });
    }

    #[test]
    fn ibarrier_via_polling() {
        Universe::run(3, |comm| {
            let mut req = comm.ibarrier().unwrap();
            loop {
                match req.test().unwrap() {
                    TestOutcome::Ready(_) => break,
                    TestOutcome::Pending(r) => {
                        req = r;
                        std::thread::yield_now();
                    }
                }
            }
        });
    }

    #[test]
    fn request_set_wait_all() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut set = RequestSet::new();
                set.push(comm.irecv(1, 0));
                set.push(comm.irecv(2, 0));
                assert_eq!(set.len(), 2);
                let done = set.wait_all().unwrap();
                let mut got: Vec<u8> = done
                    .into_iter()
                    .map(|c| c.into_vec::<u8>().unwrap().0[0])
                    .collect();
                got.sort_unstable();
                assert_eq!(got, vec![1, 2]);
            } else {
                comm.send(&[comm.rank() as u8], 0, 0).unwrap();
            }
        });
    }

    #[test]
    fn request_set_test_some_drains() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut set = RequestSet::new();
                set.push(comm.irecv(1, 0));
                set.push(comm.irecv(1, 1));
                let mut seen = 0;
                while !set.is_empty() {
                    seen += set.test_some().unwrap().len();
                    std::thread::yield_now();
                }
                assert_eq!(seen, 2);
            } else {
                comm.send(&[1u8], 0, 0).unwrap();
                comm.send(&[2u8], 0, 1).unwrap();
            }
        });
    }

    #[test]
    fn wait_any_returns_first_completed() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut set = RequestSet::new();
                set.push(comm.irecv(1, 0)); // arrives late
                set.push(comm.irecv(2, 0)); // arrives immediately
                let (idx, c) = set.wait_any().unwrap().expect("non-empty set");
                let (v, st) = c.into_vec::<u8>().unwrap();
                assert_eq!(v, vec![st.source as u8]);
                assert_eq!(set.len(), 1);
                // Drain the other one too.
                let (idx2, c2) = set.wait_any().unwrap().expect("one left");
                assert_eq!(idx2, 0, "indices are relative to the shrunken set");
                c2.into_vec::<u8>().unwrap();
                assert!(idx <= 1);
                assert!(set.wait_any().unwrap().is_none(), "empty set yields None");
            } else if comm.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                comm.send(&[1u8], 0, 0).unwrap();
            } else {
                comm.send(&[2u8], 0, 0).unwrap();
            }
        });
    }

    #[test]
    fn wait_any_error_keeps_surviving_requests() {
        // A failed peer must error its own request out of the set while
        // the survivor's request stays completable (ULFM recovery).
        let outcomes = crate::Universe::run_with(crate::Config::new(3), |comm| {
            if comm.rank() == 0 {
                let mut set = RequestSet::new();
                set.push(comm.irecv(1, 0)); // peer that dies
                set.push(comm.irecv(2, 0)); // survivor (sends late)
                let mut survivor_data = None;
                let mut saw_error = false;
                while !set.is_empty() {
                    match set.wait_any() {
                        Ok(Some((_, c))) => survivor_data = c.into_vec::<u8>(),
                        Ok(None) => break,
                        Err(crate::MpiError::ProcessFailed { world_rank }) => {
                            assert_eq!(world_rank, 1);
                            saw_error = true;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                assert!(saw_error, "the dead peer's request must error");
                let (v, _) = survivor_data.expect("survivor's message delivered");
                assert_eq!(v, vec![2]);
            } else if comm.rank() == 1 {
                comm.fail_here();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(20));
                comm.send(&[2u8], 0, 0).unwrap();
            }
        });
        assert!(matches!(outcomes[1], crate::RankOutcome::Failed));
    }

    #[test]
    fn wait_some_drains_everything_eventually() {
        Universe::run(4, |comm| {
            if comm.rank() == 0 {
                let mut set = RequestSet::new();
                for peer in 1..4 {
                    set.push(comm.irecv(peer, 7));
                }
                let mut seen = 0;
                while !set.is_empty() {
                    let done = set.wait_some().unwrap();
                    assert!(!done.is_empty(), "wait_some blocks until progress");
                    seen += done.len();
                }
                assert_eq!(seen, 3);
                assert!(
                    set.wait_some().unwrap().is_empty(),
                    "empty set yields empty vec"
                );
            } else {
                std::thread::sleep(std::time::Duration::from_millis(comm.rank() as u64 * 3));
                comm.send(&[comm.rank() as u8], 0, 7).unwrap();
            }
        });
    }

    #[test]
    fn completion_done_has_no_payload() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let c = comm.isend(&[1u8], 1, 0).unwrap().wait().unwrap();
                assert!(c.into_bytes().is_none());
            } else {
                comm.recv_vec::<u8>(0, 0).unwrap();
            }
        });
    }
}
