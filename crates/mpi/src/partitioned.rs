//! Partitioned point-to-point communication (MPI-4 `MPI_Psend_init` /
//! `MPI_Precv_init` / `MPI_Pready`): one persistent send whose payload
//! is produced **piecewise by multiple threads**.
//!
//! A partitioned send splits one logical message into `partitions`
//! equal-sized parts. After [`PartitionedSend::start`] arms a cycle,
//! any producer thread holding a [`PartitionWriter`] may call
//! [`PartitionWriter::pready`] to publish its partition the moment the
//! data is computed — the partition travels immediately (this substrate
//! is eager), overlapping communication with the computation of the
//! remaining partitions. The rank thread's
//! [`PartitionedSend::wait`] completes once every partition of the
//! cycle has been published.
//!
//! Like the [`persistent`](crate::persistent) operations this builds
//! on, all shape-dependent work happens once at `*_init`: envelope
//! validation, the frozen `(dest, tag)` stream, and — on the receiver —
//! a standing completion registration that serves every cycle's
//! wakeups without re-registration.
//!
//! # Wire format and cycle alignment
//!
//! Each partition is one envelope on the frozen `(source, tag)` stream:
//! a 4-byte little-endian partition index followed by exactly
//! `part_bytes` of data. The receiver consumes exactly `partitions`
//! envelopes per cycle. Because `start` cycles never overlap (enforced
//! by [`MpiError::RequestActive`]) and per-`(source, tag)` delivery is
//! FIFO, the k-th group of `partitions` envelopes is always cycle k —
//! partition *indices* may arrive in any order (producers race), cycle
//! *boundaries* cannot.

use std::marker::PhantomData;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::completion::Waiter;
use crate::error::{MpiError, Result};
use crate::message::{Envelope, Src, TagSel};
use crate::plain::as_bytes;
use crate::trace;
use crate::universe::WorldState;
use crate::{Plain, Rank, Tag};

/// Producer-side cycle state, shared between the owning
/// [`PartitionedSend`] and every [`PartitionWriter`] clone.
struct SendShared {
    state: Mutex<SendState>,
    /// Signals the rank thread's `wait` when the last partition of a
    /// cycle is published (or the cycle is poisoned).
    cond: Condvar,
}

struct SendState {
    /// True between `start` and the completion `wait` observes; `pready`
    /// outside an armed cycle is erroneous.
    armed: bool,
    /// Which partitions have been published this cycle.
    ready: Vec<bool>,
    /// Count of `true`s in `ready` (saves a scan per `pready`).
    done: usize,
    /// First error a producer hit; surfaced by `wait`.
    poisoned: Option<MpiError>,
}

/// A persistent partitioned send (mirrors the request returned by
/// `MPI_Psend_init`). The rank thread drives the
/// `start` → producers `pready` → `wait` cycle; producer threads only
/// ever touch [`PartitionWriter`]s.
pub struct PartitionedSend<'a, T> {
    comm: &'a Comm,
    dest: Rank,
    tag: Tag,
    partitions: usize,
    part_bytes: usize,
    shared: Arc<SendShared>,
    cycles: u64,
    _ty: PhantomData<fn(&[T])>,
}

impl<'a, T: Plain> PartitionedSend<'a, T> {
    /// A sendable, cloneable handle for producer threads. Any number of
    /// clones may publish partitions concurrently.
    pub fn writer(&self) -> PartitionWriter<T> {
        PartitionWriter {
            world: Arc::clone(&self.comm.world),
            shared: Arc::clone(&self.shared),
            dest_world: self
                .comm
                .translate_to_world(self.dest)
                .expect("validated at init"),
            src: self.comm.rank(),
            src_world: self.comm.world_rank(),
            context: self.comm.context,
            tag: self.tag,
            partitions: self.partitions,
            part_bytes: self.part_bytes,
            _ty: PhantomData,
        }
    }

    /// Number of partitions per cycle (frozen at init).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Completed cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Arms one cycle (mirrors `MPI_Start` on a partitioned request):
    /// after this, producer threads may `pready` each partition exactly
    /// once. Errors if the previous cycle is still active or the
    /// communicator is revoked.
    pub fn start(&mut self) -> Result<()> {
        self.comm.count_op("start");
        let mut st = self.shared.state.lock();
        if st.armed {
            return Err(MpiError::RequestActive);
        }
        if self.comm.world.is_revoked(self.comm.context) {
            return Err(MpiError::Revoked);
        }
        trace::async_begin(trace::cat::PERSIST, "partitioned_cycle", self.trace_id());
        st.ready.iter_mut().for_each(|r| *r = false);
        st.done = 0;
        st.poisoned = None;
        st.armed = true;
        Ok(())
    }

    /// Blocks until every partition of the armed cycle has been
    /// published (all `pready` calls landed); inactive requests return
    /// immediately. A producer error (revocation, double-`pready`, bad
    /// length) poisons the cycle and resurfaces here.
    pub fn wait(&mut self) -> Result<()> {
        let mut st = self.shared.state.lock();
        if !st.armed {
            return Ok(());
        }
        while st.done < self.partitions && st.poisoned.is_none() {
            self.shared.cond.wait(&mut st);
        }
        st.armed = false;
        drop(st);
        trace::async_end(trace::cat::PERSIST, "partitioned_cycle", self.trace_id());
        self.cycles += 1;
        let st = self.shared.state.lock();
        match &st.poisoned {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn trace_id(&self) -> u64 {
        Arc::as_ptr(&self.shared) as u64 ^ self.cycles.rotate_left(48)
    }
}

/// A `Send + Sync + Clone` producer handle for one [`PartitionedSend`]
/// (mirrors the request argument of `MPI_Pready`): lets worker threads
/// publish partitions without touching the rank-thread-only [`Comm`].
pub struct PartitionWriter<T> {
    world: Arc<WorldState>,
    shared: Arc<SendShared>,
    dest_world: Rank,
    /// Sender's communicator rank / world rank (envelope provenance).
    src: Rank,
    src_world: Rank,
    context: u64,
    tag: Tag,
    partitions: usize,
    part_bytes: usize,
    _ty: PhantomData<fn(&[T])>,
}

impl<T> Clone for PartitionWriter<T> {
    fn clone(&self) -> Self {
        PartitionWriter {
            world: Arc::clone(&self.world),
            shared: Arc::clone(&self.shared),
            _ty: PhantomData,
            ..*self
        }
    }
}

impl<T: Plain> PartitionWriter<T> {
    /// Publishes partition `partition` of the current cycle (mirrors
    /// `MPI_Pready`): the partition's bytes leave immediately on the
    /// frozen `(dest, tag)` stream. Callable from any thread;
    /// partitions may be published in any order, each exactly once per
    /// cycle. `data` must hold exactly the partition length fixed at
    /// init. Errors poison the cycle so the rank thread's `wait` sees
    /// them too.
    pub fn pready(&self, partition: usize, data: &[T]) -> Result<()> {
        self.world.counters[self.src_world].lock().inc("pready");
        crate::fault::point("partitioned/pready");
        let err = self.check(partition, data);
        let mut st = self.shared.state.lock();
        if let Err(e) = err {
            st.poisoned.get_or_insert(e.clone());
            self.shared.cond.notify_all();
            return Err(e);
        }
        if !st.armed {
            return Err(MpiError::InvalidLayout(
                "pready: no armed cycle (call start first)".into(),
            ));
        }
        if st.ready[partition] {
            let e = MpiError::InvalidLayout(format!(
                "pready: partition {partition} already published this cycle"
            ));
            st.poisoned.get_or_insert(e.clone());
            self.shared.cond.notify_all();
            return Err(e);
        }
        // Push while holding the cycle lock: the armed/double-publish
        // check and the envelope hitting the FIFO are one atomic step,
        // so a racing duplicate can never slip an extra envelope into
        // the stream and shear the receiver's cycle alignment.
        let mut payload = Vec::with_capacity(4 + self.part_bytes);
        payload.extend_from_slice(&(partition as u32).to_le_bytes());
        payload.extend_from_slice(as_bytes(data));
        let env = Envelope {
            src: self.src,
            src_world: self.src_world,
            context: self.context,
            tag: self.tag,
            payload: Bytes::from(payload),
            // Producer threads have no virtual clock; partitions arrive
            // at clock zero (they are overlapped with compute by
            // construction).
            arrival_ns: 0,
            ack: None,
        };
        crate::fault::deliver(&self.world, self.dest_world, env, |e| {
            self.world.mailboxes[self.dest_world].push(e)
        });
        st.ready[partition] = true;
        st.done += 1;
        if st.done == self.partitions {
            self.shared.cond.notify_all();
        }
        Ok(())
    }

    /// Rank-independent validation (no lock held).
    fn check(&self, partition: usize, data: &[T]) -> Result<()> {
        if self.world.is_revoked(self.context) {
            return Err(MpiError::Revoked);
        }
        // Partitioned sends are rendezvous-like: the receiver froze a
        // matching plan, so a dead peer means the cycle can never
        // complete. Fail (and poison) now instead of letting producers
        // publish into a mailbox nobody will drain.
        if self.world.is_failed(self.dest_world) {
            return Err(MpiError::ProcessFailed {
                world_rank: self.dest_world,
            });
        }
        if partition >= self.partitions {
            return Err(MpiError::InvalidLayout(format!(
                "pready: partition {partition} out of range (plan has {})",
                self.partitions
            )));
        }
        if std::mem::size_of_val(data) != self.part_bytes {
            return Err(MpiError::InvalidLayout(format!(
                "pready: partition holds {} bytes but the plan fixed {} bytes",
                std::mem::size_of_val(data),
                self.part_bytes
            )));
        }
        Ok(())
    }
}

/// A persistent partitioned receive (mirrors `MPI_Precv_init`): one
/// standing completion registration installed at init serves every
/// cycle; each cycle reassembles `partitions` indexed envelopes into
/// one contiguous vector.
pub struct PartitionedRecv<'a, T> {
    comm: &'a Comm,
    src: Rank,
    tag: Tag,
    partitions: usize,
    part_bytes: usize,
    waiter: Arc<Waiter>,
    /// Reassembly buffer, `partitions * part_bytes` long, reused every
    /// cycle.
    buf: Vec<u8>,
    /// Which partitions have landed this cycle (duplicate detection).
    received: Vec<bool>,
    got: usize,
    active: bool,
    cycles: u64,
    _ty: PhantomData<fn() -> T>,
}

impl<'a, T: Plain> PartitionedRecv<'a, T> {
    /// Arms one receive cycle.
    pub fn start(&mut self) -> Result<()> {
        self.comm.count_op("start");
        if self.active {
            return Err(MpiError::RequestActive);
        }
        if self.comm.world.is_revoked(self.comm.context) {
            return Err(MpiError::Revoked);
        }
        trace::async_begin(trace::cat::PERSIST, "partitioned_cycle", self.trace_id());
        self.received.iter_mut().for_each(|r| *r = false);
        self.got = 0;
        self.active = true;
        Ok(())
    }

    /// Blocks until all `partitions` partitions of the cycle have
    /// arrived, returning the reassembled message in partition order.
    /// Steady state: arrivals claim the standing registration installed
    /// at init — no re-registration, like
    /// [`PersistentRequest::wait`](crate::persistent::PersistentRequest::wait).
    pub fn wait(&mut self) -> Result<Vec<T>> {
        if !self.active {
            return Ok(Vec::new());
        }
        let _sp = trace::span(trace::cat::WAIT, "wait_partitioned", 0, 0);
        let mb = self.comm.mailbox();
        // Arm the wake-only standing registration: publishes claim this
        // waiter only from here until the cycle resolves. The store
        // precedes the drain passes' shard-lock acquisitions, so a
        // partition that lands after a drain observes the flag and
        // claims — nothing can fall between drain and park.
        self.waiter
            .armed
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let result = loop {
            let epoch = mb.epoch();
            let mut failed = None;
            while self.got < self.partitions {
                match self
                    .comm
                    .try_recv_envelope(Src::Rank(self.src), TagSel::Is(self.tag))
                {
                    Some(env) => {
                        if let Err(e) = self.place(env.payload) {
                            failed = Some(e);
                            break;
                        }
                    }
                    None => break,
                }
            }
            if let Some(e) = failed {
                break Err(e);
            }
            if self.got == self.partitions {
                break Ok(crate::plain::bytes_to_vec::<T>(&self.buf));
            }
            if let Some(e) = self.comm.wait_interrupted(Src::Rank(self.src)) {
                break Err(e);
            }
            let mut st = self.waiter.state.lock();
            loop {
                if st.claimed {
                    st.claimed = false;
                    st.fired = None;
                    st.missed.clear();
                    break;
                }
                if mb.epoch() != epoch {
                    mb.record_spurious();
                    break;
                }
                self.waiter.cond.wait(&mut st);
            }
        };
        self.waiter
            .armed
            .store(false, std::sync::atomic::Ordering::SeqCst);
        match result {
            Ok(out) => {
                self.finish_cycle();
                Ok(out)
            }
            Err(e) => Err(e),
        }
    }

    /// Non-blocking per-partition arrival check (mirrors
    /// `MPI_Parrived`): drains any partition envelopes already
    /// delivered, then reports whether `partition` has landed this
    /// cycle. Lets a consumer process early partitions while producers
    /// are still computing later ones — the receive-side half of the
    /// overlap that `pready` gives the send side. On an inactive
    /// request this returns `true`, like the MPI call.
    pub fn parrived(&mut self, partition: usize) -> Result<bool> {
        if partition >= self.partitions {
            return Err(MpiError::InvalidLayout(format!(
                "parrived: partition {partition} out of range (plan has {})",
                self.partitions
            )));
        }
        if !self.active {
            return Ok(true);
        }
        while !self.received[partition] {
            match self
                .comm
                .try_recv_envelope(Src::Rank(self.src), TagSel::Is(self.tag))
            {
                Some(env) => self.place(env.payload)?,
                None => break,
            }
        }
        Ok(self.received[partition])
    }

    /// Copies one arrived partition's elements out of the reassembly
    /// buffer, or `None` if it has not arrived this cycle (use
    /// [`parrived`](Self::parrived) to drain and check). The full
    /// message is still returned by [`wait`](Self::wait) once every
    /// partition has landed.
    pub fn partition(&self, partition: usize) -> Option<Vec<T>> {
        if !self.active || !self.received.get(partition).copied().unwrap_or(false) {
            return None;
        }
        let at = partition * self.part_bytes;
        Some(crate::plain::bytes_to_vec::<T>(
            &self.buf[at..at + self.part_bytes],
        ))
    }

    /// Decodes one partition envelope into the reassembly buffer.
    fn place(&mut self, payload: Bytes) -> Result<()> {
        if payload.len() != 4 + self.part_bytes {
            return Err(MpiError::InvalidLayout(format!(
                "precv: partition envelope holds {} bytes, expected {}",
                payload.len(),
                4 + self.part_bytes
            )));
        }
        let idx = u32::from_le_bytes(payload[..4].try_into().expect("length checked")) as usize;
        if idx >= self.partitions {
            return Err(MpiError::InvalidLayout(format!(
                "precv: partition index {idx} out of range (plan has {})",
                self.partitions
            )));
        }
        if self.received[idx] {
            return Err(MpiError::InvalidLayout(format!(
                "precv: duplicate partition {idx} in one cycle"
            )));
        }
        let at = idx * self.part_bytes;
        self.buf[at..at + self.part_bytes].copy_from_slice(&payload[4..]);
        self.received[idx] = true;
        self.got += 1;
        Ok(())
    }

    fn finish_cycle(&mut self) {
        trace::async_end(trace::cat::PERSIST, "partitioned_cycle", self.trace_id());
        let mut st = self.waiter.state.lock();
        st.claimed = false;
        st.fired = None;
        st.missed.clear();
        drop(st);
        self.active = false;
        self.cycles += 1;
    }

    fn trace_id(&self) -> u64 {
        Arc::as_ptr(&self.waiter) as u64 ^ self.cycles.rotate_left(48)
    }

    /// Completed cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

impl<T> Drop for PartitionedRecv<'_, T> {
    fn drop(&mut self) {
        self.comm
            .mailbox()
            .deregister_notify(self.comm.context, &self.waiter);
    }
}

impl Comm {
    /// Creates a persistent partitioned send of `partitions * part_elems`
    /// elements of `T` per cycle to `dest` on `tag` (mirrors
    /// `MPI_Psend_init`). Producer threads publish partitions through
    /// [`PartitionedSend::writer`] handles.
    pub fn psend_init<T: Plain>(
        &self,
        partitions: usize,
        part_elems: usize,
        dest: Rank,
        tag: Tag,
    ) -> Result<PartitionedSend<'_, T>> {
        self.count_op("psend_init");
        self.check_tag(tag)?;
        self.check_rank(dest)?;
        check_partitions(partitions)?;
        Ok(PartitionedSend {
            comm: self,
            dest,
            tag,
            partitions,
            part_bytes: part_elems * std::mem::size_of::<T>(),
            shared: Arc::new(SendShared {
                state: Mutex::new(SendState {
                    armed: false,
                    ready: vec![false; partitions],
                    done: 0,
                    poisoned: None,
                }),
                cond: Condvar::new(),
            }),
            cycles: 0,
            _ty: PhantomData,
        })
    }

    /// Creates the matching persistent partitioned receive (mirrors
    /// `MPI_Precv_init`): `partitions * part_elems` elements of `T` per
    /// cycle from `src` on `tag`. The partition layout must match the
    /// sender's — it is part of the frozen plan, not the wire messages.
    pub fn precv_init<T: Plain>(
        &self,
        partitions: usize,
        part_elems: usize,
        src: Rank,
        tag: Tag,
    ) -> Result<PartitionedRecv<'_, T>> {
        self.count_op("precv_init");
        self.check_tag(tag)?;
        self.check_rank(src)?;
        check_partitions(partitions)?;
        let part_bytes = part_elems * std::mem::size_of::<T>();
        let req = PartitionedRecv {
            comm: self,
            src,
            tag,
            partitions,
            part_bytes,
            waiter: Arc::new(Waiter::default()),
            buf: vec![0u8; partitions * part_bytes],
            received: vec![false; partitions],
            got: 0,
            active: false,
            cycles: 0,
            _ty: PhantomData,
        };
        // Wake-only: `wait` drains the queue itself on every pass and
        // never reads claims as records, so publishes claim the waiter
        // only while the receiver is armed inside `wait`.
        self.mailbox().register_standing(
            self.context,
            Src::Rank(src),
            TagSel::Is(tag),
            &req.waiter,
            0,
            true,
        );
        Ok(req)
    }
}

fn check_partitions(partitions: usize) -> Result<()> {
    if partitions == 0 {
        return Err(MpiError::InvalidLayout(
            "partitioned init: at least one partition required".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn partitioned_send_recv_single_thread() {
        Universe::run(2, |comm| {
            const PARTS: usize = 4;
            const ELEMS: usize = 3;
            if comm.rank() == 0 {
                let mut send = comm.psend_init::<u32>(PARTS, ELEMS, 1, 5).unwrap();
                let w = send.writer();
                for cycle in 0..3u32 {
                    send.start().unwrap();
                    // Reverse order: indices decouple arrival from layout.
                    for p in (0..PARTS).rev() {
                        let base = cycle * 100 + p as u32 * 10;
                        w.pready(p, &[base, base + 1, base + 2]).unwrap();
                    }
                    send.wait().unwrap();
                }
                assert_eq!(send.cycles(), 3);
            } else {
                let mut recv = comm.precv_init::<u32>(PARTS, ELEMS, 0, 5).unwrap();
                for cycle in 0..3u32 {
                    recv.start().unwrap();
                    let data = recv.wait().unwrap();
                    let want: Vec<u32> = (0..PARTS as u32)
                        .flat_map(|p| {
                            let base = cycle * 100 + p * 10;
                            [base, base + 1, base + 2]
                        })
                        .collect();
                    assert_eq!(data, want);
                }
            }
        });
    }

    /// The point of the API: many producer threads fill one send while
    /// the rank thread waits; delivery is correct across cycles.
    #[test]
    fn partitioned_send_with_threaded_producers() {
        Universe::run(2, |comm| {
            const PARTS: usize = 8;
            const ELEMS: usize = 16;
            if comm.rank() == 0 {
                let mut send = comm.psend_init::<u64>(PARTS, ELEMS, 1, 9).unwrap();
                for cycle in 0..4u64 {
                    send.start().unwrap();
                    std::thread::scope(|s| {
                        for p in 0..PARTS {
                            let w = send.writer();
                            s.spawn(move || {
                                let data: Vec<u64> = (0..ELEMS as u64)
                                    .map(|i| cycle * 10_000 + p as u64 * 100 + i)
                                    .collect();
                                w.pready(p, &data).unwrap();
                            });
                        }
                    });
                    send.wait().unwrap();
                }
            } else {
                let mut recv = comm.precv_init::<u64>(PARTS, ELEMS, 0, 9).unwrap();
                for cycle in 0..4u64 {
                    recv.start().unwrap();
                    let data = recv.wait().unwrap();
                    let want: Vec<u64> = (0..PARTS as u64)
                        .flat_map(|p| (0..ELEMS as u64).map(move |i| cycle * 10_000 + p * 100 + i))
                        .collect();
                    assert_eq!(data, want, "cycle {cycle} reassembled wrong");
                }
            }
        });
    }

    #[test]
    fn pready_misuse_is_rejected_and_poisons_wait() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut send = comm.psend_init::<u8>(2, 1, 1, 0).unwrap();
                let w = send.writer();
                // Before start: rejected, nothing sent.
                assert!(matches!(
                    w.pready(0, &[1]).unwrap_err(),
                    MpiError::InvalidLayout(_)
                ));
                send.start().unwrap();
                // Wrong length and out-of-range index: rejected.
                assert!(matches!(
                    w.pready(0, &[1, 2]).unwrap_err(),
                    MpiError::InvalidLayout(_)
                ));
                assert!(matches!(
                    w.pready(9, &[1]).unwrap_err(),
                    MpiError::InvalidLayout(_)
                ));
                w.pready(0, &[10]).unwrap();
                // Duplicate publish: rejected and the cycle poisoned.
                assert!(matches!(
                    w.pready(0, &[10]).unwrap_err(),
                    MpiError::InvalidLayout(_)
                ));
                assert!(matches!(
                    send.wait().unwrap_err(),
                    MpiError::InvalidLayout(_)
                ));
                // The failed wait disarmed the request: publishing now
                // is "no armed cycle" again.
                w.pready(1, &[11]).unwrap_err();
            } else {
                // Only the one good partition envelope exists; drain it
                // raw so the universe shuts down clean.
                let (v, _) = comm
                    .recv_vec::<u8>(crate::ANY_SOURCE, crate::ANY_TAG)
                    .unwrap();
                assert_eq!(v.len(), 5);
            }
        });
    }

    #[test]
    fn start_while_armed_is_an_error() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut send = comm.psend_init::<u8>(1, 1, 1, 0).unwrap();
                send.start().unwrap();
                assert_eq!(send.start().unwrap_err(), MpiError::RequestActive);
                send.writer().pready(0, &[7]).unwrap();
                send.wait().unwrap();
            } else {
                let mut recv = comm.precv_init::<u8>(1, 1, 0, 0).unwrap();
                recv.start().unwrap();
                assert_eq!(recv.start().unwrap_err(), MpiError::RequestActive);
                assert_eq!(recv.wait().unwrap(), vec![7]);
            }
        });
    }

    /// The consumer drains an early partition with `parrived` while the
    /// later partitions are provably still unsent: the producer holds
    /// them back until the consumer acknowledges reading partition 0,
    /// so the early read cannot be satisfied by a completed message.
    #[test]
    fn parrived_drains_early_partition_while_rest_in_flight() {
        Universe::run(2, |comm| {
            const PARTS: usize = 3;
            const ELEMS: usize = 4;
            let data = |cycle: u32, p: u32| -> Vec<u32> {
                (0..ELEMS as u32)
                    .map(|i| cycle * 100 + p * 10 + i)
                    .collect()
            };
            if comm.rank() == 0 {
                let mut send = comm.psend_init::<u32>(PARTS, ELEMS, 1, 7).unwrap();
                let w = send.writer();
                for cycle in 0..3u32 {
                    send.start().unwrap();
                    w.pready(0, &data(cycle, 0)).unwrap();
                    // Gate the rest on the consumer's ack: while it
                    // reads partition 0, partitions 1.. do not exist
                    // on the wire yet.
                    comm.recv_vec::<u8>(1, 70).unwrap();
                    for p in 1..PARTS {
                        w.pready(p, &data(cycle, p as u32)).unwrap();
                    }
                    send.wait().unwrap();
                }
            } else {
                let mut recv = comm.precv_init::<u32>(PARTS, ELEMS, 0, 7).unwrap();
                for cycle in 0..3u32 {
                    recv.start().unwrap();
                    while !recv.parrived(0).unwrap() {
                        std::thread::yield_now();
                    }
                    // Unsent partitions report not-arrived and yield no
                    // data; the arrived one is readable early.
                    assert!(!recv.parrived(1).unwrap());
                    assert!(recv.partition(1).is_none());
                    assert_eq!(recv.partition(0).unwrap(), data(cycle, 0));
                    comm.send(&[1u8], 0, 70).unwrap();
                    let all = recv.wait().unwrap();
                    let want: Vec<u32> = (0..PARTS as u32).flat_map(|p| data(cycle, p)).collect();
                    assert_eq!(all, want, "cycle {cycle}");
                }
                // Inactive request: arrived-by-definition, like MPI;
                // out-of-range partitions are still rejected.
                assert!(recv.parrived(0).unwrap());
                assert!(recv.partition(0).is_none());
                assert!(recv.parrived(PARTS).is_err());
            }
        });
    }

    /// Steady-state law carries over from persistent ops: cycles after
    /// init make zero additional completion registrations.
    #[test]
    fn partitioned_steady_state_makes_zero_registrations() {
        Universe::run(2, |comm| {
            const CYCLES: u64 = 10;
            if comm.rank() == 0 {
                let mut send = comm.psend_init::<u32>(2, 4, 1, 3).unwrap();
                let w = send.writer();
                for _ in 0..CYCLES {
                    send.start().unwrap();
                    w.pready(0, &[0, 1, 2, 3]).unwrap();
                    w.pready(1, &[4, 5, 6, 7]).unwrap();
                    send.wait().unwrap();
                }
                comm.send(&[0u8], 1, 99).unwrap();
            } else {
                let mut recv = comm.precv_init::<u32>(2, 4, 0, 3).unwrap();
                recv.start().unwrap();
                recv.wait().unwrap();
                let before = comm.mailbox_stats().notify_registrations;
                for _ in 1..CYCLES {
                    recv.start().unwrap();
                    let data = recv.wait().unwrap();
                    assert_eq!(data, vec![0, 1, 2, 3, 4, 5, 6, 7]);
                }
                assert_eq!(comm.mailbox_stats().notify_registrations, before);
                comm.recv_vec::<u8>(crate::ANY_SOURCE, crate::ANY_TAG)
                    .unwrap();
            }
        });
    }
}
