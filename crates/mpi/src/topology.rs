//! Graph topologies and neighborhood collectives.
//!
//! MPI-3.0 added neighborhood collectives for *static* sparse
//! communication patterns: the user declares a communication graph once
//! and subsequent `MPI_Neighbor_alltoall(v)` calls exchange data only
//! along its edges. The paper's Fig. 10 uses `MPI_Neighbor_alltoallv` as
//! the strongest baseline for sparse exchanges — and notes that
//! *rebuilding* the graph before every exchange (dynamic patterns)
//! destroys its scalability, which is exactly what the creation cost here
//! models: construction performs a dense `alltoall` to verify that the
//! declared in- and out-edges are consistent, costing `Θ(p)` messages per
//! rank, while each subsequent exchange costs only `deg` messages.

use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::plain::copy_bytes_into;
use crate::{Plain, Rank};

/// A communicator with an attached directed communication graph
/// (mirrors `MPI_Dist_graph_create_adjacent`).
pub struct DistGraphComm {
    comm: Comm,
    /// Ranks this rank receives from, in declaration order.
    sources: Vec<Rank>,
    /// Ranks this rank sends to, in declaration order.
    destinations: Vec<Rank>,
}

impl Comm {
    /// Creates a distributed-graph communicator from adjacency lists.
    /// Every rank declares its in-neighbors (`sources`) and out-neighbors
    /// (`destinations`); construction validates that the declarations
    /// agree (`u` lists `v` as destination iff `v` lists `u` as source)
    /// with a dense all-to-all — the `Θ(p)` setup cost that makes
    /// per-iteration graph rebuilds unscalable (§V-A).
    pub fn create_dist_graph_adjacent(
        &self,
        sources: &[Rank],
        destinations: &[Rank],
    ) -> Result<DistGraphComm> {
        self.count_op("dist_graph_create_adjacent");
        let p = self.size();
        for &r in sources.iter().chain(destinations) {
            self.check_rank(r)?;
        }
        // Dense consistency exchange: one flag per peer.
        let mut out_flags = vec![0u8; p];
        for &d in destinations {
            out_flags[d] = 1;
        }
        let mut in_flags = vec![0u8; p];
        crate::collectives::alltoallv_internal(
            self,
            &out_flags,
            &vec![1usize; p],
            &(0..p).collect::<Vec<_>>(),
            &mut in_flags,
            &vec![1usize; p],
            &(0..p).collect::<Vec<_>>(),
        )?;
        let mut local_mismatch: Option<Rank> = None;
        for (r, &flag) in in_flags.iter().enumerate() {
            let declared = sources.contains(&r);
            if (flag != 0) != declared {
                local_mismatch = Some(r);
                break;
            }
        }
        // Graph construction is collective: every rank must agree on
        // whether the declarations were consistent, otherwise the ranks
        // would diverge (some building the communicator, some erroring).
        let any_mismatch = crate::collectives::allreduce_internal(
            self,
            &[u8::from(local_mismatch.is_some())],
            &crate::op::LogicalOr,
        )?[0];
        if any_mismatch != 0 {
            return Err(MpiError::InvalidLayout(match local_mismatch {
                Some(r) => format!(
                    "dist graph: declarations of rank {} and rank {r} disagree",
                    self.rank()
                ),
                None => "dist graph: declarations disagree on another rank".to_string(),
            }));
        }
        let graph_comm = self.dup_uncounted()?;
        Ok(DistGraphComm {
            comm: graph_comm,
            sources: sources.to_vec(),
            destinations: destinations.to_vec(),
        })
    }
}

impl DistGraphComm {
    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Declared in-neighbors.
    pub fn sources(&self) -> &[Rank] {
        &self.sources
    }

    /// Declared out-neighbors.
    pub fn destinations(&self) -> &[Rank] {
        &self.destinations
    }

    /// Variable-size neighborhood exchange (mirrors
    /// `MPI_Neighbor_alltoallv`): block `k` of `send` goes to
    /// `destinations[k]`; block `j` of `recv` comes from `sources[j]`.
    /// Message count per rank = out-degree, not `p`.
    pub fn neighbor_alltoallv_into<T: Plain>(
        &self,
        send: &[T],
        send_counts: &[usize],
        send_displs: &[usize],
        recv: &mut [T],
        recv_counts: &[usize],
        recv_displs: &[usize],
    ) -> Result<()> {
        self.comm.count_op("neighbor_alltoallv");
        let comm = &self.comm;
        if send_counts.len() != self.destinations.len()
            || send_displs.len() != self.destinations.len()
        {
            return Err(MpiError::InvalidLayout(format!(
                "neighbor_alltoallv: {} send counts for {} destinations",
                send_counts.len(),
                self.destinations.len()
            )));
        }
        if recv_counts.len() != self.sources.len() || recv_displs.len() != self.sources.len() {
            return Err(MpiError::InvalidLayout(format!(
                "neighbor_alltoallv: {} recv counts for {} sources",
                recv_counts.len(),
                self.sources.len()
            )));
        }
        let tag = comm.next_internal_tag();
        for (k, &dest) in self.destinations.iter().enumerate() {
            let block = &send[send_displs[k]..send_displs[k] + send_counts[k]];
            comm.deliver_bytes(dest, tag, crate::plain::bytes_from_slice(block), None)?;
        }
        for (j, &src) in self.sources.iter().enumerate() {
            let env = comm.recv_envelope(
                crate::message::Src::Rank(src),
                crate::message::TagSel::Is(tag),
            )?;
            let dst = &mut recv[recv_displs[j]..recv_displs[j] + recv_counts[j]];
            let written = copy_bytes_into(&env.payload, dst);
            if written != recv_counts[j] {
                return Err(MpiError::Truncated {
                    message_bytes: env.payload.len(),
                    buffer_bytes: std::mem::size_of_val(dst),
                });
            }
        }
        Ok(())
    }

    /// Neighborhood exchange where receive sizes are discovered from the
    /// messages; returns one vector per source, in source order.
    pub fn neighbor_alltoall_vecs<T: Plain>(&self, send: &[Vec<T>]) -> Result<Vec<Vec<T>>> {
        self.comm.count_op("neighbor_alltoallv");
        let comm = &self.comm;
        assert_eq!(
            send.len(),
            self.destinations.len(),
            "one block per destination"
        );
        let tag = comm.next_internal_tag();
        for (k, &dest) in self.destinations.iter().enumerate() {
            comm.deliver_bytes(dest, tag, crate::plain::bytes_from_slice(&send[k]), None)?;
        }
        let mut out = Vec::with_capacity(self.sources.len());
        for &src in &self.sources {
            let env = comm.recv_envelope(
                crate::message::Src::Rank(src),
                crate::message::TagSel::Is(tag),
            )?;
            out.push(crate::plain::bytes_into_vec(env.payload));
        }
        Ok(out)
    }
}

impl Comm {
    /// Communicator duplication without bumping call counters (used for
    /// derived communicators inside other operations).
    pub(crate) fn dup_uncounted(&self) -> Result<Comm> {
        let base = if self.rank() == 0 {
            self.world.alloc_contexts(1)
        } else {
            0
        };
        let base = crate::collectives::bcast_one_internal(self, base, 0)?;
        Ok(self.derived(std::sync::Arc::clone(&self.group), self.rank(), base))
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn ring_topology_exchange() {
        Universe::run(4, |comm| {
            let left = (comm.rank() + 3) % 4;
            let right = (comm.rank() + 1) % 4;
            // Receive from left, send to right.
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            let got = g
                .neighbor_alltoall_vecs(&[vec![comm.rank() as u32]])
                .unwrap();
            assert_eq!(got, vec![vec![left as u32]]);
        });
    }

    #[test]
    fn star_topology() {
        // Rank 0 receives from everyone; leaves send to 0 only.
        Universe::run(4, |comm| {
            if comm.rank() == 0 {
                let g = comm.create_dist_graph_adjacent(&[1, 2, 3], &[]).unwrap();
                let got = g.neighbor_alltoall_vecs::<u8>(&[]).unwrap();
                assert_eq!(got, vec![vec![1], vec![2], vec![3]]);
            } else {
                let g = comm.create_dist_graph_adjacent(&[], &[0]).unwrap();
                let got = g
                    .neighbor_alltoall_vecs(&[vec![comm.rank() as u8]])
                    .unwrap();
                assert!(got.is_empty());
            }
        });
    }

    #[test]
    fn inconsistent_graph_rejected() {
        Universe::run(2, |comm| {
            // Rank 0 claims it sends to 1, but rank 1 does not list 0 as a
            // source.
            let r = if comm.rank() == 0 {
                comm.create_dist_graph_adjacent(&[], &[1])
            } else {
                comm.create_dist_graph_adjacent(&[], &[])
            };
            assert!(r.is_err());
        });
    }

    #[test]
    fn neighbor_alltoallv_with_layout() {
        Universe::run(3, |comm| {
            // Complete graph.
            let others: Vec<usize> = (0..3).filter(|&r| r != comm.rank()).collect();
            let g = comm.create_dist_graph_adjacent(&others, &others).unwrap();
            let send: Vec<u64> = vec![comm.rank() as u64; 4];
            let send_counts = [2usize, 2];
            let send_displs = [0usize, 2];
            let mut recv = [u64::MAX; 4];
            let recv_counts = [2usize, 2];
            let recv_displs = [0usize, 2];
            g.neighbor_alltoallv_into(
                &send,
                &send_counts,
                &send_displs,
                &mut recv,
                &recv_counts,
                &recv_displs,
            )
            .unwrap();
            let expected: Vec<u64> = others.iter().flat_map(|&r| [r as u64, r as u64]).collect();
            assert_eq!(&recv[..], &expected[..]);
        });
    }

    #[test]
    fn repeated_exchanges_on_same_graph() {
        Universe::run(3, |comm| {
            let right = (comm.rank() + 1) % 3;
            let left = (comm.rank() + 2) % 3;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            for round in 0..5u32 {
                let got = g
                    .neighbor_alltoall_vecs(&[vec![round * 10 + comm.rank() as u32]])
                    .unwrap();
                assert_eq!(got[0], vec![round * 10 + left as u32]);
            }
        });
    }
}
