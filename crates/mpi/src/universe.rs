//! SPMD execution: spawning ranks and shared world state.
//!
//! [`Universe::run`] is the substrate's `mpirun`: it spawns one OS thread
//! per rank, hands each a [`Comm`] for the world communicator, and joins
//! them. Rank panics are contained per-rank; a rank that panics (or calls
//! [`Comm::fail_here`](crate::Comm::fail_here)) is marked *failed* so that
//! peers blocked on it observe `MpiError::ProcessFailed` instead of
//! hanging — the substrate behaviour ULFM (§V-B) builds on.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::CostModel;
use crate::collectives::algos::model::{self as tuning_model, TuningStats};
use crate::comm::Comm;
use crate::counter::CallCounts;
use crate::fault::{self, FaultPlan};
use crate::mailbox::{Mailbox, MailboxStats};
use crate::metrics::{self, CopyStats};
use crate::trace::{self, TraceData, TraceStats};
use crate::ulfm::AgreementTable;
use crate::Rank;

/// Panic payload used by [`Comm::fail_here`](crate::Comm::fail_here) to
/// simulate a process crash.
pub(crate) struct RankFailure;

/// Configuration for a universe.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of ranks to spawn.
    pub size: usize,
    /// Message cost model for the virtual clock.
    pub cost: CostModel,
    /// Stack size per rank thread, in bytes.
    pub stack_size: usize,
}

impl Config {
    pub fn new(size: usize) -> Self {
        Config {
            size,
            cost: CostModel::disabled(),
            stack_size: 8 << 20,
        }
    }

    /// Sets the message cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// Shared state of one universe: mailboxes, failure flags, revocation set,
/// context allocation, call counters, and the ULFM agreement table.
pub struct WorldState {
    pub(crate) size: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) failed: Vec<AtomicBool>,
    pub(crate) revoked: Mutex<HashSet<u64>>,
    next_context: AtomicU64,
    pub(crate) cost: CostModel,
    pub(crate) counters: Vec<Mutex<CallCounts>>,
    /// Final per-rank copy statistics, written when each rank's thread
    /// finishes (the thread-local counters die with the thread).
    pub(crate) copy_stats: Vec<Mutex<CopyStats>>,
    /// Final per-rank self-tuning counters (decisions, picks by kind,
    /// observations folded, snapshot publishes), harvested like the
    /// copy bill when each rank's thread finishes.
    pub(crate) tuning_stats: Vec<Mutex<TuningStats>>,
    /// Final per-rank traces, written when each rank's thread finishes
    /// (the thread-local rings die with the thread). Empty without the
    /// `trace` feature.
    pub(crate) traces: Vec<Mutex<trace::RankTrace>>,
    /// Live-snapshot slots each running rank publishes its ring into
    /// on request (see [`Universe::trace_snapshot`]).
    pub(crate) snap_slots: Vec<Arc<trace::SnapshotSlot>>,
    pub(crate) agreements: AgreementTable,
    /// The universe's fault-injection state (see [`crate::fault`]); a
    /// zero-sized no-op without the `fault` feature.
    pub(crate) faults: fault::WorldFaults,
}

impl WorldState {
    pub(crate) fn new(config: &Config) -> Arc<Self> {
        Self::new_faulted(config, &FaultPlan::default())
    }

    pub(crate) fn new_faulted(config: &Config, plan: &FaultPlan) -> Arc<Self> {
        Arc::new(WorldState {
            size: config.size,
            mailboxes: (0..config.size).map(|_| Mailbox::new()).collect(),
            failed: (0..config.size).map(|_| AtomicBool::new(false)).collect(),
            revoked: Mutex::new(HashSet::new()),
            // Context 0 is the world communicator.
            next_context: AtomicU64::new(1),
            cost: config.cost,
            counters: (0..config.size)
                .map(|_| Mutex::new(CallCounts::new()))
                .collect(),
            copy_stats: (0..config.size)
                .map(|_| Mutex::new(CopyStats::default()))
                .collect(),
            tuning_stats: (0..config.size)
                .map(|_| Mutex::new(TuningStats::default()))
                .collect(),
            traces: (0..config.size)
                .map(|_| Mutex::new(trace::RankTrace::default()))
                .collect(),
            snap_slots: (0..config.size).map(|_| Arc::default()).collect(),
            agreements: AgreementTable::new(),
            faults: fault::WorldFaults::new(plan, config.size),
        })
    }

    /// Allocates `n` fresh communicator context ids, returning the first.
    pub(crate) fn alloc_contexts(&self, n: u64) -> u64 {
        self.next_context.fetch_add(n, Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn is_failed(&self, world_rank: Rank) -> bool {
        self.failed[world_rank].load(Ordering::Acquire)
    }

    /// Marks a rank failed and wakes every blocked waiter so the failure
    /// is observed. Idempotent: the voluntary `fail_here` marks before
    /// unwinding and the universe marks again on catching the unwind.
    pub(crate) fn mark_failed(&self, world_rank: Rank) {
        if self.failed[world_rank].swap(true, Ordering::AcqRel) {
            return;
        }
        trace::instant(trace::cat::ULFM, "ulfm/detect", world_rank as u64, 0);
        self.interrupt_all();
    }

    #[inline]
    pub(crate) fn is_revoked(&self, context: u64) -> bool {
        self.revoked.lock().contains(&context)
    }

    pub(crate) fn revoke(&self, context: u64) {
        self.revoked.lock().insert(context);
        self.interrupt_all();
    }

    pub(crate) fn interrupt_all(&self) {
        for mb in &self.mailboxes {
            mb.interrupt();
        }
        self.agreements.interrupt();
    }

    /// Number of ranks in the world communicator.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// Outcome of a single rank's execution under
/// [`Universe::run_with`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankOutcome<R> {
    /// The rank ran to completion.
    Completed(R),
    /// The rank simulated a process failure via `fail_here`.
    Failed,
    /// The rank panicked (a bug in rank code).
    Panicked(String),
}

impl<R> RankOutcome<R> {
    /// Unwraps a completed outcome.
    pub fn unwrap(self) -> R {
        match self {
            RankOutcome::Completed(r) => r,
            RankOutcome::Failed => panic!("rank failed"),
            RankOutcome::Panicked(msg) => panic!("rank panicked: {msg}"),
        }
    }

    /// The completed value, if any.
    pub fn completed(self) -> Option<R> {
        match self {
            RankOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// The SPMD launcher.
pub struct Universe;

impl Universe {
    /// Runs `f` on `size` ranks with default configuration and returns the
    /// per-rank results in rank order.
    ///
    /// # Panics
    ///
    /// Panics if any rank panics or simulates a failure; use
    /// [`Universe::run_with`] for fault-tolerance scenarios.
    pub fn run<R: Send, F: Fn(Comm) -> R + Sync>(size: usize, f: F) -> Vec<R> {
        Self::run_with(Config::new(size), f)
            .into_iter()
            .enumerate()
            .map(|(rank, o)| match o {
                RankOutcome::Completed(r) => r,
                RankOutcome::Failed => panic!("rank {rank} failed"),
                RankOutcome::Panicked(msg) => panic!("rank {rank} panicked: {msg}"),
            })
            .collect()
    }

    /// Runs `f` on `config.size` ranks, returning each rank's outcome.
    /// Panics and simulated failures are contained per-rank.
    pub fn run_with<R: Send, F: Fn(Comm) -> R + Sync>(config: Config, f: F) -> Vec<RankOutcome<R>> {
        let world = WorldState::new(&config);
        Self::run_on(&config, &world, f)
    }

    /// Runs `f` on `config.size` ranks under a deterministic
    /// [`FaultPlan`] (see [`crate::fault`]): planned crashes unwind the
    /// victim exactly like [`Comm::fail_here`](crate::Comm::fail_here)
    /// (outcome [`RankOutcome::Failed`]), and message rules
    /// drop/delay/duplicate matching envelopes at delivery. Without the
    /// `fault` feature the plan is inert and this is
    /// [`Universe::run_with`].
    pub fn run_with_faults<R: Send, F: Fn(Comm) -> R + Sync>(
        config: Config,
        plan: &FaultPlan,
        f: F,
    ) -> Vec<RankOutcome<R>> {
        let world = WorldState::new_faulted(&config, plan);
        Self::run_on(&config, &world, f)
    }

    /// Runs `f` on `config.size` ranks and additionally returns each
    /// rank's total [`RunStats`] — copy bill plus matching-engine
    /// diagnostics — the universe-level aggregation that lets benches
    /// read per-rank statistics without threading snapshots through
    /// their closures (the per-operation diffing of
    /// [`crate::metrics::snapshot`] remains available inside the
    /// closure).
    pub fn run_stats<R: Send, F: Fn(Comm) -> R + Sync>(
        config: Config,
        f: F,
    ) -> (Vec<RankOutcome<R>>, Vec<RunStats>) {
        let world = WorldState::new(&config);
        let outcomes = Self::run_on(&config, &world, f);
        let stats = Self::collect_run_stats(&world);
        (outcomes, stats)
    }

    /// Runs `f` on `config.size` ranks and additionally returns the
    /// collected per-rank traces (event timelines + aggregates; see
    /// [`crate::trace`]). Without the `trace` feature the returned
    /// [`TraceData`] is empty but well-formed —
    /// [`TraceData::report`] says so instead of failing.
    pub fn run_traced<R: Send, F: Fn(Comm) -> R + Sync>(
        config: Config,
        f: F,
    ) -> (Vec<RankOutcome<R>>, TraceData) {
        let world = WorldState::new(&config);
        let outcomes = Self::run_on(&config, &world, f);
        let data = Self::collect_trace(&world);
        (outcomes, data)
    }

    /// Runs `f` under a deterministic [`FaultPlan`] and additionally
    /// returns the collected per-rank traces: the combination that puts
    /// a whole crash-and-recover story on one timeline — the injected
    /// crash (`fault/crash`), its detection (`ulfm/detect`), and the
    /// survivors' recovery (`ulfm/agree`, `ulfm/shrink` spans).
    pub fn run_traced_faulted<R: Send, F: Fn(Comm) -> R + Sync>(
        config: Config,
        plan: &FaultPlan,
        f: F,
    ) -> (Vec<RankOutcome<R>>, TraceData) {
        let world = WorldState::new_faulted(&config, plan);
        let outcomes = Self::run_on(&config, &world, f);
        let data = Self::collect_trace(&world);
        (outcomes, data)
    }

    fn run_on<R: Send, F: Fn(Comm) -> R + Sync>(
        config: &Config,
        world: &Arc<WorldState>,
        f: F,
    ) -> Vec<RankOutcome<R>> {
        assert!(config.size > 0, "universe needs at least one rank");
        let f = &f;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.size)
                .map(|rank| {
                    let world = Arc::clone(world);
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(config.stack_size)
                        .spawn_scoped(scope, move || {
                            trace::register_snapshot_slot(Arc::clone(&world.snap_slots[rank]));
                            fault::register_rank_thread(&world, rank);
                            let comm = Comm::world(world.clone(), rank);
                            let result = catch_unwind(AssertUnwindSafe(|| f(comm)));
                            if result.is_err() {
                                // Mark the rank dead *before* harvesting
                                // its trace: peers stop waiting on it as
                                // early as possible, and the `ulfm/detect`
                                // instant lands on this rank's timeline
                                // instead of a discarded thread-local.
                                world.mark_failed(rank);
                            }
                            // Preserve the rank's copy counters and trace
                            // before the thread (and its thread-locals)
                            // exits.
                            *world.copy_stats[rank].lock() = metrics::snapshot();
                            *world.tuning_stats[rank].lock() = tuning_model::stats_snapshot();
                            let t = trace::take_thread();
                            // Exited ranks answer every future snapshot
                            // with their final trace.
                            *world.snap_slots[rank].data.lock() = t.clone();
                            world.snap_slots[rank]
                                .gen
                                .store(u64::MAX, Ordering::Release);
                            *world.traces[rank].lock() = t;
                            match result {
                                Ok(r) => RankOutcome::Completed(r),
                                Err(payload) => {
                                    if payload.is::<RankFailure>() {
                                        RankOutcome::Failed
                                    } else {
                                        let msg = panic_message(&payload);
                                        RankOutcome::Panicked(msg)
                                    }
                                }
                            }
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();

            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread join failed"))
                .collect()
        })
    }

    /// Number of planned crashes the universe's fault plan has fired so
    /// far (always 0 without the `fault` feature or without a plan).
    pub fn fault_crashes_fired(world: &WorldState) -> u64 {
        world.faults.crashes_fired()
    }

    /// Collected per-rank call counters after a run. Only meaningful if
    /// the caller kept the `Arc<WorldState>` alive; exposed primarily for
    /// the binding layer's tests via [`Comm::call_counts`](crate::Comm::call_counts).
    pub fn collect_counts(world: &WorldState) -> Vec<CallCounts> {
        world.counters.iter().map(|m| m.lock().clone()).collect()
    }

    /// Collected per-rank copy statistics after a run (the
    /// [`CopyStats`] analogue of [`Universe::collect_counts`]).
    pub fn collect_copy_stats(world: &WorldState) -> Vec<CopyStats> {
        world.copy_stats.iter().map(|m| *m.lock()).collect()
    }

    /// Collected per-rank run statistics after a run: the copy bill
    /// plus each rank's matching-engine diagnostics (max unexpected-
    /// queue depth = matching pressure; targeted wakeups = envelopes
    /// delivered straight to a posted waiter).
    pub fn collect_run_stats(world: &WorldState) -> Vec<RunStats> {
        world
            .copy_stats
            .iter()
            .zip(&world.mailboxes)
            .zip(&world.traces)
            .zip(&world.tuning_stats)
            .map(|(((m, mb), t), tu)| RankStats {
                copy: *m.lock(),
                mailbox: mb.stats(),
                trace: t.lock().stats,
                tuning: *tu.lock(),
            })
            .collect()
    }

    /// Collected per-rank traces after a run (the [`crate::trace`]
    /// analogue of [`Universe::collect_counts`]).
    pub fn collect_trace(world: &WorldState) -> TraceData {
        TraceData {
            ranks: world.traces.iter().map(|m| m.lock().clone()).collect(),
        }
    }

    /// Text profile of a finished run: per-rank event counts, span
    /// latency quantiles and queue-depth gauges (see
    /// [`TraceData::report`]). Degrades gracefully without the `trace`
    /// feature.
    pub fn trace_report(world: &WorldState) -> String {
        Self::collect_trace(world).report()
    }

    /// Snapshots every rank's trace ring **while the universe is still
    /// running** — no thread exit required (callable from a rank
    /// thread via [`Comm::trace_snapshot`](crate::Comm::trace_snapshot)
    /// or from any observer holding the world).
    ///
    /// The rings are thread-local, so the snapshot is cooperative:
    /// this bumps a global generation and interrupts parked ranks;
    /// each rank publishes a copy of its ring the next time it records
    /// an event or wakes from a park (one relaxed load on the record
    /// path — the tracing stays zero-overhead). Ranks that have
    /// already exited answer with their final trace. A rank stuck in
    /// pure computation cannot publish; after a bounded wait its slot's
    /// last published trace (possibly empty) is returned rather than
    /// blocking the observer. Without the `trace` feature the result
    /// is empty but well-formed.
    pub fn trace_snapshot(world: &WorldState) -> TraceData {
        let gen = trace::request_snapshot();
        // The calling thread serves itself (it may be a rank mid-run).
        trace::publish_now();
        if trace::COMPILED {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                // Wake parked ranks; each wakeup path either records a
                // spurious-wakeup event or polls the publish hook.
                world.interrupt_all();
                let pending = world
                    .snap_slots
                    .iter()
                    .enumerate()
                    .any(|(r, s)| !world.is_failed(r) && s.gen.load(Ordering::Acquire) < gen);
                if !pending || std::time::Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        TraceData {
            ranks: world
                .snap_slots
                .iter()
                .map(|s| s.data.lock().clone())
                .collect(),
        }
    }
}

/// Per-rank whole-run statistics returned by [`Universe::run_stats`]:
/// the unified report folding the copy bill, the matching-engine
/// diagnostics, and the trace aggregates (zeros without the `trace`
/// feature) into one shape per rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Payload copy/allocation counters (see [`crate::metrics`]).
    pub copy: CopyStats,
    /// Matching-engine diagnostics, including the max unexpected-queue
    /// depth — the matching pressure a bench put on this rank.
    pub mailbox: MailboxStats,
    /// Trace aggregates: event counts, span latency histograms, and
    /// the unexpected-queue depth gauge (see [`crate::trace`]).
    pub trace: TraceStats,
    /// Self-tuning counters: how many algorithm decisions this rank
    /// made, how they were decided (static threshold / exploration /
    /// model prediction / forced / frozen plan), and how many
    /// measurements fed the cost model (see
    /// [`TuningStats`]). All zeros unless the
    /// communicator's tuning enables the model.
    pub tuning: TuningStats,
}

/// Former name of [`RankStats`], kept for existing callers.
pub type RunStats = RankStats;

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_ranks() {
        let out = Universe::run(4, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.rank(), 0);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn panics_are_contained_with_run_with() {
        let out = Universe::run_with(Config::new(2), |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
            comm.rank()
        });
        assert_eq!(out[0], RankOutcome::Completed(0));
        match &out[1] {
            RankOutcome::Panicked(msg) => assert!(msg.contains("boom")),
            o => panic!("expected panic outcome, got {o:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn run_propagates_panics() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("die");
            }
        });
    }

    #[test]
    fn context_allocation_is_unique() {
        let ws = WorldState::new(&Config::new(2));
        let a = ws.alloc_contexts(3);
        let b = ws.alloc_contexts(1);
        assert!(a >= 1);
        assert_eq!(b, a + 3);
    }

    #[test]
    #[cfg(feature = "copy-metrics")]
    fn run_stats_aggregates_per_rank_copy_bills() {
        let (outcomes, stats) = Universe::run_stats(Config::new(3), |comm| {
            // Rank r sends r+1 bytes to the next rank; serialization
            // copies are charged to the sender.
            let next = (comm.rank() + 1) % comm.size();
            let data = vec![7u8; comm.rank() + 1];
            comm.send(&data, next, 0).unwrap();
            let (_got, _) = comm.recv_vec::<u8>((comm.rank() + 2) % 3, 0).unwrap();
        });
        assert!(outcomes.into_iter().all(|o| o.completed().is_some()));
        for (rank, s) in stats.iter().enumerate() {
            assert!(
                s.copy.bytes_copied >= (rank + 1) as u64,
                "rank {rank} must have charged its send serialization: {s:?}"
            );
        }
    }

    #[test]
    fn run_stats_reports_matching_pressure() {
        let (_, stats) = Universe::run_stats(Config::new(2), |comm| {
            if comm.rank() == 0 {
                // Run ahead of the receiver: the unexpected queue on
                // rank 1 must grow to (at least briefly) hold the burst.
                for i in 0..16u32 {
                    comm.send(&[i], 1, 0).unwrap();
                }
                comm.send(&[99u32], 1, 1).unwrap();
            } else {
                let (v, _) = comm.recv_vec::<u32>(0, 1).unwrap();
                assert_eq!(v, vec![99]);
                for i in 0..16u32 {
                    let (v, _) = comm.recv_vec::<u32>(0, 0).unwrap();
                    assert_eq!(v, vec![i]);
                }
            }
        });
        assert!(
            stats[1].mailbox.max_unexpected_depth >= 1,
            "the burst must register as matching pressure: {:?}",
            stats[1].mailbox
        );
        assert_eq!(stats[1].mailbox.queued, 0, "everything was drained");
    }

    /// A snapshot taken while ranks are alive — one of them parked in
    /// a blocking receive whose message arrives only *after* the
    /// snapshot — collects every ring and exports a valid Chrome
    /// trace, without any thread exiting.
    #[cfg(feature = "trace")]
    #[test]
    fn trace_snapshot_collects_running_ranks() {
        Universe::run(3, |comm| {
            comm.barrier().unwrap();
            if comm.rank() == 0 {
                let snap = comm.trace_snapshot();
                assert_eq!(snap.ranks.len(), 3);
                for (r, rt) in snap.ranks.iter().enumerate() {
                    assert!(
                        rt.stats.events > 0,
                        "rank {r} ran a barrier; its published ring must not be empty"
                    );
                }
                let summary = trace::export::validate_chrome(&snap.to_chrome_json())
                    .expect("snapshot must export a valid Chrome trace");
                assert!(summary.pids.len() == 3 && summary.spans + summary.instants > 0);
                // Release the parked peers only after the snapshot: the
                // collection provably did not depend on rank exit.
                for peer in 1..comm.size() {
                    comm.send(&[1u8], peer, 42).unwrap();
                }
            } else {
                // Parks in a bare recv until after the snapshot is done.
                let (v, _) = comm.recv_vec::<u8>(0, 42).unwrap();
                assert_eq!(v, vec![1]);
            }
        });
    }

    /// Exited ranks answer later snapshots with their final trace.
    #[cfg(feature = "trace")]
    #[test]
    fn trace_snapshot_after_exit_returns_final_traces() {
        let world = WorldState::new(&Config::new(2));
        let config = Config::new(2);
        let out = Universe::run_on(&config, &world, |comm| {
            comm.barrier().unwrap();
            comm.rank()
        });
        assert_eq!(out.len(), 2);
        let snap = Universe::trace_snapshot(&world);
        for rt in &snap.ranks {
            assert!(rt.stats.events > 0);
        }
        assert_eq!(snap.ranks, Universe::collect_trace(&world).ranks);
    }

    #[test]
    fn zero_ranks_rejected() {
        let r = std::panic::catch_unwind(|| Universe::run(0, |_c| ()));
        assert!(r.is_err());
    }
}
