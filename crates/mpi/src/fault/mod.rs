//! Deterministic fault injection: crash a rank at its k-th injection
//! point, or drop / delay / duplicate a matching message — reproducibly.
//!
//! The ULFM reproduction (see [`crate::ulfm`]) is only as trustworthy as
//! the failures it has been tested against. A voluntary
//! [`Comm::fail_here`](crate::Comm::fail_here) at a call boundary cannot
//! land a crash *inside* a Rabenseifner phase, between two standing-claim
//! restarts of a parked session, or halfway through an agreement freeze —
//! exactly the states where a survivor could hang. This module closes
//! that gap with a **deterministic fault plane**:
//!
//! - A [`FaultPlan`] names the faults up front: *crash rank `r` at its
//!   `k`-th injection point* (optionally restricted to one named point)
//!   and/or *drop / delay / duplicate the `n`-th message matching a
//!   `(source, tag)` predicate*. The plan is plain data; the same plan
//!   against the same workload replays the same failure.
//! - `point` hooks are threaded through the substrate's hot paths —
//!   the **injection-point catalog**:
//!
//!   | name | site |
//!   |---|---|
//!   | `mailbox/push` | sender entering the destination's matching engine |
//!   | `mailbox/match` | receiver entering a blocking match |
//!   | `completion/register` | waiter about to register with the mailboxes |
//!   | `completion/park` | waiter about to block on its condvar |
//!   | `completion/claim` | parked session claiming a standing completion |
//!   | `coll/phase` | every engine phase step (each collective round's recv) |
//!   | `persistent/start` | persistent plan `start()` |
//!   | `partitioned/pready` | partitioned producer marking a partition ready |
//!   | `topology/build` | Cart/DistGraph constructor collectives |
//!   | `ulfm/contribute` | agreement contribution (crashes a freezer mid-freeze) |
//!
//!   A crash is [`Comm::fail_here`](crate::Comm::fail_here) made
//!   involuntary: the rank thread unwinds with the same `RankFailure`
//!   payload, [`Universe`](crate::Universe) marks it failed, and every
//!   parked survivor is interruption-epoch-woken.
//! - Message faults intercept envelopes at the delivery boundary
//!   (`Comm::deliver_bytes` and the partitioned producer push): `Drop`
//!   discards the envelope, `Duplicate` pushes it twice, `Delay(n)`
//!   holds it until `n` further deliveries to the same destination have
//!   happened (a deterministic reordering, not a timer).
//!
//! # Zero-cost when compiled out
//!
//! Mirrors [`crate::trace`]: without the `fault` feature every hook is
//! an empty `#[inline]` function and [`WorldFaults`] is a zero-sized
//! type (compile-time asserted) — call sites compile to nothing. With
//! the feature on but no plan installed, a hook is one relaxed atomic
//! load (the `fault_experiment` bench pins the armed-vs-dormant delta).
//!
//! # Using it
//!
//! ```ignore
//! let plan = FaultPlan::new().crash_at(1, "coll/phase", 3);
//! let out = Universe::run_with_faults(Config::new(4), &plan, |comm| {
//!     // rank 1 dies inside its 3rd collective phase step; survivors
//!     // observe ProcessFailed, revoke, shrink, and continue.
//! });
//! ```

use crate::{Rank, Tag};

/// True if the `fault` feature was compiled in.
pub const COMPILED: bool = cfg!(feature = "fault");

/// What to do with a message matched by a [`MsgRule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgAction {
    /// Discard the envelope; it never reaches the matching engine.
    Drop,
    /// Hold the envelope until this many further deliveries to the same
    /// destination have occurred, then release it (deterministic
    /// reordering past later traffic).
    Delay(u64),
    /// Deliver the envelope twice.
    Duplicate,
}

/// A message-fault predicate: act on the `nth` (1-based) message from
/// world rank `from` to world rank `to` whose tag matches `tag`
/// (`None` = any tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRule {
    /// Sender's world rank.
    pub from: Rank,
    /// Destination's world rank.
    pub to: Rank,
    /// Tag filter; `None` matches any tag (including internal ones).
    pub tag: Option<Tag>,
    /// Which matching message to act on (1-based occurrence count).
    pub nth: u64,
    /// The fault to apply.
    pub action: MsgAction,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CrashSpec {
    rank: Rank,
    /// Restrict the count to one named injection point; `None` counts
    /// every point the rank passes.
    point: Option<&'static str>,
    /// Crash on the `at`-th (1-based) counted point.
    at: u64,
}

/// A deterministic fault schedule: crash arms plus message rules.
///
/// Plans are plain data in every build; without the `fault` feature
/// installing one is a no-op (the run is fault-free).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    crashes: Vec<CrashSpec>,
    rules: Vec<MsgRule>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.rules.is_empty()
    }

    /// Crash `rank` at the `at`-th (1-based) injection point it passes,
    /// of any name.
    pub fn crash(mut self, rank: Rank, at: u64) -> Self {
        assert!(at >= 1, "injection points are counted from 1");
        self.crashes.push(CrashSpec {
            rank,
            point: None,
            at,
        });
        self
    }

    /// Crash `rank` at the `at`-th (1-based) time it passes the named
    /// injection point (see the catalog in the module docs).
    pub fn crash_at(mut self, rank: Rank, point: &'static str, at: u64) -> Self {
        assert!(at >= 1, "injection points are counted from 1");
        self.crashes.push(CrashSpec {
            rank,
            point: Some(point),
            at,
        });
        self
    }

    /// Add a message-fault rule.
    pub fn message(mut self, rule: MsgRule) -> Self {
        assert!(rule.nth >= 1, "message occurrences are counted from 1");
        self.rules.push(rule);
        self
    }

    /// Drop the `nth` message from `from` to `to` with tag `tag`.
    pub fn drop_message(self, from: Rank, to: Rank, tag: Option<Tag>, nth: u64) -> Self {
        self.message(MsgRule {
            from,
            to,
            tag,
            nth,
            action: MsgAction::Drop,
        })
    }

    /// Delay the `nth` matching message past `by` further deliveries to
    /// the same destination.
    pub fn delay_message(self, from: Rank, to: Rank, tag: Option<Tag>, nth: u64, by: u64) -> Self {
        self.message(MsgRule {
            from,
            to,
            tag,
            nth,
            action: MsgAction::Delay(by),
        })
    }

    /// Duplicate the `nth` matching message.
    pub fn duplicate_message(self, from: Rank, to: Rank, tag: Option<Tag>, nth: u64) -> Self {
        self.message(MsgRule {
            from,
            to,
            tag,
            nth,
            action: MsgAction::Duplicate,
        })
    }

    /// World ranks this plan schedules a crash for (the planned victims).
    pub fn crashed_ranks(&self) -> Vec<Rank> {
        let mut v: Vec<Rank> = self.crashes.iter().map(|c| c.rank).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A seeded single-crash plan for a `size`-rank universe: a
    /// splitmix64 stream picks the victim (never rank 0, so runs keep a
    /// deterministic reporter) and an injection-point index in
    /// `1..=64`. Same seed → same plan; used by the chaos smoke runs
    /// with fixed seeds in CI.
    pub fn seeded(seed: u64, size: usize) -> Self {
        assert!(size >= 2, "a seeded crash plan needs a survivor");
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let victim = 1 + (next() as usize % (size - 1));
        let at = 1 + next() % 64;
        Self::new().crash(victim, at)
    }
}

#[cfg(feature = "fault")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    use parking_lot::Mutex;

    use super::{CrashSpec, FaultPlan, MsgAction, MsgRule};
    use crate::message::Envelope;
    use crate::trace;
    use crate::universe::{RankFailure, WorldState};
    use crate::Rank;

    /// Number of live universes with a non-empty plan installed. The
    /// hook fast path bails on one relaxed load of this being zero.
    static ACTIVE_PLANS: AtomicUsize = AtomicUsize::new(0);
    /// Runtime arm/disarm switch, for the overhead bench's paired A/B.
    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Runtime switch: `set_enabled(false)` makes every hook bail after
    /// its fast-path load even with a plan installed (the
    /// `fault_experiment` bench alternates this to measure the armed
    /// hook cost by paired differencing).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::SeqCst);
    }

    struct CrashArm {
        point: Option<&'static str>,
        at: u64,
        hits: AtomicU64,
        fired: AtomicBool,
    }

    struct RuleState {
        rule: MsgRule,
        seen: u64,
    }

    struct DelayedMsg {
        dest_world: Rank,
        due: u64,
        env: Envelope,
    }

    struct MsgState {
        rules: Vec<RuleState>,
        /// Delivery-attempt sequence number per destination mailbox —
        /// the clock `Delay(n)` is measured against.
        delivered_to: Vec<u64>,
        delayed: Vec<DelayedMsg>,
    }

    struct Inner {
        /// Crash arms indexed by world rank.
        arms: Vec<Vec<CrashArm>>,
        /// Total injection points passed per rank (diagnostics).
        counters: Vec<AtomicU64>,
        msg: Mutex<MsgState>,
        crashes_fired: AtomicU64,
    }

    impl Inner {
        #[inline(never)]
        fn hit(&self, rank: Rank, name: &'static str) {
            self.counters[rank].fetch_add(1, Ordering::Relaxed);
            for arm in &self.arms[rank] {
                if arm.point.is_none_or(|p| p == name) {
                    let n = arm.hits.fetch_add(1, Ordering::Relaxed) + 1;
                    if n == arm.at && !arm.fired.swap(true, Ordering::Relaxed) {
                        self.crashes_fired.fetch_add(1, Ordering::Relaxed);
                        trace::instant(trace::cat::ULFM, "fault/crash", rank as u64, n);
                        // Involuntary `fail_here`: unwind with the same
                        // payload; the universe marks the rank failed
                        // and interruption-wakes every parked survivor.
                        std::panic::panic_any(RankFailure);
                    }
                }
            }
        }

        fn deliver(&self, dest_world: Rank, env: Envelope, push: &mut dyn FnMut(Envelope)) {
            let mut st = self.msg.lock();
            let mut action = None;
            for rs in st.rules.iter_mut() {
                let r = &rs.rule;
                if r.from == env.src_world
                    && r.to == dest_world
                    && r.tag.is_none_or(|t| t == env.tag)
                {
                    rs.seen += 1;
                    if rs.seen == r.nth {
                        action = Some(r.action);
                        break;
                    }
                }
            }
            st.delivered_to[dest_world] += 1;
            let now = st.delivered_to[dest_world];
            match action {
                Some(MsgAction::Drop) => {
                    trace::instant(trace::cat::ULFM, "fault/drop", env.src_world as u64, now);
                }
                Some(MsgAction::Delay(by)) => {
                    trace::instant(trace::cat::ULFM, "fault/delay", env.src_world as u64, by);
                    st.delayed.push(DelayedMsg {
                        dest_world,
                        due: now + by,
                        env,
                    });
                }
                Some(MsgAction::Duplicate) => {
                    trace::instant(trace::cat::ULFM, "fault/dup", env.src_world as u64, now);
                    push(env.clone());
                    push(env);
                }
                None => push(env),
            }
            // Release everything whose delay has elapsed for this
            // destination, in stash order (deterministic).
            let mut i = 0;
            while i < st.delayed.len() {
                if st.delayed[i].dest_world == dest_world && st.delayed[i].due <= now {
                    let d = st.delayed.remove(i);
                    push(d.env);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Per-universe fault state, owned by
    /// [`WorldState`](crate::universe::WorldState). `None` when the
    /// universe was launched without a plan.
    pub struct WorldFaults {
        inner: Option<Arc<Inner>>,
    }

    impl WorldFaults {
        pub(crate) fn new(plan: &FaultPlan, size: usize) -> Self {
            if plan.is_empty() {
                return WorldFaults { inner: None };
            }
            let mut arms: Vec<Vec<CrashArm>> = (0..size).map(|_| Vec::new()).collect();
            for &CrashSpec { rank, point, at } in &plan.crashes {
                assert!(
                    rank < size,
                    "crash rank {rank} out of range for size {size}"
                );
                arms[rank].push(CrashArm {
                    point,
                    at,
                    hits: AtomicU64::new(0),
                    fired: AtomicBool::new(false),
                });
            }
            for r in &plan.rules {
                assert!(
                    r.from < size && r.to < size,
                    "message rule ranks out of range for size {size}"
                );
            }
            ACTIVE_PLANS.fetch_add(1, Ordering::SeqCst);
            WorldFaults {
                inner: Some(Arc::new(Inner {
                    arms,
                    counters: (0..size).map(|_| AtomicU64::new(0)).collect(),
                    msg: Mutex::new(MsgState {
                        rules: plan
                            .rules
                            .iter()
                            .map(|&rule| RuleState { rule, seen: 0 })
                            .collect(),
                        delivered_to: vec![0; size],
                        delayed: Vec::new(),
                    }),
                    crashes_fired: AtomicU64::new(0),
                })),
            }
        }

        /// Crashes this plan has fired so far (diagnostics).
        pub(crate) fn crashes_fired(&self) -> u64 {
            self.inner
                .as_ref()
                .map_or(0, |i| i.crashes_fired.load(Ordering::Relaxed))
        }
    }

    impl Drop for WorldFaults {
        fn drop(&mut self) {
            if self.inner.is_some() {
                ACTIVE_PLANS.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    thread_local! {
        /// The rank thread's handle into its universe's fault state,
        /// installed by [`register_rank_thread`] at spawn.
        static CURRENT: RefCell<Option<(Arc<Inner>, Rank)>> = const { RefCell::new(None) };
    }

    /// Binds the calling rank thread to its universe's fault plan (a
    /// no-op when the universe has none). Called from
    /// `Universe::run_on` beside the trace snapshot-slot registration.
    pub(crate) fn register_rank_thread(world: &WorldState, rank: Rank) {
        if let Some(inner) = &world.faults.inner {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(inner), rank)));
        }
    }

    /// An injection point. One relaxed load when no plan is live
    /// anywhere; otherwise counts the point against the calling rank's
    /// crash arms and unwinds if one fires.
    #[inline]
    pub(crate) fn point(name: &'static str) {
        if ACTIVE_PLANS.load(Ordering::Relaxed) == 0 || !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        point_slow(name);
    }

    fn point_slow(name: &'static str) {
        let hit = CURRENT.with(|c| c.borrow().as_ref().map(|(i, r)| (Arc::clone(i), *r)));
        if let Some((inner, rank)) = hit {
            inner.hit(rank, name);
        }
    }

    /// Message-delivery interception: applies any matching rule, then
    /// hands the surviving envelope(s) to `push`. Inlines to a bare
    /// `push(env)` when no plan is live.
    #[inline]
    pub(crate) fn deliver<F: FnMut(Envelope)>(
        world: &WorldState,
        dest_world: Rank,
        env: Envelope,
        mut push: F,
    ) {
        if ACTIVE_PLANS.load(Ordering::Relaxed) == 0 || !ENABLED.load(Ordering::Relaxed) {
            push(env);
            return;
        }
        match &world.faults.inner {
            Some(inner) => inner.deliver(dest_world, env, &mut push),
            None => push(env),
        }
    }
}

#[cfg(not(feature = "fault"))]
mod imp {
    use super::FaultPlan;
    use crate::message::Envelope;
    use crate::universe::WorldState;
    use crate::Rank;

    /// Per-universe fault state; a zero-sized no-op without the
    /// `fault` feature.
    pub struct WorldFaults;

    // The zero-overhead contract: compiled out, the fault plane adds
    // no state to the world and no code to the hot paths.
    const _: () = assert!(std::mem::size_of::<WorldFaults>() == 0);

    impl WorldFaults {
        #[inline]
        pub(crate) fn new(_plan: &FaultPlan, _size: usize) -> Self {
            WorldFaults
        }

        #[inline]
        pub(crate) fn crashes_fired(&self) -> u64 {
            0
        }
    }

    /// No-op without the `fault` feature.
    #[inline]
    pub fn set_enabled(_on: bool) {}

    #[inline]
    pub(crate) fn register_rank_thread(_world: &WorldState, _rank: Rank) {}

    #[inline]
    pub(crate) fn point(_name: &'static str) {}

    #[inline]
    pub(crate) fn deliver<F: FnMut(Envelope)>(
        _world: &WorldState,
        _dest_world: Rank,
        env: Envelope,
        mut push: F,
    ) {
        push(env);
    }
}

pub(crate) use imp::{deliver, point, register_rank_thread};
pub use imp::{set_enabled, WorldFaults};

#[cfg(all(test, feature = "fault"))]
mod tests {
    use super::*;
    use crate::universe::{Config, RankOutcome, Universe};
    use crate::{op, MpiError};

    /// A planned crash at a named point kills exactly the victim; the
    /// survivors recover by revoke + shrink and finish the workload.
    #[test]
    fn crash_at_named_point_kills_victim_survivors_recover() {
        let plan = FaultPlan::new().crash_at(2, "mailbox/match", 2);
        let out = Universe::run_with_faults(Config::new(4), &plan, |comm| {
            let mut active = comm.dup().unwrap();
            let mut sum = 0u64;
            let mut rounds = 0;
            // The canonical ULFM round: attempt, revoke on local error
            // (a peer can be parked on a live rank that errored — only
            // revocation reaches it), agree on success (a mid-phase
            // crash can fail some ranks' collectives while others
            // complete), recover together when anyone errored.
            while rounds < 6 {
                let r = active.allreduce_one(1u64, op::Sum);
                if r.is_err() && !active.is_revoked() {
                    active.revoke();
                }
                if active.agree_and(r.is_ok()).unwrap() {
                    sum = r.unwrap();
                    rounds += 1;
                } else {
                    if !active.is_revoked() {
                        active.revoke();
                    }
                    active = active.shrink().unwrap();
                }
            }
            sum
        });
        assert!(matches!(out[2], RankOutcome::Failed), "{:?}", out[2]);
        for (r, o) in out.iter().enumerate() {
            if r == 2 {
                continue;
            }
            match o {
                RankOutcome::Completed(v) => assert_eq!(*v, 3, "rank {r}"),
                o => panic!("survivor {r} did not complete: {o:?}"),
            }
        }
    }

    /// An any-point crash arm fires deterministically: the same plan
    /// over the same workload kills the same rank both times.
    #[test]
    fn seeded_plans_are_deterministic() {
        assert_eq!(FaultPlan::seeded(7, 4), FaultPlan::seeded(7, 4));
        let plan = FaultPlan::seeded(7, 4);
        let victims = plan.crashed_ranks();
        assert_eq!(victims.len(), 1);
        assert!(victims[0] >= 1 && victims[0] < 4);
        let run = |plan: &FaultPlan| {
            Universe::run_with_faults(Config::new(4), plan, |comm| {
                let mut active = comm.dup().unwrap();
                for _ in 0..40 {
                    let r = active.allreduce_one(1u64, op::Sum);
                    if r.is_err() && !active.is_revoked() {
                        active.revoke();
                    }
                    if !active.agree_and(r.is_ok()).unwrap() {
                        if !active.is_revoked() {
                            active.revoke();
                        }
                        active = active.shrink().unwrap();
                    }
                }
                active.size()
            })
            .into_iter()
            .map(|o| matches!(o, RankOutcome::Failed))
            .collect::<Vec<_>>()
        };
        assert_eq!(run(&plan), run(&plan));
    }

    /// A fault-free (empty) plan is bit-identical to a plain run.
    #[test]
    fn empty_plan_is_transparent() {
        let plain = Universe::run(3, |comm| {
            comm.allreduce_one(comm.rank() as u64 + 1, op::Sum).unwrap()
        });
        let faulted = Universe::run_with_faults(Config::new(3), &FaultPlan::new(), |comm| {
            comm.allreduce_one(comm.rank() as u64 + 1, op::Sum).unwrap()
        })
        .into_iter()
        .map(|o| o.unwrap())
        .collect::<Vec<_>>();
        assert_eq!(plain, faulted);
    }

    /// Drop: the matched message never arrives; a later message on a
    /// different tag still does (the drop is surgical, not a link cut).
    #[test]
    fn drop_rule_discards_exactly_the_matched_message() {
        let plan = FaultPlan::new().drop_message(0, 1, Some(7), 1);
        let out = Universe::run_with_faults(Config::new(2), &plan, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u32], 1, 7).unwrap();
                comm.send(&[2u32], 1, 8).unwrap();
                0
            } else {
                let (v, _) = comm.recv_vec::<u32>(0, 8).unwrap();
                assert_eq!(v, vec![2]);
                // The tag-7 message was dropped before matching: it is
                // not queued and never will be.
                assert!(comm.iprobe(0, 7).is_none());
                1
            }
        });
        assert!(out.iter().all(|o| matches!(o, RankOutcome::Completed(_))));
    }

    /// Duplicate: the matched message is delivered twice.
    #[test]
    fn duplicate_rule_delivers_twice() {
        let plan = FaultPlan::new().duplicate_message(0, 1, Some(7), 1);
        Universe::run_with_faults(Config::new(2), &plan, |comm| {
            if comm.rank() == 0 {
                comm.send(&[9u32], 1, 7).unwrap();
            } else {
                let (a, _) = comm.recv_vec::<u32>(0, 7).unwrap();
                let (b, _) = comm.recv_vec::<u32>(0, 7).unwrap();
                assert_eq!((a, b), (vec![9], vec![9]));
            }
        })
        .into_iter()
        .for_each(|o| {
            o.unwrap();
        });
    }

    /// Delay(1): the matched message is reordered past the next
    /// delivery to the same destination — a wildcard receive observes
    /// the later send first.
    #[test]
    fn delay_rule_reorders_past_later_traffic() {
        let plan = FaultPlan::new().delay_message(0, 1, Some(7), 1, 1);
        Universe::run_with_faults(Config::new(2), &plan, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1u32], 1, 7).unwrap();
                comm.send(&[2u32], 1, 8).unwrap();
            } else {
                let (first, st) = comm
                    .recv_vec::<u32>(crate::ANY_SOURCE, crate::ANY_TAG)
                    .unwrap();
                assert_eq!(st.tag, 8, "delayed tag-7 must arrive after tag-8");
                assert_eq!(first, vec![2]);
                let (second, _) = comm.recv_vec::<u32>(0, 7).unwrap();
                assert_eq!(second, vec![1]);
            }
        })
        .into_iter()
        .for_each(|o| {
            o.unwrap();
        });
    }

    /// A sender crashed by `mailbox/push` is detected: the receiver's
    /// blocking receive surfaces `ProcessFailed` instead of hanging.
    #[test]
    fn crashed_sender_surfaces_process_failed() {
        let plan = FaultPlan::new().crash_at(0, "mailbox/push", 1);
        let out = Universe::run_with_faults(Config::new(2), &plan, |comm| {
            if comm.rank() == 0 {
                // Dies inside this send's mailbox push.
                comm.send(&[1u32], 1, 7).unwrap();
                unreachable!("the push point must have fired");
            }
            match comm.recv_vec::<u32>(0, 7) {
                Err(MpiError::ProcessFailed { world_rank: 0 }) => (),
                other => panic!("expected ProcessFailed from rank 0, got {other:?}"),
            }
        });
        assert!(matches!(out[0], RankOutcome::Failed));
        assert!(matches!(out[1], RankOutcome::Completed(())));
    }

    /// A live plan whose arms never match (unknown point name, count
    /// never reached) is inert: the run completes exactly like a
    /// fault-free one.
    /// The agreement protocol's recovery seam: a member that has
    /// contributed but not yet frozen the outcome dies (planned crash
    /// at `ulfm/contribute`, reached under the table lock — the lock
    /// releases on unwind). The failure mark bumps the interruption
    /// epoch, and a parked survivor re-runs the idempotent freeze
    /// evaluation in the dead would-be freezer's stead: every survivor
    /// still observes the identical outcome, within a deadline.
    #[test]
    fn agree_survives_freezer_crash_mid_agreement() {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let plan = FaultPlan::new().crash_at(1, "ulfm/contribute", 1);
            let out = Universe::run_with_faults(Config::new(3), &plan, |comm| {
                comm.agree_and(true).unwrap()
            });
            let _ = tx.send(out);
        });
        let out = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("agreement with a crashed freezer must still terminate");
        for (rank, o) in out.iter().enumerate() {
            match o {
                RankOutcome::Failed => assert_eq!(rank, 1),
                RankOutcome::Completed(v) => assert!(*v, "rank {rank}"),
                RankOutcome::Panicked(m) => panic!("rank {rank} panicked: {m}"),
            }
        }
    }

    #[test]
    fn unmatched_arms_never_fire() {
        let plan = FaultPlan::new()
            .crash_at(1, "no/such/point", 1)
            .crash(0, u64::MAX);
        let out = Universe::run_with_faults(Config::new(2), &plan, |comm| {
            if comm.rank() == 1 {
                comm.send(&[1u32], 0, 3).unwrap();
            } else {
                comm.recv_vec::<u32>(1, 3).unwrap();
            }
        });
        assert!(out.iter().all(|o| matches!(o, RankOutcome::Completed(()))));
    }
}
