//! The message-matching engine: per-rank, per-context two-queue matching
//! with targeted wakeups.
//!
//! Each rank owns one [`Mailbox`]. Senders push envelopes (the transport
//! is an eager protocol, as in shared-memory MPI for small/medium
//! messages); receivers match on `(context, source, tag)` with optional
//! wildcards. This module is the transport hot path: every p2p message,
//! every probe, and every round of every collective algorithm — blocking
//! or non-blocking — funnels through it.
//!
//! # Design: the two-queue matching structure
//!
//! Real MPI implementations (MPICH, Open MPI — the runtimes that MPL- and
//! RWTH-style bindings inherit their matching from) do not keep one flat
//! message queue. They keep two, and so does this engine:
//!
//! - the **unexpected-message queue** (UMQ) holds envelopes that arrived
//!   before a matching receive was posted. Here it is an index: a hash
//!   map from `(source, tag)` to a FIFO of envelopes, so the common case
//!   — a receive with both selectors specific — pops in O(1) instead of
//!   linearly scanning past every unrelated message. Wildcard receives
//!   (`Src::Any` / `TagSel::Any`) scan only the *head* of each per-key
//!   FIFO, i.e. O(distinct live (source, tag) pairs), not O(messages).
//! - the **posted-receive queue** (PRQ) holds waiting receivers (and
//!   blocking probes). When an envelope arrives, [`Mailbox::push`]
//!   matches it against the PRQ in posting order and, on a hit, delivers
//!   it *directly into that waiter's slot* and wakes exactly that waiter
//!   via its own condition variable. The envelope never touches the UMQ,
//!   and no other waiter is disturbed — the `notify_all` thundering herd
//!   (every waiter waking to rescan on every push) is gone.
//!
//! Queues are **sharded by communicator context**: each context id maps
//! to its own shard with its own lock, so collective rounds on a
//! dup'd communicator never contend with application point-to-point
//! traffic on the world communicator.
//!
//! # Why matching order survives the index (proof sketch)
//!
//! MPI requires (a) *non-overtaking*: two messages from the same sender
//! matching the same receive are received in send order, and (b) FIFO
//! matching between wildcard and specific receives: a receive matches the
//! *earliest-arrived* envelope its selectors admit.
//!
//! Every envelope is stamped with a per-shard arrival sequence number
//! under the shard lock, so stamps are totally ordered per context and
//! respect per-sender program order (a sender's pushes to one rank
//! happen in program order). Within one `(source, tag)` FIFO, envelopes
//! are therefore in arrival = send order, which gives (a) for fully
//! specific receives directly. A wildcard receive takes the minimum
//! stamp over the matching FIFO *heads*; since each FIFO is
//! arrival-ordered, the minimum over heads is the global
//! earliest-arrived matching envelope, which gives (b) — and (a) as a
//! special case, because the earliest matching envelope from a given
//! source is always that source's FIFO head. Sharding cannot reorder
//! anything: matching never crosses contexts, and stamps are only ever
//! compared within one shard.
//!
//! # Blocking waits: targeted wakeups, no polling
//!
//! A blocking receive first scans the UMQ; on a miss it registers a
//! waiter in the PRQ and sleeps on its *private* condvar until a push
//! fulfills it. There is no timed-poll safety net: the 50 ms bounded
//! wait of the previous linear-scan mailbox (a latency floor whenever a
//! wakeup was missed) is retired. Interruption (ULFM failure injection
//! and communicator revocation, see [`crate::ulfm`]) instead uses an
//! epoch protocol: [`Mailbox::interrupt`] bumps the mailbox epoch
//! *before* waking every posted waiter while holding its lock, and a
//! waiter re-reads the epoch under its own lock before every sleep.
//! Since the interrupting thread raises its condition before bumping the
//! epoch, and the waiter captures the epoch before its final
//! pre-registration interruption check, every interleaving either makes
//! the condition visible to a check or makes the epochs differ — a
//! waiter can never sleep through an interrupt. A waiter that observes
//! an interruption deregisters under the shard lock and *re-checks its
//! delivery slot*: a push that matched it concurrently wins, so an
//! already-matched message is delivered, never dropped (MPI completes
//! operations that already matched).
//!
//! # Multi-waiter registrations (the completion subsystem's hook)
//!
//! [`crate::completion`] parks one thread against *many* pending
//! sources at once (`wait_any` over a request set, a pool, a mixed
//! batch of sends and collective engines). Its mailbox hook is the
//! third posted-queue entry kind, the **notification-only**
//! registration (`Mailbox::register_notify`): when a push matches
//! one, the envelope is **not** delivered into the waiter — the waiter
//! is *claimed* (first completion wins; the claim records which
//! registration fired) and woken, and the envelope continues down the
//! normal path into the unexpected queue, where the woken thread's
//! re-test pops it. Because a claim carries no message, cancelling the
//! waiter's other registrations can never lose anything: a push racing
//! a deregistration either finds the entry (claims an already-claimed
//! waiter — a no-op — and drops the dead entry) or does not (the entry
//! was removed first); the envelope is queued and matchable either way.
//! This extends PR 4's cancel-rechecks-the-delivery-slot proof by
//! moving the delivery out of the race entirely; the 500-iteration
//! `completion_racing_deregistration_never_loses` test pins it, and the
//! matching proptests replay randomized push/register/cancel/interrupt
//! interleavings against the oracle to check that registrations are
//! *transparent* to matching order.
//!
//! Interrupts reach parked multi-waiters through the same epoch
//! protocol as posted receives: [`Mailbox::interrupt`] bumps the epoch,
//! then wakes every posted entry *and* every watcher registered via
//! `Mailbox::watch` (a multi-waiter with only non-mailbox sources —
//! e.g. a synchronous-send acknowledgement — still needs failure and
//! revocation wakeups).
//!
//! The seed implementation — one coarse `Mutex<VecDeque>` with O(n)
//! scans and broadcast wakeups — is preserved verbatim in
//! [`reference`](mod@reference) as the differential-testing oracle and the benchmark
//! baseline (`matching_experiment`).

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::completion::{fresh_waiter, Waiter, WaiterSlot};
use crate::error::{MpiError, Result};
use crate::message::{Envelope, Src, Status, TagSel};
use crate::trace;
use crate::{Rank, Tag};

/// FxHash-style multiply-rotate hasher for the hot-path indices. The
/// keys are tiny (`(Rank, Tag)` pairs, context ids) and under the shard
/// lock there is no untrusted input to defend against, so the default
/// SipHash's DoS resistance would be pure overhead — at shallow queue
/// depths the hash itself dominates matching cost.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u32 as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// What a posted waiter is waiting for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PostKind {
    /// A receive: consumes the matching envelope.
    Recv,
    /// A blocking probe: observes the matching envelope's status; the
    /// envelope stays available.
    Peek,
    /// A multi-source registration ([`crate::completion`]): a matching
    /// push *claims* the waiter with this source index and wakes it, but
    /// the envelope is NOT consumed — it continues into the unexpected
    /// queue for the woken thread's re-test to pop.
    Notify(usize),
    /// A *standing* registration: claim-and-wake exactly like
    /// [`PostKind::Notify`], but the entry **survives the fire** — it
    /// stays posted and claims again on the next matching push. This is
    /// the persistent-request / pool-session hook: register once at
    /// init, then every `start`/`wait` cycle re-arms in O(1) with zero
    /// re-registration ([`crate::persistent`],
    /// [`crate::completion::PoolSession`]). Removed only by explicit
    /// deregistration.
    Standing(usize),
}

/// One entry of the posted-receive queue.
struct Posted {
    src: Src,
    tag: TagSel,
    kind: PostKind,
    waiter: Arc<Waiter>,
}

/// An indexed standing registration (fully-specific selector): the
/// claim target a push finds by `(source, tag)` hash lookup instead of
/// a posted-queue scan.
struct StandingReg {
    slot: usize,
    waiter: Arc<Waiter>,
    /// Wake-only discipline (see [`Mailbox::register_standing`]): claim
    /// only while the waiter is armed. `false` keeps full claim/missed
    /// recording on every matching push.
    wake_only: bool,
}

/// Per-context matching state: the `(source, tag)`-indexed unexpected-
/// message queue and the posted-receive queue.
#[derive(Default)]
struct ShardState {
    /// Arrival stamp source; assigned under the shard lock.
    next_seq: u64,
    /// Unexpected-message queue. Invariant: no empty FIFOs (keys are
    /// removed when drained), so wildcard head-scans touch only live
    /// `(source, tag)` pairs.
    umq: FxMap<(Rank, Tag), VecDeque<(u64, Envelope)>>,
    /// Posted receives and probes, in posting order.
    posted: VecDeque<Posted>,
    /// Standing registrations with fully-specific `(source, tag)`
    /// selectors, indexed for O(1) claim on push. A rank holding many
    /// frozen plans (one standing entry per persistent receive) would
    /// otherwise tax **every** arriving message with a linear scan of
    /// all of them. Wildcard standing registrations stay in `posted`.
    standing_idx: FxMap<(Rank, Tag), Vec<StandingReg>>,
    /// Retired FIFO allocations, reused for new keys. Collective
    /// traffic burns one `(source, tag)` key per peer per operation
    /// (fresh internal tags); without the pool every such key would
    /// allocate a fresh queue buffer.
    pool: Vec<VecDeque<(u64, Envelope)>>,
}

impl ShardState {
    /// Key of the earliest-arrived envelope admitted by the selectors
    /// (wildcard path: scans per-key FIFO heads only).
    fn earliest_key(&self, src: Src, tag: TagSel) -> Option<(Rank, Tag)> {
        let mut best: Option<(u64, (Rank, Tag))> = None;
        for (&key, q) in &self.umq {
            if !src.admits(key.0) || !tag.admits(key.1) {
                continue;
            }
            let &(seq, _) = q.front().expect("drained UMQ keys are removed");
            if best.is_none_or(|(b, _)| seq < b) {
                best = Some((seq, key));
            }
        }
        best.map(|(_, k)| k)
    }

    /// Removes and returns the first matching envelope (tagged with its
    /// arrival seq), if any.
    fn pop_match(&mut self, src: Src, tag: TagSel) -> Option<(u64, Envelope)> {
        let key = match (src, tag) {
            // Fully specific: O(1) index hit.
            (Src::Rank(r), TagSel::Is(t)) => (r, t),
            _ => self.earliest_key(src, tag)?,
        };
        // One hash op for lookup, pop and removal via the entry API.
        let std::collections::hash_map::Entry::Occupied(mut o) = self.umq.entry(key) else {
            return None;
        };
        let (seq, env) = o
            .get_mut()
            .pop_front()
            .expect("drained UMQ keys are removed");
        if o.get().is_empty() {
            let q = o.remove();
            if self.pool.len() < 64 {
                self.pool.push(q);
            }
        }
        Some((seq, env))
    }

    /// Indexes an unexpected envelope, reusing a pooled FIFO buffer for
    /// a new key.
    fn enqueue(&mut self, seq: u64, env: Envelope) {
        let q = match self.umq.entry((env.src, env.tag)) {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.pool.pop().unwrap_or_default())
            }
        };
        q.push_back((seq, env));
    }

    /// Status of the first matching envelope without removing it.
    fn peek_match(&self, src: Src, tag: TagSel) -> Option<Status> {
        let q = match (src, tag) {
            (Src::Rank(r), TagSel::Is(t)) => self.umq.get(&(r, t))?,
            _ => &self.umq[&self.earliest_key(src, tag)?],
        };
        let (_, env) = q.front().expect("drained UMQ keys are removed");
        Some(Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        })
    }
}

#[derive(Default)]
struct Shard {
    state: Mutex<ShardState>,
}

/// Post-run diagnostics of one rank's matching engine (see
/// [`crate::Comm::mailbox_stats`] and
/// [`crate::Universe::run_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Messages currently queued as unexpected (all contexts).
    pub queued: usize,
    /// High-water mark of the unexpected-queue depth — the matching
    /// pressure: how far senders ran ahead of this rank's receives.
    pub max_unexpected_depth: usize,
    /// Number of envelopes delivered straight into a posted waiter's
    /// slot (each such delivery wakes exactly that one waiter).
    pub targeted_wakeups: u64,
    /// Number of pushes that claimed a parked multi-source waiter
    /// ([`crate::completion`]): each claim wakes exactly that one
    /// waiter, exactly once — the waiter's remaining registrations go
    /// silent.
    pub multi_wakeups: u64,
    /// Wakeups of parked waiters that delivered no completion claim
    /// (interruption-epoch re-checks). Bounded by the number of
    /// interruption events — there is no timer to wake anybody.
    pub spurious_wakeups: u64,
    /// High-water mark of concurrently parked completion waiters.
    pub max_parked: usize,
    /// Total waiter registrations inserted into posted queues (notify +
    /// standing): the zero-re-registration pin for persistent and pool
    /// steady states.
    pub notify_registrations: u64,
    /// Live per-context shard allocations, including the world shard.
    /// Shards are created on first use per context that carried traffic
    /// or posted a receive; [`crate::Comm::free`] reclaims a derived
    /// context's shard, so dup/split-heavy workloads that free their
    /// communicators hold this gauge flat.
    pub shard_count: usize,
    /// Total envelopes ever pushed into this rank's engine — the
    /// message-count meter: a sparse neighborhood exchange must grow it
    /// by the rank's in-degree per round where a dense alltoallv grows
    /// it by p-1.
    pub envelopes_posted: u64,
}

/// A rank's matching engine: per-context shards of the two-queue
/// structure described in the [module docs](self).
#[derive(Default)]
pub struct Mailbox {
    /// The world communicator's shard (context 0), reached without
    /// touching the shard map — the hot path for every universe.
    world_shard: Arc<Shard>,
    /// Shards of derived communicators (dup/split contexts).
    shards: RwLock<FxMap<u64, Arc<Shard>>>,
    /// Unexpected messages across all shards (O(1) `len`).
    queued: AtomicUsize,
    /// High-water mark of `queued`.
    max_depth: AtomicUsize,
    /// Direct posted-waiter deliveries (receives and probes).
    wakeups: AtomicU64,
    /// Claims of parked multi-source waiters (see [`crate::completion`]).
    multi_wakeups: AtomicU64,
    /// Parked wakeups that carried no claim (epoch re-checks).
    spurious: AtomicU64,
    /// Parked completion waiters right now, and the high-water mark.
    parked_now: AtomicUsize,
    max_parked: AtomicUsize,
    /// Parked completion waiters to wake on [`Mailbox::interrupt`]
    /// (multi-waiters are not per-shard: one park may span contexts and
    /// non-mailbox sources).
    watchers: Mutex<Vec<Arc<Waiter>>>,
    /// Interruption epoch; bumped by [`Mailbox::interrupt`].
    epoch: AtomicU64,
    /// Waiter registrations inserted into posted queues (notify +
    /// standing). The O(1)-amortized-re-park pins count this: a
    /// steady-state persistent/pool cycle must not move it.
    registrations: AtomicU64,
    /// Total envelopes ever pushed (delivered targeted *or* queued) —
    /// the per-rank message count the neighborhood bench pins.
    envelopes: AtomicU64,
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// The shard of `context`, created on first use (receivers may post
    /// before the first message of a context arrives, and vice versa).
    fn shard(&self, context: u64) -> Arc<Shard> {
        if context == 0 {
            return Arc::clone(&self.world_shard);
        }
        if let Some(s) = self.shards.read().get(&context) {
            return Arc::clone(s);
        }
        Arc::clone(self.shards.write().entry(context).or_default())
    }

    /// The shard of `context` if it exists (the non-blocking paths never
    /// create shards).
    fn existing_shard(&self, context: u64) -> Option<Arc<Shard>> {
        if context == 0 {
            return Some(Arc::clone(&self.world_shard));
        }
        self.shards.read().get(&context).cloned()
    }

    /// Delivers an envelope: hands it directly to the first matching
    /// posted receiver (waking exactly that waiter) or, if none is
    /// posted, indexes it into the unexpected-message queue. Matching
    /// blocking probes observe the envelope's status on the way.
    pub fn push(&self, env: Envelope) {
        crate::fault::point("mailbox/push");
        self.envelopes.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(env.context);
        let mut st = shard.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        // Indexed standing registrations first: one hash lookup claims
        // every registered waiter for this exact `(source, tag)`.
        // Claims are wake-only (the envelope is not consumed here), so
        // firing them before the posted-queue scan cannot reroute the
        // message; at worst a posted receive below consumes it and the
        // claimed waiter's re-test comes up empty — the documented
        // claims-never-carry-messages contract.
        if let Some(regs) = st.standing_idx.get(&(env.src, env.tag)) {
            for reg in regs {
                // Wake-only registrations are claimed only while the
                // owner is actually waiting: a busy owner re-tests the
                // queues anyway, so firing a claim at it would cost a
                // waiter lock and a wakeup per message for nothing.
                if reg.wake_only && !reg.waiter.armed.load(Ordering::SeqCst) {
                    continue;
                }
                self.claim_standing(&reg.waiter, reg.slot, seq);
            }
        }
        // Posted-receive queue next, in posting order: every matching
        // probe is fulfilled (the message stays available); the first
        // matching receive consumes the envelope — it never touches the
        // UMQ and nobody else is woken.
        let mut i = 0;
        while i < st.posted.len() {
            let p = &st.posted[i];
            if !env.matches(env.context, p.src, p.tag) {
                i += 1;
                continue;
            }
            if let PostKind::Standing(slot) = p.kind {
                // Wildcard standing registration: claim-or-miss exactly
                // like Notify below, but the entry is NOT removed — it
                // keeps claiming for every future matching push, so
                // persistent cycles never re-register. The envelope
                // stays live. (Fully-specific standing registrations
                // were already claimed through `standing_idx` above.)
                self.claim_standing(&p.waiter, slot, seq);
                i += 1;
                continue;
            }
            let p = st.posted.remove(i).expect("index in bounds");
            let mut w = p.waiter.state.lock();
            match p.kind {
                PostKind::Peek => {
                    w.status = Some(Status {
                        source: env.src,
                        tag: env.tag,
                        bytes: env.payload.len(),
                    });
                    p.waiter.cond.notify_one();
                    drop(w);
                    self.wakeups.fetch_add(1, Ordering::Relaxed);
                    // The envelope is still available; keep scanning at
                    // the same index (entry `i` was removed).
                }
                PostKind::Recv => {
                    trace::instant(trace::cat::MATCH, "targeted_wakeup", seq, env.src as u64);
                    w.env = Some(env);
                    p.waiter.cond.notify_one();
                    drop(w);
                    self.wakeups.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                PostKind::Notify(slot) => {
                    // Notification-only: claim the waiter (first
                    // completion wins) and keep the envelope live — it
                    // falls through to the unexpected queue (or a later
                    // posted receive) for the woken thread's re-test.
                    // A completion landing while the waiter is already
                    // claimed is recorded as *missed* instead of waking
                    // anybody: the claim's owner drains the missed list
                    // on its next pass, so standing registrations
                    // ([`crate::completion::ParkSession`]) never need a
                    // rescan and never double-wake. Entry `i` was
                    // removed; keep scanning at the same index.
                    if !w.claimed {
                        w.claimed = true;
                        w.fired = Some(slot);
                        p.waiter.cond.notify_one();
                        drop(w);
                        self.multi_wakeups.fetch_add(1, Ordering::Relaxed);
                        trace::instant(trace::cat::COMPLETION, "claim", slot as u64, seq);
                    } else {
                        w.missed.push(slot);
                        trace::instant(
                            trace::cat::COMPLETION,
                            "missed_completion",
                            slot as u64,
                            seq,
                        );
                    }
                }
                PostKind::Standing(_) => unreachable!("standing entries are never removed above"),
            }
        }
        st.enqueue(seq, env);
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        trace::umq_enqueue(seq, depth as u64);
    }

    /// Claim-or-miss on a standing registration's waiter: the first
    /// completion claims (and wakes) the waiter; later ones land in its
    /// missed list for the owner's next drain pass. Claims never carry
    /// messages — the woken thread re-tests against the queues.
    fn claim_standing(&self, waiter: &Arc<Waiter>, slot: usize, seq: u64) {
        let mut w = waiter.state.lock();
        if !w.claimed {
            w.claimed = true;
            w.fired = Some(slot);
            waiter.cond.notify_one();
            drop(w);
            self.multi_wakeups.fetch_add(1, Ordering::Relaxed);
            trace::instant(trace::cat::COMPLETION, "claim", slot as u64, seq);
        } else {
            w.missed.push(slot);
            trace::instant(
                trace::cat::COMPLETION,
                "missed_completion",
                slot as u64,
                seq,
            );
        }
    }

    /// Wakes all posted waiters without delivering anything, so they can
    /// re-check interruption conditions (failure / revocation). The
    /// epoch is bumped *before* any waiter is woken, and each wakeup is
    /// issued while holding that waiter's lock — together with the
    /// waiters' capture-epoch-then-check protocol this guarantees no
    /// waiter misses the interrupt (see the module docs).
    pub fn interrupt(&self) {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        trace::instant(trace::cat::ULFM, "epoch_bump", epoch, 0);
        let mut shards: Vec<Arc<Shard>> = self.shards.read().values().cloned().collect();
        shards.push(Arc::clone(&self.world_shard));
        for shard in shards {
            let st = shard.state.lock();
            for p in &st.posted {
                let _w = p.waiter.state.lock();
                p.waiter.cond.notify_one();
            }
            for regs in st.standing_idx.values() {
                for r in regs {
                    let _w = r.waiter.state.lock();
                    r.waiter.cond.notify_one();
                }
            }
        }
        // Parked completion waiters may have no posted entry at all
        // (e.g. waiting only on a synchronous-send acknowledgement);
        // the watcher list reaches every one of them.
        for w in self.watchers.lock().iter() {
            let _g = w.state.lock();
            w.cond.notify_one();
        }
    }

    // ----- completion-subsystem hooks (see `crate::completion`) ----------

    /// Current interruption epoch (captured by parked waits before
    /// their availability checks).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Registers `waiter` for a claim-and-wake when a message matching
    /// `(context, src, tag)` arrives. Returns `true` — without
    /// registering — if a matching message is *already* queued: the
    /// check and the registration happen under the shard lock pushes
    /// take, so no arrival can fall between them.
    pub(crate) fn register_notify(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        waiter: &Arc<Waiter>,
        slot: usize,
    ) -> bool {
        let shard = self.shard(context);
        let mut st = shard.state.lock();
        if st.peek_match(src, tag).is_some() {
            return true;
        }
        st.posted.push_back(Posted {
            src,
            tag,
            kind: PostKind::Notify(slot),
            waiter: Arc::clone(waiter),
        });
        self.registrations.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Registers a **standing** claim-and-wake: like
    /// [`Mailbox::register_notify`] but the entry survives every fire —
    /// it keeps claiming until explicitly deregistered, so persistent
    /// `start`/`wait` cycles and pool re-parks touch the posted queue
    /// zero times in the steady state. The registration is *always*
    /// inserted; the return value reports whether a matching message was
    /// already queued at registration time (the caller must re-test,
    /// since no claim fires for messages that arrived earlier). The
    /// check and the insertion happen under the shard lock pushes take.
    ///
    /// `wake_only` opts into the armed-flag discipline
    /// ([`Waiter::armed`]): pushes claim the waiter only while its
    /// owner is waiting. Legal only for owners that re-test the queues
    /// on every pass and never read claims as completion records
    /// (persistent requests); owners that rely on claim/missed
    /// recording ([`crate::completion::PoolSession`]) must pass
    /// `false`. Wildcard selectors keep claim-always behavior
    /// regardless — only indexed (fully-specific) entries check the
    /// flag.
    pub(crate) fn register_standing(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        waiter: &Arc<Waiter>,
        slot: usize,
        wake_only: bool,
    ) -> bool {
        let shard = self.shard(context);
        let mut st = shard.state.lock();
        let already_queued = st.peek_match(src, tag).is_some();
        if let (Src::Rank(r), TagSel::Is(t)) = (src, tag) {
            // Fully-specific selector: indexed, so steady-state pushes
            // claim it by hash lookup instead of scanning every frozen
            // plan's entry.
            st.standing_idx
                .entry((r, t))
                .or_default()
                .push(StandingReg {
                    slot,
                    waiter: Arc::clone(waiter),
                    wake_only,
                });
        } else {
            st.posted.push_back(Posted {
                src,
                tag,
                kind: PostKind::Standing(slot),
                waiter: Arc::clone(waiter),
            });
        }
        self.registrations.fetch_add(1, Ordering::Relaxed);
        already_queued
    }

    /// Removes every notify *and* standing registration of `waiter` in
    /// `context`. A push racing this either claimed the waiter before
    /// the entry vanished (the message is queued and matchable) or finds
    /// no entry (same); nothing is ever lost.
    pub(crate) fn deregister_notify(&self, context: u64, waiter: &Arc<Waiter>) {
        let Some(shard) = self.existing_shard(context) else {
            return;
        };
        let mut st = shard.state.lock();
        st.posted.retain(|p| {
            !(matches!(p.kind, PostKind::Notify(_) | PostKind::Standing(_))
                && Arc::ptr_eq(&p.waiter, waiter))
        });
        st.standing_idx.retain(|_, regs| {
            regs.retain(|r| !Arc::ptr_eq(&r.waiter, waiter));
            !regs.is_empty()
        });
    }

    /// Removes `waiter`'s notify/standing registrations carrying `slot`
    /// in `context`, leaving its other slots registered (a pool session
    /// retires one completed entry without disturbing the rest).
    pub(crate) fn deregister_slot(&self, context: u64, waiter: &Arc<Waiter>, slot: usize) {
        let Some(shard) = self.existing_shard(context) else {
            return;
        };
        let mut st = shard.state.lock();
        st.posted.retain(|p| {
            !(matches!(p.kind, PostKind::Notify(s) | PostKind::Standing(s) if s == slot)
                && Arc::ptr_eq(&p.waiter, waiter))
        });
        st.standing_idx.retain(|_, regs| {
            regs.retain(|r| !(r.slot == slot && Arc::ptr_eq(&r.waiter, waiter)));
            !regs.is_empty()
        });
    }

    /// Adds a parked completion waiter to the interrupt watcher list
    /// and maintains the parked-waiter gauges.
    pub(crate) fn watch(&self, waiter: &Arc<Waiter>) {
        self.watchers.lock().push(Arc::clone(waiter));
        let now = self.parked_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_parked.fetch_max(now, Ordering::Relaxed);
    }

    /// Removes a waiter from the interrupt watcher list.
    pub(crate) fn unwatch(&self, waiter: &Arc<Waiter>) {
        self.watchers.lock().retain(|w| !Arc::ptr_eq(w, waiter));
        self.parked_now.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts a parked wakeup that carried no completion claim.
    pub(crate) fn record_spurious(&self) {
        self.spurious.fetch_add(1, Ordering::Relaxed);
        trace::instant(trace::cat::COMPLETION, "spurious_wakeup", 0, 0);
    }

    /// Removes and returns the first matching envelope, if any.
    pub fn try_match(&self, context: u64, src: Src, tag: TagSel) -> Option<Envelope> {
        let shard = self.existing_shard(context)?;
        let (seq, env) = shard.state.lock().pop_match(src, tag)?;
        self.queued.fetch_sub(1, Ordering::Relaxed);
        trace::instant(trace::cat::MATCH, "umq_match", seq, env.src as u64);
        Some(env)
    }

    /// Returns the status of the first matching envelope without
    /// removing it (probe semantics).
    pub fn try_peek(&self, context: u64, src: Src, tag: TagSel) -> Option<Status> {
        let shard = self.existing_shard(context)?;
        let st = shard.state.lock();
        st.peek_match(src, tag)
    }

    /// Blocks until a matching envelope arrives and removes it.
    ///
    /// `interrupted` is evaluated whenever the epoch protocol wakes the
    /// waiter; returning `Some(err)` aborts the wait. It is checked
    /// *after* the queue scan (and after the delivery slot on
    /// interruption), so a message that has already arrived — or already
    /// matched this waiter — from a subsequently-failed sender is still
    /// delivered (MPI completes operations that already matched).
    pub fn wait_match(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        mut interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Envelope> {
        crate::fault::point("mailbox/match");
        let shard = self.shard(context);
        // The epoch must be captured before the interruption check: an
        // interrupt bumps the epoch before waking, so a condition raised
        // after this load is caught by the epoch comparison below, and
        // one raised before it is caught by `interrupted()`.
        let mut seen_epoch = self.epoch.load(Ordering::SeqCst);
        let waiter = {
            let mut st = shard.state.lock();
            if let Some((seq, env)) = st.pop_match(src, tag) {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                trace::instant(trace::cat::MATCH, "umq_match", seq, env.src as u64);
                return Ok(env);
            }
            if let Some(err) = interrupted() {
                return Err(err);
            }
            let waiter = fresh_waiter();
            st.posted.push_back(Posted {
                src,
                tag,
                kind: PostKind::Recv,
                waiter: Arc::clone(&waiter),
            });
            waiter
        };
        loop {
            let mut w = waiter.state.lock();
            loop {
                if let Some(env) = w.env.take() {
                    return Ok(env);
                }
                let now = self.epoch.load(Ordering::SeqCst);
                if now != seen_epoch {
                    seen_epoch = now;
                    // This wakeup records no event of its own; answer
                    // any pending live-snapshot request explicitly.
                    trace::poll_publish();
                    break;
                }
                waiter.cond.wait(&mut w);
            }
            drop(w);
            if let Some(err) = interrupted() {
                // Deregister — but a concurrent push may have fulfilled
                // the waiter already; the delivery slot decides.
                return match self.cancel(&shard, &waiter) {
                    Some(w) => Ok(w.env.expect("receive waiter fulfilled with an envelope")),
                    None => Err(err),
                };
            }
        }
    }

    /// Blocks until a matching envelope arrives; returns its status and
    /// leaves the message queued (blocking probe).
    pub fn wait_peek(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        mut interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Status> {
        let shard = self.shard(context);
        let mut seen_epoch = self.epoch.load(Ordering::SeqCst);
        let waiter = {
            let mut st = shard.state.lock();
            if let Some(status) = st.peek_match(src, tag) {
                return Ok(status);
            }
            if let Some(err) = interrupted() {
                return Err(err);
            }
            let waiter = fresh_waiter();
            st.posted.push_back(Posted {
                src,
                tag,
                kind: PostKind::Peek,
                waiter: Arc::clone(&waiter),
            });
            waiter
        };
        loop {
            let mut w = waiter.state.lock();
            loop {
                if let Some(status) = w.status.take() {
                    return Ok(status);
                }
                let now = self.epoch.load(Ordering::SeqCst);
                if now != seen_epoch {
                    seen_epoch = now;
                    // This wakeup records no event of its own; answer
                    // any pending live-snapshot request explicitly.
                    trace::poll_publish();
                    break;
                }
                waiter.cond.wait(&mut w);
            }
            drop(w);
            if let Some(err) = interrupted() {
                return match self.cancel(&shard, &waiter) {
                    Some(w) => Ok(w.status.expect("probe waiter fulfilled with a status")),
                    None => Err(err),
                };
            }
        }
    }

    /// Deregisters a waiter. Returns `None` if the entry was still
    /// posted (nothing was delivered; removing it cannot lose a
    /// message), or the fulfilled slot if a push got there first.
    fn cancel(&self, shard: &Shard, waiter: &Arc<Waiter>) -> Option<WaiterSlot> {
        let mut st = shard.state.lock();
        if let Some(pos) = st
            .posted
            .iter()
            .position(|p| Arc::ptr_eq(&p.waiter, waiter))
        {
            st.posted.remove(pos);
            return None;
        }
        // Already removed by a push: take the delivery.
        let mut w = waiter.state.lock();
        (w.env.is_some() || w.status.is_some()).then(|| std::mem::take(&mut *w))
    }

    /// Number of unexpected (queued) messages across all contexts. O(1):
    /// maintained counter, no locks. Diagnostic only.
    pub fn len(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// True if no messages are queued. O(1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the unexpected-queue depth.
    pub fn max_unexpected_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Number of envelopes delivered directly into a posted waiter's
    /// slot (each delivery wakes exactly one waiter).
    pub fn targeted_wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Number of pushes that claimed a parked multi-source waiter.
    pub fn multi_wakeups(&self) -> u64 {
        self.multi_wakeups.load(Ordering::Relaxed)
    }

    /// Number of parked wakeups that carried no completion claim.
    pub fn spurious_wakeups(&self) -> u64 {
        self.spurious.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently parked completion waiters.
    pub fn max_parked(&self) -> usize {
        self.max_parked.load(Ordering::Relaxed)
    }

    /// Reclaims the shard of a freed derived context
    /// ([`crate::Comm::free`]). Messages still queued on the context
    /// (none, after a correct collective free) leave the global gauge
    /// with it; the world shard (context 0) is never removed.
    pub(crate) fn remove_shard(&self, context: u64) {
        if context == 0 {
            return;
        }
        let Some(shard) = self.shards.write().remove(&context) else {
            return;
        };
        let leftover: usize = shard.state.lock().umq.values().map(|q| q.len()).sum();
        if leftover > 0 {
            self.queued.fetch_sub(leftover, Ordering::Relaxed);
        }
    }

    /// Releases everything a **dead** rank's engine holds: every derived-
    /// context shard, plus the world shard's queues and registrations.
    /// Called by the survivors of [`Comm::shrink`](crate::Comm::shrink)
    /// — buffered sends to a failed rank succeed by design, so its
    /// unexpected queues would otherwise pin payload memory for the rest
    /// of the run. Idempotent and safe to race: the owner thread is gone,
    /// so nothing is parked on the dropped waiters, and a straggler push
    /// at worst re-creates an empty shard.
    pub(crate) fn purge(&self) {
        let contexts: Vec<u64> = self.shards.read().keys().copied().collect();
        for c in contexts {
            self.remove_shard(c);
        }
        let drained: usize = {
            let mut st = self.world_shard.state.lock();
            let n = st.umq.values().map(|q| q.len()).sum();
            st.umq.clear();
            st.posted.clear();
            st.standing_idx.clear();
            n
        };
        if drained > 0 {
            self.queued.fetch_sub(drained, Ordering::Relaxed);
        }
    }

    /// Total waiter registrations ever inserted (notify + standing).
    /// Steady-state persistent/pool cycles must hold this flat — the
    /// zero-re-registration pin.
    pub fn notify_registrations(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    /// Live per-context shards, including the world shard. Grows on
    /// first use per context; [`crate::Comm::free`] reclaims a derived
    /// context's shard collectively.
    pub fn shard_count(&self) -> usize {
        self.shards.read().len() + 1
    }

    /// Total envelopes ever pushed into this engine, whether delivered
    /// straight to a waiter or queued unexpected. This is the per-rank
    /// message-count meter the neighborhood-collective bench pins
    /// (degree envelopes per round, vs p-1 for a dense exchange).
    pub fn envelopes_posted(&self) -> u64 {
        self.envelopes.load(Ordering::Relaxed)
    }

    /// Snapshot of the engine's diagnostics.
    pub fn stats(&self) -> MailboxStats {
        MailboxStats {
            queued: self.len(),
            max_unexpected_depth: self.max_unexpected_depth(),
            targeted_wakeups: self.targeted_wakeups(),
            multi_wakeups: self.multi_wakeups(),
            spurious_wakeups: self.spurious_wakeups(),
            max_parked: self.max_parked(),
            notify_registrations: self.notify_registrations(),
            shard_count: self.shard_count(),
            envelopes_posted: self.envelopes_posted(),
        }
    }
}

pub mod reference {
    //! The seed mailbox: one coarse queue, linear-scan matching,
    //! broadcast wakeups, 50 ms timed-wait safety net.
    //!
    //! Kept (verbatim, minus the counters the engine grew) for two jobs:
    //! it is the *oracle* the property tests replay randomized
    //! push/match interleavings against — the linear scan over one FIFO
    //! is trivially correct for MPI's matching laws, so any divergence
    //! convicts the indexed engine — and it is the *baseline* the
    //! `matching_experiment` benchmark measures the engine's speedup
    //! over.

    use std::collections::VecDeque;

    use parking_lot::{Condvar, Mutex};

    use crate::error::{MpiError, Result};
    use crate::message::{Envelope, Src, Status, TagSel};

    /// The seed implementation: linear scan over one coarse FIFO.
    #[derive(Default)]
    pub struct ScanMailbox {
        queue: Mutex<VecDeque<Envelope>>,
        cond: Condvar,
    }

    impl ScanMailbox {
        pub fn new() -> Self {
            ScanMailbox::default()
        }

        /// Delivers an envelope and wakes every waiting receiver.
        pub fn push(&self, env: Envelope) {
            let mut q = self.queue.lock();
            q.push_back(env);
            self.cond.notify_all();
        }

        /// Wakes all waiters so they can re-check interruption.
        pub fn interrupt(&self) {
            let _q = self.queue.lock();
            self.cond.notify_all();
        }

        /// Removes and returns the first matching envelope, if any.
        pub fn try_match(&self, context: u64, src: Src, tag: TagSel) -> Option<Envelope> {
            let mut q = self.queue.lock();
            let idx = q.iter().position(|e| e.matches(context, src, tag))?;
            q.remove(idx)
        }

        /// Status of the first matching envelope, without removing it.
        pub fn try_peek(&self, context: u64, src: Src, tag: TagSel) -> Option<Status> {
            let q = self.queue.lock();
            q.iter()
                .find(|e| e.matches(context, src, tag))
                .map(|e| Status {
                    source: e.src,
                    tag: e.tag,
                    bytes: e.payload.len(),
                })
        }

        /// Blocks until a matching envelope arrives and removes it.
        pub fn wait_match(
            &self,
            context: u64,
            src: Src,
            tag: TagSel,
            mut interrupted: impl FnMut() -> Option<MpiError>,
        ) -> Result<Envelope> {
            let mut q = self.queue.lock();
            loop {
                if let Some(idx) = q.iter().position(|e| e.matches(context, src, tag)) {
                    return Ok(q.remove(idx).expect("index valid under lock"));
                }
                if let Some(err) = interrupted() {
                    return Err(err);
                }
                // The poll safety net the engine retired: a bounded wait
                // kept missed wakeups from hanging forever — at the cost
                // of a 50 ms latency floor whenever one was missed.
                self.cond
                    .wait_for(&mut q, std::time::Duration::from_millis(50));
            }
        }

        /// Blocking probe.
        pub fn wait_peek(
            &self,
            context: u64,
            src: Src,
            tag: TagSel,
            mut interrupted: impl FnMut() -> Option<MpiError>,
        ) -> Result<Status> {
            let mut q = self.queue.lock();
            loop {
                if let Some(e) = q.iter().find(|e| e.matches(context, src, tag)) {
                    return Ok(Status {
                        source: e.src,
                        tag: e.tag,
                        bytes: e.payload.len(),
                    });
                }
                if let Some(err) = interrupted() {
                    return Err(err);
                }
                self.cond
                    .wait_for(&mut q, std::time::Duration::from_millis(50));
            }
        }

        /// Number of queued messages (O(n) lock-and-count).
        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn env(src: usize, context: u64, tag: i32, bytes: usize) -> Envelope {
        Envelope {
            src,
            src_world: src,
            context,
            tag,
            payload: Bytes::from(vec![0u8; bytes]),
            arrival_ns: 0,
            ack: None,
        }
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 1));
        mb.push(env(0, 1, 5, 2));
        let a = mb.try_match(1, Src::Rank(0), TagSel::Is(5)).unwrap();
        let b = mb.try_match(1, Src::Rank(0), TagSel::Is(5)).unwrap();
        assert_eq!(a.payload.len(), 1);
        assert_eq!(b.payload.len(), 2);
    }

    #[test]
    fn matching_skips_non_matching() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 1));
        mb.push(env(2, 1, 7, 2));
        let m = mb.try_match(1, Src::Rank(2), TagSel::Any).unwrap();
        assert_eq!(m.src, 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn wildcard_matches_in_arrival_order_across_sources() {
        let mb = Mailbox::new();
        mb.push(env(3, 1, 9, 1));
        mb.push(env(1, 1, 4, 2));
        mb.push(env(3, 1, 2, 3));
        // Any/Any must deliver by global arrival order even though the
        // envelopes live in three different (source, tag) FIFOs.
        let order: Vec<(usize, i32)> = (0..3)
            .map(|_| {
                let e = mb.try_match(1, Src::Any, TagSel::Any).unwrap();
                (e.src, e.tag)
            })
            .collect();
        assert_eq!(order, vec![(3, 9), (1, 4), (3, 2)]);
        assert!(mb.is_empty());
    }

    #[test]
    fn contexts_are_sharded_independently() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 1));
        mb.push(env(0, 2, 5, 2));
        assert!(mb.try_match(3, Src::Any, TagSel::Any).is_none());
        let c2 = mb.try_match(2, Src::Rank(0), TagSel::Is(5)).unwrap();
        assert_eq!(c2.payload.len(), 2);
        let c1 = mb.try_match(1, Src::Rank(0), TagSel::Is(5)).unwrap();
        assert_eq!(c1.payload.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(3, 1, 9, 4));
        let s = mb.try_peek(1, Src::Any, TagSel::Any).unwrap();
        assert_eq!(
            s,
            Status {
                source: 3,
                tag: 9,
                bytes: 4
            }
        );
        assert_eq!(mb.len(), 1);
        assert!(mb.try_match(1, Src::Rank(3), TagSel::Is(9)).is_some());
        assert!(mb.is_empty());
    }

    #[test]
    fn wait_match_blocks_until_push() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.wait_match(1, Src::Rank(0), TagSel::Is(1), || None)
                .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        mb.push(env(0, 1, 1, 8));
        let got = h.join().unwrap();
        assert_eq!(got.payload.len(), 8);
    }

    #[test]
    fn posted_receive_bypasses_the_queue() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.wait_match(1, Src::Rank(0), TagSel::Is(1), || None)
                .unwrap()
        });
        // Wait until the receiver is registered in the PRQ, then pile
        // on non-matching noise.
        while mb
            .shards
            .read()
            .get(&1)
            .is_none_or(|s| s.state.lock().posted.is_empty())
        {
            std::thread::yield_now();
        }
        for _ in 0..3 {
            mb.push(env(9, 1, 9, 1));
        }
        mb.push(env(0, 1, 1, 8));
        h.join().unwrap();
        // The matching envelope was handed straight to the waiter: only
        // the noise is queued, and exactly one targeted wakeup fired.
        assert_eq!(mb.targeted_wakeups(), 1);
        assert_eq!(mb.len(), 3);
        assert_eq!(mb.max_unexpected_depth(), 3);
    }

    #[test]
    fn single_push_wakes_exactly_one_of_n_specific_waiters() {
        const N: i32 = 8;
        let mb = std::sync::Arc::new(Mailbox::new());
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|t| {
                let mb = mb.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let e = mb
                        .wait_match(1, Src::Rank(0), TagSel::Is(t), || None)
                        .unwrap();
                    done.fetch_add(1, Ordering::SeqCst);
                    e.tag
                })
            })
            .collect();
        // Wait until all N waiters are posted (no message queued yet).
        while mb
            .shards
            .read()
            .get(&1)
            .is_none_or(|s| s.state.lock().posted.len() < N as usize)
        {
            std::thread::yield_now();
        }
        mb.push(env(0, 1, 3, 1));
        // Exactly one waiter (tag 3) completes; one targeted wakeup, no
        // broadcast. The others stay asleep.
        while done.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(mb.targeted_wakeups(), 1);
        assert!(mb.is_empty(), "the envelope went straight to its waiter");
        for t in 0..N {
            if t != 3 {
                mb.push(env(0, 1, t, 1));
            }
        }
        let mut tags: Vec<i32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..N).collect::<Vec<_>>());
        assert_eq!(mb.targeted_wakeups(), N as u64);
    }

    #[test]
    fn wait_match_interruptible() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            mb2.wait_match(1, Src::Rank(0), TagSel::Is(1), || {
                f2.load(std::sync::atomic::Ordering::SeqCst)
                    .then_some(MpiError::Revoked)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
        mb.interrupt();
        assert!(matches!(h.join().unwrap(), Err(MpiError::Revoked)));
    }

    #[test]
    fn wait_peek_interruptible_and_fulfillable() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h =
            std::thread::spawn(move || mb2.wait_peek(1, Src::Any, TagSel::Any, || None).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(5));
        mb.push(env(2, 1, 6, 3));
        let st = h.join().unwrap();
        assert_eq!(
            st,
            Status {
                source: 2,
                tag: 6,
                bytes: 3
            }
        );
        // Probe does not consume: the envelope was queued after the peek.
        assert_eq!(mb.len(), 1);
        assert!(mb.try_match(1, Src::Rank(2), TagSel::Is(6)).is_some());
    }

    #[test]
    fn queued_message_beats_interruption() {
        // A message that already arrived is delivered even if the
        // interruption condition holds (matches MPI completion semantics).
        let mb = Mailbox::new();
        mb.push(env(0, 1, 1, 3));
        let r = mb.wait_match(1, Src::Rank(0), TagSel::Is(1), || Some(MpiError::Revoked));
        assert!(r.is_ok());
    }

    #[test]
    fn interruption_racing_push_never_hangs_or_drops() {
        // The satellite regression: a revocation raised concurrently
        // with a matching push must neither hang the waiter (there is no
        // 50 ms poll to paper over a lost wakeup any more) nor lose the
        // message. Every iteration must end in exactly one of:
        //   Ok(env)                      — the push won the race;
        //   Err(..) with the message queued — the interrupt won; the
        //                                  envelope stays matchable.
        for i in 0..500u64 {
            let mb = std::sync::Arc::new(Mailbox::new());
            let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let (mb2, f2) = (mb.clone(), flag.clone());
            let waiter = std::thread::spawn(move || {
                mb2.wait_match(7, Src::Rank(0), TagSel::Is(1), || {
                    f2.load(std::sync::atomic::Ordering::SeqCst)
                        .then_some(MpiError::Revoked)
                })
            });
            let (mb3, f3) = (mb.clone(), flag.clone());
            let revoker = std::thread::spawn(move || {
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                f3.store(true, std::sync::atomic::Ordering::SeqCst);
                mb3.interrupt();
            });
            let mb4 = mb.clone();
            let pusher = std::thread::spawn(move || {
                if i % 2 == 0 {
                    std::thread::yield_now();
                }
                mb4.push(env(0, 7, 1, 5));
            });
            revoker.join().unwrap();
            pusher.join().unwrap();
            match waiter.join().unwrap() {
                Ok(e) => {
                    assert_eq!(e.payload.len(), 5);
                    assert!(mb.is_empty(), "iteration {i}: delivered AND queued");
                }
                Err(MpiError::Revoked) => {
                    // The push must still be matchable — never dropped.
                    let e = mb
                        .try_match(7, Src::Rank(0), TagSel::Is(1))
                        .unwrap_or_else(|| panic!("iteration {i}: message dropped"));
                    assert_eq!(e.payload.len(), 5);
                }
                Err(other) => panic!("iteration {i}: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn single_push_wakes_exactly_one_multi_waiter() {
        // The multi-waiter pin: N threads each park with TWO notify
        // registrations (a multi-source wait). One matching push claims
        // exactly one waiter, via exactly one of its registrations, and
        // consumes nothing.
        use crate::completion::fresh_waiter;
        const N: i32 = 6;
        let mb = std::sync::Arc::new(Mailbox::new());
        let woken = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|t| {
                let mb = mb.clone();
                let woken = woken.clone();
                std::thread::spawn(move || {
                    let w = fresh_waiter();
                    mb.watch(&w);
                    assert!(!mb.register_notify(1, Src::Rank(0), TagSel::Is(t), &w, 0));
                    assert!(!mb.register_notify(1, Src::Rank(1), TagSel::Is(t), &w, 1));
                    let fired = {
                        let mut st = w.state.lock();
                        loop {
                            if let Some(slot) = st.fired {
                                break slot;
                            }
                            w.cond.wait(&mut st);
                        }
                    };
                    mb.deregister_notify(1, &w);
                    mb.unwatch(&w);
                    woken.fetch_add(1, Ordering::SeqCst);
                    (t, fired)
                })
            })
            .collect();
        // Wait until all 2N registrations are posted.
        while mb
            .shards
            .read()
            .get(&1)
            .is_none_or(|s| s.state.lock().posted.len() < 2 * N as usize)
        {
            std::thread::yield_now();
        }
        assert_eq!(mb.max_parked(), N as usize);
        mb.push(env(1, 1, 3, 9));
        while woken.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        // Exactly one waiter woke (tag 3, via its source-1 slot); the
        // envelope was NOT consumed — notify registrations only point.
        assert_eq!(woken.load(Ordering::SeqCst), 1);
        assert_eq!(mb.multi_wakeups(), 1);
        assert_eq!(mb.len(), 1, "notify never consumes the envelope");
        for t in 0..N {
            if t != 3 {
                mb.push(env(0, 1, t, 1));
            }
        }
        let mut fired: Vec<(i32, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        fired.sort_unstable();
        for (t, slot) in fired {
            // Tag 3 was pushed from rank 1 (slot 1); the rest from
            // rank 0 (slot 0): the claim names the source that fired.
            assert_eq!(slot, usize::from(t == 3), "tag {t}");
        }
        assert_eq!(mb.multi_wakeups(), N as u64);
        assert_eq!(mb.spurious_wakeups(), 0);
        assert_eq!(mb.len(), N as usize, "all envelopes still queued");
    }

    #[test]
    fn dropped_request_set_session_leaves_no_registrations() {
        // The wait-for-fastest pattern: take one completion, drop the
        // set with receives still pending. The session's standing
        // registrations must be torn down by the drop — no dead
        // entries left in the posted queue.
        crate::Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut set = crate::RequestSet::new();
                set.push(comm.irecv(1, 0));
                set.push(comm.irecv(1, 1));
                set.wait_any().unwrap().expect("non-empty");
                drop(set);
                let shard = comm.mailbox().shard(comm.context_id());
                assert!(
                    shard.state.lock().posted.is_empty(),
                    "dropping the set must deregister its standing entries"
                );
                // The abandoned receive's message is still matchable.
                let (v, _) = comm.recv_vec::<u8>(1, 1).unwrap();
                assert_eq!(v, vec![2]);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(10));
                comm.send(&[1u8], 0, 0).unwrap();
                comm.send(&[2u8], 0, 1).unwrap();
            }
        });
    }

    #[test]
    fn completion_racing_deregistration_never_loses() {
        // The satellite race: a matching push racing the waiter's
        // deregistration. Because notify registrations never consume,
        // every interleaving must leave the message queued and
        // matchable; a claim, if it happened, names the registered
        // slot. 500 iterations with varied interleaving nudges.
        use crate::completion::fresh_waiter;
        for i in 0..500u64 {
            let mb = std::sync::Arc::new(Mailbox::new());
            let w = fresh_waiter();
            mb.watch(&w);
            assert!(!mb.register_notify(7, Src::Rank(0), TagSel::Is(1), &w, 3));
            let mb2 = mb.clone();
            let pusher = std::thread::spawn(move || {
                if i % 2 == 0 {
                    std::thread::yield_now();
                }
                mb2.push(env(0, 7, 1, 5));
            });
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            mb.deregister_notify(7, &w);
            mb.unwatch(&w);
            pusher.join().unwrap();
            let e = mb
                .try_match(7, Src::Rank(0), TagSel::Is(1))
                .unwrap_or_else(|| panic!("iteration {i}: message lost"));
            assert_eq!(e.payload.len(), 5);
            let st = w.state.lock();
            if st.claimed {
                assert_eq!(st.fired, Some(3), "iteration {i}: claim names the slot");
            }
            drop(st);
            assert!(
                mb.shards
                    .read()
                    .get(&7)
                    .is_none_or(|s| s.state.lock().posted.is_empty()),
                "iteration {i}: no dead entry survives deregistration"
            );
        }
    }

    #[test]
    fn len_and_depth_counters() {
        let mb = Mailbox::new();
        assert!(mb.is_empty());
        for k in 0..5 {
            mb.push(env(0, 1, k, 1));
        }
        assert_eq!(mb.len(), 5);
        assert_eq!(mb.max_unexpected_depth(), 5);
        for k in 0..5 {
            mb.try_match(1, Src::Rank(0), TagSel::Is(k)).unwrap();
        }
        assert!(mb.is_empty());
        // The high-water mark survives the drain.
        assert_eq!(mb.max_unexpected_depth(), 5);
        assert_eq!(
            mb.stats(),
            MailboxStats {
                queued: 0,
                max_unexpected_depth: 5,
                targeted_wakeups: 0,
                multi_wakeups: 0,
                spurious_wakeups: 0,
                max_parked: 0,
                notify_registrations: 0,
                // Pushes targeted context 1: its shard plus the world's.
                shard_count: 2,
                envelopes_posted: 5,
            }
        );
    }

    #[test]
    fn comm_free_reclaims_derived_context_shards() {
        // The PR 4 leak, fixed: a dup/split-heavy loop that frees its
        // communicators holds shard_count flat instead of growing one
        // shard per context forever.
        use crate::universe::{Config, Universe};
        let (outcomes, stats) = Universe::run_stats(Config::new(2), |comm| {
            assert_eq!(
                comm.mailbox_stats().shard_count,
                1,
                "only the world shard before any dup"
            );
            for round in 0..8u8 {
                let dup = comm.dup().unwrap();
                let sub = comm
                    .split(Some(0), comm.rank() as i64)
                    .unwrap()
                    .expect("both ranks pass a color");
                for c in [&dup, &sub] {
                    let peer = 1 - c.rank();
                    if c.rank() == 0 {
                        c.send(&[round], peer, 0).unwrap();
                        let _ = c.recv_vec::<u8>(peer, 0).unwrap();
                    } else {
                        let _ = c.recv_vec::<u8>(peer, 0).unwrap();
                        c.send(&[round], peer, 0).unwrap();
                    }
                }
                assert!(
                    comm.mailbox_stats().shard_count >= 3,
                    "round {round}: dup + split each carry a live shard"
                );
                sub.free().unwrap();
                dup.free().unwrap();
                assert_eq!(
                    comm.mailbox_stats().shard_count,
                    1,
                    "round {round}: free must reclaim both derived shards"
                );
            }
        });
        assert!(outcomes.into_iter().all(|o| o.completed().is_some()));
        for (rank, s) in stats.iter().enumerate() {
            assert_eq!(
                s.mailbox.shard_count, 1,
                "rank {rank}: 8 dup/split/free rounds held the gauge flat: {:?}",
                s.mailbox
            );
        }
    }

    #[test]
    fn standing_registration_survives_fires_until_deregistered() {
        // The persistent-request hook: one standing registration keeps
        // claiming across many pushes — zero re-registration — and
        // `deregister_slot` removes exactly it.
        use crate::completion::fresh_waiter;
        let mb = Mailbox::new();
        let w = fresh_waiter();
        assert!(!mb.register_standing(1, Src::Rank(0), TagSel::Is(7), &w, 4, false));
        assert_eq!(mb.notify_registrations(), 1);
        for k in 0..5u64 {
            mb.push(env(0, 1, 7, 1));
            let mut st = w.state.lock();
            assert!(st.claimed, "push {k} claims through the standing entry");
            assert_eq!(st.fired, Some(4));
            // Re-arm like a persistent wait does.
            st.claimed = false;
            st.fired = None;
            st.missed.clear();
        }
        // The envelopes were never consumed; the entry is still posted.
        assert_eq!(mb.len(), 5);
        assert_eq!(mb.notify_registrations(), 1, "zero re-registration");
        // Registering again reports the queued backlog.
        let w2 = fresh_waiter();
        assert!(mb.register_standing(1, Src::Rank(0), TagSel::Is(7), &w2, 0, false));
        mb.deregister_slot(1, &w2, 0);
        mb.deregister_slot(1, &w, 3); // wrong slot: entry stays
        mb.push(env(0, 1, 7, 1));
        assert_eq!(
            w.state.lock().fired,
            Some(4),
            "entry with slot 4 still live"
        );
        w.state.lock().claimed = false;
        w.state.lock().fired = None;
        mb.deregister_slot(1, &w, 4);
        mb.push(env(0, 1, 7, 1));
        assert!(
            !w.state.lock().claimed,
            "deregistered entry no longer claims"
        );
    }

    #[test]
    fn wake_only_standing_claims_only_while_armed() {
        // The persistent-request steady-state fast path: while the
        // owner is not waiting, pushes skip the claim entirely (no
        // waiter lock, no wakeup) — the envelope just queues. Arming
        // restores claim-and-wake.
        use crate::completion::fresh_waiter;
        use std::sync::atomic::Ordering;
        let mb = Mailbox::new();
        let w = fresh_waiter();
        mb.register_standing(1, Src::Rank(0), TagSel::Is(7), &w, 4, true);
        mb.push(env(0, 1, 7, 1));
        assert!(!w.state.lock().claimed, "unarmed: push must not claim");
        assert_eq!(mb.len(), 1, "the envelope queued regardless");
        w.armed.store(true, Ordering::SeqCst);
        mb.push(env(0, 1, 7, 1));
        {
            let st = w.state.lock();
            assert!(st.claimed, "armed: push claims through the index");
            assert_eq!(st.fired, Some(4));
        }
        // Deregistration removes the indexed entry like any other.
        w.state.lock().claimed = false;
        w.state.lock().fired = None;
        mb.deregister_slot(1, &w, 4);
        mb.push(env(0, 1, 7, 1));
        assert!(
            !w.state.lock().claimed,
            "deregistered entry no longer claims"
        );
    }

    #[test]
    fn specific_receive_is_index_hit_under_noise() {
        // A deep pile of unrelated messages must not affect a specific
        // (source, tag) match — the O(1) index path.
        let mb = Mailbox::new();
        for k in 0..1000 {
            mb.push(env(1, 1, 100 + (k % 50), 1));
        }
        mb.push(env(2, 1, 7, 3));
        let e = mb.try_match(1, Src::Rank(2), TagSel::Is(7)).unwrap();
        assert_eq!(e.payload.len(), 3);
        assert_eq!(mb.len(), 1000);
    }
}
