//! Per-rank incoming message queue with MPI matching semantics.
//!
//! Each rank owns one [`Mailbox`]. Senders push envelopes (the transport
//! is an eager protocol, as in shared-memory MPI for small/medium
//! messages); receivers scan for the *first* envelope matching
//! `(context, source, tag)`, which — together with the fact that a sender
//! pushes its messages in program order — yields MPI's non-overtaking
//! guarantee per (source, tag) pair.
//!
//! Blocking waits are interruptible: failure injection and communicator
//! revocation (see [`crate::ulfm`]) wake all mailboxes so that waiting
//! ranks can observe the condition and return an error instead of hanging.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::error::{MpiError, Result};
use crate::message::{Envelope, Src, Status, TagSel};

/// A rank's incoming message queue.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cond: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Delivers an envelope and wakes any waiting receiver.
    pub fn push(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        self.cond.notify_all();
    }

    /// Wakes all waiters without delivering anything, so they can re-check
    /// interruption conditions (failure / revocation). Acquires the queue
    /// lock, which guarantees no waiter misses the wakeup.
    pub fn interrupt(&self) {
        let _q = self.queue.lock();
        self.cond.notify_all();
    }

    /// Removes and returns the first matching envelope, if any.
    pub fn try_match(&self, context: u64, src: Src, tag: TagSel) -> Option<Envelope> {
        let mut q = self.queue.lock();
        let idx = q.iter().position(|e| e.matches(context, src, tag))?;
        q.remove(idx)
    }

    /// Returns the status of the first matching envelope without removing
    /// it (probe semantics).
    pub fn try_peek(&self, context: u64, src: Src, tag: TagSel) -> Option<Status> {
        let q = self.queue.lock();
        q.iter()
            .find(|e| e.matches(context, src, tag))
            .map(|e| Status {
                source: e.src,
                tag: e.tag,
                bytes: e.payload.len(),
            })
    }

    /// Blocks until a matching envelope arrives and removes it.
    ///
    /// `interrupted` is evaluated whenever the waiter wakes; returning
    /// `Some(err)` aborts the wait. It is checked *after* the queue scan, so
    /// a message that has already arrived from a subsequently-failed sender
    /// is still delivered (MPI completes operations that already matched).
    pub fn wait_match(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        mut interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Envelope> {
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|e| e.matches(context, src, tag)) {
                return Ok(q.remove(idx).expect("index valid under lock"));
            }
            if let Some(err) = interrupted() {
                return Err(err);
            }
            // Timed wait as a safety net: interruption conditions raised
            // between our check and the wait are caught by the interrupt()
            // lock protocol, but a bounded wait keeps any missed corner
            // (e.g. a rank dying without unwinding) from hanging forever.
            self.cond
                .wait_for(&mut q, std::time::Duration::from_millis(50));
        }
    }

    /// Blocks until a matching envelope arrives; returns its status and
    /// leaves the message queued (blocking probe).
    pub fn wait_peek(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        mut interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Status> {
        let mut q = self.queue.lock();
        loop {
            if let Some(e) = q.iter().find(|e| e.matches(context, src, tag)) {
                return Ok(Status {
                    source: e.src,
                    tag: e.tag,
                    bytes: e.payload.len(),
                });
            }
            if let Some(err) = interrupted() {
                return Err(err);
            }
            self.cond
                .wait_for(&mut q, std::time::Duration::from_millis(50));
        }
    }

    /// Number of queued messages (all contexts). Diagnostic only.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn env(src: usize, context: u64, tag: i32, bytes: usize) -> Envelope {
        Envelope {
            src,
            src_world: src,
            context,
            tag,
            payload: Bytes::from(vec![0u8; bytes]),
            arrival_ns: 0,
            ack: None,
        }
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 1));
        mb.push(env(0, 1, 5, 2));
        let a = mb.try_match(1, Src::Rank(0), TagSel::Is(5)).unwrap();
        let b = mb.try_match(1, Src::Rank(0), TagSel::Is(5)).unwrap();
        assert_eq!(a.payload.len(), 1);
        assert_eq!(b.payload.len(), 2);
    }

    #[test]
    fn matching_skips_non_matching() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5, 1));
        mb.push(env(2, 1, 7, 2));
        let m = mb.try_match(1, Src::Rank(2), TagSel::Any).unwrap();
        assert_eq!(m.src, 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(3, 1, 9, 4));
        let s = mb.try_peek(1, Src::Any, TagSel::Any).unwrap();
        assert_eq!(
            s,
            Status {
                source: 3,
                tag: 9,
                bytes: 4
            }
        );
        assert_eq!(mb.len(), 1);
        assert!(mb.try_match(1, Src::Rank(3), TagSel::Is(9)).is_some());
        assert!(mb.is_empty());
    }

    #[test]
    fn wait_match_blocks_until_push() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.wait_match(1, Src::Rank(0), TagSel::Is(1), || None)
                .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        mb.push(env(0, 1, 1, 8));
        let got = h.join().unwrap();
        assert_eq!(got.payload.len(), 8);
    }

    #[test]
    fn wait_match_interruptible() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            mb2.wait_match(1, Src::Rank(0), TagSel::Is(1), || {
                f2.load(std::sync::atomic::Ordering::SeqCst)
                    .then_some(MpiError::Revoked)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
        mb.interrupt();
        assert!(matches!(h.join().unwrap(), Err(MpiError::Revoked)));
    }

    #[test]
    fn queued_message_beats_interruption() {
        // A message that already arrived is delivered even if the
        // interruption condition holds (matches MPI completion semantics).
        let mb = Mailbox::new();
        mb.push(env(0, 1, 1, 3));
        let r = mb.wait_match(1, Src::Rank(0), TagSel::Is(1), || Some(MpiError::Revoked));
        assert!(r.is_ok());
    }
}
