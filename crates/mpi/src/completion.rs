//! The completion subsystem: one parking protocol for every blocking
//! wait in the substrate.
//!
//! PR 4 gave single blocking receives a targeted wakeup: a waiter parks
//! on a private condvar and the matching push wakes exactly that
//! thread. Everything *else* that blocked — request sets
//! ([`RequestSet::wait_any`](crate::RequestSet::wait_any) /
//! [`wait_some`](crate::RequestSet::wait_some)), synchronous-mode
//! sends, the binding layer's request pools, the ULFM agreement table —
//! still polled: sweep all pending operations, `yield_now`, sweep
//! again. This module generalizes the targeted wakeup into a protocol
//! any of those waits can use: a `Waiter` registered against *N*
//! pending sources at once, where the **first** completion claims the
//! waiter, records which source fired, and wakes exactly that thread.
//!
//! # The protocol
//!
//! A parked wait runs this loop (all steps in this order — the order is
//! the correctness argument):
//!
//! ```text
//!   1. capture the interruption epoch
//!   2. SWEEP: non-blocking test of every pending operation
//!        ready?        -> done
//!        interrupted?  -> error                  (checked inside test)
//!   3. REGISTER: for each source the operations are blocked on,
//!      atomically {check "already available?" ; else enqueue waiter}
//!        available?    -> skip the park, go to 5
//!   4. PARK on the waiter's private condvar until
//!        claimed (fired = source index)          -> targeted wakeup
//!        or epoch != captured                    -> interrupt, re-check
//!   5. CANCEL: deregister the waiter everywhere, then re-test
//!      (only the fired index on the fast path)
//! ```
//!
//! Registration state machine of one waiter (all transitions under the
//! waiter's own lock):
//!
//! ```text
//!               register(slot 0..n-1)
//!   [idle] ───────────────────────────> [parked{n sources}]
//!                                          │            │
//!                 first matching completion│            │epoch bump
//!                 claims: fired = Some(k)  │            │(interrupt)
//!                                          v            v
//!                                      [claimed(k)]  [re-check]
//!                                          │            │
//!                       cancel all sources │            │ cancel all
//!                                          v            v
//!                                   re-test slot k   full sweep
//! ```
//!
//! Three properties make this safe:
//!
//! - **No lost completion.** Mailbox registrations are
//!   *notification-only*: a push that claims a parked waiter does **not**
//!   hand it the envelope — the envelope continues into the unexpected
//!   queue (or to a directly-delivered single waiter) exactly as if
//!   nobody had been parked. Claiming only says "source `k` fired; go
//!   look". Cancellation therefore can never drop a message: there is
//!   nothing in the waiter to drop, and a completion racing
//!   deregistration leaves the message matchable in the queue either
//!   way. (This is the multi-waiter extension of PR 4's cancel-rechecks-
//!   the-delivery-slot proof, with the delivery moved out of the race
//!   entirely; the 500-iteration race test in [`crate::mailbox`] pins
//!   it.)
//! - **No lost wakeup.** The availability check in step 3 runs under the
//!   same shard lock pushes take, so a message arriving before the
//!   registration is seen by the check and one arriving after is seen by
//!   the push's posted-queue scan. Interrupts (failure, revocation) bump
//!   the epoch *before* waking, and the epoch was captured in step 1
//!   *before* the sweep's interruption checks — every interleaving
//!   either makes the condition visible to a check or makes the epochs
//!   differ.
//! - **Bounded spurious wakeups.** A parked waiter wakes for exactly two
//!   reasons: a claim (never spurious — the fired source really
//!   completed, and re-testing just that index finds it) or an epoch
//!   bump. Epoch bumps happen once per interruption event (process
//!   failure or communicator revocation), so the number of
//!   non-productive wakeups over a run is bounded by the number of such
//!   events — there is no periodic safety-net timer to wake anybody.
//!   The count is surfaced as `spurious_wakeups` in
//!   [`MailboxStats`](crate::MailboxStats).
//!
//! The previous sweep-and-yield implementations are preserved verbatim
//! in [`reference`](mod@reference) as the differential-testing baseline and the
//! `completion_experiment` benchmark's baseline, mirroring
//! [`mailbox::reference`](crate::mailbox::reference).

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::error::Result;
use crate::message::{AckSlot, Envelope, Src, Status, TagSel};
use crate::request::{Completion, Request, RequestSet, TestOutcome};
use crate::trace;
use crate::{MpiError, Rank};

/// A parked thread's delivery slot. Single blocking receives get the
/// envelope or probe status delivered directly ([`crate::mailbox`]);
/// multi-source waits get a *claim*: the index of the source that
/// fired. All fields are written under [`Waiter::state`]'s lock.
#[derive(Default)]
pub(crate) struct WaiterSlot {
    /// Direct delivery of a matched envelope (single posted receive).
    pub(crate) env: Option<Envelope>,
    /// Direct delivery of a probe status (single posted probe).
    pub(crate) status: Option<Status>,
    /// Which registered source fired (multi-source waits).
    pub(crate) fired: Option<usize>,
    /// Set by the first completion; later completions of other sources
    /// see the claim and leave the waiter alone (one completion wakes
    /// exactly one waiter, exactly once).
    pub(crate) claimed: bool,
    /// Sources that completed *while* the waiter was claimed (standing
    /// registrations, see [`ParkSession`]): the owner drains these on
    /// its next pass — no additional wakeups, no re-scan.
    pub(crate) missed: Vec<usize>,
}

/// One parked thread: a private delivery slot and a private condvar, so
/// a completion wakes exactly this thread and nobody else.
#[derive(Default)]
pub(crate) struct Waiter {
    pub(crate) state: Mutex<WaiterSlot>,
    pub(crate) cond: Condvar,
    /// Armed flag for *wake-only* standing registrations
    /// ([`crate::mailbox::Mailbox::register_standing`]): set by the
    /// owner just before it starts waiting, cleared when the wait ends.
    /// While clear, matching pushes skip the claim entirely — no waiter
    /// lock, no wakeup — because a wake-only owner always re-tests the
    /// queues itself and never reads claims as completion records. The
    /// store happens before the owner's post-arm queue re-test (which
    /// takes the shard lock pushes hold), so a push that enqueues after
    /// that re-test is guaranteed to observe the flag.
    pub(crate) armed: std::sync::atomic::AtomicBool,
}

impl Waiter {
    /// Claims the waiter for source `slot` and wakes it. Returns `false`
    /// if another source already claimed it (the caller must then treat
    /// the waiter as absent — its own completion stays queued).
    pub(crate) fn claim(&self, slot: usize) -> bool {
        let mut st = self.state.lock();
        if st.claimed {
            return false;
        }
        st.claimed = true;
        st.fired = Some(slot);
        self.cond.notify_one();
        true
    }
}

thread_local! {
    /// Waiter cache: a rank thread parks on at most one wait at a time,
    /// so its waiter allocation is reused across waits instead of
    /// hitting the allocator on every blocking operation (a measurable
    /// cost in shallow-queue round-trip patterns). Reuse is gated on
    /// the refcount: a waiter still referenced by a registration (which
    /// cannot happen on the normal paths, but costs one branch to rule
    /// out) is left alone and a fresh one allocated.
    static WAITER_CACHE: std::cell::RefCell<Option<Arc<Waiter>>> =
        const { std::cell::RefCell::new(None) };
}

/// A cleared waiter for this thread, reusing the cached allocation when
/// nothing else still references it.
pub(crate) fn fresh_waiter() -> Arc<Waiter> {
    WAITER_CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        if let Some(w) = slot.as_ref() {
            if Arc::strong_count(w) == 1 {
                *w.state.lock() = WaiterSlot::default();
                return Arc::clone(w);
            }
        }
        let w = Arc::new(Waiter::default());
        *slot = Some(Arc::clone(&w));
        w
    })
}

/// One source a pending request can be blocked on (step 3's
/// registration targets).
pub(crate) enum ParkSource<'a> {
    /// A message matching `(context, src, tag)` arriving at this rank's
    /// mailbox.
    Mailbox { context: u64, src: Src, tag: TagSel },
    /// A synchronous-mode send's receiver-matched acknowledgement.
    Ack(&'a Arc<AckSlot>),
}

/// Outcome of [`park_any`].
pub enum ParkOutcome {
    /// Source `i` (the request index) fired, or was already available at
    /// registration time. Re-test that request.
    Ready(usize),
    /// The interruption epoch moved (failure / revocation), or a request
    /// had nothing to park on. Re-sweep everything.
    Interrupted,
}

/// The interruption epoch governing parked waits for this request's
/// rank. Capture it **before** sweeping, pass it to [`park_any`]: an
/// interrupt raised after the capture makes the epochs differ, one
/// raised before it is visible to the sweep's checks.
pub fn park_epoch(req: &Request<'_>) -> u64 {
    req.comm().mailbox().epoch()
}

/// Parks the calling thread until one of `requests` *may* have made
/// progress: registers a single `Waiter` against every source the
/// requests are blocked on, sleeps until the first completion claims it
/// (returning that request's index) or the epoch moves. Never consumes
/// a message — callers re-test the indicated request. `seen_epoch` must
/// have been captured via [`park_epoch`] before the caller's last
/// non-blocking sweep.
pub fn park_any(requests: &[&Request<'_>], seen_epoch: u64) -> ParkOutcome {
    let Some(first) = requests.first() else {
        return ParkOutcome::Interrupted;
    };
    crate::fault::point("completion/register");
    let mb = first.comm().mailbox();
    let waiter = fresh_waiter();
    mb.watch(&waiter);
    let mut contexts: Vec<u64> = Vec::new();
    let mut acks: Vec<&Arc<AckSlot>> = Vec::new();
    let mut immediate: Option<ParkOutcome> = None;
    let mut sources: Vec<ParkSource<'_>> = Vec::new();
    'reg: for (i, req) in requests.iter().enumerate() {
        debug_assert!(
            std::ptr::eq(req.comm().mailbox(), mb),
            "a request set parks on one rank's mailbox"
        );
        sources.clear();
        if req.park_spec(&mut sources) || sources.is_empty() {
            // Intrinsically ready (or in a state with nothing to park
            // on): do not sleep — the caller's sweep will collect it.
            immediate = Some(ParkOutcome::Ready(i));
            break 'reg;
        }
        for s in sources.drain(..) {
            match s {
                ParkSource::Mailbox { context, src, tag } => {
                    if mb.register_notify(context, src, tag, &waiter, i) {
                        immediate = Some(ParkOutcome::Ready(i));
                        break 'reg;
                    }
                    if !contexts.contains(&context) {
                        contexts.push(context);
                    }
                }
                ParkSource::Ack(ack) => {
                    if ack.register_notify(&waiter, i) {
                        immediate = Some(ParkOutcome::Ready(i));
                        break 'reg;
                    }
                    acks.push(ack);
                }
            }
        }
    }
    let outcome = match immediate {
        Some(o) => o,
        None => {
            crate::fault::point("completion/park");
            let _sp = trace::span(trace::cat::PARK, "park_any", requests.len() as u64, 0);
            let mut st = waiter.state.lock();
            loop {
                if let Some(slot) = st.fired {
                    break ParkOutcome::Ready(slot);
                }
                if mb.epoch() != seen_epoch {
                    mb.record_spurious();
                    break ParkOutcome::Interrupted;
                }
                waiter.cond.wait(&mut st);
            }
        }
    };
    for context in contexts {
        mb.deregister_notify(context, &waiter);
    }
    for ack in acks {
        ack.deregister_notify(&waiter);
    }
    mb.unwatch(&waiter);
    // A completion racing this deregistration is harmless: claims never
    // carry a message, so whatever fired is still queued and the
    // caller's re-test finds it.
    outcome
}

/// Standing registrations for a request set of plain posted receives —
/// ROADMAP's "one waiter registered per pending receive, first
/// completion wakes", kept alive **across** `wait_any` calls.
///
/// A transient park re-registers every source on every call: O(set)
/// work per completion even when the wakeup itself is targeted. For
/// sets of plain receives the sources never change, so the session
/// registers each pending receive once and then completes requests at
/// O(1) amortized: a push claims the parked waiter with the fired
/// request's id; completions landing while the claim is outstanding are
/// recorded in the waiter's *missed* list by the pushes themselves (no
/// wakeup, no rescan — see [`crate::mailbox`]); the owner drains the
/// claim and the missed list into a pending-id queue and serves
/// subsequent `wait_any` calls straight from it.
///
/// Safety valves: the session is torn down — falling back to the full
/// sweep + transient park — whenever the set is mutated (`push`,
/// `test_some`, `wait_some`), a drained request turns out not to be
/// ready, or the interruption epoch moves (the epoch was captured
/// before the sweep that built the session, so "unchanged epoch"
/// proves no failure/revocation has happened since everything was last
/// re-checked).
pub(crate) struct ParkSession {
    waiter: Arc<Waiter>,
    /// Stable id of each request, parallel to `RequestSet::requests`
    /// (ids are the indices at session build).
    ids: Vec<usize>,
    /// Ids whose completion has been signalled (fired, missed, or
    /// already queued at registration) but not yet returned.
    pending: std::collections::VecDeque<usize>,
    /// Contexts holding standing registrations (for teardown).
    contexts: Vec<u64>,
    /// Epoch captured before the sweep preceding the session build.
    seen_epoch: u64,
}

/// Tears down a set's standing registrations, if any (the entries are
/// removed from the mailbox so no zombie claims linger).
pub(crate) fn teardown_session(requests: &[Request<'_>], session: &mut Option<ParkSession>) {
    if let Some(sess) = session.take() {
        if let Some(req) = requests.first() {
            let mb = req.comm().mailbox();
            for ctx in &sess.contexts {
                mb.deregister_notify(*ctx, &sess.waiter);
            }
        }
    }
}

/// Builds a session if every request is a plain receive; returns false
/// (leaving the set untouched) otherwise. Must run right after a sweep
/// that found nothing ready, with the epoch captured before that sweep.
fn build_session(set: &mut RequestSet<'_>, seen_epoch: u64) -> bool {
    crate::fault::point("completion/register");
    if set.requests.is_empty() || !set.requests.iter().all(|r| r.recv_selectors().is_some()) {
        return false;
    }
    let mb = set.requests[0].comm().mailbox();
    let waiter = fresh_waiter();
    let mut sess = ParkSession {
        waiter: Arc::clone(&waiter),
        ids: (0..set.requests.len()).collect(),
        pending: std::collections::VecDeque::new(),
        contexts: Vec::new(),
        seen_epoch,
    };
    for (i, req) in set.requests.iter().enumerate() {
        let (context, src, tag) = req.recv_selectors().expect("checked above");
        debug_assert!(std::ptr::eq(req.comm().mailbox(), mb));
        if mb.register_notify(context, src, tag, &waiter, i) {
            // Already queued: no registration made; complete it from
            // the pending queue.
            sess.pending.push_back(i);
        } else if !sess.contexts.contains(&context) {
            sess.contexts.push(context);
        }
    }
    set.session = Some(sess);
    true
}

/// Outcome of one [`PoolSession::next_signalled`] step.
pub enum PoolStep {
    /// Entry `id` was signalled: a message matching its selectors
    /// arrived (or was already queued at registration). Re-test it.
    Signalled(usize),
    /// The interruption epoch moved. Tear the session down and
    /// re-sweep everything under fresh interruption checks.
    Interrupted,
}

/// Standing registrations for an external pool of plain receives — the
/// binding layer's [`RequestPool`](../kamping/p2p/struct.RequestPool.html)
/// counterpart of `ParkSession`, with **caller-chosen stable ids**
/// instead of set indices (pools remove completed entries, so positions
/// shift; the standing slots must not).
///
/// Protocol, mirroring `ParkSession`: build right after a sweep that
/// found nothing ready (epoch captured before that sweep); each entry
/// registers one standing entry keyed by its id; pushes claim the
/// session's waiter with the fired id and record overlapping fires in
/// the missed list; [`next_signalled`](PoolSession::next_signalled)
/// drains claim state into a pending-id queue and parks only when it is
/// empty. [`complete`](PoolSession::complete) removes exactly one
/// entry's registration when the pool retires it — the other standing
/// entries stay, so draining an n-receive pool costs n registrations
/// total instead of n²/2 transient re-registrations
/// (`notify_registrations` in [`MailboxStats`](crate::MailboxStats)
/// pins this).
///
/// Dropping the session deregisters everything it still holds.
pub struct PoolSession {
    world: Arc<crate::universe::WorldState>,
    world_rank: Rank,
    waiter: Arc<Waiter>,
    /// `(id, context)` of each live standing registration.
    live: Vec<(usize, u64)>,
    /// Ids signalled but not yet served.
    pending: std::collections::VecDeque<usize>,
    /// Epoch captured before the sweep preceding the build.
    seen_epoch: u64,
}

impl PoolSession {
    /// Builds standing registrations for `(id, request)` pairs; returns
    /// `None` (registering nothing) unless every request is a plain
    /// posted receive — mixed pools fall back to the transient
    /// [`park_any`]. Ids must be distinct; they come back out of
    /// [`next_signalled`](PoolSession::next_signalled).
    pub fn build(entries: &[(usize, &Request<'_>)], seen_epoch: u64) -> Option<PoolSession> {
        crate::fault::point("completion/register");
        let (_, first) = entries.first()?;
        if !entries.iter().all(|(_, r)| r.recv_selectors().is_some()) {
            return None;
        }
        let comm = first.comm();
        let mb = comm.mailbox();
        // A dedicated waiter, never the thread-local cache: the standing
        // registrations outlive this call.
        let mut sess = PoolSession {
            world: Arc::clone(&comm.world),
            world_rank: comm.world_rank(),
            waiter: Arc::new(Waiter::default()),
            live: Vec::with_capacity(entries.len()),
            pending: std::collections::VecDeque::new(),
            seen_epoch,
        };
        for (id, req) in entries {
            let (context, src, tag) = req.recv_selectors().expect("checked above");
            debug_assert!(
                std::ptr::eq(req.comm().mailbox(), mb),
                "a pool parks on one rank's mailbox"
            );
            // Claim-always (`wake_only = false`): the session reads
            // claims and missed fires as completion records, so a push
            // must record even while the owner is between parks.
            if mb.register_standing(context, src, tag, &sess.waiter, *id, false) {
                // Already queued: signalled from the start (the standing
                // entry is installed either way).
                sess.pending.push_back(*id);
            }
            sess.live.push((*id, context));
        }
        Some(sess)
    }

    fn mb(&self) -> &crate::mailbox::Mailbox {
        &self.world.mailboxes[self.world_rank]
    }

    /// Blocks until some live entry has been signalled, serving queued
    /// signals first and parking only when none are outstanding.
    /// Signals for ids already [`complete`](PoolSession::complete)d
    /// (late fires of retired entries) are discarded.
    pub fn next_signalled(&mut self) -> PoolStep {
        // Keep the mailbox reachable without borrowing `self` (the loop
        // mutates the pending queue).
        let world = Arc::clone(&self.world);
        let mb = &world.mailboxes[self.world_rank];
        loop {
            if let Some(id) = self.pending.pop_front() {
                if self.live.iter().any(|(i, _)| *i == id) {
                    return PoolStep::Signalled(id);
                }
                continue;
            }
            crate::fault::point("completion/claim");
            let mut st = self.waiter.state.lock();
            if st.claimed {
                st.claimed = false;
                if let Some(f) = st.fired.take() {
                    self.pending.push_back(f);
                }
                self.pending.extend(st.missed.drain(..));
                continue;
            }
            crate::fault::point("completion/park");
            mb.watch(&self.waiter);
            let interrupted = {
                let _sp = trace::span(trace::cat::PARK, "park_pool", self.live.len() as u64, 0);
                loop {
                    if st.claimed {
                        break false;
                    }
                    if mb.epoch() != self.seen_epoch {
                        mb.record_spurious();
                        break true;
                    }
                    self.waiter.cond.wait(&mut st);
                }
            };
            drop(st);
            mb.unwatch(&self.waiter);
            if interrupted {
                return PoolStep::Interrupted;
            }
        }
    }

    /// Retires entry `id`: removes exactly its standing registration
    /// (and any queued signals for it), leaving the rest armed.
    pub fn complete(&mut self, id: usize) {
        if let Some(pos) = self.live.iter().position(|(i, _)| *i == id) {
            let (_, context) = self.live.remove(pos);
            self.mb().deregister_slot(context, &self.waiter, id);
        }
        self.pending.retain(|&x| x != id);
    }
}

impl Drop for PoolSession {
    /// Removes every remaining standing registration — a dropped (or
    /// torn-down) session must not leave claims pointed at a dead pool.
    fn drop(&mut self) {
        let mut contexts: Vec<u64> = Vec::new();
        for (_, ctx) in self.live.drain(..) {
            if !contexts.contains(&ctx) {
                contexts.push(ctx);
            }
        }
        for ctx in contexts {
            self.mb().deregister_notify(ctx, &self.waiter);
        }
    }
}

enum SessionStep {
    Hit((usize, Completion)),
    /// Session alive; loop again (drain newly signalled completions).
    Continue,
    /// Session torn down; take the slow path this iteration.
    TornDown,
}

/// One step of the session fast path: serve a signalled completion,
/// else drain the claim/missed state, else park.
fn session_step(set: &mut RequestSet<'_>) -> Result<SessionStep> {
    // Serve the oldest signalled completion, if any.
    loop {
        let RequestSet { requests, session } = &mut *set;
        let sess = session.as_mut().expect("session exists");
        let Some(id) = sess.pending.pop_front() else {
            break;
        };
        let Some(pos) = sess.ids.iter().position(|&x| x == id) else {
            continue;
        };
        sess.ids.remove(pos);
        let req = requests.remove(pos);
        match req.test() {
            Ok(TestOutcome::Ready(c)) => return Ok(SessionStep::Hit((pos, c))),
            Ok(TestOutcome::Pending(r)) => {
                // A signalled receive should always complete; fall back
                // to the fully re-checked slow path if it somehow
                // cannot.
                requests.insert(pos, r);
                sess.ids.insert(pos, id);
                teardown_session(requests, session);
                return Ok(SessionStep::TornDown);
            }
            Err(e) => {
                // Like `test_at`: the erroring request is consumed, the
                // rest stay completable.
                teardown_session(requests, session);
                return Err(e);
            }
        }
    }
    // Consume the claim state; park if nothing has been signalled.
    let RequestSet { requests, session } = &mut *set;
    let sess = session.as_mut().expect("session exists");
    let mb = requests
        .first()
        .expect("session implies pending requests")
        .comm()
        .mailbox();
    crate::fault::point("completion/claim");
    let mut st = sess.waiter.state.lock();
    if st.claimed {
        st.claimed = false;
        if let Some(f) = st.fired.take() {
            sess.pending.push_back(f);
        }
        sess.pending.extend(st.missed.drain(..));
        return Ok(SessionStep::Continue);
    }
    crate::fault::point("completion/park");
    mb.watch(&sess.waiter);
    let interrupted = {
        let _sp = trace::span(trace::cat::PARK, "park_session", sess.ids.len() as u64, 0);
        loop {
            if st.claimed {
                break false;
            }
            if mb.epoch() != sess.seen_epoch {
                mb.record_spurious();
                break true;
            }
            sess.waiter.cond.wait(&mut st);
        }
    };
    drop(st);
    mb.unwatch(&sess.waiter);
    if interrupted {
        teardown_session(requests, session);
        return Ok(SessionStep::TornDown);
    }
    Ok(SessionStep::Continue)
}

/// Event-driven [`RequestSet::wait_any`]: standing registrations
/// ([`ParkSession`]) for sets of plain receives — O(1) amortized per
/// completion; otherwise sweep once, park transiently on every pending
/// source, and on a targeted wakeup re-test only the fired index.
pub(crate) fn wait_any<'a>(set: &mut RequestSet<'a>) -> Result<Option<(usize, Completion)>> {
    if set.is_empty() {
        teardown_session(&set.requests, &mut set.session);
        return Ok(None);
    }
    loop {
        if set.session.is_some() {
            match session_step(set)? {
                SessionStep::Hit(hit) => return Ok(Some(hit)),
                SessionStep::Continue => continue,
                SessionStep::TornDown => {}
            }
        }
        let epoch = park_epoch(set.first().expect("set non-empty"));
        if let Some(hit) = set.sweep_any()? {
            return Ok(Some(hit));
        }
        if build_session(set, epoch) {
            continue;
        }
        let refs: Vec<&Request<'a>> = set.iter().collect();
        if let ParkOutcome::Ready(i) = park_any(&refs, epoch) {
            // Fast path: exactly one source fired; test only that
            // request. A pending outcome (the engine advanced but did
            // not finish) falls through to the next full sweep.
            if let Some(hit) = set.test_at(i)? {
                return Ok(Some(hit));
            }
        }
    }
}

/// Event-driven [`RequestSet::wait_some`]: like [`wait_any`] but
/// collects everything completed once the park ends.
pub(crate) fn wait_some<'a>(set: &mut RequestSet<'a>) -> Result<Vec<(usize, Completion)>> {
    if set.is_empty() {
        return Ok(Vec::new());
    }
    loop {
        let epoch = park_epoch(set.first().expect("set non-empty"));
        let done = set.test_some()?;
        if !done.is_empty() {
            return Ok(done);
        }
        let refs: Vec<&Request<'a>> = set.iter().collect();
        let _ = park_any(&refs, epoch);
    }
}

/// Event-driven wait for a synchronous-mode send: parks on the
/// acknowledgement slot (claimed by the receiver's match) under the
/// epoch protocol, instead of the seed's yield-and-recheck spin.
pub(crate) fn wait_sync_send(comm: &Comm, ack: &Arc<AckSlot>, dest: Rank) -> Result<Completion> {
    let dest_world = comm.translate_to_world(dest)?;
    let mb = comm.mailbox();
    loop {
        let seen_epoch = mb.epoch();
        if ack.is_complete() {
            return Ok(Completion::Done);
        }
        if comm.world.is_revoked(comm.context) {
            return Err(MpiError::Revoked);
        }
        if comm.world.is_failed(dest_world) {
            return Err(MpiError::ProcessFailed {
                world_rank: dest_world,
            });
        }
        let waiter = fresh_waiter();
        mb.watch(&waiter);
        if !ack.register_notify(&waiter, 0) {
            let _sp = trace::span(trace::cat::PARK, "park_sync_send", dest as u64, 0);
            let mut st = waiter.state.lock();
            loop {
                if st.fired.is_some() {
                    break;
                }
                if mb.epoch() != seen_epoch {
                    mb.record_spurious();
                    break;
                }
                waiter.cond.wait(&mut st);
            }
        }
        ack.deregister_notify(&waiter);
        mb.unwatch(&waiter);
    }
}

pub mod reference {
    //! The seed completion strategy: sweep every pending operation with
    //! a non-blocking test, `yield_now`, sweep again.
    //!
    //! Kept (verbatim in structure, minus being the only option) for two
    //! jobs: it is the *baseline* the `completion_experiment` benchmark
    //! measures the parked path's wakeup latency and CPU burn against,
    //! and the differential-testing partner the request-set tests drive
    //! both paths of — each sweep is trivially correct (it re-derives
    //! readiness from scratch every iteration), so any divergence
    //! convicts the parking protocol.

    use super::{Completion, Request, RequestSet, Result};
    use crate::request::TestOutcome;

    /// Sweep-based `MPI_Wait`: test-and-yield until ready. This is the
    /// idiom the substrate's tests used before the parking protocol
    /// (`poll_to_completion`), preserved as the baseline for waits on a
    /// single request.
    pub fn wait(mut req: Request<'_>) -> Result<Completion> {
        loop {
            match req.test()? {
                TestOutcome::Ready(c) => return Ok(c),
                TestOutcome::Pending(r) => {
                    req = r;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Sweep-based `MPI_Waitany`: the seed `RequestSet::wait_any` — one
    /// O(set) test sweep per iteration with a `yield_now` between
    /// sweeps.
    pub fn wait_any<'a>(set: &mut RequestSet<'a>) -> Result<Option<(usize, Completion)>> {
        if set.is_empty() {
            return Ok(None);
        }
        loop {
            if let Some(hit) = set.sweep_any()? {
                return Ok(Some(hit));
            }
            std::thread::yield_now();
        }
    }

    /// Sweep-based `MPI_Waitsome`: the seed `RequestSet::wait_some`.
    pub fn wait_some<'a>(set: &mut RequestSet<'a>) -> Result<Vec<(usize, Completion)>> {
        if set.is_empty() {
            return Ok(Vec::new());
        }
        loop {
            let done = set.test_some()?;
            if !done.is_empty() {
                return Ok(done);
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{reference::ScanMailbox, Mailbox};
    use crate::Universe;
    use bytes::Bytes;
    use proptest::prelude::*;

    fn env(src: usize, context: u64, tag: i32, id: u64) -> Envelope {
        Envelope {
            src,
            src_world: src,
            context,
            tag,
            payload: Bytes::from(id.to_le_bytes().to_vec()),
            arrival_ns: 0,
            ack: None,
        }
    }

    #[derive(Clone, Debug)]
    enum Op {
        Push {
            src: usize,
            tag: i32,
        },
        Match {
            src: Src,
            tag: TagSel,
        },
        /// Multi-register a fresh waiter for 1..=3 random selectors.
        Register(Vec<(Src, TagSel)>),
        /// Deregister the k-th oldest live waiter.
        Cancel(usize),
        /// Revocation/failure wakeup path: epoch bump + broadcast.
        Interrupt,
    }

    fn sel() -> impl Strategy<Value = (Src, TagSel)> {
        (
            prop_oneof![Just(Src::Any), (0usize..3).prop_map(Src::Rank)],
            prop_oneof![Just(TagSel::Any), (-1i32..3).prop_map(TagSel::Is)],
        )
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Three push arms keep the mix push-heavy so queues build depth
        // (the vendored proptest has no weighted prop_oneof).
        prop_oneof![
            (0usize..3, -1i32..3).prop_map(|(src, tag)| Op::Push { src, tag }),
            (0usize..3, -1i32..3).prop_map(|(src, tag)| Op::Push { src, tag }),
            (0usize..3, 0i32..3).prop_map(|(src, tag)| Op::Push { src, tag }),
            sel().prop_map(|(src, tag)| Op::Match { src, tag }),
            sel().prop_map(|(src, tag)| Op::Match { src, tag }),
            prop::collection::vec(sel(), 1..4).prop_map(Op::Register),
            prop::collection::vec(sel(), 1..4).prop_map(Op::Register),
            (0usize..4).prop_map(Op::Cancel),
            Just(Op::Interrupt),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

        /// Multi-waiter registrations must be *transparent* to matching:
        /// an engine carrying arbitrary interleavings of registrations,
        /// cancellations, and interrupts must stay step-for-step
        /// equivalent to the registration-free linear-scan oracle — no
        /// divergence, no lost message (queue depths equal after every
        /// op, full drain identical), and every claim names a
        /// registered slot.
        #[test]
        fn multi_registrations_are_transparent_to_matching(
            ops in prop::collection::vec(op_strategy(), 0..100)
        ) {
            let engine = Mailbox::new();
            let oracle = ScanMailbox::new();
            let mut next_id = 0u64;
            let mut waiters: Vec<(Arc<Waiter>, usize)> = Vec::new();
            for op in &ops {
                match op {
                    Op::Push { src, tag } => {
                        engine.push(env(*src, 1, *tag, next_id));
                        oracle.push(env(*src, 1, *tag, next_id));
                        next_id += 1;
                    }
                    Op::Match { src, tag } => {
                        let a = engine.try_match(1, *src, *tag);
                        let b = oracle.try_match(1, *src, *tag);
                        match (&a, &b) {
                            (None, None) => {}
                            (Some(x), Some(y)) => {
                                prop_assert_eq!(&x.payload[..], &y.payload[..]);
                            }
                            _ => prop_assert!(false,
                                "divergence on {:?}: engine {:?} vs oracle {:?}",
                                op, a.is_some(), b.is_some()),
                        }
                    }
                    Op::Register(sels) => {
                        let w = Arc::new(Waiter::default());
                        for (slot, (src, tag)) in sels.iter().enumerate() {
                            // An immediate hit is allowed (no
                            // registration made for that source); the
                            // others still register.
                            let _ = engine.register_notify(1, *src, *tag, &w, slot);
                        }
                        waiters.push((w, sels.len()));
                    }
                    Op::Cancel(k) => {
                        if !waiters.is_empty() {
                            let (w, _) = waiters.remove(k % waiters.len());
                            engine.deregister_notify(1, &w);
                        }
                    }
                    Op::Interrupt => {
                        engine.interrupt();
                        oracle.interrupt();
                    }
                }
                // The law: registrations never consume or reorder.
                prop_assert_eq!(engine.len(), oracle.len(), "queue depths diverged on {:?}", op);
            }
            // Claims only ever name a slot that was registered.
            for (w, n_slots) in &waiters {
                let st = w.state.lock();
                if let Some(fired) = st.fired {
                    prop_assert!(st.claimed);
                    prop_assert!(fired < *n_slots, "claimed slot out of range");
                }
            }
            // Full drain: identical residue, message by message.
            loop {
                let a = engine.try_match(1, Src::Any, TagSel::Any);
                let b = oracle.try_match(1, Src::Any, TagSel::Any);
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => prop_assert_eq!(&x.payload[..], &y.payload[..]),
                    (a, b) => prop_assert!(false,
                        "drain divergence: engine {:?} vs oracle {:?}", a.is_some(), b.is_some()),
                }
            }
            for tag in -1i32..0 {
                for src in 0usize..3 {
                    loop {
                        let a = engine.try_match(1, Src::Rank(src), TagSel::Is(tag));
                        let b = oracle.try_match(1, Src::Rank(src), TagSel::Is(tag));
                        match (a, b) {
                            (None, None) => break,
                            (Some(x), Some(y)) => prop_assert_eq!(&x.payload[..], &y.payload[..]),
                            (a, b) => prop_assert!(false,
                                "internal-tag drain divergence: engine {:?} vs oracle {:?}",
                                a.is_some(), b.is_some()),
                        }
                    }
                }
            }
            prop_assert!(engine.is_empty());
            prop_assert!(oracle.is_empty());
        }

        /// Differential test of the whole parked path: random request
        /// sets (receives from peers with randomized send staggering)
        /// drained by the event-driven `wait_any` and by the preserved
        /// sweep baseline must deliver the same multiset of payloads —
        /// and the event-driven run must terminate (no hung waiter)
        /// without any poll loop to paper over a lost wakeup.
        #[test]
        fn event_driven_wait_any_matches_reference_sweep(
            p in 2usize..6,
            tags_per_peer in 1usize..4,
            stagger in prop::collection::vec(0u64..3, 16..17),
        ) {
            let stagger = &stagger;
            let out = Universe::run(p, move |comm| {
                if comm.rank() == 0 {
                    let mut collected = [Vec::new(), Vec::new()];
                    for (round, bucket) in collected.iter_mut().enumerate() {
                        let mut set = RequestSet::new();
                        for peer in 1..p {
                            for t in 0..tags_per_peer {
                                set.push(comm.irecv(peer, (round * 8 + t) as i32));
                            }
                        }
                        while !set.is_empty() {
                            let hit = if round == 0 {
                                set.wait_any()
                            } else {
                                crate::completion::reference::wait_any(&mut set)
                            };
                            let (_, c) = hit.unwrap().expect("set non-empty");
                            let (v, st) = c.into_vec::<u8>().unwrap();
                            bucket.push((st.source, st.tag, v));
                        }
                        bucket.sort();
                    }
                    let [event, sweep] = collected;
                    assert_eq!(event.len(), sweep.len());
                    // Same peers and values; tags differ by the round
                    // offset built into the sends.
                    for (a, b) in event.iter().zip(&sweep) {
                        assert_eq!(a.0, b.0);
                        assert_eq!(a.1 + 8, b.1);
                        assert_eq!(a.2, b.2);
                    }
                    true
                } else {
                    for round in 0..2usize {
                        for t in 0..tags_per_peer {
                            let idx = (comm.rank() * 5 + t) % stagger.len();
                            for _ in 0..stagger[idx] {
                                std::thread::yield_now();
                            }
                            comm.send(
                                &[comm.rank() as u8, t as u8],
                                0,
                                (round * 8 + t) as i32,
                            )
                            .unwrap();
                        }
                    }
                    true
                }
            });
            prop_assert!(out.into_iter().all(|ok| ok));
        }
    }

    /// A mixed set — sync-send (ack source) + receive (mailbox source)
    /// — parks once and completes both; the sync-send's ack claim
    /// arrives through the non-mailbox registration path.
    #[test]
    fn mixed_set_with_sync_send_parks_and_completes() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut set = RequestSet::new();
                set.push(comm.issend(&[9u8], 1, 4).unwrap());
                set.push(comm.irecv(2, 5));
                let mut seen = 0;
                while !set.is_empty() {
                    set.wait_any().unwrap().expect("non-empty");
                    seen += 1;
                }
                assert_eq!(seen, 2);
            } else if comm.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(8));
                let (v, _) = comm.recv_vec::<u8>(0, 4).unwrap();
                assert_eq!(v, vec![9]);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(16));
                comm.send(&[2u8], 0, 5).unwrap();
            }
        });
    }

    /// `wait` on a lone synchronous-mode send parks on the ack (no
    /// yield spin) and still completes; the run's diagnostics show the
    /// park actually happened. The park-before-send ordering is
    /// timing-dependent, so the scenario retries a few times — it must
    /// park on at least one attempt (in practice the first).
    #[test]
    fn sync_send_wait_parks_on_ack() {
        for attempt in 0..5 {
            let (outcomes, stats) = Universe::run_stats(crate::Config::new(2), |comm| {
                if comm.rank() == 0 {
                    let req = comm.issend(&[1u8, 2, 3], 1, 0).unwrap();
                    req.wait().unwrap();
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    let (v, _) = comm.recv_vec::<u8>(0, 0).unwrap();
                    assert_eq!(v, vec![1, 2, 3]);
                }
            });
            assert!(outcomes.into_iter().all(|o| o.completed().is_some()));
            if stats[0].mailbox.max_parked >= 1 {
                return;
            }
            eprintln!("attempt {attempt}: the receive outran the park; retrying");
        }
        panic!("the sender never parked across 5 attempts — wait() is spinning");
    }
}
