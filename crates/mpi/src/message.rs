//! Message envelopes, matching selectors, and receive status.

use std::sync::Arc;

use bytes::Bytes;

use crate::plain::element_count;
use crate::{Plain, Rank, Tag};

/// Wildcard source selector (mirrors `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Src = Src::Any;
/// Wildcard tag selector (mirrors `MPI_ANY_TAG`).
pub const ANY_TAG: TagSel = TagSel::Any;

/// Source selector for receives and probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Match messages from any rank.
    Any,
    /// Match messages from this communicator rank only.
    Rank(Rank),
}

impl Src {
    /// True if this selector admits messages from `rank`. Shared by
    /// envelope matching and the matching engine's queue index.
    #[inline]
    pub fn admits(&self, rank: Rank) -> bool {
        match self {
            Src::Any => true,
            Src::Rank(r) => *r == rank,
        }
    }
}

impl From<Rank> for Src {
    fn from(r: Rank) -> Self {
        Src::Rank(r)
    }
}

/// Tag selector for receives and probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag.
    Any,
    /// Match this tag only.
    Is(Tag),
}

impl TagSel {
    /// True if this selector admits tag `tag`. The wildcard only sees
    /// user messages: internal collective protocol messages carry
    /// negative tags and must never match an application's wildcard
    /// receive.
    #[inline]
    pub fn admits(&self, tag: Tag) -> bool {
        match self {
            TagSel::Any => tag >= 0,
            TagSel::Is(t) => *t == tag,
        }
    }
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Is(t)
    }
}

/// Completion slot used by synchronous-mode sends (`issend`): the send
/// completes only once the receiver has matched the message.
///
/// An ack is one of the sources a parked completion waiter
/// ([`crate::completion`]) can register against: the receiver's match
/// claims the registered waiter with a targeted wakeup, so a blocked
/// `issend` costs nothing until the exact match it needs occurs.
#[derive(Debug, Default)]
pub struct AckSlot {
    state: parking_lot::Mutex<AckState>,
    cond: parking_lot::Condvar,
}

#[derive(Default)]
struct AckState {
    done: bool,
    /// A parked completion waiter awaiting this ack, with its source
    /// index (at most one: a request has one owner thread).
    watcher: Option<(Arc<crate::completion::Waiter>, usize)>,
}

impl std::fmt::Debug for AckState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AckState")
            .field("done", &self.done)
            .field("watched", &self.watcher.is_some())
            .finish()
    }
}

impl AckSlot {
    pub fn new() -> Arc<Self> {
        Arc::new(AckSlot::default())
    }

    /// Called by the receiver when the message is matched. Claims and
    /// wakes a registered completion waiter, if any.
    pub fn complete(&self) {
        let mut st = self.state.lock();
        st.done = true;
        self.cond.notify_all();
        let watcher = st.watcher.take();
        drop(st);
        if let Some((waiter, slot)) = watcher {
            waiter.claim(slot);
        }
    }

    /// Non-blocking completion check.
    pub fn is_complete(&self) -> bool {
        self.state.lock().done
    }

    /// Blocks until the receiver matches the message.
    pub fn wait(&self) {
        let mut st = self.state.lock();
        while !st.done {
            self.cond.wait(&mut st);
        }
    }

    /// Registers a completion waiter to be claimed when the ack fires.
    /// Returns `true` — without registering — if the ack already fired
    /// (checked under the same lock `complete` takes, so no completion
    /// can fall between the check and the registration).
    pub(crate) fn register_notify(
        &self,
        waiter: &Arc<crate::completion::Waiter>,
        slot: usize,
    ) -> bool {
        let mut st = self.state.lock();
        if st.done {
            return true;
        }
        st.watcher = Some((Arc::clone(waiter), slot));
        false
    }

    /// Removes a registered completion waiter (no-op if `complete`
    /// already took it — the claim it delivered stands).
    pub(crate) fn deregister_notify(&self, waiter: &Arc<crate::completion::Waiter>) {
        let mut st = self.state.lock();
        if let Some((w, _)) = &st.watcher {
            if Arc::ptr_eq(w, waiter) {
                st.watcher = None;
            }
        }
    }
}

/// A message in flight: payload plus matching metadata.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender's rank in the communicator the message was sent on.
    pub src: Rank,
    /// Sender's world rank (used for failure attribution).
    pub src_world: Rank,
    /// Context id of the communicator.
    pub context: u64,
    /// Message tag.
    pub tag: Tag,
    /// Raw payload bytes.
    pub payload: Bytes,
    /// Virtual-time arrival stamp (see [`crate::clock`]).
    pub arrival_ns: u64,
    /// Present for synchronous-mode sends; completed on match.
    pub ack: Option<Arc<AckSlot>>,
}

impl Envelope {
    /// True if this envelope matches the given context/source/tag triple.
    #[inline]
    pub fn matches(&self, context: u64, src: Src, tag: TagSel) -> bool {
        self.context == context && src.admits(self.src) && tag.admits(self.tag)
    }
}

/// The result of a completed receive or probe
/// (mirrors `MPI_Status`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status {
    /// Communicator rank of the sender.
    pub source: Rank,
    /// Tag of the matched message.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: usize,
}

impl Status {
    /// Number of `T` elements in the message
    /// (mirrors `MPI_Get_count`).
    pub fn count<T: Plain>(&self) -> usize {
        element_count::<T>(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: Rank, context: u64, tag: Tag) -> Envelope {
        Envelope {
            src,
            src_world: src,
            context,
            tag,
            payload: Bytes::new(),
            arrival_ns: 0,
            ack: None,
        }
    }

    #[test]
    fn matching_rules() {
        let e = env(2, 7, 5);
        assert!(e.matches(7, Src::Any, TagSel::Any));
        assert!(e.matches(7, Src::Rank(2), TagSel::Is(5)));
        assert!(!e.matches(8, Src::Any, TagSel::Any)); // wrong context
        assert!(!e.matches(7, Src::Rank(1), TagSel::Any)); // wrong source
        assert!(!e.matches(7, Src::Any, TagSel::Is(6))); // wrong tag
    }

    #[test]
    fn wildcard_ignores_internal_tags() {
        let e = env(0, 7, -3);
        assert!(!e.matches(7, Src::Any, TagSel::Any));
        assert!(e.matches(7, Src::Any, TagSel::Is(-3)));
    }

    #[test]
    fn status_count() {
        let s = Status {
            source: 0,
            tag: 0,
            bytes: 24,
        };
        assert_eq!(s.count::<u64>(), 3);
        assert_eq!(s.count::<u8>(), 24);
    }

    #[test]
    fn ack_slot_completion() {
        let ack = AckSlot::new();
        assert!(!ack.is_complete());
        ack.complete();
        assert!(ack.is_complete());
        ack.wait(); // must not block after completion
    }

    #[test]
    fn ack_slot_cross_thread() {
        let ack = AckSlot::new();
        let a2 = ack.clone();
        let h = std::thread::spawn(move || a2.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        ack.complete();
        h.join().unwrap();
    }

    #[test]
    fn selector_admission() {
        assert!(Src::Any.admits(3));
        assert!(Src::Rank(3).admits(3));
        assert!(!Src::Rank(3).admits(4));
        assert!(TagSel::Any.admits(0));
        assert!(!TagSel::Any.admits(-2), "wildcards never see internal tags");
        assert!(TagSel::Is(-2).admits(-2));
        assert!(!TagSel::Is(5).admits(6));
    }

    #[test]
    fn selector_conversions() {
        assert_eq!(Src::from(3), Src::Rank(3));
        assert_eq!(TagSel::from(9), TagSel::Is(9));
    }
}
