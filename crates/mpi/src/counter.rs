//! PMPI-style call counting.
//!
//! The paper (§III-H) uses MPI's profiling interface to assert that
//! KaMPIng issues *only* the expected MPI calls when it computes default
//! parameters. The substrate offers the same observability: every public
//! operation increments a per-rank counter keyed by operation name, and
//! the binding tests snapshot/diff these counts.

use std::collections::BTreeMap;

/// Per-rank operation counts, keyed by operation name
/// (`"send"`, `"allgatherv"`, …).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallCounts {
    counts: BTreeMap<&'static str, u64>,
}

impl CallCounts {
    pub fn new() -> Self {
        CallCounts::default()
    }

    /// Increments the counter for `op`.
    pub fn inc(&mut self, op: &'static str) {
        *self.counts.entry(op).or_insert(0) += 1;
    }

    /// Count for a single operation.
    pub fn get(&self, op: &str) -> u64 {
        self.counts.get(op).copied().unwrap_or(0)
    }

    /// Total number of recorded operations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates over `(operation, count)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Difference `self - earlier` per operation (saturating), used to
    /// isolate the calls issued by a region of code.
    pub fn since(&self, earlier: &CallCounts) -> CallCounts {
        let mut out = CallCounts::new();
        for (op, v) in &self.counts {
            let delta = v.saturating_sub(earlier.get(op));
            if delta > 0 {
                out.counts.insert(op, delta);
            }
        }
        out
    }

    /// Clears all counters.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

impl std::fmt::Display for CallCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (op, n) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{op}: {n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_get_total() {
        let mut c = CallCounts::new();
        c.inc("send");
        c.inc("send");
        c.inc("allgather");
        assert_eq!(c.get("send"), 2);
        assert_eq!(c.get("allgather"), 1);
        assert_eq!(c.get("bcast"), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn since_diff() {
        let mut a = CallCounts::new();
        a.inc("send");
        let snapshot = a.clone();
        a.inc("send");
        a.inc("recv");
        let d = a.since(&snapshot);
        assert_eq!(d.get("send"), 1);
        assert_eq!(d.get("recv"), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn display_lists_ops() {
        let mut c = CallCounts::new();
        c.inc("barrier");
        let s = c.to_string();
        assert!(s.contains("barrier"));
        assert!(s.contains('1'));
    }
}
