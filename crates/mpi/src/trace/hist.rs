//! Log-bucketed (HDR-style) latency histograms.
//!
//! One bucket per power of two: a value `v` lands in bucket
//! `floor(log2(max(v, 1)))`. 48 buckets cover durations up to
//! 2^48 ns ≈ 3.3 days — far beyond any span this substrate records —
//! at a fixed 400-byte footprint, so histograms can live in
//! [`TraceStats`](super::TraceStats) (and therefore in every
//! [`RankStats`](crate::RankStats)) by value, with recording cost of a
//! `leading_zeros` and two adds. Quantiles are resolved to bucket
//! upper bounds: relative error is bounded by 2x, which is the right
//! trade for a profile whose job is to separate "100 ns" from "10 µs",
//! not to rank two 3-µs paths.

/// Number of power-of-two buckets in a [`LatencyHist`].
pub const HIST_BUCKETS: usize = 48;

/// A log-bucketed histogram of `u64` samples (durations in ns, queue
/// depths, ...). Plain-old-data: merging and snapshotting are field
/// copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (exact, unlike the buckets).
    pub total: u64,
    /// `buckets[k]` counts samples with `floor(log2(max(v, 1))) == k`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            count: 0,
            total: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl LatencyHist {
    /// Bucket index of a sample (0 and 1 share bucket 0).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (63 - v.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `k`.
    pub fn bucket_bounds(k: usize) -> (u64, u64) {
        let lo = if k == 0 { 0 } else { 1u64 << k };
        let hi = (2u64 << k) - 1;
        (lo, hi)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v`.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.total = self.total.saturating_add(v.saturating_mul(n));
        self.buckets[Self::bucket_of(v)] += n;
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHist) {
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples (0 if empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`; 0 if empty). Resolution is the bucket width:
    /// the true quantile is within 2x of the returned value.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bounds(k).1;
            }
        }
        Self::bucket_bounds(HIST_BUCKETS - 1).1
    }

    /// Upper bound of the highest non-empty bucket (0 if empty).
    pub fn max_estimate(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|k| Self::bucket_bounds(k).1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(LatencyHist::bucket_of(0), 0);
        assert_eq!(LatencyHist::bucket_of(1), 0);
        assert_eq!(LatencyHist::bucket_of(2), 1);
        assert_eq!(LatencyHist::bucket_of(3), 1);
        assert_eq!(LatencyHist::bucket_of(4), 2);
        assert_eq!(LatencyHist::bucket_of(1023), 9);
        assert_eq!(LatencyHist::bucket_of(1024), 10);
        assert_eq!(LatencyHist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bounds_partition_the_axis() {
        for k in 0..HIST_BUCKETS - 1 {
            let (lo, hi) = LatencyHist::bucket_bounds(k);
            assert_eq!(LatencyHist::bucket_of(lo.max(1)), k);
            assert_eq!(LatencyHist::bucket_of(hi), k);
            assert_eq!(LatencyHist::bucket_bounds(k + 1).0, hi + 1);
        }
    }

    #[test]
    fn quantiles_hit_bucket_upper_bounds() {
        let mut h = LatencyHist::default();
        for _ in 0..90 {
            h.record(100); // bucket 6: [64, 127]
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 13: [8192, 16383]
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.mean(), (90 * 100 + 10 * 10_000) / 100);
        assert_eq!(h.value_at_quantile(0.5), 127);
        assert_eq!(h.value_at_quantile(0.99), 16_383);
        assert_eq!(h.max_estimate(), 16_383);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = LatencyHist::default();
        a.record(5);
        let mut b = LatencyHist::default();
        b.record_n(7, 3);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.total, 5 + 21);
        assert_eq!(a.buckets[2], 4); // 5 and 7 both land in [4, 7]
    }

    #[test]
    fn empty_hist_reports_zeros() {
        let h = LatencyHist::default();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.max_estimate(), 0);
    }
}
