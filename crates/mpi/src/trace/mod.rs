//! Zero-overhead tracing: per-rank event rings, latency histograms,
//! and Chrome/Perfetto trace export.
//!
//! The paper's discipline applies to the observability layer itself:
//! instrumentation must be **strictly zero-cost when compiled out** and
//! *provably near zero-overhead when enabled* (the `trace_experiment`
//! bench pins the enabled-vs-disabled delta under 2% on the matching
//! and completion workloads). The design choices below all serve that
//! budget.
//!
//! # Architecture
//!
//! - **Per-rank, lock-free by construction.** The universe runs one OS
//!   thread per rank, so every recording structure is `thread_local!`:
//!   a bounded event ring plus per-category latency histograms. No
//!   atomics, no locks, no sharing on the record path — the only
//!   synchronization is a single relaxed load of the global
//!   enable flag. When a rank thread exits, [`Universe::run_on`]
//!   (see `universe.rs`) moves the thread's data into the
//!   [`WorldState`](crate::universe::WorldState), exactly like the
//!   [`crate::metrics`] copy counters.
//! - **Bounded ring, overwrite-oldest.** The ring holds a fixed number
//!   of [`Event`]s (default 65 536/rank ≈ 3 MiB; see
//!   [`set_ring_capacity`]). When full, the *oldest* event is
//!   overwritten and a `dropped` counter is bumped: a trace always
//!   shows the most recent window of activity, recording never blocks,
//!   never allocates past the ring, and a runaway workload degrades to
//!   a sliding window instead of OOM. Histograms and counters keep
//!   aggregating across the whole run — only the event *timeline* is
//!   windowed.
//! - **One event per span, recorded at drop.** A [`SpanGuard`] stamps
//!   the start on construction and writes a single complete event
//!   (start + duration) when dropped, halving ring traffic versus
//!   begin/end pairs and making the Chrome exporter's `"ph":"X"`
//!   events trivial. Ring order is therefore span *end* order; the
//!   validator sorts by start time before checking nesting.
//! - **Cheap timestamps.** On x86_64 events are stamped with `rdtsc`
//!   (a few ns; invariant and core-synchronized on every CPU this
//!   substrate targets) and converted to wall nanoseconds once, at
//!   collection time, against an `Instant`-based calibration taken
//!   over the whole run. Other architectures fall back to
//!   `Instant::now()` directly. Conversion is monotone, so event
//!   ordering and span nesting survive it.
//!
//! # The zero-overhead argument
//!
//! With the `trace` feature **off**, [`span`]/[`instant`] are empty
//! `#[inline]` functions, [`SpanGuard`] is a zero-sized type with no
//! `Drop` impl (compile-time asserted), and no thread-local state
//! exists: call sites compile to nothing. With the feature **on** but
//! tracing [`set_enabled`]`(false)`, every entry point bails after one
//! relaxed atomic load. Enabled, a span costs two timestamps, one ring
//! write and one histogram add (~25 ns); an instant costs one of each.
//! The `trace_experiment` bench measures the end-to-end effect and
//! `BENCH_trace.json` pins it below 2%.
//!
//! # What is recorded
//!
//! | category | events |
//! |---|---|
//! | `p2p` | `send` spans ([`Comm::deliver_bytes`]-level, so collective rounds nest inside their collective span), blocking `recv`/`probe` spans, `recv_nb` instants |
//! | `coll` | one span per collective, named `op/algorithm-actually-selected` (e.g. `allreduce/rabenseifner`) from [`CollTuning`](crate::CollTuning) |
//! | `match` | `umq_enqueue` (unexpected message indexed; carries the per-shard arrival seq + queue depth), `umq_match` (unexpected-queue hit), `targeted_wakeup` (envelope handed straight to a posted receiver) |
//! | `completion` | `park_any`/`park_session`/`park_sync_send` spans, `claim` / `missed_completion` / `spurious_wakeup` instants |
//! | `ulfm` | `epoch_bump` (mailbox interrupt), `ulfm_epoch_bump` (agreement-table interrupt), `ulfm/detect` (failure mark), `ulfm/agree` / `ulfm/shrink` spans, and — with the `fault` feature — `fault/crash` / `fault/drop` / `fault/delay` / `fault/dup` injection instants, so a chaos run's timeline shows the crash and every survivor's wakeup |
//! | `user` | spans opened through the binding layer (`kamping::trace_span`) |
//! | `async_op` | Chrome async `"b"`/`"e"` pairs spanning each non-blocking request's initiate→complete lifetime (`isend`, `irecv`, `ibarrier`, `icoll`, …) |
//! | `persist` | async `"b"`/`"e"` pairs spanning each persistent `start`→completion cycle |
//!
//! Matching events are stamped with the shard's arrival sequence
//! number in their `a` argument — the same seq on the sender's
//! `umq_enqueue` and the receiver's `umq_match` — so cross-rank
//! causality can be reconstructed from per-rank rings.
//!
//! # Using it
//!
//! ```ignore
//! let (out, trace) = Universe::run_traced(Config::new(8), |comm| { ... });
//! println!("{}", trace.report());                     // text profile
//! std::fs::write("trace.json", trace.to_chrome_json())?; // open in ui.perfetto.dev
//! ```
//!
//! [`Universe::run_on`]: crate::Universe
//! [`Comm::deliver_bytes`]: crate::Comm

mod hist;

pub mod export;

pub use hist::{LatencyHist, HIST_BUCKETS};

/// True if the `trace` feature was compiled in.
pub const COMPILED: bool = cfg!(feature = "trace");

/// Event categories. The first [`cat::N_SPAN`] are span categories and
/// own a latency histogram in [`TraceStats`]; the rest only appear as
/// instants in the ring.
pub mod cat {
    /// Envelope-level sends (covers p2p *and* collective rounds).
    pub const SEND: u8 = 0;
    /// Blocking receives and probes.
    pub const RECV: u8 = 1;
    /// Collectives, labelled with the selected algorithm.
    pub const COLL: u8 = 2;
    /// Request waits (`wait`, `wait_any`, `wait_some`, `wait_all`).
    pub const WAIT: u8 = 3;
    /// Completion-subsystem parks.
    pub const PARK: u8 = 4;
    /// User spans from the binding layer.
    pub const USER: u8 = 5;
    /// Matching-engine instants.
    pub const MATCH: u8 = 6;
    /// Completion claim/missed/spurious instants.
    pub const COMPLETION: u8 = 7;
    /// Interruption-epoch bumps.
    pub const ULFM: u8 = 8;
    /// Non-blocking request lifetimes (async initiate→complete pairs).
    pub const ASYNC: u8 = 9;
    /// Persistent-operation cycles (async start→complete pairs).
    pub const PERSIST: u8 = 10;

    /// Number of span categories (each has a histogram).
    pub const N_SPAN: usize = 6;
    /// Total number of categories.
    pub const N: usize = 11;

    /// Human-readable category name (also the Chrome `cat` field).
    pub fn name(c: u8) -> &'static str {
        match c {
            SEND => "p2p_send",
            RECV => "p2p_recv",
            COLL => "coll",
            WAIT => "wait",
            PARK => "park",
            USER => "user",
            MATCH => "match",
            COMPLETION => "completion",
            ULFM => "ulfm",
            ASYNC => "async_op",
            PERSIST => "persist",
            _ => "unknown",
        }
    }
}

/// Chrome event phases an [`Event`] can carry. Classic events render as
/// `"ph":"X"` (spans) / `"ph":"i"` (instants); async pairs render as
/// `"ph":"b"` / `"ph":"e"` with a correlation `id`, which is how a
/// non-blocking or persistent operation's *lifetime* — initiation in
/// one stack frame, completion in another, with arbitrary work in
/// between — appears as one span on Perfetto's async tracks.
pub mod ph {
    /// A synchronous span or instant (duration known at record time).
    pub const CLASSIC: u8 = 0;
    /// Async begin (`"ph":"b"`): the operation was initiated.
    pub const ASYNC_BEGIN: u8 = 1;
    /// Async end (`"ph":"e"`): the matching completion was observed.
    pub const ASYNC_END: u8 = 2;
}

/// One recorded event. Timestamps are wall nanoseconds relative to the
/// process's trace epoch (first trace activity); `dur_ns == 0` marks
/// an instant event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Start time, ns since the trace epoch.
    pub ts_ns: u64,
    /// Span duration in ns; 0 for instant events.
    pub dur_ns: u64,
    /// Category (see [`cat`]).
    pub cat: u8,
    /// Static event name (e.g. `"send"`, `"allreduce/rabenseifner"`).
    pub name: &'static str,
    /// First argument: peer rank, arrival seq, slot id, ... (per event).
    pub a: u64,
    /// Second argument: payload bytes, queue depth, ... (per event).
    pub b: u64,
    /// Chrome phase (see [`ph`]); [`ph::CLASSIC`] for spans/instants.
    pub ph: u8,
    /// Async correlation id pairing a [`ph::ASYNC_BEGIN`] with its
    /// [`ph::ASYNC_END`] within `(rank, cat)`; 0 for classic events.
    pub id: u64,
}

/// Aggregated per-rank trace statistics. Always present (zeroed when
/// the `trace` feature is off) so [`RankStats`](crate::RankStats) has
/// one shape in every build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events recorded (including any overwritten in the ring).
    pub events: u64,
    /// Events overwritten after the ring filled (oldest-first).
    pub dropped: u64,
    /// Span-duration histograms (ns), indexed by span category
    /// ([`cat::SEND`] .. [`cat::USER`]).
    pub spans: [LatencyHist; cat::N_SPAN],
    /// Unexpected-queue depth observed at each enqueue this rank
    /// performed (a depth gauge over the *destination* queue).
    pub queue_depth: LatencyHist,
}

impl TraceStats {
    /// Folds `other` into `self` (for cross-rank aggregation).
    pub fn merge(&mut self, other: &TraceStats) {
        self.events += other.events;
        self.dropped += other.dropped;
        for (s, o) in self.spans.iter_mut().zip(&other.spans) {
            s.merge(o);
        }
        self.queue_depth.merge(&other.queue_depth);
    }
}

/// One rank's collected trace: the (possibly windowed) event timeline
/// plus whole-run aggregates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankTrace {
    /// Events in the ring at collection time, oldest first.
    pub events: Vec<Event>,
    /// Whole-run aggregates (never windowed).
    pub stats: TraceStats,
}

/// All ranks' traces from one run (see
/// [`Universe::run_traced`](crate::Universe::run_traced)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Per-rank traces, in rank order.
    pub ranks: Vec<RankTrace>,
}

impl TraceData {
    /// Renders the run as Chrome trace-event JSON (one `pid` per
    /// rank); load the result in `ui.perfetto.dev` or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        export::chrome_trace_json(&self.ranks)
    }

    /// Text profile: per-rank event counts plus per-category latency
    /// quantiles and the unexpected-queue depth gauge. Degrades to a
    /// pointer at the `trace` feature when compiled out.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        if !COMPILED {
            s.push_str("trace: feature disabled — rebuild with `--features trace` for a profile\n");
        }
        for (rank, rt) in self.ranks.iter().enumerate() {
            let st = &rt.stats;
            let _ = writeln!(
                s,
                "rank {rank}: {} events ({} in ring, {} dropped)",
                st.events,
                rt.events.len(),
                st.dropped
            );
            for (c, h) in st.spans.iter().enumerate() {
                if h.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    s,
                    "  {:<10} n={:<8} mean={:<9} p50={:<9} p99={:<9} max={}",
                    cat::name(c as u8),
                    h.count,
                    fmt_ns(h.mean()),
                    fmt_ns(h.value_at_quantile(0.5)),
                    fmt_ns(h.value_at_quantile(0.99)),
                    fmt_ns(h.max_estimate()),
                );
            }
            if !st.queue_depth.is_empty() {
                let _ = writeln!(
                    s,
                    "  {:<10} n={:<8} mean={:<9} p50={:<9} p99={:<9} max={}",
                    "umq_depth",
                    st.queue_depth.count,
                    st.queue_depth.mean(),
                    st.queue_depth.value_at_quantile(0.5),
                    st.queue_depth.value_at_quantile(0.99),
                    st.queue_depth.max_estimate(),
                );
            }
        }
        s
    }
}

/// One rank's live-snapshot mailbox (see
/// [`Universe::trace_snapshot`](crate::Universe::trace_snapshot)). The
/// rings are `thread_local!`, so a running rank's trace can only be
/// read by the rank itself: a snapshot request bumps a global
/// generation, and each rank *publishes* a copy of its ring here the
/// next time it records an event (or wakes from a park). The cost on
/// the record path is one relaxed load and compare — the zero-overhead
/// budget is preserved.
#[derive(Default)]
pub(crate) struct SnapshotSlot {
    /// Latest snapshot generation this rank has published
    /// (`u64::MAX` once the rank thread has exited and its final
    /// trace is in place).
    pub(crate) gen: std::sync::atomic::AtomicU64,
    /// The published trace (a clone of the live ring at publish time).
    pub(crate) data: parking_lot::Mutex<RankTrace>,
}

/// Formats a nanosecond duration for the text profile.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(feature = "trace")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    use super::{cat, Event, LatencyHist, RankTrace, SnapshotSlot, TraceStats};

    static ENABLED: AtomicBool = AtomicBool::new(true);
    static RING_CAP: AtomicUsize = AtomicUsize::new(1 << 16);
    /// Live-snapshot generation: bumped by [`request_snapshot`]; each
    /// recording thread publishes its ring when it notices the bump.
    static SNAP_GEN: AtomicU64 = AtomicU64::new(0);

    /// Raw-timestamp calibration: one `(Instant, raw)` pair taken at
    /// first use; the raw→ns scale is fixed at first conversion, over
    /// the longest window available.
    struct Calib {
        t0: Instant,
        raw0: u64,
    }
    static CALIB: OnceLock<Calib> = OnceLock::new();
    /// `f64::to_bits` of ns-per-raw-tick, fixed at first collection so
    /// all ranks convert consistently.
    static SCALE: OnceLock<u64> = OnceLock::new();

    fn calib() -> &'static Calib {
        CALIB.get_or_init(|| Calib {
            t0: Instant::now(),
            raw0: raw_clock(),
        })
    }

    /// The raw tick source: `rdtsc` on x86_64 (invariant and
    /// core-synchronized on targeted CPUs), monotonic `Instant`
    /// elsewhere.
    #[inline]
    fn raw_clock() -> u64 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `rdtsc` is baseline x86_64.
        unsafe {
            core::arch::x86_64::_rdtsc()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CALIB
                .get()
                .map(|c| c.t0.elapsed().as_nanos() as u64)
                .unwrap_or(0)
        }
    }

    #[inline]
    fn raw_now() -> u64 {
        let c = calib();
        raw_clock().wrapping_sub(c.raw0)
    }

    /// ns per raw tick, calibrated once over the elapsed run.
    fn ns_per_raw() -> f64 {
        let bits = *SCALE.get_or_init(|| {
            let c = calib();
            let dr = raw_clock().wrapping_sub(c.raw0);
            let dt = c.t0.elapsed().as_nanos() as u64;
            let scale = if dr == 0 { 1.0 } else { dt as f64 / dr as f64 };
            scale.to_bits()
        });
        f64::from_bits(bits)
    }

    struct ThreadTrace {
        buf: Vec<Event>,
        /// Oldest entry once the ring has wrapped (0 before).
        head: usize,
        cap: usize,
        dropped: u64,
        events: u64,
        /// Span durations in raw ticks (converted at collection).
        spans: [LatencyHist; cat::N_SPAN],
        queue_depth: LatencyHist,
        /// Last snapshot generation this thread has published.
        seen_gen: u64,
        /// Where to publish live snapshots (set by the universe for
        /// rank threads; `None` for plain threads).
        slot: Option<Arc<SnapshotSlot>>,
    }

    impl ThreadTrace {
        fn new() -> Self {
            ThreadTrace {
                buf: Vec::new(),
                head: 0,
                cap: RING_CAP.load(Ordering::Relaxed),
                dropped: 0,
                events: 0,
                spans: Default::default(),
                queue_depth: LatencyHist::default(),
                seen_gen: 0,
                slot: None,
            }
        }

        #[inline]
        fn record(&mut self, e: Event) {
            self.events += 1;
            if self.buf.len() < self.cap {
                self.buf.push(e);
            } else if self.cap > 0 {
                self.buf[self.head] = e;
                self.head += 1;
                if self.head == self.cap {
                    self.head = 0;
                }
                self.dropped += 1;
            } else {
                self.dropped += 1;
            }
            // Live-snapshot hook: one relaxed load per event keeps the
            // zero-overhead budget; the publish itself is off this path.
            let gen = SNAP_GEN.load(Ordering::Relaxed);
            if gen != self.seen_gen {
                self.publish(gen);
            }
        }

        /// Copies the ring (oldest first) and aggregates out of the
        /// thread, converting raw ticks to wall nanoseconds.
        fn to_rank_trace(&self) -> RankTrace {
            let scale = ns_per_raw();
            let to_ns = |ticks: u64| (ticks as f64 * scale) as u64;
            let n = self.buf.len();
            let mut events = Vec::with_capacity(n);
            for i in 0..n {
                let e = self.buf[(self.head + i) % n];
                let start = to_ns(e.ts_ns);
                // Convert the *end* point, not the duration: monotone
                // conversion of both endpoints preserves span nesting
                // exactly through rounding.
                let end = to_ns(e.ts_ns + e.dur_ns);
                events.push(Event {
                    ts_ns: start,
                    dur_ns: end - start,
                    ..e
                });
            }
            let mut spans: [LatencyHist; cat::N_SPAN] = Default::default();
            for (out, h) in spans.iter_mut().zip(&self.spans) {
                *out = hist_ticks_to_ns(h, scale);
            }
            RankTrace {
                events,
                stats: TraceStats {
                    events: self.events,
                    dropped: self.dropped,
                    spans,
                    queue_depth: self.queue_depth,
                },
            }
        }

        /// Publishes a copy of the live ring to this rank's snapshot
        /// slot (no-op for unregistered threads) and marks `gen` seen.
        #[cold]
        fn publish(&mut self, gen: u64) {
            self.seen_gen = gen;
            if let Some(slot) = self.slot.clone() {
                *slot.data.lock() = self.to_rank_trace();
                slot.gen.store(gen, Ordering::Release);
            }
        }
    }

    thread_local! {
        static TT: RefCell<ThreadTrace> = RefCell::new(ThreadTrace::new());
    }

    /// True if tracing is compiled in *and* runtime-enabled.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Runtime toggle (process-wide). With tracing compiled in but
    /// disabled, every entry point bails after this one relaxed load —
    /// the configuration `trace_experiment` uses as its baseline.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Sets the ring capacity (events per rank) used by rings created
    /// *after* the call — set it before `Universe::run`. Aggregate
    /// statistics are unaffected; only the event window shrinks/grows.
    pub fn set_ring_capacity(cap: usize) {
        RING_CAP.store(cap, Ordering::Relaxed);
    }

    /// An open span; records one complete event (start + duration) and
    /// a histogram sample when dropped.
    #[must_use]
    pub struct SpanGuard {
        start: u64,
        a: u64,
        b: u64,
        name: &'static str,
        cat: u8,
        armed: bool,
    }

    /// Opens a span in category `c` (< [`cat::N_SPAN`]).
    #[inline]
    pub fn span(c: u8, name: &'static str, a: u64, b: u64) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                start: 0,
                a: 0,
                b: 0,
                name: "",
                cat: c,
                armed: false,
            };
        }
        SpanGuard {
            start: raw_now(),
            a,
            b,
            name,
            cat: c,
            armed: true,
        }
    }

    impl Drop for SpanGuard {
        #[inline]
        fn drop(&mut self) {
            if !self.armed {
                return;
            }
            let dur = raw_now().saturating_sub(self.start);
            TT.with(|t| {
                let mut t = t.borrow_mut();
                t.spans[self.cat as usize].record(dur);
                t.record(Event {
                    ts_ns: self.start,
                    dur_ns: dur,
                    cat: self.cat,
                    name: self.name,
                    a: self.a,
                    b: self.b,
                    ph: super::ph::CLASSIC,
                    id: 0,
                });
            });
        }
    }

    /// Records an instant event.
    #[inline]
    pub fn instant(c: u8, name: &'static str, a: u64, b: u64) {
        if !enabled() {
            return;
        }
        let now = raw_now();
        TT.with(|t| {
            t.borrow_mut().record(Event {
                ts_ns: now,
                dur_ns: 0,
                cat: c,
                name,
                a,
                b,
                ph: super::ph::CLASSIC,
                id: 0,
            })
        });
    }

    /// Process-unique id correlating one async begin/end pair.
    pub fn next_async_id() -> u64 {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Records the initiation of an async operation (Chrome `"ph":"b"`).
    /// The matching [`async_end`] with the same `(category, id)` closes
    /// the span — possibly much later, from a different stack frame.
    #[inline]
    pub fn async_begin(c: u8, name: &'static str, id: u64) {
        async_event(c, name, id, super::ph::ASYNC_BEGIN);
    }

    /// Records the completion of an async operation (Chrome `"ph":"e"`).
    #[inline]
    pub fn async_end(c: u8, name: &'static str, id: u64) {
        async_event(c, name, id, super::ph::ASYNC_END);
    }

    #[inline]
    fn async_event(c: u8, name: &'static str, id: u64, phase: u8) {
        if !enabled() {
            return;
        }
        let now = raw_now();
        TT.with(|t| {
            t.borrow_mut().record(Event {
                ts_ns: now,
                dur_ns: 0,
                cat: c,
                name,
                a: 0,
                b: 0,
                ph: phase,
                id,
            })
        });
    }

    /// Matching-engine hook: one unexpected enqueue = one instant plus
    /// one depth-gauge sample, in a single thread-local access.
    #[inline]
    pub fn umq_enqueue(seq: u64, depth: u64) {
        if !enabled() {
            return;
        }
        let now = raw_now();
        TT.with(|t| {
            let mut t = t.borrow_mut();
            t.queue_depth.record(depth);
            t.record(Event {
                ts_ns: now,
                dur_ns: 0,
                cat: cat::MATCH,
                name: "umq_enqueue",
                a: seq,
                b: depth,
                ph: super::ph::CLASSIC,
                id: 0,
            });
        });
    }

    /// Takes (and resets) the calling thread's trace, converting raw
    /// ticks to wall nanoseconds. Called by the universe as each rank
    /// thread exits.
    pub fn take_thread() -> RankTrace {
        let raw = TT.with(|t| std::mem::replace(&mut *t.borrow_mut(), ThreadTrace::new()));
        raw.to_rank_trace()
    }

    /// Registers the calling thread's live-snapshot slot (the universe
    /// calls this as each rank thread starts).
    pub fn register_snapshot_slot(slot: Arc<SnapshotSlot>) {
        TT.with(|t| t.borrow_mut().slot = Some(slot));
    }

    /// Asks every recording thread to publish its ring; returns the
    /// generation to poll slots for.
    pub fn request_snapshot() -> u64 {
        SNAP_GEN.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Park-loop hook: publishes the calling thread's ring if a
    /// snapshot was requested since it last published. Called on
    /// epoch-bump wakeups that record no event of their own, so a rank
    /// blocked in a bare `recv` still answers a snapshot request.
    #[inline]
    pub fn poll_publish() {
        let gen = SNAP_GEN.load(Ordering::Relaxed);
        TT.with(|t| {
            let mut t = t.borrow_mut();
            if gen != t.seen_gen {
                t.publish(gen);
            }
        });
    }

    /// Unconditionally publishes the calling thread's ring at the
    /// current generation (the snapshotting rank serves itself).
    pub fn publish_now() {
        let gen = SNAP_GEN.load(Ordering::SeqCst);
        TT.with(|t| t.borrow_mut().publish(gen));
    }

    /// Rescales a tick-valued histogram to nanoseconds by re-recording
    /// each bucket at its representative value (1.5·2^k ticks). The 2x
    /// bucket resolution absorbs the approximation.
    fn hist_ticks_to_ns(h: &LatencyHist, scale: f64) -> LatencyHist {
        let mut out = LatencyHist::default();
        for (k, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let rep_ticks = if k == 0 { 1u64 } else { 3u64 << (k - 1) };
            out.record_n(((rep_ticks as f64 * scale) as u64).max(1), c);
        }
        out.count = h.count;
        out.total = (h.total as f64 * scale) as u64;
        out
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::RankTrace;

    /// An open span. With the `trace` feature off this is a zero-sized
    /// type with no `Drop` impl: spans compile to nothing.
    #[must_use]
    pub struct SpanGuard;

    // Compile-time proof of the disabled path's zero cost.
    const _: () = assert!(std::mem::size_of::<SpanGuard>() == 0);

    /// Always false without the `trace` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `trace` feature.
    #[inline]
    pub fn set_enabled(_on: bool) {}

    /// No-op without the `trace` feature.
    #[inline]
    pub fn set_ring_capacity(_cap: usize) {}

    /// No-op without the `trace` feature.
    #[inline]
    pub fn span(_c: u8, _name: &'static str, _a: u64, _b: u64) -> SpanGuard {
        SpanGuard
    }

    /// No-op without the `trace` feature.
    #[inline]
    pub fn instant(_c: u8, _name: &'static str, _a: u64, _b: u64) {}

    /// No-op without the `trace` feature.
    #[inline]
    pub fn umq_enqueue(_seq: u64, _depth: u64) {}

    /// Always 0 without the `trace` feature (ids are only consumed by
    /// the recording paths, which are compiled out).
    #[inline]
    pub fn next_async_id() -> u64 {
        0
    }

    /// No-op without the `trace` feature.
    #[inline]
    pub fn async_begin(_c: u8, _name: &'static str, _id: u64) {}

    /// No-op without the `trace` feature.
    #[inline]
    pub fn async_end(_c: u8, _name: &'static str, _id: u64) {}

    /// Returns an empty (allocation-free) trace.
    pub fn take_thread() -> RankTrace {
        RankTrace::default()
    }

    /// No-op without the `trace` feature.
    pub fn register_snapshot_slot(_slot: std::sync::Arc<super::SnapshotSlot>) {}

    /// Always 0 without the `trace` feature (nothing to poll for).
    pub fn request_snapshot() -> u64 {
        0
    }

    /// No-op without the `trace` feature.
    #[inline]
    pub fn poll_publish() {}

    /// No-op without the `trace` feature.
    pub fn publish_now() {}
}

pub use imp::{
    async_begin, async_end, enabled, instant, next_async_id, set_enabled, set_ring_capacity, span,
    take_thread, umq_enqueue, SpanGuard,
};
pub(crate) use imp::{poll_publish, publish_now, register_snapshot_slot, request_snapshot};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_folds_everything() {
        let mut a = TraceStats {
            events: 3,
            ..Default::default()
        };
        a.spans[0].record(100);
        let mut b = TraceStats {
            events: 2,
            dropped: 1,
            ..Default::default()
        };
        b.spans[0].record(200);
        b.queue_depth.record(4);
        a.merge(&b);
        assert_eq!(a.events, 5);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.spans[0].count, 2);
        assert_eq!(a.queue_depth.count, 1);
    }

    #[test]
    fn report_degrades_gracefully_on_empty_data() {
        let data = TraceData {
            ranks: vec![RankTrace::default(); 2],
        };
        let report = data.report();
        assert!(report.contains("rank 0"));
        assert!(report.contains("rank 1"));
        if !COMPILED {
            assert!(report.contains("feature disabled"));
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn thread_records_spans_instants_and_drops() {
        // Fresh thread: thread-local state isolates this test from
        // anything else in the process.
        std::thread::spawn(|| {
            {
                let _s = span(cat::COLL, "allreduce/test", 64, 8);
                instant(cat::MATCH, "umq_match", 1, 0);
            }
            umq_enqueue(2, 5);
            let t = take_thread();
            assert_eq!(t.stats.events, 3);
            assert_eq!(t.stats.dropped, 0);
            assert_eq!(t.events.len(), 3);
            // Ring order is completion order: the instant inside the
            // span lands before the span's own (drop-time) event, and
            // the span closes before the later enqueue.
            assert_eq!(t.events[0].name, "umq_match");
            assert_eq!(t.events[1].name, "allreduce/test");
            assert_eq!(t.events[2].name, "umq_enqueue");
            assert!(t.events[1].dur_ns > 0, "span must have a duration");
            assert_eq!(t.stats.spans[cat::COLL as usize].count, 1);
            assert_eq!(t.stats.queue_depth.count, 1);
            // A second take sees a clean slate.
            assert_eq!(take_thread(), RankTrace::default());
        })
        .join()
        .unwrap();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        std::thread::spawn(|| {
            set_ring_capacity(4);
            for i in 0..10u64 {
                instant(cat::MATCH, "e", i, 0);
            }
            let t = take_thread();
            set_ring_capacity(1 << 16);
            assert_eq!(t.stats.events, 10);
            assert_eq!(t.stats.dropped, 6);
            assert_eq!(t.events.len(), 4);
            // Oldest-first extraction of the surviving window.
            let args: Vec<u64> = t.events.iter().map(|e| e.a).collect();
            assert_eq!(args, vec![6, 7, 8, 9]);
        })
        .join()
        .unwrap();
    }

    /// Per-event cost calibration (not an assertion — run with
    /// `cargo test --release --features trace -- --ignored --nocapture
    /// calibrate` to see what a span/instant costs on this host).
    #[cfg(feature = "trace")]
    #[test]
    #[ignore = "prints timings; run explicitly with --ignored --nocapture"]
    fn calibrate_event_costs() {
        std::thread::spawn(|| {
            let n = 1_000_000u64;
            let t0 = std::time::Instant::now();
            for i in 0..n {
                instant(cat::MATCH, "calib", i, 0);
            }
            let per_instant = t0.elapsed().as_nanos() as f64 / n as f64;
            let _ = take_thread();
            let t0 = std::time::Instant::now();
            for i in 0..n {
                let _s = span(cat::SEND, "calib", i, 0);
            }
            let per_span = t0.elapsed().as_nanos() as f64 / n as f64;
            let _ = take_thread();
            set_enabled(false);
            let t0 = std::time::Instant::now();
            for i in 0..n {
                let _s = span(cat::SEND, "calib", i, 0);
                instant(cat::MATCH, "calib", i, 0);
            }
            let per_disabled_pair = t0.elapsed().as_nanos() as f64 / n as f64;
            set_enabled(true);
            println!(
                "instant: {per_instant:.1} ns, span: {per_span:.1} ns, \
                 disabled span+instant: {per_disabled_pair:.1} ns"
            );
        })
        .join()
        .unwrap();
    }

    #[cfg(feature = "trace")]
    #[test]
    fn timestamps_are_monotone_within_a_thread() {
        std::thread::spawn(|| {
            for i in 0..100u64 {
                instant(cat::MATCH, "tick", i, 0);
            }
            let t = take_thread();
            let ts: Vec<u64> = t.events.iter().map(|e| e.ts_ns).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            assert_eq!(ts, sorted, "instant order must match time order");
        })
        .join()
        .unwrap();
    }
}
