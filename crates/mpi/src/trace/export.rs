//! Chrome trace-event / Perfetto JSON export and schema validation.
//!
//! The emitter writes the [JSON Array Format] understood by
//! `chrome://tracing` and [ui.perfetto.dev]: one process (`pid`) per
//! rank, complete spans as `"ph":"X"` events (`ts`/`dur` in
//! microseconds), instants as `"ph":"i"`, async operation lifetimes
//! (non-blocking requests, persistent cycles) as `"ph":"b"`/`"ph":"e"`
//! pairs correlated by `id`, plus `"ph":"M"` metadata
//! naming each process. Everything is emitted one event per line so
//! the hand-rolled [`validate_chrome`] checker (the workspace has no
//! JSON dependency, by design) can parse it line-wise; timestamps are
//! printed as exact `ns/1000` fixed-point values so validation does
//! not depend on float rounding.
//!
//! [JSON Array Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use super::{cat, ph, RankTrace};

/// Renders per-rank traces as Chrome trace-event JSON. Events of rank
/// `r` carry `pid == r` (and `tid == r`: one thread per rank).
pub fn chrome_trace_json(ranks: &[RankTrace]) -> String {
    use std::fmt::Write;
    let mut out = String::from("[\n");
    let mut first = true;
    for (pid, rt) in ranks.iter().enumerate() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","ts":0,"pid":{pid},"tid":{pid},"args":{{"name":"rank {pid}"}}}}"#
        );
        for e in &rt.events {
            sep(&mut out, &mut first);
            let name = e.name;
            let category = cat::name(e.cat);
            let ts = us(e.ts_ns);
            if e.ph != ph::CLASSIC {
                let phase = if e.ph == ph::ASYNC_BEGIN { "b" } else { "e" };
                let _ = write!(
                    out,
                    r#"{{"name":"{name}","cat":"{category}","ph":"{phase}","id":{},"ts":{ts},"pid":{pid},"tid":{pid},"args":{{"a":{},"b":{}}}}}"#,
                    e.id, e.a, e.b
                );
            } else if e.dur_ns > 0 {
                let dur = us(e.dur_ns);
                let _ = write!(
                    out,
                    r#"{{"name":"{name}","cat":"{category}","ph":"X","ts":{ts},"dur":{dur},"pid":{pid},"tid":{pid},"args":{{"a":{},"b":{}}}}}"#,
                    e.a, e.b
                );
            } else {
                let _ = write!(
                    out,
                    r#"{{"name":"{name}","cat":"{category}","ph":"i","s":"t","ts":{ts},"pid":{pid},"tid":{pid},"args":{{"a":{},"b":{}}}}}"#,
                    e.a, e.b
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Microseconds with exact 3-decimal fixed point (`ns` is integral, so
/// this is lossless).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// What [`validate_chrome`] verified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Distinct `pid`s, ascending.
    pub pids: Vec<u64>,
    /// Number of complete (`"ph":"X"`) span events.
    pub spans: usize,
    /// Number of instant (`"ph":"i"`) events.
    pub instants: usize,
    /// Number of matched async `"b"`/`"e"` pairs.
    pub async_pairs: usize,
    /// Async `"b"` events whose `"e"` never arrived (abandoned or
    /// errored operations; legal, but surfaced for tests to bound).
    pub async_unclosed: usize,
}

/// Schema check for the exporter's output (used by tests and by the
/// `trace_experiment` bench to self-validate the traces it writes):
///
/// - the document is a JSON array of one-per-line event objects;
/// - every event has `name`, `ph`, `ts`, `pid`, `tid`; `ph` is one of
///   `X` (which additionally requires `dur`), `i` (requires `s`),
///   `b`/`e` (which require `id`), `M`;
/// - within each `(pid, tid)` timeline, spans nest properly: ordered
///   by start time, no span extends past the end of the span
///   containing it;
/// - async events pair up within `(pid, cat, id)`: every `"e"` closes
///   exactly one earlier `"b"` carrying the same name and a
///   less-or-equal timestamp; double-begin on one id and `"e"` without
///   a `"b"` are rejected. Unclosed `"b"`s (an operation abandoned or
///   errored before completing) are legal and counted.
pub fn validate_chrome(json: &str) -> Result<TraceSummary, String> {
    let body = json.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or("document is not a JSON array")?;
    let mut summary = TraceSummary::default();
    // (pid, tid) -> [(ts_ns, end_ns)]
    type Timeline = ((u64, u64), Vec<(u64, u64)>);
    let mut timelines: Vec<Timeline> = Vec::new();
    // Open async begins: (pid, cat, id) -> (name, ts_ns).
    type OpenAsync = ((u64, String, u64), (String, u64));
    let mut open_async: Vec<OpenAsync> = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {lineno}: not a one-line JSON object: {line}"));
        }
        let ctx = |what: &str| format!("line {lineno}: {what}: {line}");
        str_field(line, "name").ok_or_else(|| ctx("missing \"name\""))?;
        let ph = str_field(line, "ph").ok_or_else(|| ctx("missing \"ph\""))?;
        let ts = ts_field(line, "ts").ok_or_else(|| ctx("missing/bad \"ts\""))?;
        let pid = int_field(line, "pid").ok_or_else(|| ctx("missing \"pid\""))?;
        let tid = int_field(line, "tid").ok_or_else(|| ctx("missing \"tid\""))?;
        if !summary.pids.contains(&pid) {
            summary.pids.push(pid);
        }
        match ph.as_str() {
            "X" => {
                let dur = ts_field(line, "dur").ok_or_else(|| ctx("X event without \"dur\""))?;
                summary.spans += 1;
                let key = (pid, tid);
                match timelines.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v.push((ts, ts + dur)),
                    None => timelines.push((key, vec![(ts, ts + dur)])),
                }
            }
            "i" => {
                str_field(line, "s").ok_or_else(|| ctx("instant without scope \"s\""))?;
                summary.instants += 1;
            }
            "b" => {
                let id = int_field(line, "id").ok_or_else(|| ctx("async event without \"id\""))?;
                let c = str_field(line, "cat").ok_or_else(|| ctx("async event without \"cat\""))?;
                let name = str_field(line, "name").expect("checked above");
                let key = (pid, c, id);
                if open_async.iter().any(|(k, _)| *k == key) {
                    return Err(ctx("async \"b\" while the same (pid, cat, id) is open"));
                }
                open_async.push((key, (name, ts)));
            }
            "e" => {
                let id = int_field(line, "id").ok_or_else(|| ctx("async event without \"id\""))?;
                let c = str_field(line, "cat").ok_or_else(|| ctx("async event without \"cat\""))?;
                let name = str_field(line, "name").expect("checked above");
                let key = (pid, c, id);
                let Some(pos) = open_async.iter().position(|(k, _)| *k == key) else {
                    return Err(ctx("async \"e\" without a matching open \"b\""));
                };
                let (_, (b_name, b_ts)) = open_async.swap_remove(pos);
                if b_name != name {
                    return Err(ctx(&format!(
                        "async pair renamed: \"b\" was \"{b_name}\", \"e\" is \"{name}\""
                    )));
                }
                if ts < b_ts {
                    return Err(ctx("async \"e\" precedes its \"b\""));
                }
                summary.async_pairs += 1;
            }
            "M" => {}
            other => return Err(ctx(&format!("invalid \"ph\":\"{other}\""))),
        }
    }
    summary.pids.sort_unstable();
    summary.async_unclosed = open_async.len();
    // Nesting check per timeline. Span events are recorded at drop
    // (end order); sort by (start asc, end desc) so a parent precedes
    // its children, then verify with a stack.
    for ((pid, tid), mut spans) in timelines {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (ts, end) in spans {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= ts {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_ts, top_end)) = stack.last() {
                if end > top_end {
                    return Err(format!(
                        "pid {pid} tid {tid}: span [{ts}, {end}]ns overlaps \
                         [{top_ts}, {top_end}]ns without nesting"
                    ));
                }
            }
            stack.push((ts, end));
        }
    }
    Ok(summary)
}

/// Extracts a string field `"key":"value"` from a one-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts an unsigned integer field `"key":123`.
fn int_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extracts a microsecond timestamp field (bare fixed-point number,
/// optionally string-quoted), returning nanoseconds.
fn ts_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let text: String = line[start..]
        .trim_start_matches('"')
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    if text.is_empty() {
        return None;
    }
    let (whole, frac) = match text.split_once('.') {
        Some((w, f)) => (w, f),
        None => (text.as_str(), ""),
    };
    let mut ns: u64 = whole.parse::<u64>().ok()?.checked_mul(1000)?;
    if !frac.is_empty() {
        if frac.len() > 3 || !frac.chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        let mut f: u64 = frac.parse().ok()?;
        for _ in frac.len()..3 {
            f *= 10;
        }
        ns += f;
    }
    Some(ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, RankTrace};

    fn ev(name: &'static str, c: u8, ts: u64, dur: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            cat: c,
            name,
            a: 1,
            b: 2,
            ph: ph::CLASSIC,
            id: 0,
        }
    }

    fn aev(name: &'static str, c: u8, ts: u64, phase: u8, id: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 0,
            cat: c,
            name,
            a: 0,
            b: 0,
            ph: phase,
            id,
        }
    }

    #[test]
    fn export_roundtrips_through_the_validator() {
        let ranks = vec![
            RankTrace {
                events: vec![
                    ev("umq_enqueue", cat::MATCH, 500, 0),
                    ev("send", cat::SEND, 1_000, 2_500),
                    ev("allreduce/rabenseifner", cat::COLL, 100, 9_000),
                ],
                ..Default::default()
            },
            RankTrace {
                events: vec![ev("recv", cat::RECV, 2_000, 1_000)],
                ..Default::default()
            },
        ];
        let json = chrome_trace_json(&ranks);
        let summary = validate_chrome(&json).expect("valid trace");
        assert_eq!(summary.pids, vec![0, 1]);
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.instants, 1);
    }

    #[test]
    fn validator_rejects_non_nested_spans() {
        let ranks = vec![RankTrace {
            // [100, 300] and [200, 400] overlap without containment.
            events: vec![ev("a", cat::COLL, 100, 200), ev("b", cat::SEND, 200, 200)],
            ..Default::default()
        }];
        let err = validate_chrome(&chrome_trace_json(&ranks)).unwrap_err();
        assert!(err.contains("without nesting"), "got: {err}");
    }

    #[test]
    fn validator_accepts_drop_order_nesting() {
        // Recorded at drop: the child appears before its parent in the
        // ring, the validator must still see proper nesting.
        let ranks = vec![RankTrace {
            events: vec![
                ev("child", cat::SEND, 200, 100),
                ev("parent", cat::COLL, 100, 400),
            ],
            ..Default::default()
        }];
        let summary = validate_chrome(&chrome_trace_json(&ranks)).expect("nested");
        assert_eq!(summary.spans, 2);
    }

    #[test]
    fn validator_rejects_missing_fields_and_bad_ph() {
        assert!(validate_chrome("{}").is_err(), "not an array");
        assert!(
            validate_chrome("[\n{\"name\":\"x\",\"ph\":\"X\",\"ts\":1.000,\"pid\":0}\n]")
                .unwrap_err()
                .contains("tid")
        );
        assert!(validate_chrome(
            "[\n{\"name\":\"x\",\"ph\":\"Q\",\"ts\":1.000,\"pid\":0,\"tid\":0}\n]"
        )
        .unwrap_err()
        .contains("invalid \"ph\""));
        assert!(validate_chrome(
            "[\n{\"name\":\"x\",\"ph\":\"X\",\"ts\":1.000,\"pid\":0,\"tid\":0}\n]"
        )
        .unwrap_err()
        .contains("without \"dur\""));
    }

    #[test]
    fn async_pairs_roundtrip_through_the_validator() {
        // Two interleaved async ops on one rank plus one on another;
        // ids distinguish them even with identical names.
        let ranks = vec![
            RankTrace {
                events: vec![
                    aev("irecv", cat::ASYNC, 100, ph::ASYNC_BEGIN, 7),
                    aev("isend", cat::ASYNC, 200, ph::ASYNC_BEGIN, 8),
                    aev("irecv", cat::ASYNC, 300, ph::ASYNC_END, 7),
                    aev("isend", cat::ASYNC, 400, ph::ASYNC_END, 8),
                ],
                ..Default::default()
            },
            RankTrace {
                events: vec![
                    aev("persistent_cycle", cat::PERSIST, 50, ph::ASYNC_BEGIN, 9),
                    aev("persistent_cycle", cat::PERSIST, 60, ph::ASYNC_END, 9),
                ],
                ..Default::default()
            },
        ];
        let json = chrome_trace_json(&ranks);
        assert!(json.contains("\"ph\":\"b\""), "{json}");
        assert!(json.contains("\"ph\":\"e\""), "{json}");
        let summary = validate_chrome(&json).expect("valid async trace");
        assert_eq!(summary.async_pairs, 3);
        assert_eq!(summary.async_unclosed, 0);
    }

    #[test]
    fn validator_counts_unclosed_begins_and_rejects_orphan_ends() {
        // A "b" with no "e" is legal (abandoned request) but counted.
        let unclosed = vec![RankTrace {
            events: vec![aev("isend", cat::ASYNC, 100, ph::ASYNC_BEGIN, 1)],
            ..Default::default()
        }];
        let summary = validate_chrome(&chrome_trace_json(&unclosed)).expect("legal");
        assert_eq!(summary.async_pairs, 0);
        assert_eq!(summary.async_unclosed, 1);

        // An "e" with no prior "b" is a schema violation.
        let orphan = vec![RankTrace {
            events: vec![aev("isend", cat::ASYNC, 100, ph::ASYNC_END, 1)],
            ..Default::default()
        }];
        let err = validate_chrome(&chrome_trace_json(&orphan)).unwrap_err();
        assert!(err.contains("without a matching open \"b\""), "got: {err}");

        // Double-begin on one (pid, cat, id) is a schema violation.
        let double = vec![RankTrace {
            events: vec![
                aev("isend", cat::ASYNC, 100, ph::ASYNC_BEGIN, 1),
                aev("isend", cat::ASYNC, 200, ph::ASYNC_BEGIN, 1),
            ],
            ..Default::default()
        }];
        let err = validate_chrome(&chrome_trace_json(&double)).unwrap_err();
        assert!(err.contains("is open"), "got: {err}");
    }

    #[test]
    fn timestamps_are_exact_fixed_point() {
        let ranks = vec![RankTrace {
            events: vec![ev("s", cat::SEND, 1_234_567, 89)],
            ..Default::default()
        }];
        let json = chrome_trace_json(&ranks);
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":0.089"), "{json}");
        assert_eq!(ts_field("{\"ts\":1234.567}", "ts"), Some(1_234_567));
        assert_eq!(ts_field("{\"ts\":1234.5}", "ts"), Some(1_234_500));
        assert_eq!(ts_field("{\"ts\":42}", "ts"), Some(42_000));
    }
}
