//! Persistent operations (MPI-4 `MPI_Send_init` / `MPI_Recv_init` /
//! `MPI_Bcast_init` / …): freeze the plan once, amortize every piece of
//! per-call setup across the steady state.
//!
//! A regular non-blocking operation pays its full setup bill on every
//! call: envelope resolution, internal-tag allocation, algorithm
//! selection, engine construction, and — for every blocking wait — a
//! fresh waiter registration per pending source. In iterative codes
//! (halo exchanges, solver loops) the *shape* of the communication
//! never changes between iterations; only the payload bytes do. The
//! persistent API does all shape-dependent work exactly once, at
//! `*_init` time, and leaves the hot loop with nothing but the
//! per-cycle data movement:
//!
//! - the destination/source **envelope** is resolved and validated at
//!   init,
//! - internal **tags** are allocated once (cross-rank aligned, because
//!   `*_init` is called collectively in the same order on every rank)
//!   and reused by every cycle,
//! - the collective **algorithm is selected once** and its engine built
//!   once; `start` merely *rewinds* the engine
//!   (`CollEngine::rewind` in `crate::collectives::nonblocking`)
//!   instead of re-constructing it,
//! - a **standing registration**
//!   ([`Mailbox::register_standing`](crate::mailbox)) is installed in
//!   the completion subsystem for every source the plan can ever block
//!   on. Unlike the transient registrations of
//!   [`park_any`](crate::completion::park_any), standing entries
//!   survive every fire — the steady-state `start` → `wait` cycle
//!   performs **zero** waiter (de)registrations, pinned by the
//!   `notify_registrations` counter in
//!   [`MailboxStats`](crate::MailboxStats).
//!
//! # Request lifecycle
//!
//! A persistent request adds a fourth lifecycle to the request zoo
//! (see [`crate::request`] for the one-shot diagram):
//!
//! ```text
//!   *_init            start()             completion observed
//!  ───────> [inactive] ──────> [started] ─────────────────────┐
//!               ^                  │ wait()/test()            │
//!               │                  v                          │
//!               │            [complete] ── result returned ───┤
//!               └──────────────── restartable <───────────────┘
//!                    (start() again; plan unchanged)
//! ```
//!
//! `start` on an already-started request is an error
//! ([`MpiError::RequestActive`]) — cycles never overlap, which is what
//! keeps the frozen internal tags unambiguous: every cycle's messages
//! travel on the same `(source, tag)` streams, per-stream FIFO keeps
//! cycles in order, and a fixed number of messages per cycle per stream
//! keeps them aligned. `start` on a revoked communicator is poisoned
//! with [`MpiError::Revoked`] before any message moves.
//!
//! # What is deliberately frozen
//!
//! Persistent collectives pin the algorithm family whose engines are
//! rewindable: binomial-tree broadcast, flat-gather + ordered-fold
//! allreduce, and eager pairwise alltoallv/allgather. The per-call
//! [`CollTuning`](crate::CollTuning) consultation that regular
//! collectives perform is exactly one of the costs `*_init` is meant to
//! hoist out of the loop.

use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;

use crate::collectives::algos::model::{self, AlgoClass};
use crate::collectives::nonblocking::{
    allreduce_root_engine, bcast_recv_engine, blocks_engine, message_completion, CollEngine,
};
use crate::collectives::{bcast_forward, send_internal};
use crate::comm::Comm;
use crate::completion::Waiter;
use crate::error::{MpiError, Result};
use crate::message::{Src, Status, TagSel};
use crate::plain::bytes_from_slice;
use crate::request::Completion;
use crate::trace;
use crate::{Plain, Rank, ReduceOp, Tag};

/// The eager sends a collective cycle posts at `start` time. Everything
/// here was computed at init; `start` only moves payload bytes.
pub(crate) enum CollSends {
    /// Pure receiver side: nothing to send.
    None,
    /// Binomial-tree root forwarding (persistent bcast root).
    BcastRoot { root: Rank, tag: Tag },
    /// The whole payload to one rank (allreduce leaf's contribution).
    ToRank { dest: Rank, tag: Tag },
    /// The whole payload to every peer (allgather).
    ToAll { tag: Tag },
    /// `payload[ranges[r]]` to each rank `r` (alltoallv); the entry for
    /// this rank is kept as the engine's own block.
    Blocks { tag: Tag, ranges: Vec<Range<usize>> },
    /// The whole payload to each listed rank (neighborhood allgather:
    /// fan-out over the frozen out-edge list, refcount clones).
    ToEach { tag: Tag, dests: Vec<Rank> },
    /// `payload[ranges[k]]` to `dests[k]` (neighborhood alltoallv:
    /// contiguous destination-ordered slices of the packed payload).
    SlicedTo {
        tag: Tag,
        dests: Vec<Rank>,
        ranges: Vec<Range<usize>>,
    },
}

/// Which part of the cycle's payload seeds the engine's own slot when
/// the cycle is rewound.
pub(crate) enum OwnSpec {
    /// The engine starts empty (bcast receivers, neighborhood plans —
    /// whose self-edges travel through the mailbox like any edge).
    None,
    /// The whole payload (allgather contribution, allreduce root).
    All,
    /// A byte range of the payload (this rank's alltoallv block).
    Slice(Range<usize>),
}

/// How a collective cycle completes.
pub(crate) enum CollBody {
    /// Complete immediately with this cycle's payload (bcast root: the
    /// tree forwarding happened at `start`).
    Ready { source: Rank, tag: Tag },
    /// Drive a rewindable engine to completion.
    Engine(Box<dyn CollEngine>),
}

/// A frozen collective plan: eager sends + own-block spec + body.
pub(crate) struct CollPlan {
    pub(crate) sends: CollSends,
    pub(crate) own: OwnSpec,
    pub(crate) body: CollBody,
}

/// The plan a persistent request executes every cycle.
enum PlanKind {
    /// Eager send: complete at `start`.
    Send { dest: Rank, tag: Tag },
    /// Posted receive on frozen selectors.
    Recv { src: Src, tag: TagSel },
    /// A collective cycle.
    Coll(CollPlan),
}

/// A persistent request (mirrors the inactive `MPI_Request` returned by
/// `MPI_Send_init` and friends): the communication *plan* — envelope,
/// tags, algorithm, engine, completion registrations — frozen at init;
/// [`start`](PersistentRequest::start) /
/// [`wait`](PersistentRequest::wait) cycles reuse all of it and touch
/// only payload bytes.
pub struct PersistentRequest<'a> {
    comm: &'a Comm,
    kind: PlanKind,
    /// This cycle's payload (sends and contributing collectives);
    /// replaced between cycles via
    /// [`set_payload`](PersistentRequest::set_payload).
    payload: Option<Bytes>,
    /// Dedicated waiter holding the standing registrations. Never the
    /// thread-local cached waiter: the registrations keep a reference
    /// for the request's whole lifetime.
    waiter: Arc<Waiter>,
    /// Whether standing registrations exist (teardown on drop).
    registered: bool,
    active: bool,
    /// True once `wait` has armed the waiter since the last claim-state
    /// clear: claims can only fire while armed, so an un-armed cycle's
    /// `finish_cycle` skips the waiter lock entirely.
    maybe_claimed: bool,
    /// Completed `start`/`wait` cycles (diagnostics).
    cycles: u64,
    /// Set when a cycle ends in a ULFM error (peer failure,
    /// revocation): the frozen plan names a peer that can no longer
    /// answer, so no restart can succeed. `start` re-surfaces the
    /// error instead of `RequestActive`.
    poisoned: Option<MpiError>,
}

impl<'a> PersistentRequest<'a> {
    fn new(comm: &'a Comm, kind: PlanKind, payload: Option<Bytes>) -> Self {
        PersistentRequest {
            comm,
            kind,
            payload,
            waiter: Arc::new(Waiter::default()),
            registered: false,
            active: false,
            poisoned: None,
            maybe_claimed: false,
            cycles: 0,
        }
    }

    /// True between a `start` and the observation of its completion.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Completed cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Replaces the payload the next cycle sends. Rejected while a
    /// cycle is active (the in-flight cycle owns the current payload);
    /// for alltoallv plans the packed length must match the frozen
    /// counts.
    pub fn set_payload(&mut self, payload: Bytes) -> Result<()> {
        if self.active {
            return Err(MpiError::RequestActive);
        }
        if let PlanKind::Coll(CollPlan {
            sends: CollSends::Blocks { ranges, .. } | CollSends::SlicedTo { ranges, .. },
            ..
        }) = &self.kind
        {
            let total = ranges.last().map_or(0, |r| r.end);
            if payload.len() != total {
                return Err(MpiError::InvalidLayout(format!(
                    "persistent alltoallv: payload holds {} bytes but the \
                     frozen counts sum to {total} bytes",
                    payload.len()
                )));
            }
        }
        self.payload = Some(payload);
        Ok(())
    }

    /// Typed [`set_payload`](PersistentRequest::set_payload) (one
    /// serialization copy, like the typed init).
    pub fn set_data<T: Plain>(&mut self, data: &[T]) -> Result<()> {
        self.set_payload(bytes_from_slice(data))
    }

    /// Starts one cycle (mirrors `MPI_Start`): posts the plan's eager
    /// sends and rewinds the engine with this cycle's payload. O(sends)
    /// — no tag allocation, no algorithm selection, no waiter
    /// registration. Errors if the previous cycle has not completed
    /// ([`MpiError::RequestActive`]) or the communicator is revoked
    /// ([`MpiError::Revoked`], poisoning before any message moves).
    pub fn start(&mut self) -> Result<()> {
        self.comm.count_op("start");
        crate::fault::point("persistent/start");
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.active {
            return Err(MpiError::RequestActive);
        }
        // Send plans skip the standalone revocation probe: their
        // `deliver_bytes` below performs the same check before any
        // message moves, and the probe is a lock on the hot path.
        if !matches!(self.kind, PlanKind::Send { .. })
            && self.comm.world.is_revoked(self.comm.context)
        {
            return Err(MpiError::Revoked);
        }
        trace::async_begin(trace::cat::PERSIST, "persistent_cycle", self.trace_id());
        let payload = self.payload.clone();
        match &mut self.kind {
            PlanKind::Send { dest, tag } => {
                let payload = payload.expect("send plans hold a payload");
                self.comm.deliver_bytes(*dest, *tag, payload, None)?;
            }
            PlanKind::Recv { .. } => {}
            PlanKind::Coll(plan) => {
                let payload = payload.unwrap_or_default();
                if let CollBody::Engine(engine) = &mut plan.body {
                    let own = match &plan.own {
                        OwnSpec::None => None,
                        OwnSpec::All => Some(payload.clone()),
                        OwnSpec::Slice(r) => Some(payload.slice(r.clone())),
                    };
                    let rewound = engine.rewind(own);
                    debug_assert!(rewound, "persistent plans hold only rewindable engines");
                }
                match &plan.sends {
                    CollSends::None => {}
                    CollSends::BcastRoot { root, tag } => {
                        bcast_forward(self.comm, 0, *root, *tag, &payload)?;
                    }
                    CollSends::ToRank { dest, tag } => {
                        send_internal(self.comm, *dest, *tag, payload.clone())?;
                    }
                    CollSends::ToAll { tag } => {
                        for r in 0..self.comm.size() {
                            if r != self.comm.rank() {
                                send_internal(self.comm, r, *tag, payload.clone())?;
                            }
                        }
                    }
                    CollSends::Blocks { tag, ranges } => {
                        for (r, range) in ranges.iter().enumerate() {
                            if r != self.comm.rank() {
                                send_internal(self.comm, r, *tag, payload.slice(range.clone()))?;
                            }
                        }
                    }
                    CollSends::ToEach { tag, dests } => {
                        for &d in dests {
                            send_internal(self.comm, d, *tag, payload.clone())?;
                        }
                    }
                    CollSends::SlicedTo { tag, dests, ranges } => {
                        for (&d, range) in dests.iter().zip(ranges) {
                            send_internal(self.comm, d, *tag, payload.slice(range.clone()))?;
                        }
                    }
                }
            }
        }
        self.active = true;
        Ok(())
    }

    /// Blocks until the started cycle completes (mirrors `MPI_Wait` on
    /// a persistent request), leaving the request inactive and
    /// restartable. Steady state: the standing registrations installed
    /// at init claim the dedicated waiter directly — no registration,
    /// no deregistration, no sweep of unrelated sources. The
    /// registrations are *wake-only*: pushes claim the waiter only
    /// between the arm below and completion, so cycles whose messages
    /// have already arrived cost the senders nothing at all. Waiting on
    /// an inactive request returns [`Completion::Done`] immediately
    /// (MPI's null-status convention).
    pub fn wait(&mut self) -> Result<Completion> {
        if !self.active {
            return Ok(Completion::Done);
        }
        let _sp = trace::span(trace::cat::WAIT, "wait_persistent", 0, 0);
        let mb = self.comm.mailbox();
        // Fast path: the cycle already completed — the armed flag is
        // never raised and no push ever locked this waiter.
        match self.try_complete() {
            Ok(Some(c)) => {
                self.finish_cycle();
                return Ok(c);
            }
            Ok(None) => {}
            Err(e) => return Err(e),
        }
        // Arm, then re-test before parking: the store precedes the
        // re-test's shard-lock acquisition, so a push that enqueues
        // after the re-test observes the flag and claims — no arrival
        // can fall between re-test and park.
        self.waiter.armed.store(true, Ordering::SeqCst);
        self.maybe_claimed = true;
        let result = loop {
            let epoch = mb.epoch();
            match self.try_complete() {
                Ok(Some(c)) => break Ok(c),
                Ok(None) => {}
                Err(e) => break Err(e),
            }
            let mut st = self.waiter.state.lock();
            loop {
                if st.claimed {
                    // Consume the claim (and any missed fires — claims
                    // never carry messages, so clearing loses nothing:
                    // whatever fired is queued and the next
                    // `try_complete` finds it).
                    st.claimed = false;
                    st.fired = None;
                    st.missed.clear();
                    break;
                }
                if mb.epoch() != epoch {
                    mb.record_spurious();
                    break;
                }
                self.waiter.cond.wait(&mut st);
            }
        };
        self.waiter.armed.store(false, Ordering::SeqCst);
        match result {
            Ok(c) => {
                self.finish_cycle();
                Ok(c)
            }
            Err(e) => Err(self.poison(e)),
        }
    }

    /// Non-blocking completion check (mirrors `MPI_Test` on a
    /// persistent request). `Ok(Some(..))` deactivates the request for
    /// restart; an inactive request reports `Done` immediately.
    pub fn test(&mut self) -> Result<Option<Completion>> {
        if !self.active {
            return Ok(Some(Completion::Done));
        }
        match self.try_complete() {
            Ok(Some(c)) => {
                self.finish_cycle();
                Ok(Some(c))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(self.poison(e)),
        }
    }

    /// Ends the cycle on a ULFM error: the request goes inactive and
    /// every later `start` re-surfaces the error (the plan's peers are
    /// frozen, so "this cycle failed" means "every cycle fails").
    fn poison(&mut self, e: MpiError) -> MpiError {
        self.active = false;
        self.poisoned = Some(e.clone());
        e
    }

    /// Cycle bookkeeping shared by `wait` and `test`: clear any claim
    /// state left by this cycle's pushes **before** the request is
    /// restartable — a stale claim would swallow the next cycle's first
    /// wakeup into the missed list.
    fn finish_cycle(&mut self) {
        // The end event must carry the same id the cycle's `start`
        // emitted, so it fires before the cycle counter advances.
        trace::async_end(trace::cat::PERSIST, "persistent_cycle", self.trace_id());
        // Claims only fire while the waiter is armed (the registrations
        // are wake-only), so a cycle that completed on the un-armed
        // fast path has clean claim state by construction — no lock.
        if self.maybe_claimed {
            let mut st = self.waiter.state.lock();
            st.claimed = false;
            st.fired = None;
            st.missed.clear();
            drop(st);
            self.maybe_claimed = false;
        }
        self.active = false;
        self.cycles += 1;
    }

    /// Stable id correlating this request's async trace spans.
    fn trace_id(&self) -> u64 {
        Arc::as_ptr(&self.waiter) as u64 ^ self.cycles.rotate_left(48)
    }

    /// One non-blocking completion attempt against the frozen plan.
    fn try_complete(&mut self) -> Result<Option<Completion>> {
        match &mut self.kind {
            PlanKind::Send { .. } => Ok(Some(Completion::Done)),
            PlanKind::Recv { src, tag } => match self.comm.try_recv_envelope(*src, *tag) {
                Some(env) => {
                    let st = Status {
                        source: env.src,
                        tag: env.tag,
                        bytes: env.payload.len(),
                    };
                    Ok(Some(Completion::Message(env.payload, st)))
                }
                None => match self.comm.wait_interrupted(*src) {
                    Some(e) => Err(e),
                    None => Ok(None),
                },
            },
            PlanKind::Coll(plan) => match &mut plan.body {
                CollBody::Ready { source, tag } => {
                    let payload = self
                        .payload
                        .clone()
                        .expect("a ready collective body holds the cycle's payload");
                    Ok(Some(message_completion(*source, *tag, payload)))
                }
                CollBody::Engine(engine) => engine.advance(self.comm, false),
            },
        }
    }
}

impl Drop for PersistentRequest<'_> {
    /// The standing registrations reference the waiter from the
    /// mailbox's posted queues; dropping the request must remove them
    /// or they would claim a dead waiter for the communicator's
    /// lifetime.
    fn drop(&mut self) {
        if self.registered {
            self.comm
                .mailbox()
                .deregister_notify(self.comm.context, &self.waiter);
        }
    }
}

/// Starts every request in the slice (mirrors `MPI_Startall`); stops at
/// the first error, leaving later requests inactive.
pub fn start_all(requests: &mut [PersistentRequest<'_>]) -> Result<()> {
    for req in requests.iter_mut() {
        req.start()?;
    }
    Ok(())
}

/// A batch of persistent requests driven as one unit — the persistent
/// sibling of [`RequestSet`](crate::RequestSet) (mirrors `MPI_Startall`
/// + `MPI_Waitall` on persistent handles).
///
/// [`wait_all`](PersistentSet::wait_all) sweeps every member
/// non-blockingly and parks on at most one member at a time, re-sweeping
/// the whole batch on each wakeup. Members whose messages arrive while
/// the set sleeps cost nothing: only the parked member's waiter is
/// armed, so a completion wave that lands together wakes the set
/// **once** and the re-sweep retires the entire batch —
/// [`parks`](PersistentSet::parks) counts the actual sleeps, pinned at
/// ≤ one per wave (zero when the wave precedes the wait) by the tests.
pub struct PersistentSet<'a> {
    requests: Vec<PersistentRequest<'a>>,
    parks: u64,
}

impl<'a> Default for PersistentSet<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> PersistentSet<'a> {
    pub fn new() -> Self {
        PersistentSet {
            requests: Vec::new(),
            parks: 0,
        }
    }

    /// Adds a request; returns its index (the position of its
    /// completion in [`wait_all`](PersistentSet::wait_all)'s result).
    pub fn push(&mut self, req: PersistentRequest<'a>) -> usize {
        self.requests.push(req);
        self.requests.len() - 1
    }

    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The member requests (e.g. to
    /// [`set_data`](PersistentRequest::set_data) between cycles).
    pub fn requests_mut(&mut self) -> &mut [PersistentRequest<'a>] {
        &mut self.requests
    }

    /// Times `wait_all` actually slept on a condvar — the batch wakeup
    /// meter: a completion wave that lands while the set is parked
    /// costs exactly one sleep, and a wave that lands before the wait
    /// costs zero.
    pub fn parks(&self) -> u64 {
        self.parks
    }

    /// Starts one cycle on every member (mirrors `MPI_Startall`); stops
    /// at the first error, leaving later members inactive.
    pub fn start_all(&mut self) -> Result<()> {
        start_all(&mut self.requests)
    }

    /// Blocks until every started member completes, returning the
    /// completions in member order (inactive members report
    /// [`Completion::Done`], MPI's null-status convention). One park
    /// covers a whole completion wave: each sleep is followed by a full
    /// re-sweep, so messages that arrived for *other* members while
    /// this one slept are collected without further waits.
    pub fn wait_all(&mut self) -> Result<Vec<Completion>> {
        let n = self.requests.len();
        let mut out: Vec<Option<Completion>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = Vec::with_capacity(n);
        for (i, req) in self.requests.iter_mut().enumerate() {
            if !req.active {
                out[i] = Some(Completion::Done);
            } else {
                pending.push(i);
            }
        }
        while !pending.is_empty() {
            // Full non-blocking sweep: retire everything already done.
            let mut still = Vec::with_capacity(pending.len());
            for &i in &pending {
                let req = &mut self.requests[i];
                match req.try_complete()? {
                    Some(c) => {
                        req.finish_cycle();
                        out[i] = Some(c);
                    }
                    None => still.push(i),
                }
            }
            pending = still;
            let Some(&first) = pending.first() else { break };
            // Park on the first unfinished member only; its standing
            // registrations (installed at init) claim the armed waiter.
            // The other members' waiters stay un-armed — their arrivals
            // queue silently and the re-sweep finds them.
            let req = &mut self.requests[first];
            let mb = req.comm.mailbox();
            req.waiter.armed.store(true, Ordering::SeqCst);
            req.maybe_claimed = true;
            let parked = loop {
                let epoch = mb.epoch();
                match req.try_complete() {
                    Ok(Some(c)) => {
                        req.finish_cycle();
                        out[first] = Some(c);
                        pending.remove(0);
                        break false;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        req.waiter.armed.store(false, Ordering::SeqCst);
                        return Err(e);
                    }
                }
                let mut st = req.waiter.state.lock();
                let mut slept = false;
                loop {
                    if st.claimed {
                        st.claimed = false;
                        st.fired = None;
                        st.missed.clear();
                        break;
                    }
                    if mb.epoch() != epoch {
                        mb.record_spurious();
                        break;
                    }
                    slept = true;
                    req.waiter.cond.wait(&mut st);
                }
                drop(st);
                if slept {
                    break true;
                }
                // Woken without sleeping (message raced the park):
                // loop — the next try_complete consumes it.
            };
            if parked {
                self.parks += 1;
            }
            self.requests[first]
                .waiter
                .armed
                .store(false, Ordering::SeqCst);
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("all members done"))
            .collect())
    }
}

impl Comm {
    /// Installs standing registrations for every source the plan's
    /// engine can ever receive from, then hands the request out.
    pub(crate) fn persistent_coll(
        &self,
        plan: CollPlan,
        payload: Option<Bytes>,
    ) -> Result<PersistentRequest<'_>> {
        let mut req = PersistentRequest::new(self, PlanKind::Coll(plan), payload);
        let mut pairs: Vec<(Rank, Tag)> = Vec::new();
        if let PlanKind::Coll(CollPlan {
            body: CollBody::Engine(engine),
            ..
        }) = &req.kind
        {
            engine.all_sources(self, &mut pairs);
        }
        for (slot, (r, t)) in pairs.iter().enumerate() {
            // A message already queued is fine: `wait` always attempts
            // completion before parking, so pre-registration arrivals
            // are found without a claim. Wake-only: claims fire only
            // while `wait` is armed (see there).
            self.mailbox().register_standing(
                self.context,
                Src::Rank(*r),
                TagSel::Is(*t),
                &req.waiter,
                slot,
                true,
            );
            req.registered = true;
        }
        Ok(req)
    }

    /// Creates a persistent send to `dest` on `tag` (mirrors
    /// `MPI_Send_init`): the envelope is validated once; every
    /// [`start`](PersistentRequest::start) posts the current payload
    /// eagerly. Update the payload between cycles with
    /// [`set_data`](PersistentRequest::set_data).
    pub fn send_init<T: Plain>(
        &self,
        data: &[T],
        dest: Rank,
        tag: Tag,
    ) -> Result<PersistentRequest<'_>> {
        self.send_init_bytes(bytes_from_slice(data), dest, tag)
    }

    /// Byte-level [`Comm::send_init`] (zero-copy for adopted buffers).
    pub fn send_init_bytes(
        &self,
        payload: Bytes,
        dest: Rank,
        tag: Tag,
    ) -> Result<PersistentRequest<'_>> {
        self.count_op("send_init");
        self.check_tag(tag)?;
        self.check_rank(dest)?;
        Ok(PersistentRequest::new(
            self,
            PlanKind::Send { dest, tag },
            Some(payload),
        ))
    }

    /// Creates a persistent receive from `src` on `tag` (mirrors
    /// `MPI_Recv_init`): one standing completion registration installed
    /// here serves every future cycle's wakeup.
    pub fn recv_init(&self, src: Rank, tag: Tag) -> Result<PersistentRequest<'_>> {
        self.count_op("recv_init");
        self.check_tag(tag)?;
        self.check_rank(src)?;
        let mut req = PersistentRequest::new(
            self,
            PlanKind::Recv {
                src: Src::Rank(src),
                tag: TagSel::Is(tag),
            },
            None,
        );
        self.mailbox().register_standing(
            self.context,
            Src::Rank(src),
            TagSel::Is(tag),
            &req.waiter,
            0,
            true,
        );
        req.registered = true;
        Ok(req)
    }

    /// Creates a persistent broadcast from `root` (mirrors
    /// `MPI_Bcast_init`). The root supplies `Some(data)` (refreshable
    /// per cycle via [`set_data`](PersistentRequest::set_data)); other
    /// ranks pass `None` and receive each cycle's payload as their
    /// completion. The binomial tree, its internal tag, and the
    /// receivers' standing parent registration are all frozen here.
    pub fn bcast_init<T: Plain>(
        &self,
        data: Option<&[T]>,
        root: Rank,
    ) -> Result<PersistentRequest<'_>> {
        let payload =
            (self.rank() == root).then(|| bytes_from_slice(data.expect("root must supply data")));
        self.bcast_init_bytes(payload, root)
    }

    /// Byte-level [`Comm::bcast_init`].
    pub fn bcast_init_bytes(
        &self,
        payload: Option<Bytes>,
        root: Rank,
    ) -> Result<PersistentRequest<'_>> {
        self.count_op("bcast_init");
        self.check_rank(root)?;
        let tag = self.next_internal_tag();
        // Persistent plans freeze the engine shape at init: the binomial
        // tree is recorded as a frozen pick and the model never
        // re-selects mid-cycle, however the estimates move afterwards.
        model::freeze_selection(self, AlgoClass::BcastBinomial);
        trace::instant(trace::cat::COLL, "bcast_init/binomial_tree", 0, root as u64);
        let plan = if self.rank() == root {
            CollPlan {
                sends: CollSends::BcastRoot { root, tag },
                own: OwnSpec::None,
                body: CollBody::Ready { source: root, tag },
            }
        } else {
            CollPlan {
                sends: CollSends::None,
                own: OwnSpec::None,
                body: CollBody::Engine(bcast_recv_engine(tag, root)),
            }
        };
        self.persistent_coll(plan, payload)
    }

    /// Creates a persistent allreduce (mirrors `MPI_Allreduce_init`):
    /// flat gather to rank 0, rank-ordered fold, binomial broadcast of
    /// the result — selected once, engine built once, both tags frozen.
    /// Every rank's completion carries the folded vector.
    pub fn allreduce_init<T: Plain, O: ReduceOp<T> + 'static>(
        &self,
        data: &[T],
        op: O,
    ) -> Result<PersistentRequest<'_>> {
        self.count_op("allreduce_init");
        let own = bytes_from_slice(data);
        let gather_tag = self.next_internal_tag();
        let bcast_tag = self.next_internal_tag();
        model::freeze_selection(self, AlgoClass::ReduceFlat);
        trace::instant(
            trace::cat::COLL,
            "allreduce_init/flat_gather",
            own.len() as u64,
            self.size() as u64,
        );
        let plan = if self.rank() == 0 {
            CollPlan {
                sends: CollSends::None,
                own: OwnSpec::All,
                body: CollBody::Engine(allreduce_root_engine::<T, O>(
                    self,
                    gather_tag,
                    bcast_tag,
                    own.clone(),
                    op,
                )),
            }
        } else {
            CollPlan {
                sends: CollSends::ToRank {
                    dest: 0,
                    tag: gather_tag,
                },
                own: OwnSpec::None,
                body: CollBody::Engine(bcast_recv_engine(bcast_tag, 0)),
            }
        };
        self.persistent_coll(plan, Some(own))
    }

    /// Creates a persistent allgather (mirrors `MPI_Allgather_init`):
    /// each cycle posts this rank's current payload to every peer and
    /// completes with [`Completion::Blocks`] in rank order. Blocks may
    /// differ in size (the substrate never enforces equal lengths, so
    /// this doubles as `MPI_Allgatherv_init`).
    pub fn allgather_init<T: Plain>(&self, data: &[T]) -> Result<PersistentRequest<'_>> {
        self.allgather_init_bytes(bytes_from_slice(data))
    }

    /// Byte-level [`Comm::allgather_init`].
    pub fn allgather_init_bytes(&self, own: Bytes) -> Result<PersistentRequest<'_>> {
        self.count_op("allgather_init");
        let tag = self.next_internal_tag();
        model::freeze_selection(self, AlgoClass::AllgatherRing);
        trace::instant(
            trace::cat::COLL,
            "allgather_init/pairwise",
            own.len() as u64,
            self.size() as u64,
        );
        let plan = CollPlan {
            sends: CollSends::ToAll { tag },
            own: OwnSpec::All,
            body: CollBody::Engine(blocks_engine(self, tag, own.clone())),
        };
        self.persistent_coll(plan, Some(own))
    }

    /// Creates a persistent personalized all-to-all with per-destination
    /// counts (mirrors `MPI_Alltoallv_init`). The counts — and therefore
    /// the per-peer byte ranges carved out of the packed payload — are
    /// frozen at init; [`set_payload`](PersistentRequest::set_payload)
    /// enforces the frozen total. Completes with
    /// [`Completion::Blocks`]: one block per source rank.
    pub fn alltoallv_init<T: Plain>(
        &self,
        data: &[T],
        counts: &[usize],
    ) -> Result<PersistentRequest<'_>> {
        let elem = std::mem::size_of::<T>();
        let byte_counts: Vec<usize> = counts.iter().map(|&c| c * elem).collect();
        self.alltoallv_init_bytes(bytes_from_slice(data), &byte_counts)
    }

    /// Byte-level [`Comm::alltoallv_init`]: `packed` holds the per-peer
    /// blocks contiguously in rank order, `byte_counts[r]` bytes each.
    pub fn alltoallv_init_bytes(
        &self,
        packed: Bytes,
        byte_counts: &[usize],
    ) -> Result<PersistentRequest<'_>> {
        self.count_op("alltoallv_init");
        // Tag first: the layout check is rank-local, and an erroring
        // rank must stay tag-aligned with peers whose layouts are fine.
        let tag = self.next_internal_tag();
        let p = self.size();
        if byte_counts.len() != p {
            return Err(MpiError::InvalidLayout(format!(
                "alltoallv_init: counts has {} entries for communicator of size {p}",
                byte_counts.len()
            )));
        }
        let total: usize = byte_counts.iter().sum();
        if total != packed.len() {
            return Err(MpiError::InvalidLayout(format!(
                "alltoallv_init: send buffer holds {} bytes but counts sum to {total} bytes",
                packed.len()
            )));
        }
        model::freeze_selection(self, AlgoClass::AlltoallPairwise);
        trace::instant(
            trace::cat::COLL,
            "alltoallv_init/pairwise",
            total as u64,
            p as u64,
        );
        let mut ranges = Vec::with_capacity(p);
        let mut offset = 0usize;
        for &c in byte_counts {
            ranges.push(offset..offset + c);
            offset += c;
        }
        let own_range = ranges[self.rank()].clone();
        let own = packed.slice(own_range.clone());
        let plan = CollPlan {
            sends: CollSends::Blocks { tag, ranges },
            own: OwnSpec::Slice(own_range),
            body: CollBody::Engine(blocks_engine(self, tag, own)),
        };
        self.persistent_coll(plan, Some(packed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Sum;
    use crate::Universe;
    use proptest::prelude::*;

    #[test]
    fn persistent_send_recv_cycles() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.send_init(&[0u32], 1, 7).unwrap();
                for cycle in 0..5u32 {
                    req.set_data(&[cycle * 10]).unwrap();
                    req.start().unwrap();
                    req.wait().unwrap();
                }
                assert_eq!(req.cycles(), 5);
            } else {
                let mut req = comm.recv_init(0, 7).unwrap();
                for cycle in 0..5u32 {
                    req.start().unwrap();
                    let (v, st) = req.wait().unwrap().into_vec::<u32>().unwrap();
                    assert_eq!(v, vec![cycle * 10]);
                    assert_eq!(st.source, 0);
                    assert_eq!(st.tag, 7);
                }
            }
        });
    }

    #[test]
    fn start_while_active_is_an_error() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.recv_init(1, 0).unwrap();
                req.start().unwrap();
                assert_eq!(req.start().unwrap_err(), MpiError::RequestActive);
                req.wait().unwrap();
                // Completing the cycle makes it restartable again.
                req.start().unwrap();
                req.wait().unwrap();
            } else {
                comm.send(&[1u8], 0, 0).unwrap();
                comm.send(&[2u8], 0, 0).unwrap();
            }
        });
    }

    #[test]
    fn wait_on_inactive_request_returns_immediately() {
        Universe::run(1, |comm| {
            let mut req = comm.send_init(&[1u8], 0, 0).unwrap();
            assert!(matches!(req.wait().unwrap(), Completion::Done));
            assert_eq!(req.cycles(), 0);
        });
    }

    #[test]
    fn set_payload_while_active_is_rejected() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.recv_init(1, 0).unwrap();
                req.start().unwrap();
                assert_eq!(
                    req.set_payload(Bytes::new()).unwrap_err(),
                    MpiError::RequestActive
                );
                req.wait().unwrap();
            } else {
                comm.send(&[1u8], 0, 0).unwrap();
            }
        });
    }

    #[test]
    fn persistent_bcast_cycles() {
        for p in [1, 2, 4, 5] {
            Universe::run(p, move |comm| {
                let root = p - 1;
                let mut req = if comm.rank() == root {
                    comm.bcast_init(Some(&[0u64]), root).unwrap()
                } else {
                    comm.bcast_init::<u64>(None, root).unwrap()
                };
                for cycle in 0..4u64 {
                    if comm.rank() == root {
                        req.set_data(&[cycle * cycle + 3]).unwrap();
                    }
                    req.start().unwrap();
                    let (v, st) = req.wait().unwrap().into_vec::<u64>().unwrap();
                    assert_eq!(v, vec![cycle * cycle + 3]);
                    assert_eq!(st.source, root);
                }
            });
        }
    }

    #[test]
    fn persistent_allreduce_cycles() {
        for p in [1, 2, 3, 4, 8] {
            Universe::run(p, move |comm| {
                let mut req = comm.allreduce_init(&[0u64, 0], Sum).unwrap();
                for cycle in 1..=4u64 {
                    req.set_data(&[comm.rank() as u64 * cycle, cycle]).unwrap();
                    req.start().unwrap();
                    let (v, _) = req.wait().unwrap().into_vec::<u64>().unwrap();
                    let ranks_sum: u64 = (0..p as u64).sum();
                    assert_eq!(v, vec![ranks_sum * cycle, cycle * p as u64]);
                }
            });
        }
    }

    #[test]
    fn persistent_allgather_cycles() {
        Universe::run(4, |comm| {
            let mut req = comm.allgather_init(&[0u32]).unwrap();
            for cycle in 0..3u32 {
                req.set_data(&[comm.rank() as u32 + 100 * cycle]).unwrap();
                req.start().unwrap();
                let blocks = req.wait().unwrap().into_blocks().unwrap();
                assert_eq!(blocks.len(), 4);
                for (r, b) in blocks.iter().enumerate() {
                    assert_eq!(
                        crate::plain::bytes_to_vec::<u32>(b),
                        vec![r as u32 + 100 * cycle]
                    );
                }
            }
        });
    }

    #[test]
    fn persistent_alltoallv_cycles() {
        Universe::run(3, |comm| {
            let p = comm.size();
            // Rank r sends r+1 elements to each peer: [dest; r+1].
            let counts: Vec<usize> = vec![comm.rank() + 1; p];
            let pack = |cycle: u32| -> Vec<u32> {
                (0..p)
                    .flat_map(|dest| {
                        std::iter::repeat_n(dest as u32 + 1000 * cycle, comm.rank() + 1)
                    })
                    .collect()
            };
            let mut req = comm.alltoallv_init(&pack(0), &counts).unwrap();
            for cycle in 0..3u32 {
                req.set_data(&pack(cycle)).unwrap();
                req.start().unwrap();
                let blocks = req.wait().unwrap().into_blocks().unwrap();
                assert_eq!(blocks.len(), p);
                for (src, b) in blocks.iter().enumerate() {
                    assert_eq!(
                        crate::plain::bytes_to_vec::<u32>(b),
                        vec![comm.rank() as u32 + 1000 * cycle; src + 1]
                    );
                }
            }
        });
    }

    #[test]
    fn alltoallv_frozen_counts_enforced_on_set_payload() {
        Universe::run(2, |comm| {
            let mut req = comm.alltoallv_init(&[1u32, 2], &[1, 1]).unwrap();
            assert!(matches!(
                req.set_data(&[1u32, 2, 3]).unwrap_err(),
                MpiError::InvalidLayout(_)
            ));
            // The old payload is still intact; a cycle still works.
            req.start().unwrap();
            req.wait().unwrap();
        });
    }

    /// The tentpole's steady-state claim, pinned by counters: after
    /// init, N cycles of start/wait perform **zero** additional waiter
    /// registrations (`notify_registrations` stays flat — standing
    /// entries serve every cycle) and **zero** algorithm re-selections
    /// (`allreduce_init` counted once, only `start` advances).
    #[test]
    fn steady_state_makes_zero_registrations_and_reselections() {
        Universe::run(4, |comm| {
            let mut req = comm.allreduce_init(&[comm.rank() as u64], Sum).unwrap();
            // One warm-up cycle, then measure.
            req.start().unwrap();
            req.wait().unwrap();
            comm.barrier().unwrap();
            let before = comm.mailbox_stats().notify_registrations;
            for _ in 0..20 {
                req.start().unwrap();
                req.wait().unwrap();
            }
            let after = comm.mailbox_stats().notify_registrations;
            assert_eq!(
                after, before,
                "steady-state cycles must not touch the posted queue"
            );
            assert_eq!(comm.call_counts().get("allreduce_init"), 1);
            assert_eq!(comm.call_counts().get("start"), 21);
        });
    }

    /// ULFM: a revoked communicator poisons `start` before any message
    /// moves.
    #[test]
    fn revoked_comm_poisons_start() {
        let outcomes = Universe::run_with(crate::Config::new(2), |comm| {
            let mut req = comm.send_init(&[1u8], (comm.rank() + 1) % 2, 0).unwrap();
            req.start().unwrap();
            req.wait().unwrap();
            // Both ranks must finish the healthy cycle before the
            // revocation lands.
            comm.barrier().unwrap();
            if comm.rank() == 0 {
                comm.revoke();
            } else {
                // Wait until the revocation is visible here.
                while !comm.is_revoked() {
                    std::thread::yield_now();
                }
            }
            assert_eq!(req.start().unwrap_err(), MpiError::Revoked);
        });
        assert!(outcomes.into_iter().all(|o| o.completed().is_some()));
    }

    /// The batch wakeup pin: a completion wave that lands *before*
    /// `wait_all` costs zero sleeps — the fast sweep retires the whole
    /// batch without ever touching a condvar.
    #[test]
    fn set_wait_all_zero_parks_when_wave_precedes_wait() {
        Universe::run(2, |comm| {
            const W: usize = 4;
            if comm.rank() == 0 {
                let mut set = PersistentSet::new();
                for t in 0..W {
                    set.push(comm.recv_init(1, 10 + t as i32).unwrap());
                }
                assert_eq!(set.len(), W);
                for cycle in 0..5u32 {
                    set.start_all().unwrap();
                    comm.send(&[cycle], 1, 1).unwrap();
                    // The ack was pushed after the whole wave: once it
                    // is here, every member's message already is too.
                    comm.recv_vec::<u32>(1, 2).unwrap();
                    let done = set.wait_all().unwrap();
                    assert_eq!(done.len(), W);
                    for (t, c) in done.into_iter().enumerate() {
                        let (v, st) = c.into_vec::<u32>().unwrap();
                        assert_eq!(v, vec![cycle * 10 + t as u32]);
                        assert_eq!(st.tag, 10 + t as i32);
                    }
                    assert_eq!(set.parks(), 0, "pre-arrived waves never sleep");
                }
            } else {
                for cycle in 0..5u32 {
                    comm.recv_vec::<u32>(0, 1).unwrap();
                    for t in 0..W {
                        comm.send(&[cycle * 10 + t as u32], 0, 10 + t as i32)
                            .unwrap();
                    }
                    comm.send(&[0u32], 0, 2).unwrap();
                }
            }
        });
    }

    /// A wave that lands while the set sleeps wakes it at most once:
    /// only the parked member's waiter is armed, the re-sweep collects
    /// everyone else — ≤ one park per batch completion wave.
    #[test]
    fn set_wait_all_one_park_per_wave() {
        Universe::run(2, |comm| {
            const W: usize = 4;
            const CYCLES: u32 = 5;
            if comm.rank() == 0 {
                let mut set = PersistentSet::new();
                for t in 0..W {
                    set.push(comm.recv_init(1, 10 + t as i32).unwrap());
                }
                for cycle in 0..CYCLES {
                    set.start_all().unwrap();
                    comm.send(&[cycle], 1, 1).unwrap();
                    let done = set.wait_all().unwrap();
                    for (t, c) in done.into_iter().enumerate() {
                        let (v, _) = c.into_vec::<u32>().unwrap();
                        assert_eq!(v, vec![cycle * 10 + t as u32]);
                    }
                }
                assert!(
                    set.parks() <= CYCLES as u64,
                    "parked {} times for {CYCLES} waves",
                    set.parks()
                );
            } else {
                for cycle in 0..CYCLES {
                    comm.recv_vec::<u32>(0, 1).unwrap();
                    // Member 0's message last: the set parks (if at all)
                    // on member 0, whose arrival closes the wave.
                    for t in (0..W).rev() {
                        comm.send(&[cycle * 10 + t as u32], 0, 10 + t as i32)
                            .unwrap();
                    }
                }
            }
        });
    }

    /// Inactive members report `Done` (the null-status convention) and
    /// collective members mix freely with p2p members.
    #[test]
    fn set_wait_all_mixed_members() {
        Universe::run(2, |comm| {
            let peer = 1 - comm.rank();
            let mut set = PersistentSet::new();
            set.push(comm.send_init(&[comm.rank() as u8], peer, 4).unwrap());
            set.push(comm.recv_init(peer, 4).unwrap());
            set.push(comm.allgather_init(&[comm.rank() as u64]).unwrap());
            // A member never started stays Done.
            set.push(comm.send_init(&[9u8], peer, 5).unwrap());
            for _ in 0..3 {
                start_all(&mut set.requests_mut()[..3]).unwrap();
                let mut done = set.wait_all().unwrap();
                assert!(matches!(done[3], Completion::Done));
                let blocks = done.swap_remove(2).into_blocks().unwrap();
                assert_eq!(
                    crate::plain::bytes_to_vec::<u64>(&blocks[peer]),
                    vec![peer as u64]
                );
                let (v, _) = done.swap_remove(1).into_vec::<u8>().unwrap();
                assert_eq!(v, vec![peer as u8]);
            }
        });
    }

    #[test]
    fn start_all_starts_every_request() {
        Universe::run(2, |comm| {
            let peer = (comm.rank() + 1) % 2;
            let mut reqs = vec![
                comm.send_init(&[comm.rank() as u8], peer, 1).unwrap(),
                comm.recv_init(peer, 1).unwrap(),
            ];
            for _ in 0..3 {
                super::start_all(&mut reqs).unwrap();
                for r in reqs.iter_mut() {
                    r.wait().unwrap();
                }
            }
            assert!(reqs.iter().all(|r| r.cycles() == 3));
        });
    }

    /// Dropping a persistent request removes its standing registrations
    /// (no zombie claims for the communicator's lifetime).
    #[test]
    fn drop_deregisters_standing_entries() {
        Universe::run(2, |comm| {
            let base = comm.mailbox_stats().notify_registrations;
            {
                let _req = comm.recv_init((comm.rank() + 1) % 2, 3).unwrap();
                assert_eq!(comm.mailbox_stats().notify_registrations, base + 1);
            }
            // The counter is monotonic (it counts registrations made,
            // not live ones); liveness is observable via a fresh cycle:
            // a new request claims its own waiter, undisturbed.
            let mut req = comm.recv_init((comm.rank() + 1) % 2, 3).unwrap();
            comm.send(&[9u8], (comm.rank() + 1) % 2, 3).unwrap();
            req.start().unwrap();
            let (v, _) = req.wait().unwrap().into_vec::<u8>().unwrap();
            assert_eq!(v, vec![9]);
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Satellite 4: a persistent operation must be observationally
        /// equivalent to its regular counterpart across random
        /// payloads, communicator sizes, and restart counts — cycle k
        /// of the persistent allreduce returns exactly what a fresh
        /// `iallreduce` on the same data returns.
        #[test]
        fn persistent_allreduce_equals_regular(
            p in 1usize..9,
            cycles in 1usize..5,
            seeds in prop::collection::vec(0u64..1_000_000, 1..5),
        ) {
            let seeds = std::sync::Arc::new(seeds);
            let out = Universe::run(p, move |comm| {
                let width = seeds.len();
                let mut req = comm.allreduce_init(&vec![0u64; width], Sum).unwrap();
                for cycle in 0..cycles {
                    let mine: Vec<u64> = seeds
                        .iter()
                        .map(|s| s.wrapping_mul(comm.rank() as u64 + 1) ^ cycle as u64)
                        .collect();
                    req.set_data(&mine).unwrap();
                    req.start().unwrap();
                    let (got, _) = req.wait().unwrap().into_vec::<u64>().unwrap();
                    let (want, _) = comm
                        .iallreduce(&mine, Sum)
                        .unwrap()
                        .wait()
                        .unwrap()
                        .into_vec::<u64>()
                        .unwrap();
                    assert_eq!(got, want, "cycle {cycle} diverged from iallreduce");
                }
                true
            });
            prop_assert!(out.into_iter().all(|ok| ok));
        }

        /// Same law for the personalized all-to-all: frozen counts,
        /// fresh payload bytes every cycle.
        #[test]
        fn persistent_alltoallv_equals_regular(
            p in 1usize..7,
            cycles in 1usize..4,
            counts_seed in 0usize..4,
        ) {
            let out = Universe::run(p, move |comm| {
                let counts: Vec<usize> =
                    (0..p).map(|d| (comm.rank() + d + counts_seed) % 3).collect();
                let total: usize = counts.iter().sum();
                let mut req = comm.alltoallv_init(&vec![0u32; total], &counts).unwrap();
                for cycle in 0..cycles {
                    let data: Vec<u32> = (0..total)
                        .map(|i| (i + cycle * 31 + comm.rank() * 7) as u32)
                        .collect();
                    req.set_data(&data).unwrap();
                    req.start().unwrap();
                    let got = req.wait().unwrap().into_blocks().unwrap();
                    let want = comm
                        .ialltoallv(&data, &counts)
                        .unwrap()
                        .wait()
                        .unwrap()
                        .into_blocks()
                        .unwrap();
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(&g[..], &w[..], "cycle {cycle} diverged from ialltoallv");
                    }
                }
                true
            });
            prop_assert!(out.into_iter().all(|ok| ok));
        }
    }
}
