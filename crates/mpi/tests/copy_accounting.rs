//! Copy-accounting bounds: the substrate's shared-`Bytes` datapath must
//! not copy payloads more often than the algorithm requires — the
//! testable core of the paper's "(near) zero overhead" claim.
//!
//! Counters are per-rank (thread-local); every test snapshots/diffs
//! inside the rank closure, exactly like the PMPI-style call counters.

#![cfg(feature = "copy-metrics")]

use kmp_mpi::{metrics, AllreduceAlgo, CollTuning, Universe};

/// Non-root bcast ranks copy O(N) bytes for an N-byte payload no matter
/// how many children they forward to; the root pays exactly one
/// serialization. At p = 8 the root forwards to 3 children and vrank 4
/// to 2 — with per-hop re-serialization those ranks would copy 4N / 3N.
#[test]
fn bcast_copies_payload_once_regardless_of_children() {
    const N: usize = 1 << 20;
    Universe::run(8, |comm| {
        let mut buf = vec![comm.rank() as u8; N];
        let before = metrics::snapshot();
        comm.bcast_into(&mut buf, 0).unwrap();
        let delta = metrics::snapshot().since(&before);
        assert_eq!(
            delta.bytes_copied,
            N as u64,
            "rank {}: bcast of {N} bytes must copy exactly {N} (root: pack; \
             non-root: unpack; forwarding is refcount cloning)",
            comm.rank()
        );
    });
}

/// The allgather ring forwards each block as the same shared payload: a
/// rank copies its own block once (serialization) plus the full result
/// (assembly) — per-hop re-serialization would triple that.
#[test]
fn allgather_ring_forwards_blocks_without_reserialization() {
    const N: usize = 64 * 1024; // bytes per rank
    let p = 8usize;
    Universe::run(p, move |comm| {
        let mine = vec![comm.rank() as u8; N];
        let before = metrics::snapshot();
        let all = comm.allgather_vec(&mine).unwrap();
        let delta = metrics::snapshot().since(&before);
        assert_eq!(all.len(), p * N);
        let bound = (N + p * N) as u64; // own serialization + assembly
        assert_eq!(
            delta.bytes_copied,
            bound,
            "rank {}: ring allgather must copy s + r = {bound} bytes, \
             not O(p) copies per block",
            comm.rank()
        );
    });
}

/// Recursive-doubling allgather pays for its latency win in packing
/// copies: rounds past the first memcpy their accumulated block group
/// into one message. The bill is exact: own serialization `s`, packing
/// `s·(p-2)` (round 0 forwards the own block as a refcount clone),
/// assembly `r = p·s` — `s·(p-1) + r` total, vs the ring's `s + r`.
#[test]
fn allgather_recursive_doubling_packing_bill_is_exact() {
    use kmp_mpi::AllgatherAlgo;
    const N: usize = 1024; // bytes per rank, under the 8 KiB RD ceiling
    for p in [4usize, 8] {
        Universe::run(p, move |comm| {
            let mine = vec![comm.rank() as u8; N];
            for (algo, bound) in [
                (AllgatherAlgo::Ring, (N + p * N) as u64),
                (
                    AllgatherAlgo::RecursiveDoubling,
                    (N * (p - 1) + p * N) as u64,
                ),
            ] {
                comm.set_tuning(CollTuning::default().allgather(algo));
                let before = metrics::snapshot();
                let all = comm.allgather_vec(&mine).unwrap();
                let delta = metrics::snapshot().since(&before);
                assert_eq!(all.len(), p * N);
                assert_eq!(
                    delta.bytes_copied,
                    bound,
                    "rank {} p={p} {algo:?}: exact copy bill",
                    comm.rank()
                );
            }
            // Auto resolves to RD here (power of two, small blocks):
            // same bill as the forced RD run.
            comm.set_tuning(CollTuning::default());
            let before = metrics::snapshot();
            comm.allgather_vec(&mine).unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(delta.bytes_copied, (N * (p - 1) + p * N) as u64);
        });
    }
}

/// The Bruck allgather's bill is exact too: own serialization `s`,
/// packing `cnt·s` for every round that sends more than one block
/// (single-block rounds — round 0 and the short tail rounds of
/// non-power-of-two sizes — forward refcount clones), assembly
/// `r = p·s`. At p = 5 the rounds send 1/2/1 blocks, so packing is
/// exactly `2s`; at p = 6 (1/2/2) it is `4s`.
#[test]
fn allgather_bruck_packing_bill_is_exact() {
    use kmp_mpi::AllgatherAlgo;
    const N: usize = 1024; // bytes per rank, under the 8 KiB Bruck ceiling
    for p in [3usize, 5, 6, 8] {
        Universe::run(p, move |comm| {
            let mine = vec![comm.rank() as u8; N];
            // Rounds sending cnt > 1 blocks pack cnt blocks each.
            let mut step = 1usize;
            let mut packed_blocks = 0usize;
            while step < p {
                let cnt = step.min(p - step);
                if cnt > 1 {
                    packed_blocks += cnt;
                }
                step <<= 1;
            }
            let bound = (N + packed_blocks * N + p * N) as u64;
            comm.set_tuning(CollTuning::default().allgather(AllgatherAlgo::Bruck));
            let before = metrics::snapshot();
            let all = comm.allgather_vec(&mine).unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(all.len(), p * N);
            assert_eq!(
                delta.bytes_copied,
                bound,
                "rank {} p={p} Bruck: exact copy bill (s + {packed_blocks}s packing + r)",
                comm.rank()
            );
            // Auto resolves to Bruck on small non-power-of-two
            // communicators (p >= 4): same bill as the forced run.
            if p >= 4 && !p.is_power_of_two() {
                comm.set_tuning(CollTuning::default());
                let before = metrics::snapshot();
                comm.allgather_vec(&mine).unwrap();
                let delta = metrics::snapshot().since(&before);
                assert_eq!(delta.bytes_copied, bound);
            }
        });
    }
}

/// Same bound for allgatherv into a user buffer (plus the up-front copy
/// of the own block into the receive buffer).
#[test]
fn allgatherv_into_is_single_copy_per_block() {
    const N: usize = 32 * 1024;
    let p = 4usize;
    Universe::run(p, move |comm| {
        let mine = vec![comm.rank() as u64; N / 8];
        let counts = vec![N / 8; p];
        let displs: Vec<usize> = (0..p).map(|r| r * (N / 8)).collect();
        let mut recv = vec![0u64; p * (N / 8)];
        let before = metrics::snapshot();
        comm.allgatherv_into(&mine, &mut recv, &counts, &displs)
            .unwrap();
        let delta = metrics::snapshot().since(&before);
        // own into recv + own serialization + each *other* block into recv.
        let bound = (2 * N + (p - 1) * N) as u64;
        assert_eq!(delta.bytes_copied, bound, "rank {}", comm.rank());
    });
}

/// An owned vector moves into the transport without any copy, and a
/// `Vec<u8>`-shaped receive adopts the delivered allocation without any
/// copy either: a zero-copy end-to-end point-to-point path.
#[test]
fn owned_send_and_byte_recv_are_zero_copy_end_to_end() {
    const N: usize = 1 << 20;
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let data = vec![7u8; N];
            let before = metrics::snapshot();
            comm.send_vec(data, 1, 0).unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(delta.bytes_copied, 0, "owned send must not copy");
        } else {
            let before = metrics::snapshot();
            let (got, _) = comm.recv_vec::<u8>(0, 0).unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(got.len(), N);
            assert_eq!(got[0], 7);
            assert_eq!(
                delta.bytes_copied, 0,
                "byte-shaped receive must adopt the delivered allocation"
            );
        }
    });
}

/// Typed (non-u8) receives pay exactly one copy — materializing into the
/// caller's element type — never two.
#[test]
fn typed_recv_pays_exactly_one_copy() {
    const N: usize = 128 * 1024;
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let data: Vec<u64> = (0..N as u64 / 8).collect();
            let before = metrics::snapshot();
            comm.send_vec(data, 1, 0).unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(delta.bytes_copied, 0, "owned typed send must not copy");
        } else {
            let before = metrics::snapshot();
            let (got, _) = comm.recv_vec::<u64>(0, 0).unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(got.len(), N / 8);
            assert_eq!(delta.bytes_copied, N as u64);
        }
    });
}

/// The pairwise alltoallv packs the send buffer once and slices per-peer
/// blocks by refcount: total copies are s + r, and the whole exchange
/// performs one payload allocation per rank.
#[test]
fn alltoallv_packs_once_and_slices() {
    let p = 4usize;
    const PER_PEER: usize = 8 * 1024; // u32 elements per destination
    Universe::run(p, move |comm| {
        let send: Vec<u32> = vec![comm.rank() as u32; p * PER_PEER];
        let counts = vec![PER_PEER; p];
        let displs: Vec<usize> = (0..p).map(|r| r * PER_PEER).collect();
        let mut recv = vec![0u32; p * PER_PEER];
        let before = metrics::snapshot();
        comm.alltoallv_into(&send, &counts, &displs, &mut recv, &counts, &displs)
            .unwrap();
        let delta = metrics::snapshot().since(&before);
        let s = (p * PER_PEER * 4) as u64;
        let r = s;
        assert_eq!(
            delta.bytes_copied,
            s + r,
            "rank {}: pack-once exchange copies s + r",
            comm.rank()
        );
        assert_eq!(
            delta.allocations,
            1,
            "rank {}: one packed payload, per-peer blocks are slices",
            comm.rank()
        );
    });
}

/// The non-blocking allgatherv posts the same shared payload to every
/// peer: zero copies at call time for an adopted owned payload, and the
/// eager fan-out to p-1 peers costs no copies at all.
#[test]
fn iallgatherv_bytes_fan_out_is_copy_free() {
    const N: usize = 256 * 1024;
    let p = 4usize;
    Universe::run(p, move |comm| {
        let own = kmp_mpi::bytes_from_vec(vec![comm.rank() as u8; N]);
        let before = metrics::snapshot();
        let req = comm.iallgatherv_bytes(own).unwrap();
        let call_delta = metrics::snapshot().since(&before);
        assert_eq!(
            call_delta.bytes_copied,
            0,
            "rank {}: posting an adopted payload to {} peers must not copy",
            comm.rank(),
            p - 1
        );
        let blocks = req.wait().unwrap().into_blocks().unwrap();
        assert_eq!(blocks.len(), p);
        assert!(blocks.iter().all(|b| b.len() == N));
    });
}

/// Rabenseifner allreduce copies ~2s per rank — `s·(1 - 1/p)` of
/// reduce-scatter serialization, `s/p` packing the rank's reduced
/// chunk, and `s` assembling the result — where recursive doubling
/// serializes the full vector every round (`s·log2 p`). This is the
/// O(s log p) → ~2s reduction-bill drop of the tunable-algorithm
/// engine; the in-place folds make the former per-round
/// materialization free on both algorithms.
#[test]
fn rabenseifner_allreduce_copies_two_s_per_rank() {
    const ELEMS: usize = 128 * 1024; // u64 -> s = 1 MiB, divisible by p
    let p = 8usize;
    let s = (ELEMS * 8) as u64;
    Universe::run(p, move |comm| {
        let mine = vec![comm.rank() as u64 + 1; ELEMS];

        comm.set_tuning(CollTuning::default().allreduce(AllreduceAlgo::Rabenseifner));
        let before = metrics::snapshot();
        let fast = comm.allreduce_vec(&mine, kmp_mpi::op::Sum).unwrap();
        let rab = metrics::snapshot().since(&before);
        assert_eq!(fast[0], (p * (p + 1) / 2) as u64);
        assert_eq!(
            rab.bytes_copied,
            2 * s,
            "rank {}: Rabenseifner must copy exactly 2s",
            comm.rank()
        );

        comm.set_tuning(CollTuning::default().allreduce(AllreduceAlgo::RecursiveDoubling));
        let before = metrics::snapshot();
        let slow = comm.allreduce_vec(&mine, kmp_mpi::op::Sum).unwrap();
        let rd = metrics::snapshot().since(&before);
        assert_eq!(slow, fast);
        assert_eq!(
            rd.bytes_copied,
            3 * s, // log2(8) rounds, one serialization of s each
            "rank {}: recursive doubling serializes s per round",
            comm.rank()
        );
    });
}

/// The default thresholds select by size: small payloads stay on
/// recursive doubling (s·log2 p bill), large ones switch to
/// Rabenseifner (~2s) without any tuning call.
#[test]
fn auto_allreduce_switches_algorithms_by_size() {
    let p = 4usize;
    Universe::run(p, move |comm| {
        // 1 KiB: below every threshold -> recursive doubling (2 rounds).
        let small = vec![1u64; 128];
        let before = metrics::snapshot();
        comm.allreduce_vec(&small, kmp_mpi::op::Sum).unwrap();
        let d = metrics::snapshot().since(&before);
        assert_eq!(d.bytes_copied, 2 * 1024, "rank {}", comm.rank());

        // 256 KiB: above the Rabenseifner threshold -> ~2s.
        let big = vec![1u64; 32 * 1024];
        let s = (32 * 1024 * 8) as u64;
        let before = metrics::snapshot();
        comm.allreduce_vec(&big, kmp_mpi::op::Sum).unwrap();
        let d = metrics::snapshot().since(&before);
        assert_eq!(d.bytes_copied, 2 * s, "rank {}", comm.rank());
    });
}

/// The binomial reduce folds delivered payloads in place: a non-root
/// rank's whole bill is the single serialization towards its parent
/// (`s`), and the root pays only the copy into the caller's receive
/// buffer — previously the root of p = 4 paid `3s` (two materialized
/// children + the output copy).
#[test]
fn inplace_binomial_reduce_halves_the_bill() {
    const ELEMS: usize = 64 * 1024; // u64 -> s = 512 KiB
    let p = 4usize;
    let s = (ELEMS * 8) as u64;
    Universe::run(p, move |comm| {
        let mine = vec![comm.rank() as u64; ELEMS];
        let mut out = vec![0u64; ELEMS];
        let before = metrics::snapshot();
        comm.reduce_into(&mine, &mut out, kmp_mpi::op::Sum, 0)
            .unwrap();
        let delta = metrics::snapshot().since(&before);
        let expected = s; // non-root: one send; root: one output copy
        assert_eq!(
            delta.bytes_copied,
            expected,
            "rank {}: in-place binomial reduce copies exactly s",
            comm.rank()
        );
        if comm.rank() == 0 {
            assert_eq!(out[0], 6); // 0 + 1 + 2 + 3
        }
    });
}

/// Scan and exscan ride the shared-`Bytes` datapath: the upstream
/// prefix folds straight out of the delivered payload (no per-hop
/// `Vec` materialization) and middle ranks' forwarded prefixes move
/// into the transport. Per-rank bills: scan — rank 0 copies `2s`
/// (seed + send), middle ranks `s` (send only), the last rank `0`;
/// exscan — `s` everywhere (rank 0: the forward serialization; others:
/// the returned prefix, their fold output moving out copy-free).
#[test]
fn scan_and_exscan_fold_in_place() {
    const ELEMS: usize = 32 * 1024; // u64 -> s = 256 KiB
    let p = 4usize;
    let s = (ELEMS * 8) as u64;
    Universe::run(p, move |comm| {
        let mine = vec![comm.rank() as u64 + 1; ELEMS];
        let mut out = vec![0u64; ELEMS];
        let before = metrics::snapshot();
        comm.scan_into(&mine, &mut out, kmp_mpi::op::Sum).unwrap();
        let delta = metrics::snapshot().since(&before);
        let expected = match comm.rank() {
            0 => 2 * s,
            r if r + 1 == p => 0,
            _ => s,
        };
        assert_eq!(delta.bytes_copied, expected, "scan rank {}", comm.rank());
        let r = comm.rank() as u64 + 1;
        assert_eq!(out[0], r * (r + 1) / 2);

        let before = metrics::snapshot();
        let prefix = comm.exscan_vec(&mine, kmp_mpi::op::Sum).unwrap();
        let delta = metrics::snapshot().since(&before);
        assert_eq!(delta.bytes_copied, s, "exscan rank {}", comm.rank());
        if comm.rank() > 0 {
            let r = comm.rank() as u64;
            assert_eq!(prefix.unwrap()[0], r * (r + 1) / 2);
        }
    });
}

/// Scatter packs the root's buffer once; every per-destination block is
/// a refcount slice of it.
#[test]
fn scatter_root_packs_once() {
    let p = 4usize;
    const PER_RANK: usize = 16 * 1024;
    Universe::run(p, move |comm| {
        let before = metrics::snapshot();
        let got = comm
            .scatter_vec(
                (comm.rank() == 0)
                    .then(|| vec![9u8; p * PER_RANK])
                    .as_deref(),
                0,
            )
            .unwrap();
        let delta = metrics::snapshot().since(&before);
        assert_eq!(got.len(), PER_RANK);
        if comm.rank() == 0 {
            // One pack of the whole buffer + materializing the own block.
            assert_eq!(delta.bytes_copied, (p * PER_RANK + PER_RANK) as u64);
            assert!(
                delta.allocations <= 2,
                "pack + own-block vector, not one allocation per peer"
            );
        } else {
            assert_eq!(delta.bytes_copied, PER_RANK as u64);
        }
    });
}
