//! End-to-end coverage for the tracing subsystem in both build
//! configurations: with `--features trace` a full universe run records
//! spans on every rank and exports a schema-valid Chrome trace; without
//! the feature the whole surface stays callable, allocation-free, and
//! degrades gracefully.

use kmp_mpi::{trace, Config, RequestSet, Universe};

/// A small workload touching every instrumented layer: p2p matching,
/// a collective (with algorithm selection), and a `wait_any` drain
/// through the completion subsystem.
fn workload(comm: &kmp_mpi::Comm) {
    let p = comm.size();
    let me = comm.rank();
    // p2p ring: everyone sends to the next rank, receives from the
    // previous — send/recv spans plus matching instants.
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    comm.send(&[me as u8; 256], next, 3).unwrap();
    let mut buf = [0u8; 256];
    comm.recv_into(&mut buf, prev, 3).unwrap();
    assert_eq!(buf[0], prev as u8);
    // A collective: records a `coll` span named after the selected
    // algorithm.
    let sum = comm.allreduce_one(me as u64, kmp_mpi::op::Sum).unwrap();
    assert_eq!(sum, (p * (p - 1) / 2) as u64);
    // Completion subsystem: a parked wait_any drain.
    if me == 0 {
        let mut set = RequestSet::new();
        for peer in 1..p {
            set.push(comm.irecv(peer, 9));
        }
        while !set.is_empty() {
            set.wait_any().unwrap().expect("set non-empty");
        }
    } else {
        comm.send(&[me as u8; 64], 0, 9).unwrap();
    }
    comm.barrier().unwrap();
}

fn assert_completed<R>(outcomes: &[kmp_mpi::RankOutcome<R>]) {
    for (rank, o) in outcomes.iter().enumerate() {
        assert!(
            matches!(o, kmp_mpi::RankOutcome::Completed(_)),
            "rank {rank} did not complete"
        );
    }
}

/// The runtime enable flag is process-global and one test below toggles
/// it; every `trace`-enabled test holds this lock so the phases cannot
/// interleave.
#[cfg(feature = "trace")]
static TRACE_TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// With tracing compiled out, every entry point must stay callable and
/// free: the span guard is a ZST, runs collect no events, allocate no
/// ring storage, and the report says why instead of failing.
#[cfg(not(feature = "trace"))]
#[test]
fn disabled_build_records_nothing_and_degrades_gracefully() {
    const {
        assert!(!trace::COMPILED);
        assert!(std::mem::size_of::<trace::SpanGuard>() == 0);
    }
    // The toggle is accepted and ignored.
    trace::set_enabled(true);
    assert!(!trace::enabled());
    trace::set_ring_capacity(8);

    let (outcomes, data) = Universe::run_traced(Config::new(4), |comm| workload(&comm));
    assert_completed(&outcomes);
    assert_eq!(data.ranks.len(), 4);
    for rt in &data.ranks {
        assert_eq!(
            rt.stats,
            trace::TraceStats::default(),
            "stats must be zeroed"
        );
        assert!(rt.events.is_empty());
        // Not just empty: no ring storage was ever allocated.
        assert_eq!(rt.events.capacity(), 0);
    }
    let report = data.report();
    assert!(report.contains("feature disabled"), "got: {report}");
    assert!(report.contains("--features trace"), "got: {report}");

    // The unified per-rank stats carry a zeroed trace block.
    let (outcomes, stats) = Universe::run_stats(Config::new(2), |comm| workload(&comm));
    assert_completed(&outcomes);
    for s in &stats {
        assert_eq!(s.trace, trace::TraceStats::default());
    }
}

/// With tracing compiled in: a universe run records events on every
/// rank, folds aggregates into `RankStats`, exports a schema-valid
/// Chrome trace with one pid per rank, and the runtime toggle drops
/// the whole run to zero events. One test function: the enable flag is
/// process-global, so the phases must not interleave with each other.
#[cfg(feature = "trace")]
#[test]
fn enabled_build_records_aggregates_exports_and_toggles() {
    let _toggle = TRACE_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let p = 4;

    // --- enabled run: every layer shows up ---------------------------
    trace::set_enabled(true);
    let (outcomes, data) = Universe::run_traced(Config::new(p), |comm| workload(&comm));
    assert_completed(&outcomes);
    assert_eq!(data.ranks.len(), p);
    for (rank, rt) in data.ranks.iter().enumerate() {
        assert!(!rt.events.is_empty(), "rank {rank} recorded no events");
        assert_eq!(rt.stats.events, rt.events.len() as u64 + rt.stats.dropped);
        let coll = &rt.stats.spans[trace::cat::COLL as usize];
        assert!(coll.count > 0, "rank {rank} has no collective spans");
        let send = &rt.stats.spans[trace::cat::SEND as usize];
        assert!(send.count > 0, "rank {rank} has no send spans");
        // The collective span is named after the selected algorithm.
        assert!(
            rt.events
                .iter()
                .any(|e| e.cat == trace::cat::COLL && e.name.starts_with("allreduce/")),
            "rank {rank} lacks a named allreduce span"
        );
    }

    // Aggregates also surface through the unified RankStats.
    let (outcomes, stats) = Universe::run_stats(Config::new(p), |comm| workload(&comm));
    assert_completed(&outcomes);
    for (rank, s) in stats.iter().enumerate() {
        assert!(s.trace.events > 0, "rank {rank} stats.trace is empty");
    }

    // --- export: schema-valid, one pid per rank ----------------------
    let json = data.to_chrome_json();
    let summary = trace::export::validate_chrome(&json).expect("exported trace must validate");
    assert_eq!(summary.pids, (0..p as u64).collect::<Vec<_>>());
    assert!(summary.spans > 0);
    assert!(summary.instants > 0);
    let report = data.report();
    assert!(
        report.contains("rank 0") && report.contains("coll"),
        "got: {report}"
    );

    // --- runtime toggle: disabled runs record nothing ----------------
    trace::set_enabled(false);
    let (outcomes, quiet) = Universe::run_traced(Config::new(p), |comm| workload(&comm));
    trace::set_enabled(true);
    assert_completed(&outcomes);
    for (rank, rt) in quiet.ranks.iter().enumerate() {
        assert_eq!(rt.stats.events, 0, "rank {rank} recorded while disabled");
        assert!(rt.events.is_empty());
    }
}

/// With both `trace` and `fault` compiled in, a crash-and-recover run
/// leaves the whole story on one timeline: the injected crash
/// (`fault/crash` instant on the victim), its detection
/// (`ulfm/detect`), and the survivors' recovery (`ulfm/agree` and
/// `ulfm/shrink` spans) — the events a Perfetto view needs to explain
/// *why* a collective stalled.
#[cfg(all(feature = "trace", feature = "fault"))]
#[test]
fn fault_injection_and_recovery_land_on_the_timeline() {
    use kmp_mpi::{op, FaultPlan, RankOutcome};

    let _toggle = TRACE_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    let plan = FaultPlan::new().crash_at(1, "mailbox/match", 1);
    let (out, data) = Universe::run_traced_faulted(Config::new(3), &plan, |comm| {
        let mut active = comm;
        let mut rounds = 0;
        while rounds < 3 {
            let r = active.allreduce_one(1u64, op::Sum);
            if r.is_err() && !active.is_revoked() {
                active.revoke();
            }
            if active.agree_and(r.is_ok()).unwrap() {
                rounds += 1;
            } else {
                active = active.shrink().unwrap();
            }
        }
        active.size()
    });
    assert!(matches!(out[1], RankOutcome::Failed), "{:?}", out[1]);
    assert!(matches!(out[0], RankOutcome::Completed(2)));
    assert!(matches!(out[2], RankOutcome::Completed(2)));

    let json = data.to_chrome_json();
    trace::export::validate_chrome(&json).expect("faulted trace must validate");
    for needle in ["fault/crash", "ulfm/detect", "ulfm/agree", "ulfm/shrink"] {
        assert!(json.contains(needle), "timeline lacks {needle}: {json}");
    }
}

/// A model-driven run keeps the established `op/algorithm` span names:
/// the exploration phase visits every allreduce candidate (so both
/// spellings land on the timeline), and once warm the model takes over
/// — all on the same rings, with nothing new for a Perfetto view to
/// learn.
#[cfg(feature = "trace")]
#[test]
fn model_driven_run_names_every_explored_algorithm() {
    use kmp_mpi::{CollTuning, ModelConfig};

    let _toggle = TRACE_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(true);
    let (outcomes, data) = Universe::run_traced(Config::new(4), |comm| {
        comm.set_tuning(
            CollTuning::default().model(
                ModelConfig::default()
                    .drive(true)
                    .epoch_len(1)
                    .warmup_obs(1),
            ),
        );
        let mine = vec![comm.rank() as u64; 512];
        for _ in 0..10 {
            comm.allreduce_vec(&mine, |a: &u64, b: &u64| a.wrapping_add(*b))
                .unwrap();
        }
        let stats = comm.tuning_stats();
        assert!(stats.model_picks > 0, "model must take over once warm");
        assert!(
            stats.explore_picks > 0,
            "warm-up must explore the cold class"
        );
    });
    assert_completed(&outcomes);
    for (rank, rt) in data.ranks.iter().enumerate() {
        for name in ["allreduce/recursive_doubling", "allreduce/rabenseifner"] {
            assert!(
                rt.events
                    .iter()
                    .any(|e| e.cat == trace::cat::COLL && e.name == name),
                "rank {rank} timeline lacks {name}"
            );
        }
    }
}
