//! Chaos harness: randomized crash schedules against randomized
//! workloads, with one hard liveness invariant — **every survivor
//! returns within a deadline**, either with the correct result or with
//! the correct ULFM error handled by the canonical recovery loop
//! (attempt → revoke on local error → `agree_and` → count or
//! revoke+shrink).
//!
//! Four workload shapes cover the post-ULFM subsystems end to end:
//! blocking collectives, mixed `RequestSet` waits, persistent
//! steady-state plans, and neighborhood exchanges on freshly built
//! topologies. Each proptest case draws a world size, a round count,
//! and up to two planned crashes (`FaultPlan::crash`: the victim dies
//! at its k-th injection point, wherever in the stack that lands — mid
//! collective phase, parked in the matching engine, inside an
//! agreement, or between topology-constructor collectives).
//!
//! Every workload reports `(rounds completed, final size, tally)`
//! where each counted round contributes the live membership size — a
//! value that is *collectively determined*, so it must be identical
//! across survivors whatever the crash schedule did; payload-level
//! correctness (the ring delivered the right neighbor's value) is
//! asserted inside the rank closures. Fault-free cases (the strategy
//! draws zero crashes about a third of the time) must additionally be
//! bit-identical to the closed-form oracle `rounds * p`.
//!
//! Schedules are **crash-only**: message faults (drop/delay/duplicate)
//! intentionally violate the delivery guarantees the recovery loop
//! relies on (a dropped contribution is indistinguishable from a hung
//! peer to a perfect failure detector), so they are pinned by the
//! targeted tests in `kmp_mpi::fault` instead. Victims exclude rank 0:
//! topology constructors allocate fresh contexts through rank 0, and
//! its mid-constructor death is exercised by the named-point tests.

#![cfg(feature = "fault")]

use kmp_mpi::{
    op, Comm, Config, FaultPlan, MpiError, NeighborhoodColl, RankOutcome, RequestSet, Universe,
};
use proptest::prelude::*;

/// Per-case liveness deadline. Generous for loaded CI machines; a
/// correct run is milliseconds.
const DEADLINE_SECS: u64 = 30;

/// Runs a faulted universe under the liveness deadline: if any rank is
/// still blocked when it expires, the case fails (the worker thread is
/// leaked — the test is failing anyway).
fn run_deadline<R, F>(p: usize, plan: FaultPlan, f: F) -> Vec<RankOutcome<R>>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Sync + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(Universe::run_with_faults(Config::new(p), &plan, f));
    });
    rx.recv_timeout(std::time::Duration::from_secs(DEADLINE_SECS))
        .expect("liveness violated: a survivor did not return within the deadline")
}

/// A randomized schedule: world size, rounds, and 0..=2 planned
/// crashes `(victim, at)` — victim in `1..p`, `at` counts injection
/// points hit by that rank (small values die during setup, larger ones
/// deep inside the workload's steady state).
fn schedule() -> impl Strategy<Value = (usize, u32, Vec<(usize, u64)>)> {
    (3usize..6).prop_flat_map(|p| {
        (
            Just(p),
            2u32..6,
            prop::collection::vec((1..p, 1u64..300), 0..3),
        )
    })
}

fn plan_of(crashes: &[(usize, u64)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(victim, at) in crashes {
        plan = plan.crash(victim, at);
    }
    plan
}

/// The canonical recovery wrapper: run `attempt` per round, **revoke on
/// local error**, then agree on success, shrinking together on
/// disagreement. The revoke-before-agree order is load-bearing: a peer
/// can be parked inside the collective waiting on a *live* rank that
/// errored out (say, a broadcast from a root whose gather failed), and
/// only revocation reaches a waiter whose peers are all still alive —
/// agreement alone would wait for that stuck peer's contribution
/// forever. Each counted round tallies the result `attempt` returned
/// (the shapes all return the live membership size). Returns
/// `(rounds done, final size, tally)`.
fn recovery_loop(
    mut active: Comm,
    rounds: u32,
    attempt: impl Fn(&Comm) -> Result<u64, MpiError>,
) -> (u32, usize, u64) {
    let mut done = 0u32;
    let mut tally = 0u64;
    while done < rounds {
        let r = attempt(&active);
        if r.is_err() && !active.is_revoked() {
            active.revoke();
        }
        if active.agree_and(r.is_ok()).unwrap_or(false) {
            tally += r.expect("agreed ok");
            done += 1;
        } else {
            if !active.is_revoked() {
                active.revoke();
            }
            active = active.shrink().expect("survivors can always shrink");
        }
    }
    (done, active.size(), tally)
}

/// Shared post-conditions: only planned victims may die, nobody may
/// panic, and every survivor's `(rounds, final size, tally)` must be
/// identical — agreement makes round outcomes collective decisions, so
/// a diverging tally means a survivor counted a round its peers
/// rejected: a wrong result, not just a flaky one.
fn check_outcomes(
    p: usize,
    rounds: u32,
    crashes: &[(usize, u64)],
    out: Vec<RankOutcome<(u32, usize, u64)>>,
) {
    let mut survivors = Vec::new();
    for (rank, o) in out.into_iter().enumerate() {
        match o {
            RankOutcome::Failed => {
                assert!(
                    crashes.iter().any(|&(v, _)| v == rank),
                    "rank {rank} died without a planned crash"
                );
            }
            RankOutcome::Completed(r) => survivors.push((rank, r)),
            RankOutcome::Panicked(m) => panic!("rank {rank} panicked: {m}"),
        }
    }
    assert!(!survivors.is_empty());
    let (first_rank, first) = survivors[0];
    for &(rank, r) in &survivors {
        assert_eq!(r, first, "rank {rank} diverged from rank {first_rank}");
    }
    let (done, final_size, tally) = first;
    assert_eq!(done, rounds);
    assert!(final_size <= p && final_size + crashes.len() >= p);
    // Membership only shrinks, so every counted round contributed a
    // size between the final and the initial one.
    assert!(tally >= u64::from(rounds) * final_size as u64);
    assert!(tally <= u64::from(rounds) * p as u64);
    if crashes.is_empty() {
        assert_eq!(final_size, p);
        assert_eq!(
            tally,
            u64::from(rounds) * p as u64,
            "fault-free run diverged from the oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Shape 1: blocking collective rounds. Crashes land inside
    /// collective engine phases (`coll/phase`) and the matching engine.
    #[test]
    fn chaos_blocking_collective((p, rounds, crashes) in schedule()) {
        let out = run_deadline(p, plan_of(&crashes), move |comm| {
            recovery_loop(comm, rounds, |active| active.allreduce_one(1u64, op::Sum))
        });
        check_outcomes(p, rounds, &crashes, out);
    }

    /// Shape 2: mixed `RequestSet` ring — an isend plus an irecv per
    /// round, drained through `wait_any` (transient parks, since the
    /// set is not all-receive). Crashes strand parked waiters, which
    /// must wake with the peer's failure.
    #[test]
    fn chaos_mixed_request_set((p, rounds, crashes) in schedule()) {
        let out = run_deadline(p, plan_of(&crashes), move |comm| {
            recovery_loop(comm, rounds, |active| {
                let size = active.size();
                let next = (active.rank() + 1) % size;
                let prev = (active.rank() + size - 1) % size;
                let mut set = RequestSet::new();
                set.push(active.isend(&[active.rank() as u64], next, 3)?);
                set.push(active.irecv(prev, 3));
                let mut got = None;
                while let Some((_, c)) = set.wait_any()? {
                    if let Some((v, _)) = c.into_vec::<u64>() {
                        got = Some(v[0]);
                    }
                }
                assert_eq!(got, Some(prev as u64), "ring delivered the wrong payload");
                Ok(size as u64)
            })
        });
        check_outcomes(p, rounds, &crashes, out);
    }

    /// Shape 3: persistent steady state — an `allreduce_init` plan per
    /// membership, start/wait cycles amortizing all setup. Crashes
    /// poison plans (`persistent/start`, standing registrations); the
    /// survivors rebuild the plan on the shrunken communicator.
    #[test]
    fn chaos_persistent_steady_state((p, rounds, crashes) in schedule()) {
        let out = run_deadline(p, plan_of(&crashes), move |comm| {
            let mut active = comm;
            let mut done = 0u32;
            let mut tally = 0u64;
            while done < rounds {
                let mut ok = true;
                match active.allreduce_init(&[1u64], op::Sum) {
                    Ok(mut req) => {
                        while ok && done < rounds {
                            let r: Result<u64, MpiError> = (|| {
                                req.start()?;
                                let c = req.wait()?;
                                Ok(c.into_vec::<u64>().expect("allreduce carries a value").0[0])
                            })();
                            if r.is_err() && !active.is_revoked() {
                                active.revoke();
                            }
                            ok = active.agree_and(r.is_ok()).unwrap_or(false);
                            if ok {
                                tally += r.expect("agreed ok");
                                done += 1;
                            }
                        }
                    }
                    // Plan construction failed: revoke (peers may be
                    // parked mid-cycle on this rank) and align with the
                    // per-cycle agreement so nobody waits on a
                    // contribution this rank will never send.
                    Err(_) => {
                        if !active.is_revoked() {
                            active.revoke();
                        }
                        ok = active.agree_and(false).unwrap_or(false);
                    }
                }
                if !ok {
                    if !active.is_revoked() {
                        active.revoke();
                    }
                    active = active.shrink().expect("survivors can always shrink");
                }
            }
            (done, active.size(), tally)
        });
        check_outcomes(p, rounds, &crashes, out);
    }

    /// Shape 4: neighborhood exchange on a freshly built ring topology
    /// each round (BFS-style frontier exchange). Crashes land between
    /// the topology constructor's collectives (`topology/build`) and
    /// inside the sparse exchange.
    #[test]
    fn chaos_neighborhood_round((p, rounds, crashes) in schedule()) {
        let out = run_deadline(p, plan_of(&crashes), move |comm| {
            recovery_loop(comm, rounds, |active| {
                let size = active.size();
                let next = (active.rank() + 1) % size;
                let prev = (active.rank() + size - 1) % size;
                let g = active.create_dist_graph_adjacent(&[prev], &[next])?;
                let blocks = g.neighbor_allgather_vecs(&[active.rank() as u64])?;
                assert_eq!(
                    blocks,
                    vec![vec![prev as u64]],
                    "ring exchange delivered the wrong payload"
                );
                Ok(size as u64)
            })
        });
        check_outcomes(p, rounds, &crashes, out);
    }
}
