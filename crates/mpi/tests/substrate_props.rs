//! Property-based tests on the substrate itself: byte-view round-trips
//! for plain data, collective results against sequential oracles, and
//! message-ordering invariants under randomized payloads.

use kmp_mpi::{op, plain, plain_struct, NeighborhoodColl, Rank, Universe};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Cell {
    a: u64,
    b: f64,
    c: u32,
    d: u32,
}
plain_struct!(Cell {
    a: u64,
    b: f64,
    c: u32,
    d: u32
});

fn cell_strategy() -> impl Strategy<Value = Cell> {
    (any::<u64>(), any::<f64>(), any::<u32>(), any::<u32>()).prop_map(|(a, b, c, d)| Cell {
        a,
        b,
        c,
        d,
    })
}

/// Exclusive prefix sum — displacements for a counted exchange.
fn displs(counts: &[usize]) -> Vec<usize> {
    let mut d = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        d.push(acc);
        acc += c;
    }
    d
}

/// Deterministic payload for the `(u, v)` edge, so the sparse and dense
/// sides can construct identical send blocks independently.
fn edge_block(u: Rank, v: Rank, n: usize) -> Vec<u64> {
    (0..n).map(|i| (u * 289 + v * 17 + i) as u64).collect()
}

/// A random directed graph on `p` ranks (adjacency matrix, row-major)
/// plus a random element count per ordered pair, `p ∈ 1..17`.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<bool>, Vec<usize>)> {
    (1usize..17).prop_flat_map(|p| {
        (
            Just(p),
            prop::collection::vec(any::<bool>(), p * p..p * p + 1),
            prop::collection::vec(0usize..4, p * p..p * p + 1),
        )
    })
}

/// Random cart grids with `p = Π dims ∈ 1..17`. Periodic wraparound on
/// extents < 3 lists the same neighbor twice (one block per occurrence),
/// which a dense alltoallv cannot express — keep those dims open.
fn cart_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<bool>, Vec<usize>)> {
    prop::collection::vec((1usize..5, any::<bool>()), 1..3).prop_flat_map(|spec| {
        let dims: Vec<usize> = spec.iter().map(|&(d, _)| d).collect();
        let periods: Vec<bool> = spec.iter().map(|&(d, w)| w && d >= 3).collect();
        let p: usize = dims.iter().product();
        (
            Just(dims),
            Just(periods),
            prop::collection::vec(0usize..4, p * p..p * p + 1),
        )
    })
}

/// Runs both sides on one rank and checks them block-by-block: the
/// sparse exchange over the topology's neighbor lists must deliver
/// exactly what a dense alltoallv with zeroed non-neighbor counts does.
/// `in_edge(u)` says whether rank `u` sends to this rank.
fn assert_sparse_matches_masked_dense<N: NeighborhoodColl>(
    comm: &kmp_mpi::Comm,
    topo: &N,
    p: usize,
    cnt: &[usize],
    in_edge: impl Fn(Rank) -> bool,
) {
    let r = comm.rank();
    // Sparse side: blocks in neighbor declaration order.
    let sc: Vec<usize> = topo
        .destinations()
        .iter()
        .map(|&d| cnt[r * p + d])
        .collect();
    let sd = displs(&sc);
    let send: Vec<u64> = topo
        .destinations()
        .iter()
        .flat_map(|&d| edge_block(r, d, cnt[r * p + d]))
        .collect();
    let rc: Vec<usize> = topo.sources().iter().map(|&u| cnt[u * p + r]).collect();
    let rd = displs(&rc);
    let mut sparse = vec![0u64; rc.iter().sum()];
    topo.neighbor_alltoallv_into(&send, &sc, &sd, &mut sparse, &rc, &rd)
        .unwrap();

    // Dense side: one block per rank, zero for non-neighbors.
    let out_degree = topo.destinations().len();
    let dsc: Vec<usize> = (0..p)
        .map(|v| {
            if topo.destinations().contains(&v) {
                cnt[r * p + v]
            } else {
                0
            }
        })
        .collect();
    let dsd = displs(&dsc);
    let dense_send: Vec<u64> = (0..p).flat_map(|v| edge_block(r, v, dsc[v])).collect();
    let drc: Vec<usize> = (0..p)
        .map(|u| if in_edge(u) { cnt[u * p + r] } else { 0 })
        .collect();
    let drd = displs(&drc);
    let mut dense = vec![0u64; drc.iter().sum()];
    comm.alltoallv_into(&dense_send, &dsc, &dsd, &mut dense, &drc, &drd)
        .unwrap();

    assert_eq!(
        rc.iter().sum::<usize>(),
        drc.iter().sum::<usize>(),
        "rank {r}: sparse and masked-dense receive volumes differ"
    );
    assert_eq!(out_degree, topo.destinations().len());
    for (j, &u) in topo.sources().iter().enumerate() {
        assert_eq!(
            &sparse[rd[j]..rd[j] + rc[j]],
            &dense[drd[u]..drd[u] + drc[u]],
            "rank {r}: block from source {u} diverges"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn neighbor_alltoallv_matches_masked_dense_on_dist_graph(
        (p, adj, cnt) in graph_strategy()
    ) {
        // The general constructor: every rank contributes the full edge
        // list; redistribution must hand each rank its own neighbors.
        let edges: Vec<(Rank, Rank)> = (0..p * p)
            .filter(|&e| adj[e])
            .map(|e| (e / p, e % p))
            .collect();
        let edges = &edges;
        let adj = &adj;
        let cnt = &cnt;
        Universe::run(p, move |comm| {
            let g = comm.create_dist_graph(edges).unwrap();
            let r = comm.rank();
            assert_sparse_matches_masked_dense(&comm, &g, p, cnt, |u| adj[u * p + r]);
        });
    }

    #[test]
    fn neighbor_alltoallv_matches_masked_dense_on_cart(
        (dims, periods, cnt) in cart_strategy()
    ) {
        let p: usize = dims.iter().product();
        let dims = &dims;
        let periods = &periods;
        let cnt = &cnt;
        Universe::run(p, move |comm| {
            let cart = comm.create_cart(dims, periods, false).unwrap();
            // Symmetric grid: u sends to us iff we send to u.
            let dests = kmp_mpi::Neighborhood::destinations(&cart).to_vec();
            assert_sparse_matches_masked_dense(&comm, &cart, p, cnt, |u| dests.contains(&u));
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn plain_bytes_roundtrip(v in prop::collection::vec(cell_strategy(), 0..50)) {
        let bytes = plain::as_bytes(&v);
        let back: Vec<Cell> = plain::bytes_to_vec(bytes);
        // f64 NaNs compare unequal; compare bit patterns instead.
        prop_assert_eq!(v.len(), back.len());
        for (x, y) in v.iter().zip(&back) {
            prop_assert_eq!(x.a, y.a);
            prop_assert_eq!(x.b.to_bits(), y.b.to_bits());
            prop_assert_eq!((x.c, x.d), (y.c, y.d));
        }
    }

    #[test]
    fn p2p_preserves_arbitrary_payloads(payloads in prop::collection::vec(
        prop::collection::vec(any::<u64>(), 0..40), 1..10))
    {
        // Rank 0 sends each payload in order; rank 1 must receive them
        // unchanged and in order (non-overtaking).
        let payloads = &payloads;
        Universe::run(2, move |comm| {
            if comm.rank() == 0 {
                for p in payloads {
                    comm.send(p, 1, 3).unwrap();
                }
            } else {
                for p in payloads {
                    let (got, _) = comm.recv_vec::<u64>(0, 3).unwrap();
                    assert_eq!(&got, p);
                }
            }
        });
    }

    #[test]
    fn substrate_allreduce_matches_fold(
        blocks in prop::collection::vec(any::<u32>(), 1..7)
    ) {
        let p = blocks.len();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            comm.allreduce_one(blocks[comm.rank()] as u64, op::Sum).unwrap()
        });
        let expected: u64 = blocks.iter().map(|&b| b as u64).sum();
        for got in out {
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn scatter_gather_inverse(
        data in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        // gather(scatter(x)) == x for any block-divisible layout.
        let p = data.len();
        let data = &data;
        let out = Universe::run(p, move |comm| {
            let send: Vec<u64> = if comm.rank() == 0 { data.clone() } else { vec![] };
            let mine = comm.scatter_vec((comm.rank() == 0).then_some(&send[..]), 0).unwrap();
            let mut gathered = if comm.rank() == 0 { vec![0u64; p] } else { vec![] };
            comm.gather_into(&mine, &mut gathered, 0).unwrap();
            gathered
        });
        prop_assert_eq!(&out[0], data);
    }

    #[test]
    fn split_partitions_the_world(colors in prop::collection::vec(0u64..3, 1..8)) {
        let p = colors.len();
        let colors = &colors;
        let out = Universe::run(p, move |comm| {
            let sub = comm.split(Some(colors[comm.rank()]), 0).unwrap().unwrap();
            (colors[comm.rank()], sub.size(), sub.rank())
        });
        for (color, size, sub_rank) in &out {
            let expected = colors.iter().filter(|&&c| c == *color).count();
            prop_assert_eq!(*size, expected, "subcommunicator size");
            prop_assert!(sub_rank < size);
        }
    }

    #[test]
    fn scan_is_prefix_of_allreduce(values in prop::collection::vec(any::<u16>(), 1..7)) {
        let p = values.len();
        let values = &values;
        let out = Universe::run(p, move |comm| {
            let mine = [values[comm.rank()] as u64];
            let mut inc = [0u64];
            comm.scan_into(&mine, &mut inc, op::Sum).unwrap();
            let total = comm.allreduce_one(mine[0], op::Sum).unwrap();
            (inc[0], total)
        });
        // The last rank's inclusive scan equals the allreduce total.
        let total: u64 = values.iter().map(|&v| v as u64).sum();
        prop_assert_eq!(out[p - 1].0, total);
        for (_, t) in &out {
            prop_assert_eq!(*t, total);
        }
    }
}
