//! Property-based tests on the substrate itself: byte-view round-trips
//! for plain data, collective results against sequential oracles, and
//! message-ordering invariants under randomized payloads.

use kmp_mpi::{op, plain, plain_struct, Universe};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Cell {
    a: u64,
    b: f64,
    c: u32,
    d: u32,
}
plain_struct!(Cell {
    a: u64,
    b: f64,
    c: u32,
    d: u32
});

fn cell_strategy() -> impl Strategy<Value = Cell> {
    (any::<u64>(), any::<f64>(), any::<u32>(), any::<u32>()).prop_map(|(a, b, c, d)| Cell {
        a,
        b,
        c,
        d,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn plain_bytes_roundtrip(v in prop::collection::vec(cell_strategy(), 0..50)) {
        let bytes = plain::as_bytes(&v);
        let back: Vec<Cell> = plain::bytes_to_vec(bytes);
        // f64 NaNs compare unequal; compare bit patterns instead.
        prop_assert_eq!(v.len(), back.len());
        for (x, y) in v.iter().zip(&back) {
            prop_assert_eq!(x.a, y.a);
            prop_assert_eq!(x.b.to_bits(), y.b.to_bits());
            prop_assert_eq!((x.c, x.d), (y.c, y.d));
        }
    }

    #[test]
    fn p2p_preserves_arbitrary_payloads(payloads in prop::collection::vec(
        prop::collection::vec(any::<u64>(), 0..40), 1..10))
    {
        // Rank 0 sends each payload in order; rank 1 must receive them
        // unchanged and in order (non-overtaking).
        let payloads = &payloads;
        Universe::run(2, move |comm| {
            if comm.rank() == 0 {
                for p in payloads {
                    comm.send(p, 1, 3).unwrap();
                }
            } else {
                for p in payloads {
                    let (got, _) = comm.recv_vec::<u64>(0, 3).unwrap();
                    assert_eq!(&got, p);
                }
            }
        });
    }

    #[test]
    fn substrate_allreduce_matches_fold(
        blocks in prop::collection::vec(any::<u32>(), 1..7)
    ) {
        let p = blocks.len();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            comm.allreduce_one(blocks[comm.rank()] as u64, op::Sum).unwrap()
        });
        let expected: u64 = blocks.iter().map(|&b| b as u64).sum();
        for got in out {
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn scatter_gather_inverse(
        data in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        // gather(scatter(x)) == x for any block-divisible layout.
        let p = data.len();
        let data = &data;
        let out = Universe::run(p, move |comm| {
            let send: Vec<u64> = if comm.rank() == 0 { data.clone() } else { vec![] };
            let mine = comm.scatter_vec((comm.rank() == 0).then_some(&send[..]), 0).unwrap();
            let mut gathered = if comm.rank() == 0 { vec![0u64; p] } else { vec![] };
            comm.gather_into(&mine, &mut gathered, 0).unwrap();
            gathered
        });
        prop_assert_eq!(&out[0], data);
    }

    #[test]
    fn split_partitions_the_world(colors in prop::collection::vec(0u64..3, 1..8)) {
        let p = colors.len();
        let colors = &colors;
        let out = Universe::run(p, move |comm| {
            let sub = comm.split(Some(colors[comm.rank()]), 0).unwrap().unwrap();
            (colors[comm.rank()], sub.size(), sub.rank())
        });
        for (color, size, sub_rank) in &out {
            let expected = colors.iter().filter(|&&c| c == *color).count();
            prop_assert_eq!(*size, expected, "subcommunicator size");
            prop_assert!(sub_rank < size);
        }
    }

    #[test]
    fn scan_is_prefix_of_allreduce(values in prop::collection::vec(any::<u16>(), 1..7)) {
        let p = values.len();
        let values = &values;
        let out = Universe::run(p, move |comm| {
            let mine = [values[comm.rank()] as u64];
            let mut inc = [0u64];
            comm.scan_into(&mine, &mut inc, op::Sum).unwrap();
            let total = comm.allreduce_one(mine[0], op::Sum).unwrap();
            (inc[0], total)
        });
        // The last rank's inclusive scan equals the allreduce total.
        let total: u64 = values.iter().map(|&v| v as u64).sum();
        prop_assert_eq!(out[p - 1].0, total);
        for (_, t) in &out {
            prop_assert_eq!(*t, total);
        }
    }
}
