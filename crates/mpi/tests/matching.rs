//! Matching-order laws: the indexed two-queue engine
//! ([`kmp_mpi::mailbox::Mailbox`]) replayed against the seed's
//! linear-scan matcher ([`kmp_mpi::mailbox::reference::ScanMailbox`])
//! on randomized interleavings of pushes, specific and wildcard
//! receives, and probes. The single-FIFO scan is trivially correct for
//! MPI's matching laws — non-overtaking per `(source, tag)` and
//! arrival-order wildcard matching — so any divergence convicts the
//! index. Payloads carry a unique id, making "identical delivery
//! order" checkable message-by-message.

use bytes::Bytes;
use kmp_mpi::mailbox::{reference::ScanMailbox, Mailbox};
use kmp_mpi::message::{Envelope, Src, TagSel};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Deliver a message from `src` with `tag` on `context`.
    Push { src: usize, tag: i32, context: u64 },
    /// Receive with the given selectors.
    Match { src: Src, tag: TagSel, context: u64 },
    /// Probe with the given selectors.
    Peek { src: Src, tag: TagSel, context: u64 },
}

fn src_sel() -> impl Strategy<Value = Src> {
    prop_oneof![Just(Src::Any), (0usize..4).prop_map(Src::Rank),]
}

fn tag_sel() -> impl Strategy<Value = TagSel> {
    prop_oneof![Just(TagSel::Any), (-2i32..4).prop_map(TagSel::Is),]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Two push arms keep the mix push-heavy so queues build depth.
        (0usize..4, -2i32..4, 0u64..3).prop_map(|(src, tag, context)| Op::Push {
            src,
            tag,
            context
        }),
        (0usize..4, 0i32..4, 0u64..3).prop_map(|(src, tag, context)| Op::Push {
            src,
            tag,
            context
        }),
        (src_sel(), tag_sel(), 0u64..3).prop_map(|(src, tag, context)| Op::Match {
            src,
            tag,
            context
        }),
        (src_sel(), tag_sel(), 0u64..3).prop_map(|(src, tag, context)| Op::Peek {
            src,
            tag,
            context
        }),
    ]
}

fn env(src: usize, context: u64, tag: i32, id: u64) -> Envelope {
    Envelope {
        src,
        src_world: src,
        context,
        tag,
        payload: Bytes::from(id.to_le_bytes().to_vec()),
        arrival_ns: 0,
        ack: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_linear_scan_oracle(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let engine = Mailbox::new();
        let oracle = ScanMailbox::new();
        let mut next_id = 0u64;
        for op in &ops {
            match *op {
                Op::Push { src, tag, context } => {
                    engine.push(env(src, context, tag, next_id));
                    oracle.push(env(src, context, tag, next_id));
                    next_id += 1;
                }
                Op::Match { src, tag, context } => {
                    let a = engine.try_match(context, src, tag);
                    let b = oracle.try_match(context, src, tag);
                    match (&a, &b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            // Identical delivery: same message, by id.
                            prop_assert_eq!(&x.payload[..], &y.payload[..]);
                            prop_assert_eq!(x.src, y.src);
                            prop_assert_eq!(x.tag, y.tag);
                        }
                        _ => prop_assert!(false,
                            "divergence on {:?}: engine {:?} vs oracle {:?}",
                            op, a.is_some(), b.is_some()),
                    }
                }
                Op::Peek { src, tag, context } => {
                    let a = engine.try_peek(context, src, tag);
                    let b = oracle.try_peek(context, src, tag);
                    prop_assert_eq!(a, b, "probe divergence on {:?}", op);
                }
            }
            prop_assert_eq!(engine.len(), oracle.len(), "queue depths diverged");
        }
        // Drain both fully with wildcards per context: the remaining
        // user-tag messages must come out in the same global order, and
        // the internal-tag residue must pop identically too.
        for context in 0..3 {
            loop {
                let a = engine.try_match(context, Src::Any, TagSel::Any);
                let b = oracle.try_match(context, Src::Any, TagSel::Any);
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => prop_assert_eq!(&x.payload[..], &y.payload[..]),
                    (a, b) => prop_assert!(false,
                        "drain divergence: engine {:?} vs oracle {:?}", a.is_some(), b.is_some()),
                }
            }
            for tag in -2i32..0 {
                for src in 0usize..4 {
                    loop {
                        let a = engine.try_match(context, Src::Rank(src), TagSel::Is(tag));
                        let b = oracle.try_match(context, Src::Rank(src), TagSel::Is(tag));
                        match (a, b) {
                            (None, None) => break,
                            (Some(x), Some(y)) => {
                                prop_assert_eq!(&x.payload[..], &y.payload[..])
                            }
                            (a, b) => prop_assert!(false,
                                "internal-tag drain divergence: engine {:?} vs oracle {:?}",
                                a.is_some(), b.is_some()),
                        }
                    }
                }
            }
        }
        prop_assert!(engine.is_empty());
        prop_assert!(oracle.is_empty());
    }

    /// Non-overtaking, stated directly: for any burst of same-(source,
    /// tag) messages interleaved with others, a specific receive stream
    /// sees the burst in push order.
    #[test]
    fn non_overtaking_per_source_tag_under_noise(
        burst in 1usize..20,
        noise in prop::collection::vec((0usize..4, 0i32..4), 0..40)
    ) {
        let mb = Mailbox::new();
        let mut pushed = 0usize;
        let mut noise_iter = noise.iter();
        for i in 0..burst {
            // Interleave arbitrary noise between burst messages.
            if let Some(&(src, tag)) = noise_iter.next() {
                mb.push(env(src, 0, tag + 100, u64::MAX));
                pushed += 1;
            }
            mb.push(env(1, 0, 7, i as u64));
            pushed += 1;
        }
        for i in 0..burst {
            let e = mb.wait_match(0, Src::Rank(1), TagSel::Is(7), || None).unwrap();
            prop_assert_eq!(&e.payload[..], &(i as u64).to_le_bytes()[..]);
        }
        prop_assert_eq!(mb.len(), pushed - burst);
    }
}
