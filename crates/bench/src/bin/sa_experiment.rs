//! §IV-A suffix array experiment: prefix doubling LoC comparison
//! (paper: kamping 163 vs plain 426) and runtime parity of the two
//! variants on random and repetitive texts.

use kamping::Communicator;
use kmp_apps::count_loc;
use kmp_apps::suffix::*;
use kmp_bench::{arg_usize, measure_virtual_kamping_ms, measure_virtual_ms};
use rand::prelude::*;

fn main() {
    let n = arg_usize("--text-len", 20_000);
    let p = arg_usize("--p", 8);
    let reps = arg_usize("--reps", 3);

    println!("SUFFIX ARRAY (PREFIX DOUBLING) — §IV-A");
    let kamping_loc = count_loc(SOURCE, "sa_kamping");
    let mpi_loc = count_loc(SOURCE, "sa_mpi");
    println!("LoC: kamping {kamping_loc} (paper 163) vs plain {mpi_loc} (paper 426, incl. wrapper layer)");
    println!(
        "LoC ratio plain/kamping: {:.2} (paper: 2.61)",
        mpi_loc as f64 / kamping_loc as f64
    );

    let mut rng = StdRng::seed_from_u64(4242);
    let text: Vec<u8> = (0..n).map(|_| rng.random_range(b'a'..=b'f')).collect();
    let ranges = blocks(n, p);
    let parts: Vec<Vec<u8>> = (0..p)
        .map(|r| text[ranges[r]..ranges[r + 1]].to_vec())
        .collect();

    let parts_ref = &parts;
    let t_kamping = measure_virtual_kamping_ms(p, reps, move |c| {
        let _ = suffix_array_kamping(&parts_ref[c.rank()], n, c).unwrap();
    });
    let t_mpi = measure_virtual_ms(p, reps, move |comm| {
        let _ = suffix_array_mpi(&parts_ref[comm.rank()], n, comm).unwrap();
    });
    println!("virtual time (random text, n={n}, p={p}):");
    println!(
        "  kamping {t_kamping:.3} ms | plain {t_mpi:.3} ms | ratio {:.3}",
        t_kamping / t_mpi
    );

    // Correctness spot check against the sequential reference.
    let seq = suffix_array_sequential(&text[..2_000.min(n)]);
    let small: Vec<u8> = text[..2_000.min(n)].to_vec();
    let ranges2 = blocks(small.len(), p);
    let parts2: Vec<Vec<u8>> = (0..p)
        .map(|r| small[ranges2[r]..ranges2[r + 1]].to_vec())
        .collect();
    let parts2_ref = &parts2;
    let sn = small.len();
    let out = kmp_mpi::Universe::run(p, move |comm| {
        let c = Communicator::new(comm);
        suffix_array_kamping(&parts2_ref[c.rank()], sn, &c).unwrap()
    });
    assert_eq!(out.concat(), seq, "distributed SA must match sequential");
    println!("correctness: distributed SA == sequential reference (n={sn}) OK");
}
