//! Collective algorithm crossover harness: records, for every tunable
//! collective, the virtual-time (alpha-beta cluster model) and
//! wall-clock cost of each algorithm across message sizes and
//! communicator sizes, and verifies the selection engine's contract:
//!
//! - Rabenseifner allreduce beats recursive doubling at large message
//!   sizes (p in {4, 8}),
//! - the scatter+allgather broadcast and Bruck alltoall beat their
//!   counterparts in their regimes,
//! - the `Auto` thresholds never pick an algorithm into its losing
//!   regime: `auto` is never slower than the former single-algorithm
//!   default (recursive doubling / binomial / pairwise).
//!
//! Per-rank copy bills come from `Universe::run_stats` — the
//! universe-level aggregation, no snapshot threading in the closures.
//!
//! Usage: `collectives_experiment [--smoke] [--out PATH]`; writes
//! `BENCH_collectives.json`.

use kmp_bench::harness::{write_json, BenchArgs};
use kmp_mpi::{
    AlgoClass, AllreduceAlgo, AlltoallAlgo, BcastAlgo, CollTuning, Comm, Config, CostModel,
    ModelConfig, Universe,
};

#[derive(Clone, Debug)]
struct Row {
    collective: &'static str,
    algo: &'static str,
    ranks: usize,
    payload_bytes: usize,
    vtime_us: f64,
    wall_us: f64,
    copied_per_rank: u64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"collective\": \"{}\", \"algo\": \"{}\", \"ranks\": {}, \
             \"payload_bytes\": {}, \"vtime_us\": {:.3}, \"wall_us\": {:.3}, \
             \"copied_per_rank\": {}}}",
            self.collective,
            self.algo,
            self.ranks,
            self.payload_bytes,
            self.vtime_us,
            self.wall_us,
            self.copied_per_rank
        )
    }
}

/// Runs `op` under the cluster cost model on `p` ranks with `tuning`
/// applied (`warm` unmeasured warm-up iterations — model-driven rows
/// use them to converge), returning (max-over-ranks virtual us,
/// max-over-ranks median wall us, max-over-ranks payload bytes copied
/// per op, rank 0's whole-run per-class selection counts).
fn measure<F>(p: usize, warm: usize, reps: usize, tuning: CollTuning, op: F) -> Measurement
where
    F: Fn(&Comm) + Sync,
{
    let (outcomes, stats) =
        Universe::run_stats(Config::new(p).cost(CostModel::cluster()), |comm| {
            comm.set_tuning(tuning);
            comm.barrier().unwrap();
            for _ in 0..warm {
                op(&comm); // warm-up, excluded from wall-clock medians
            }
            let mut vtime = 0u64;
            let mut walls = Vec::with_capacity(reps);
            for _ in 0..reps {
                comm.barrier().unwrap();
                comm.clock_reset();
                let t = std::time::Instant::now();
                op(&comm);
                walls.push(t.elapsed().as_nanos() as u64);
                vtime = comm.clock_now_ns();
            }
            walls.sort_unstable();
            (vtime, walls[walls.len() / 2])
        });
    let per_rank: Vec<(u64, u64)> = outcomes.into_iter().map(|o| o.unwrap()).collect();
    let vtime_us = per_rank.iter().map(|&(v, _)| v).max().unwrap() as f64 / 1e3;
    let wall_us = per_rank.iter().map(|&(_, w)| w).max().unwrap() as f64 / 1e3;
    // Totals cover warm-up + reps; normalize to one op (barriers and
    // clock bookkeeping copy nothing).
    let copied = stats
        .iter()
        .map(|s| s.copy.bytes_copied / (reps as u64 + warm as u64))
        .max()
        .unwrap();
    (
        vtime_us,
        wall_us,
        copied,
        stats[0].tuning.selections.to_vec(),
    )
}

type Measurement = (f64, f64, u64, Vec<u64>);

/// The model cadence used by the `auto_tuned` rows: same shape as the
/// tuning_experiment harness (fast EWMA, periodic re-exploration).
fn self_tuning() -> CollTuning {
    CollTuning::default().model(
        ModelConfig::default()
            .drive(true)
            .epoch_len(4)
            .warmup_obs(2)
            .ewma_pct(50)
            .reexplore_every(16),
    )
}

fn allreduce_rows(
    p: usize,
    bytes: usize,
    reps: usize,
    rows: &mut Vec<Row>,
    tuned_sel: &mut Vec<(usize, usize, Vec<u64>)>,
) {
    let n = bytes / 8;
    let run = |comm: &Comm| {
        let mine = vec![comm.rank() as u64 + 1; n];
        let _ = comm.allreduce_vec(&mine, kmp_mpi::op::Sum).unwrap();
    };
    for (algo, warm, tuning) in [
        (
            "recursive_doubling",
            1,
            CollTuning::default().allreduce(AllreduceAlgo::RecursiveDoubling),
        ),
        (
            "rabenseifner",
            1,
            CollTuning::default().allreduce(AllreduceAlgo::Rabenseifner),
        ),
        ("auto", 1, CollTuning::default()),
        // Model-driven Auto: the warm-up budget covers exploration +
        // EWMA convergence, the measured reps are the converged steady
        // state.
        ("auto_tuned", 40, self_tuning()),
    ] {
        let (vtime_us, wall_us, copied_per_rank, selections) = measure(p, warm, reps, tuning, run);
        if algo == "auto_tuned" {
            tuned_sel.push((p, bytes, selections));
        }
        rows.push(Row {
            collective: "allreduce",
            algo,
            ranks: p,
            payload_bytes: bytes,
            vtime_us,
            wall_us,
            copied_per_rank,
        });
    }
}

fn bcast_rows(p: usize, bytes: usize, reps: usize, rows: &mut Vec<Row>) {
    let run = |comm: &Comm| {
        let mut buf = vec![comm.rank() as u8; bytes];
        comm.bcast_into(&mut buf, 0).unwrap();
    };
    for (algo, tuning) in [
        ("binomial", CollTuning::default().bcast(BcastAlgo::Binomial)),
        (
            "scatter_allgather",
            CollTuning::default().bcast(BcastAlgo::ScatterAllgather),
        ),
        ("auto", CollTuning::default()),
    ] {
        let (vtime_us, wall_us, copied_per_rank, _) = measure(p, 1, reps, tuning, run);
        rows.push(Row {
            collective: "bcast",
            algo,
            ranks: p,
            payload_bytes: bytes,
            vtime_us,
            wall_us,
            copied_per_rank,
        });
    }
}

fn alltoall_rows(p: usize, block_bytes: usize, reps: usize, rows: &mut Vec<Row>) {
    let n = block_bytes / 8;
    let run = move |comm: &Comm| {
        let send = vec![comm.rank() as u64; n * comm.size()];
        let mut recv = vec![0u64; n * comm.size()];
        comm.alltoall_into(&send, &mut recv).unwrap();
    };
    for (algo, tuning) in [
        (
            "pairwise",
            CollTuning::default().alltoall(AlltoallAlgo::Pairwise),
        ),
        ("bruck", CollTuning::default().alltoall(AlltoallAlgo::Bruck)),
        ("auto", CollTuning::default()),
    ] {
        let (vtime_us, wall_us, copied_per_rank, _) = measure(p, 1, reps, tuning, run);
        rows.push(Row {
            collective: "alltoall",
            algo,
            ranks: p,
            payload_bytes: block_bytes,
            vtime_us,
            wall_us,
            copied_per_rank,
        });
    }
}

/// Virtual time of `(collective, algo, p, bytes)` from the result set.
fn vt(rows: &[Row], collective: &str, algo: &str, p: usize, bytes: usize) -> f64 {
    rows.iter()
        .find(|r| {
            r.collective == collective && r.algo == algo && r.ranks == p && r.payload_bytes == bytes
        })
        .unwrap_or_else(|| panic!("missing row {collective}/{algo}/p{p}/{bytes}"))
        .vtime_us
}

fn main() {
    let args = BenchArgs::parse("BENCH_collectives.json");
    let smoke = args.smoke;

    let ps = [4usize, 8];
    let (big_sizes, block_sizes, reps) = if smoke {
        (vec![16 * 1024, 1 << 20], vec![64, 16 * 1024], 3)
    } else {
        (
            vec![16 * 1024, 64 * 1024, 256 * 1024, 1 << 20, 4 << 20],
            vec![16, 256, 1024, 16 * 1024, 64 * 1024],
            7,
        )
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut tuned_sel: Vec<(usize, usize, Vec<u64>)> = Vec::new();
    for &p in &ps {
        for &bytes in &big_sizes {
            allreduce_rows(p, bytes, reps, &mut rows, &mut tuned_sel);
            bcast_rows(p, bytes, reps, &mut rows);
        }
        for &bytes in &block_sizes {
            alltoall_rows(p, bytes, reps, &mut rows);
        }
    }

    println!(
        "{:<10} {:<18} {:>3} {:>10} {:>12} {:>10} {:>14}",
        "collective", "algo", "p", "bytes", "vtime us", "wall us", "copied/rank"
    );
    for r in &rows {
        println!(
            "{:<10} {:<18} {:>3} {:>10} {:>12.1} {:>10.1} {:>14}",
            r.collective,
            r.algo,
            r.ranks,
            r.payload_bytes,
            r.vtime_us,
            r.wall_us,
            r.copied_per_rank
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "collectives",
        args.mode(),
        &[(
            "cost_model",
            "\"cluster(alpha=1.5us, beta=0.1ns/B)\"".to_string(),
        )],
        &body,
    );

    // --- the selection engine's contract -------------------------------

    let big = *big_sizes.last().unwrap();
    let small = *block_sizes.first().unwrap();
    for &p in &ps {
        // Rabenseifner wins at large sizes (the headline crossover).
        let rd = vt(&rows, "allreduce", "recursive_doubling", p, big);
        let rab = vt(&rows, "allreduce", "rabenseifner", p, big);
        assert!(
            rab < rd,
            "p={p}: Rabenseifner ({rab} us) must beat recursive doubling ({rd} us) at {big} B"
        );
        let bin = vt(&rows, "bcast", "binomial", p, big);
        let vdg = vt(&rows, "bcast", "scatter_allgather", p, big);
        assert!(
            vdg < bin,
            "p={p}: scatter+allgather bcast ({vdg} us) must beat binomial ({bin} us) at {big} B"
        );
        let pw = vt(&rows, "alltoall", "pairwise", p, small);
        let bruck = vt(&rows, "alltoall", "bruck", p, small);
        assert!(
            bruck < pw,
            "p={p}: Bruck ({bruck} us) must beat pairwise ({pw} us) at {small} B blocks"
        );

        // Auto must never lose to the former single-algorithm default
        // (virtual time is deterministic; the tolerance absorbs barrier
        // alignment noise).
        for r in rows.iter().filter(|r| r.algo == "auto" && r.ranks == p) {
            let legacy = match r.collective {
                "allreduce" => "recursive_doubling",
                "bcast" => "binomial",
                "alltoall" => "pairwise",
                other => panic!("unknown collective {other}"),
            };
            let legacy_vt = vt(&rows, r.collective, legacy, p, r.payload_bytes);
            assert!(
                r.vtime_us <= legacy_vt * 1.02 + 5.0,
                "auto must not regress {}@{} B p={p}: auto {} us vs {legacy} {} us",
                r.collective,
                r.payload_bytes,
                r.vtime_us,
                legacy_vt
            );
        }
    }
    // Self-tuning: static auto rides recursive doubling in the pinned
    // losing cell (p @ 64 KiB, below `rabenseifner_min_bytes`), but the
    // model-driven auto converges onto Rabenseifner — asserted on the
    // selection counters, which are noise-free; BENCH_tuning.json
    // quantifies the wall-clock win.
    if big_sizes.contains(&(64 * 1024)) {
        let (rd_i, rab_i) = (
            AlgoClass::AllreduceRd.index(),
            AlgoClass::AllreduceRabenseifner.index(),
        );
        for &p in &ps {
            let sel = &tuned_sel
                .iter()
                .find(|(sp, bytes, _)| *sp == p && *bytes == 64 * 1024)
                .unwrap()
                .2;
            assert!(
                sel[rab_i] > sel[rd_i],
                "p={p} @64 KiB: model-driven auto must converge onto Rabenseifner \
                 (selected rd {} times, rabenseifner {} times)",
                sel[rd_i],
                sel[rab_i]
            );
        }
    }
    println!("selection-engine contract holds: crossovers present, auto never slower");
}
