//! Tracing-overhead self-check + Perfetto trace generation (requires
//! `--features trace`).
//!
//! Part 1 — **overhead**: the tentpole's zero-overhead claim, measured
//! on the two workloads the instrumentation touches hardest, through
//! the *full* Universe stack (threads, matching engine, completion
//! subsystem), with the trace recorder toggled at runtime
//! ([`trace::set_enabled`]) so enabled and disabled runs share one
//! binary, one build, one machine moment:
//!
//! - **matching_many_senders** — ranks 1..p flood rank 0 with fat
//!   payloads; rank 0 drains with specific `(source, tag)` receives.
//!   Every message crosses the send span, the UMQ enqueue instant, the
//!   match instant and the recv span.
//! - **completion_wait_any_fanin** — rank 0 posts every receive of the
//!   run upfront in one standing [`RequestSet`] and drains it via
//!   `wait_any`: the wait/park span pair plus targeted-wakeup and
//!   claim instants on every completion.
//!
//! Runs are interleaved (disabled, enabled, disabled, ...) and reduced
//! by paired differencing — per rank, the median enabled-minus-disabled
//! delta over adjacent pairs — the estimator least sensitive to CPU
//! speed drift and scheduler noise on an oversubscribed host. The
//! full run asserts **< 2%** enabled-vs-disabled overhead per workload
//! (the PR's acceptance bound); `--smoke` keeps a looser noise bound
//! for CI containers, where `--check PATH` additionally asserts the
//! *committed* full-run rows satisfy the 2% bound — the committed
//! `BENCH_trace.json` stays self-asserting on every CI run.
//!
//! Part 2 — **export**: a p = 8 BFS (GNM graph, kamping dense
//! exchange) runs under [`Universe::run_traced`](kmp_mpi::Universe::run_traced); the collected
//! [`TraceData`](kmp_mpi::TraceData) is exported as Chrome trace-event JSON, validated
//! against the exporter schema (`validate_chrome`), and written next to
//! the stats JSON (`--trace-out`, default `trace_bfs_p8.json`) — load
//! it in Perfetto / `chrome://tracing` to see the run as a timeline.
//!
//! Usage: `trace_experiment [--smoke] [--out PATH] [--check PATH]
//! [--trace-out PATH]`; writes `BENCH_trace.json` + `trace_bfs_p8.json`.

use kmp_apps::bfs::{bfs_with_exchange, Exchange};
use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_graphgen::{gnm, DistGraph};
use kmp_mpi::trace;
use kmp_mpi::{RequestSet, Universe};

// Fat payloads: the recorder's per-message cost is fixed (~6-10 events,
// measured at 35-56 ns each by `calibrate_event_costs`), so the bound
// is expressed against a transfer whose copy + consume cost dominates —
// the regime the <2% claim targets. On a single-core host every traced
// nanosecond of every thread lands on the summed-CPU metric, making
// this the *conservative* setting: any multi-core host hides more of
// the cost.
const PAYLOAD: usize = 512 * 1024;

// Senders may run at most WINDOW messages ahead of the consumer before
// blocking on an ack. Unbounded floods let the unexpected queue grow
// into the hundreds of buffered payloads, and *how deep* it gets is
// scheduler roulette — the depth decides allocator footprint and cache
// behaviour, a rep-to-rep swing far larger than the recorder's cost.
const WINDOW: usize = 8;

/// Drives `exchange` for `2 * (reps + 1)` barrier-synced repetitions
/// inside ONE universe (rank threads, rings and allocator stay warm
/// across reps), alternating the recorder state per rep — enabled and
/// disabled interleave so a load spike hits both equally. The first
/// pair is warm-up. Returns **summed thread-CPU seconds across all
/// ranks** as (disabled, enabled), reduced by paired differencing (see
/// the comment at the bottom).
///
/// CPU time is the honest metric for the overhead bound: recording an
/// event *is* CPU work, and summed CPU captures every traced
/// nanosecond on every rank — whereas wall clock on an oversubscribed
/// single-core host is dominated by which context-switch pattern the
/// scheduler happens to settle into (2x swings rep to rep, far above
/// the effect being measured). On a real multi-core machine the wall
/// impact is at most the CPU impact, so the CPU bound is conservative.
///
/// The A/B toggle is the whole point of the runtime `set_enabled`
/// switch: one binary, one build, the same warmed threads — the only
/// difference between the two measurements is the recorder.
fn ab_measure(
    p: usize,
    reps: usize,
    exchange: impl Fn(&kmp_mpi::Comm, usize) + Sync,
) -> (f64, f64) {
    let per_rank: Vec<(Vec<u64>, Vec<u64>)> = Universe::run(p, |comm| {
        let mut cpu = (Vec::new(), Vec::new()); // (disabled, enabled) per pair
        for rep in 0..2 * (reps + 1) {
            // Alternate which half of a pair runs enabled: a monotone
            // drift in CPU speed across the run then biases half the
            // pair-deltas up and the other half down, and the median
            // cancels it to first order.
            let enabled = (rep % 2 == 1) ^ ((rep / 2) % 2 == 1);
            trace::set_enabled(enabled);
            comm.barrier().unwrap();
            let c0 = kmp_mpi::sys::thread_cpu_ns();
            exchange(&comm, rep);
            comm.barrier().unwrap();
            let spent = kmp_mpi::sys::thread_cpu_ns().saturating_sub(c0);
            if rep >= 2 {
                if enabled {
                    cpu.1.push(spent);
                } else {
                    cpu.0.push(spent);
                }
            }
        }
        trace::set_enabled(true);
        cpu
    });
    // Paired differencing: rep 2i (disabled) and 2i+1 (enabled) run
    // back-to-back, so the slow drift in effective CPU speed on a
    // shared host (throttling inflates CPU-seconds for identical work,
    // by tens of percent across seconds) hits both halves of a pair
    // nearly equally and cancels in the difference. Per rank we take
    // the *median* pair-delta — robust to a rep polluted by preemption
    // — and sum across ranks; the baseline is the summed per-rank
    // median disabled time.
    if std::env::var_os("KMP_TRACE_BENCH_DEBUG").is_some() {
        let n = per_rank[0].0.len();
        let sums: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                (
                    per_rank.iter().map(|r| r.0[i]).sum::<u64>(),
                    per_rank.iter().map(|r| r.1[i]).sum::<u64>(),
                )
            })
            .collect();
        for (i, (d, e)) in sums.iter().enumerate() {
            eprintln!(
                "  pair {i:2}: disabled {:9.3} ms  enabled {:9.3} ms  delta {:+8.3} ms ({:+.2}%)",
                *d as f64 / 1e6,
                *e as f64 / 1e6,
                (*e as f64 - *d as f64) / 1e6,
                (*e as f64 - *d as f64) / *d as f64 * 100.0
            );
        }
    }
    let mut delta = 0.0;
    let mut base = 0.0;
    for (dis, en) in &per_rank {
        let mut d: Vec<i64> = dis
            .iter()
            .zip(en)
            .map(|(&a, &b)| b as i64 - a as i64)
            .collect();
        d.sort_unstable();
        delta += d[d.len() / 2] as f64;
        let mut b0 = dis.clone();
        b0.sort_unstable();
        base += b0[b0.len() / 2] as f64;
    }
    (base / 1e9, (base + delta) / 1e9)
}

/// Ranks 1..p each send `per_sender` payloads to rank 0; rank 0 drains
/// with specific (source, tag) receives, round-robin over the senders —
/// every message crosses the send/recv spans and the matching instants.
/// Senders pause for an ack every [`WINDOW`] messages, bounding the
/// unexpected-queue depth (see the constant's comment).
fn matching_many_senders(p: usize, per_sender: usize, reps: usize) -> (f64, f64) {
    const ACK_TAG: i32 = 2_000_000;
    assert_eq!(
        per_sender % WINDOW,
        0,
        "per_sender must be a WINDOW multiple"
    );
    ab_measure(p, reps, |comm, _| {
        if comm.rank() == 0 {
            let mut buf = vec![0u8; PAYLOAD];
            let mut sink = 0u64;
            for m in 0..per_sender {
                for s in 1..comm.size() {
                    comm.recv_into(&mut buf, s, 7).unwrap();
                    // Consume the payload the way an application would
                    // — the baseline is real per-message work.
                    sink = sink.wrapping_add(buf.iter().map(|&x| x as u64).sum::<u64>());
                }
                if m % WINDOW == WINDOW - 1 {
                    for s in 1..comm.size() {
                        comm.send(&[1u8], s, ACK_TAG).unwrap();
                    }
                }
            }
            std::hint::black_box(sink);
        } else {
            let data = vec![comm.rank() as u8; PAYLOAD];
            let mut ack = [0u8; 1];
            for m in 0..per_sender {
                comm.send(&data, 0, 7).unwrap();
                if m % WINDOW == WINDOW - 1 {
                    comm.recv_into(&mut ack, 0, ACK_TAG).unwrap();
                }
            }
        }
    })
}

/// Rank 0 posts rounds x (p-1) receives upfront in one standing set and
/// drains them via `wait_any` while ranks 1..p stream their payloads —
/// the wait/park spans plus wakeup and claim instants per completion.
/// Rank 0 consumes every payload (checksum) and releases the senders'
/// next [`WINDOW`] rounds by ack once a window fully drains: without
/// flow control the scheduler drifts between "senders batch far ahead"
/// (waiter never parks) and "ping-pong" (waiter parks every message) —
/// a 2x work difference that would bury the recorder's cost.
fn completion_wait_any_fanin(p: usize, rounds: usize, reps: usize) -> (f64, f64) {
    const ACK_TAG: i32 = 1_000_000;
    assert_eq!(rounds % WINDOW, 0, "rounds must be a WINDOW multiple");
    ab_measure(p, reps, |comm, rep| {
        // Per-rep tag block: a straggler's sends can never match a
        // later rep's receives.
        let tag_base = (rep * rounds) as i32;
        if comm.rank() == 0 {
            let mut set = RequestSet::new();
            for round in 0..rounds {
                for peer in 1..comm.size() {
                    set.push(comm.irecv(peer, tag_base + round as i32));
                }
            }
            let mut round_left = vec![comm.size() - 1; rounds];
            let mut done_through = 0; // rounds [0, done_through) fully drained
            let mut sink = 0u64;
            while !set.is_empty() {
                let (_, c) = set.wait_any().unwrap().expect("set non-empty");
                let (b, st) = c
                    .into_bytes()
                    .expect("receive completion carries a payload");
                // Consume the payload the way an application would —
                // the baseline should be real per-message work, not a
                // zero-copy pointer handoff.
                sink = sink.wrapping_add(b.iter().map(|&x| x as u64).sum::<u64>());
                round_left[(st.tag - tag_base) as usize] -= 1;
                // Release the senders' next window once every round in
                // the current window has fully drained.
                while done_through < rounds && round_left[done_through] == 0 {
                    done_through += 1;
                    if done_through % WINDOW == 0 {
                        for peer in 1..comm.size() {
                            comm.send(&[1u8], peer, ACK_TAG).unwrap();
                        }
                    }
                }
            }
            std::hint::black_box(sink);
        } else {
            let data = vec![comm.rank() as u8; PAYLOAD];
            let mut ack = [0u8; 1];
            for round in 0..rounds {
                comm.send(&data, 0, tag_base + round as i32).unwrap();
                if round % WINDOW == WINDOW - 1 {
                    comm.recv_into(&mut ack, 0, ACK_TAG).unwrap();
                }
            }
        }
    })
}

struct Row {
    workload: &'static str,
    ranks: usize,
    messages: usize,
    disabled_cpu_ms: f64,
    enabled_cpu_ms: f64,
    overhead_pct: f64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"ranks\": {}, \"messages\": {}, \
             \"disabled_cpu_ms\": {:.3}, \"enabled_cpu_ms\": {:.3}, \"overhead_pct\": {:.2}}}",
            self.workload,
            self.ranks,
            self.messages,
            self.disabled_cpu_ms,
            self.enabled_cpu_ms,
            self.overhead_pct
        )
    }
}

fn row(workload: &'static str, p: usize, messages: usize, (off, on): (f64, f64)) -> Row {
    Row {
        workload,
        ranks: p,
        messages,
        disabled_cpu_ms: off * 1e3,
        enabled_cpu_ms: on * 1e3,
        overhead_pct: (on - off) / off * 100.0,
    }
}

/// Generates and validates the Chrome trace of a p-rank BFS run;
/// returns the JSON plus (spans, instants) from the schema validator.
fn bfs_trace(p: usize) -> (String, usize, usize) {
    let n = 512 * p;
    let parts: Vec<DistGraph> = (0..p).map(|r| gnm(n, 8 * n, 7, r, p)).collect();
    let parts = &parts;
    let (outcomes, data) = Universe::run_traced(kmp_mpi::Config::new(p), move |comm| {
        let kc = kamping::Communicator::new(comm);
        bfs_with_exchange(&parts[kc.rank()], 0, &kc, Exchange::Kamping).unwrap()
    });
    for (rank, o) in outcomes.iter().enumerate() {
        assert!(
            matches!(o, kmp_mpi::RankOutcome::Completed(_)),
            "BFS rank {rank} did not complete"
        );
    }
    let json = data.to_chrome_json();
    let summary = kmp_mpi::trace::export::validate_chrome(&json)
        .unwrap_or_else(|e| panic!("exported BFS trace failed schema validation: {e}"));
    assert_eq!(
        summary.pids.len(),
        p,
        "expected one Chrome pid per rank, got {:?}",
        summary.pids
    );
    assert!(summary.spans > 0, "BFS trace recorded no spans");
    println!("{}", data.report());
    (json, summary.spans, summary.instants)
}

fn overhead(rows: &[Row], workload: &str) -> f64 {
    rows.iter()
        .find(|r| r.workload == workload)
        .unwrap_or_else(|| panic!("missing row {workload}"))
        .overhead_pct
}

fn main() {
    // `required-features = ["trace"]` guarantees this at build time.
    const { assert!(trace::COMPILED) };
    let args = BenchArgs::parse("BENCH_trace.json");
    let flag = |name: &str| -> Option<String> {
        let a: Vec<String> = std::env::args().collect();
        a.iter()
            .position(|x| x == name)
            .and_then(|i| a.get(i + 1).cloned())
    };
    let trace_out = flag("--trace-out").unwrap_or_else(|| "trace_bfs_p8.json".to_string());

    // Steady-state profiling ring: big enough to hold every event of a
    // measurement rep, small enough (1<<14 events, ~0.9 MiB/thread)
    // that the enabled-mode working set doesn't evict the workload's
    // own cache lines — ring sizing is part of the zero-overhead story.
    trace::set_ring_capacity(1 << 14);

    let p = 8;
    // Many short reps beat few long ones here: per-pair noise is a
    // tight core plus sparse preemption spikes, and the median over
    // ~60 small pairs ignores the spikes entirely.
    let (per_sender, rounds, reps) = if args.smoke {
        (24, 24, 9)
    } else {
        (48, 48, 61)
    };

    let rows = vec![
        row(
            "matching_many_senders",
            p,
            (p - 1) * per_sender,
            matching_many_senders(p, per_sender, reps),
        ),
        row(
            "completion_wait_any_fanin",
            p,
            (p - 1) * rounds,
            completion_wait_any_fanin(p, rounds, reps),
        ),
    ];

    println!(
        "{:<28} {:>3} {:>9} {:>15} {:>15} {:>9}",
        "workload", "p", "messages", "disabled cpu ms", "enabled cpu ms", "overhead"
    );
    for r in &rows {
        println!(
            "{:<28} {:>3} {:>9} {:>15.2} {:>15.2} {:>8.2}%",
            r.workload, r.ranks, r.messages, r.disabled_cpu_ms, r.enabled_cpu_ms, r.overhead_pct
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "trace",
        args.mode(),
        &[("payload_bytes", PAYLOAD.to_string())],
        &body,
    );

    // --- acceptance: the zero-overhead claim, pinned -------------------

    // Full runs pin the PR's bound; smoke runs on a CI container keep a
    // noise allowance (single-core hosts can swing short runs by more
    // than the effect being measured) — the committed full-run rows are
    // re-asserted below under `--check`, so the 2% bound is still
    // enforced on every CI run.
    let bound = if args.smoke { 10.0 } else { 2.0 };
    for r in &rows {
        assert!(
            r.overhead_pct < bound,
            "{}: trace-enabled overhead {:.2}% exceeds the {bound}% bound \
             (disabled {:.2} cpu-ms, enabled {:.2} cpu-ms)",
            r.workload,
            r.overhead_pct,
            r.disabled_cpu_ms,
            r.enabled_cpu_ms
        );
    }
    println!("overhead bound holds: < {bound}% on both workloads");

    if let Some(baseline) = args.baseline.as_deref() {
        // The committed JSON must be a full run and must satisfy the
        // real acceptance bound — this is what makes the committed
        // artifact self-asserting.
        assert!(
            json_field(baseline, "mode").as_deref() == Some("full"),
            "--check: committed BENCH_trace.json must come from a full run"
        );
        let mut checked = 0;
        for line in baseline_lines(baseline, "workload") {
            let w = json_field(line, "workload").expect("baseline row without workload");
            let pct: f64 = json_field(line, "overhead_pct")
                .and_then(|v| v.parse().ok())
                .expect("baseline row without overhead_pct");
            assert!(
                pct < 2.0,
                "committed baseline row {w}: overhead {pct:.2}% violates the 2% bound"
            );
            // The workload must still exist in this binary.
            let _ = overhead(&rows, &w);
            checked += 1;
        }
        assert!(checked >= 2, "committed baseline has fewer than 2 rows");
        println!("baseline check passed ({checked} committed rows < 2% overhead)");
    }

    // --- Perfetto export of a whole BFS run ----------------------------

    let (json, spans, instants) = bfs_trace(p);
    std::fs::write(&trace_out, &json).unwrap_or_else(|e| panic!("write {trace_out}: {e}"));
    println!(
        "wrote {trace_out} ({spans} spans, {instants} instants, {} bytes) — \
         open in https://ui.perfetto.dev or chrome://tracing",
        json.len()
    );
}
